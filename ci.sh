#!/usr/bin/env bash
# Repo CI: exactly what .github/workflows/ci.yml runs.
#
#   ./ci.sh            # build + test + lint
#
# The lint gate is strict (`-D warnings`); the trailing unwrap audit on the
# measurement-plane crates is advisory (tests may unwrap freely, so it must
# not fail the build — it exists so new `unwrap()`s in library code show up
# in the log).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> unwrap audit (advisory) on s2s-probe / s2s-core"
cargo clippy -p s2s-probe -p s2s-core -- -W clippy::unwrap_used 2>&1 |
    grep -A3 "unwrap_used\|used \`unwrap()\`" || true

echo "CI OK"
