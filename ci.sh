#!/usr/bin/env bash
# Repo CI: exactly what .github/workflows/ci.yml runs.
#
#   ./ci.sh            # build + test + lint
#
# The lint gate is strict (`-D warnings`); the trailing unwrap audit on the
# measurement-plane crates is advisory (tests may unwrap freely, so it must
# not fail the build — it exists so new `unwrap()`s in library code show up
# in the log).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo doc --no-deps (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

echo "==> unwrap audit (advisory) on s2s-probe / s2s-core"
cargo clippy -p s2s-probe -p s2s-core -- -W clippy::unwrap_used 2>&1 |
    grep -A3 "unwrap_used\|used \`unwrap()\`" || true

echo "==> small-scale reproduce smoke run (writes metrics.json)"
# Uses the `run` subcommand spelling; later steps deliberately keep the
# deprecated bare spelling so the alias path stays exercised.
S2S_CLUSTERS=16 S2S_DAYS=20 S2S_PAIRS=24 S2S_PING_PAIRS=20 S2S_CONG_PAIRS=8 \
    cargo run -q --release -p s2s-bench --bin reproduce -- run table1 --metrics-json metrics.json |
    tee reproduce_smoke.txt

echo "==> fabric crash-matrix smoke: 4 workers, kill+crash schedule, byte-identity"
# The same experiment sharded over 4 worker subprocesses, with a seeded
# fault plan that SIGKILLs shard 1 mid-campaign and crashes shard 3 on its
# first attempt. The coordinator must retry/resume both, and the merged
# dataset digest must match the 1-process smoke run's byte-for-byte.
S2S_CLUSTERS=16 S2S_DAYS=20 S2S_PAIRS=24 S2S_PING_PAIRS=20 S2S_CONG_PAIRS=8 \
    S2S_FABRIC_FAULT_PLAN='kill@1.1=1;exit@3.1' \
    cargo run -q --release -p s2s-bench --bin reproduce -- table1 --workers 4 \
    --metrics-json metrics_fabric.json |
    tee reproduce_fabric.txt
one_digest=$(grep 'long-term dataset digest:' reproduce_smoke.txt)
fabric_digest=$(grep 'long-term dataset digest:' reproduce_fabric.txt)
test -n "$one_digest" && test "$one_digest" = "$fabric_digest"
grep -q 'recoveries' reproduce_fabric.txt
grep -q '"fabric.shards"' metrics_fabric.json
grep -q '"fabric.retries"' metrics_fabric.json
grep -q '"fabric.recoveries"' metrics_fabric.json
grep -q '"fabric.lost"' metrics_fabric.json

echo "==> snapshot smoke: write, reopen, byte-identical digest"
# First run executes the campaign and persists the merged store as a
# columnar snapshot; the second run reopens the snapshot instead of
# re-running and must print the identical dataset digest line. A third
# grep pins that the reopen path actually engaged (no silent re-run).
rm -f smoke.snap
S2S_CLUSTERS=16 S2S_DAYS=20 S2S_PAIRS=24 S2S_PING_PAIRS=20 S2S_CONG_PAIRS=8 \
    cargo run -q --release -p s2s-bench --bin reproduce -- table1 --snapshot smoke.snap |
    tee reproduce_snapwrite.txt
S2S_CLUSTERS=16 S2S_DAYS=20 S2S_PAIRS=24 S2S_PING_PAIRS=20 S2S_CONG_PAIRS=8 \
    cargo run -q --release -p s2s-bench --bin reproduce -- table1 --snapshot smoke.snap \
    --metrics-json metrics_snapshot.json |
    tee reproduce_snapreopen.txt
write_digest=$(grep 'long-term dataset digest:' reproduce_snapwrite.txt)
reopen_digest=$(grep 'long-term dataset digest:' reproduce_snapreopen.txt)
test -n "$write_digest" && test "$write_digest" = "$reopen_digest"
test "$write_digest" = "$one_digest"
grep -q 'snapshot: wrote' reproduce_snapwrite.txt
grep -q 'snapshot: reopened' reproduce_snapreopen.txt
grep -q '"snapshot.traces"' metrics_snapshot.json
grep -q '"snapshot.skipped_traces": 0' metrics_snapshot.json
grep -q '"snapshot.empty": 0' metrics_snapshot.json
rm -f smoke.snap

echo "==> multi-shard streaming smoke: fabric shard dir, streamed absorb, byte-identical digest"
# A fabric run persists one snapshot per shard into a directory; a second
# run streams the whole directory back through the out-of-core reader at a
# deliberately tiny batch budget. Both digests must match the in-memory
# smoke run byte-for-byte.
rm -rf smoke_shards
S2S_CLUSTERS=16 S2S_DAYS=20 S2S_PAIRS=24 S2S_PING_PAIRS=20 S2S_CONG_PAIRS=8 \
    S2S_SNAPSHOT_DIR=smoke_shards \
    cargo run -q --release -p s2s-bench --bin reproduce -- table1 --workers 2 |
    tee reproduce_sharddir.txt
S2S_CLUSTERS=16 S2S_DAYS=20 S2S_PAIRS=24 S2S_PING_PAIRS=20 S2S_CONG_PAIRS=8 \
    S2S_SNAPSHOT_BUDGET=97 \
    cargo run -q --release -p s2s-bench --bin reproduce -- table1 --snapshot smoke_shards |
    tee reproduce_shardstream.txt
sharddir_digest=$(grep 'long-term dataset digest:' reproduce_sharddir.txt)
stream_digest=$(grep 'long-term dataset digest:' reproduce_shardstream.txt)
test -n "$stream_digest" && test "$stream_digest" = "$sharddir_digest"
test "$stream_digest" = "$one_digest"
grep -q 'snapshot: 2 shard(s)' reproduce_shardstream.txt
grep -q 'snapshot: reopened' reproduce_shardstream.txt
rm -rf smoke_shards

echo "==> always-on service smoke: capped daemon, resume, scripted queries, digest parity"
# A capped `serve` session measures 8 epochs, answers a scripted query
# batch, and checkpoints through the snapshot plane; a second session
# resumes from that snapshot and completes the schedule. The resumed
# daemon's dataset digest must match the batch run's byte-for-byte, and
# the service.* / query.* counters must reach --metrics-json.
rm -f smoke_service.snap
printf 'stats\npair 0 1 v4\n' |
S2S_CLUSTERS=16 S2S_DAYS=20 S2S_PAIRS=24 S2S_PING_PAIRS=20 S2S_CONG_PAIRS=8 \
    cargo run -q --release -p s2s-bench --bin reproduce -- serve --epochs 8 \
    --snapshot smoke_service.snap |
    tee reproduce_serve1.txt
printf 'stats\nadvice 0 1\n' |
S2S_CLUSTERS=16 S2S_DAYS=20 S2S_PAIRS=24 S2S_PING_PAIRS=20 S2S_CONG_PAIRS=8 \
    cargo run -q --release -p s2s-bench --bin reproduce -- serve \
    --snapshot smoke_service.snap --metrics-json metrics_service.json |
    tee reproduce_serve2.txt
serve_digest=$(grep 'long-term dataset digest:' reproduce_serve2.txt)
test -n "$serve_digest" && test "$serve_digest" = "$one_digest"
grep -q 'ok {"cmd":"stats"' reproduce_serve1.txt
grep -q 'ok {"cmd":"stats"' reproduce_serve2.txt
grep -q 'service: resumed from' reproduce_serve2.txt
grep -q 'service: final snapshot' reproduce_serve2.txt
grep -q '"service.epochs"' metrics_service.json
grep -q '"service.resumes"' metrics_service.json
grep -q '"query.served"' metrics_service.json
rm -f smoke_service.snap

echo "==> long-term campaign + columnar analysis bench (quick mode; writes BENCH_longterm.json)"
S2S_BENCH_QUICK=1 cargo bench -q -p s2s-bench --bench longterm

echo "==> streaming short-term gate: agreement recorded in BENCH_longterm.json"
# The bench aborts if streamed-vs-exact classification agreement drops
# below 99%; this guards against the section silently disappearing.
grep -q '"streamed_exact_agreement"' BENCH_longterm.json
grep -q '"memory_independent_of_samples": true' BENCH_longterm.json

echo "==> fabric gate: scale-out section recorded in BENCH_longterm.json"
# The bench aborts unless the fabric and crash-recovered datasets are
# byte-identical to the 1-process run; these guard the section itself.
grep -q '"fabric": {' BENCH_longterm.json
grep -q '"merge_overhead"' BENCH_longterm.json
grep -q '"recovery_ms"' BENCH_longterm.json

echo "==> persistence gate: snapshot section recorded in BENCH_longterm.json"
# The bench aborts unless the reopened snapshot is byte-identical to the
# line-import rebuild and reopening beats importing by >= 10x; these
# guard the section itself.
grep -q '"persistence": {' BENCH_longterm.json
grep -q '"write_gbps"' BENCH_longterm.json
grep -q '"open_vs_import_speedup"' BENCH_longterm.json
grep -q '"digest_identical": true' BENCH_longterm.json
grep -q '"roundtrip_identical": true' BENCH_longterm.json

echo "==> out-of-core gate: streamed residency + analysis recorded in BENCH_longterm.json"
# The bench aborts unless the streamed reader's peak residency stays at
# the one-block floor while the materialized store grows, and the
# streamed analysis is byte-identical within its time budget; these
# guard the section itself.
grep -q '"out_of_core": {' BENCH_longterm.json
grep -q '"peak_over_floor"' BENCH_longterm.json
grep -q '"one_block_floor_bytes"' BENCH_longterm.json
grep -q '"streamed_vs_in_memory"' BENCH_longterm.json
grep -q '"flat_resident": true' BENCH_longterm.json

echo "==> service gate: always-on section recorded in BENCH_longterm.json"
# The bench aborts unless the service's live dataset is byte-identical
# to the batch recompute and incremental updates / queries beat the
# batch path by the gated ratios; these guard the section itself.
grep -q '"service": {' BENCH_longterm.json
grep -q '"dataset_identical": true' BENCH_longterm.json
grep -q '"batch_over_update"' BENCH_longterm.json
grep -q '"batch_over_query"' BENCH_longterm.json
grep -q '"ns_per_query"' BENCH_longterm.json

echo "CI OK"
