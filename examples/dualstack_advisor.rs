//! Dual-stack advisor — the §6 opportunity: for each server pair, measure
//! both protocols for a week and recommend which to use, flagging the pairs
//! where switching saves ≥50 ms (the paper finds 3.7% of pairs gain that
//! from IPv6 and 8.5% from IPv4).
//!
//! ```text
//! cargo run -p s2s-examples --release --bin dualstack_advisor
//! ```

use s2s_netsim::{CongestionModel, CongestionParams, Network, NetworkParams};
use s2s_probe::{Campaign, CampaignConfig};
use s2s_routing::{Dynamics, DynamicsParams, RouteOracle};
use s2s_stats::quantiles;
use s2s_topology::{build_topology, TopologyParams};
use s2s_types::{ClusterId, SimTime};
use std::sync::Arc;

fn main() {
    let topo = Arc::new(build_topology(&TopologyParams { seed: 11, n_clusters: 24, ..TopologyParams::default() }));
    let horizon = SimTime::from_days(20);
    let dynamics = Arc::new(Dynamics::generate(
        &topo,
        &DynamicsParams { horizon, ..DynamicsParams::default() },
    ));
    let oracle = Arc::new(RouteOracle::new(Arc::clone(&topo), dynamics));
    let congestion = CongestionModel::generate(
        &topo,
        &CongestionParams { horizon, ..CongestionParams::default() },
    );
    let net = Network::new(oracle, congestion, NetworkParams::default());

    // A week of 15-minute pings over both protocols, all pairs from one hub.
    let pairs: Vec<(ClusterId, ClusterId)> = (1..topo.clusters.len())
        .map(|d| (ClusterId::new(0), ClusterId::from(d)))
        .collect();
    let cfg = CampaignConfig::ping_week(SimTime::from_days(3));
    let (timelines, _) = Campaign::new(cfg)
        .run_ping(&net, &pairs)
        .expect("in-memory campaign cannot fail");

    println!("pair                          median v4    median v6    advice");
    let mut big_saves = 0;
    for chunk in timelines.chunks(2) {
        let [v4, v6] = chunk else { continue };
        let median = |tl: &s2s_probe::PingTimeline| {
            let r = tl.valid_rtts();
            quantiles(&r, &[50.0]).map(|q| q[0])
        };
        let (Some(m4), Some(m6)) = (median(v4), median(v6)) else { continue };
        let city = topo.cluster_city(v4.dst);
        let diff = m4 - m6;
        let advice = if diff >= 50.0 {
            big_saves += 1;
            "switch to IPv6 (saves ≥50 ms!)"
        } else if diff <= -50.0 {
            big_saves += 1;
            "switch to IPv4 (saves ≥50 ms!)"
        } else if diff > 10.0 {
            "prefer IPv6"
        } else if diff < -10.0 {
            "prefer IPv4"
        } else {
            "either (within 10 ms)"
        };
        println!(
            "-> {:<24} {m4:>9.1} ms {m6:>9.1} ms    {advice}",
            format!("{} ({})", city.name, city.country),
        );
    }
    println!(
        "\n{big_saves} of {} pairs can save ≥50 ms by picking the right protocol \
         (paper: ~12% combined)",
        pairs.len()
    );
}
