//! Congestion hunting — the §5 pipeline end to end: plant a diurnal
//! congestion episode on a known link, detect it from ping timelines (FFT),
//! localize it with per-segment Pearson correlation, and classify the
//! blamed link with the router-ownership heuristics.
//!
//! ```text
//! cargo run -p s2s-examples --release --bin congestion_hunt
//! ```

use s2s_core::congestion::{
    DetectParams, LocateOutcome, LocateParams, SegmentAccumulator,
};
use s2s_core::ownership::{classify_link, infer_ownership};
use s2s_core::Analysis;
use s2s_netsim::{CongestionModel, LinkProfile, Network, NetworkParams};
use s2s_probe::{trace, Campaign, CampaignConfig, TraceOptions};
use s2s_routing::{Dynamics, RouteOracle};
use s2s_topology::{build_topology, TopologyParams};
use s2s_types::{ClusterId, Protocol, SimDuration, SimTime};
use std::sync::Arc;

fn main() {
    let topo = Arc::new(build_topology(&TopologyParams::tiny(7)));
    let ip2asn = s2s_bgp::Ip2AsnMap::from_announcements(&topo.announcements);
    let rels = s2s_bgp::AsRelStore::from_topology(&topo);
    let horizon = SimTime::from_days(40);
    let oracle = Arc::new(RouteOracle::new(
        Arc::clone(&topo),
        Arc::new(Dynamics::all_up(&topo, horizon)),
    ));

    // Plant congestion on the third link of a known pair's forward path.
    let (src, dst) = (ClusterId::new(0), ClusterId::new(6));
    let path = oracle
        .router_path(src, dst, Protocol::V4, SimTime::T0, 1)
        .expect("path exists");
    let victim_hop = &path.hops[2.min(path.hops.len() - 1)];
    let victim = victim_hop.ingress_link;
    let profile = LinkProfile {
        amplitude_ms: 28.0,
        peak_local_hour: 20.5,
        width_hours: 3.0,
        start_min: 0,
        end_min: horizon.minutes(),
        lon_deg: 0.0,
        // Queue builds toward the destination (the forward direction).
        toward: victim_hop.router.0,
        v6_factor: 1.0,
    };
    let net = Network::new(
        Arc::clone(&oracle),
        CongestionModel::from_profiles(vec![(victim, profile)]),
        NetworkParams::default(),
    );
    println!("planted a 28 ms busy-hour bump on link {victim:?}");

    // Step 1 (§5.1): a week of 15-minute pings flags the pair.
    let cfg = CampaignConfig::ping_week(SimTime::from_days(2));
    let (tls, _) = Campaign::new(cfg)
        .run_ping(&net, &[(src, dst)])
        .expect("in-memory campaign cannot fail");
    let verdicts = Analysis::new(tls.as_slice()).congestion(&DetectParams::default());
    for (tl, verdict) in tls.iter().zip(&verdicts) {
        if let Some(r) = verdict {
            println!(
                "{}: spread {:.1} ms, diurnal PSD ratio {:.2} -> consistent = {}",
                tl.proto,
                r.spread_ms,
                r.psd_ratio.unwrap_or(0.0),
                r.consistent
            );
        }
    }

    // Step 2 (§5.2): three weeks of 30-minute traceroutes localize it.
    let mut acc = SegmentAccumulator::default();
    let mut t = SimTime::from_days(2);
    while t < SimTime::from_days(23) {
        acc.push(&trace(&net, src, dst, Protocol::V4, t, TraceOptions::default()));
        t += SimDuration::from_minutes(30);
    }
    match acc.locate(&LocateParams::default()) {
        LocateOutcome::Located { segment, near, far, rho, .. } => {
            println!(
                "localized at segment {segment}: {near:?} -> {far} (rho = {rho:.2})"
            );
            // Step 3 (§5.3): whose link is that?
            let corpus: Vec<Vec<Option<std::net::IpAddr>>> =
                vec![acc.reference_path().unwrap().to_vec()];
            let inf = infer_ownership(&corpus, &ip2asn, &rels);
            let class = classify_link(near, far, &inf, &rels);
            println!("ownership classification: {class:?}");
            // Ground truth check against the simulator.
            if let Some(iface) = topo.iface_by_addr(far) {
                let link = topo.ifaces[iface.index()].link;
                println!(
                    "ground truth: blamed link {:?} (kind {:?}); planted link {victim:?}",
                    link,
                    topo.links[link.index()].kind
                );
            }
        }
        other => println!("localization outcome: {other:?}"),
    }
}
