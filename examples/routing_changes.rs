//! Routing-change analysis on a simulated two-month campaign — the §4
//! pipeline end to end: trace timelines, edit-distance change detection,
//! path lifetimes/prevalence, and best-path RTT deltas.
//!
//! ```text
//! cargo run -p s2s-examples --release --bin routing_changes
//! ```

use s2s_core::bestpath::best_path_analysis;
use s2s_core::changes::{detect_changes, path_stats};
use s2s_core::timeline::TimelineBuilder;
use s2s_netsim::{CongestionModel, Network, NetworkParams};
use s2s_probe::{Campaign, CampaignConfig, TraceOptions};
use s2s_routing::{Dynamics, DynamicsParams, RouteOracle};
use s2s_topology::{build_topology, TopologyParams};
use s2s_types::{ClusterId, Protocol, SimDuration, SimTime};
use std::sync::Arc;

fn main() {
    let days = 60u32;
    let topo = Arc::new(build_topology(&TopologyParams::tiny(42)));
    let ip2asn = s2s_bgp::Ip2AsnMap::from_announcements(&topo.announcements);
    let dynamics = Arc::new(Dynamics::generate(
        &topo,
        &DynamicsParams {
            horizon: SimTime::from_days(days),
            stable_fraction: 0.3,
            mean_episodes: 6.0,
            ..DynamicsParams::default()
        },
    ));
    println!(
        "dynamics: {} links fail at least once, {} episodes total",
        dynamics.failing_link_count(),
        dynamics.episode_count()
    );
    let oracle = Arc::new(RouteOracle::new(Arc::clone(&topo), dynamics));
    let net = Network::new(oracle, CongestionModel::none(), NetworkParams::default());

    // Every 3 hours for two months across a handful of pairs.
    let pairs: Vec<(ClusterId, ClusterId)> = (1..topo.clusters.len().min(9))
        .map(|d| (ClusterId::new(0), ClusterId::from(d)))
        .collect();
    let cfg = CampaignConfig {
        start: SimTime::T0,
        end: SimTime::from_days(days),
        interval: SimDuration::from_hours(3),
        protocols: vec![Protocol::V4],
        threads: 4,
    };
    let timelines: Vec<_> = Campaign::new(cfg)
        .run_traceroute(
            &net,
            &pairs,
            TraceOptions::default(),
            |s, d, p| TimelineBuilder::new(s, d, p, &ip2asn),
            |b, rec| b.push(rec),
        )
        .expect("in-memory campaign cannot fail")
        .0
        .into_iter()
        .map(TimelineBuilder::finish)
        .collect();

    for tl in &timelines {
        let changes = detect_changes(tl);
        let stats = path_stats(tl, SimDuration::from_hours(3));
        let dst_city = topo.cluster_city(tl.dst);
        println!(
            "\n-> {} ({}): {} samples, {} AS paths, {} changes",
            dst_city.name,
            dst_city.country,
            tl.usable_samples(),
            tl.unique_paths(),
            changes.changes
        );
        for (i, path) in tl.paths.iter().enumerate() {
            println!(
                "   path {i}: prevalence {:>5.1}%, lifetime {:>6.1} h   {path}",
                stats.prevalence[i] * 100.0,
                stats.lifetimes[i].hours()
            );
        }
        if let Some(a) = best_path_analysis(tl, SimDuration::from_hours(3)) {
            for d in &a.deltas {
                println!(
                    "   sub-optimal path {}: baseline +{:.1} ms over best (lifetime {:.1} h)",
                    d.path, d.delta_p10_ms, d.lifetime_hours
                );
            }
        }
    }
}
