//! Quickstart: build a small simulated Internet core, run a traceroute and
//! a ping between two CDN clusters, and inspect the AS-level path.
//!
//! ```text
//! cargo run -p s2s-examples --bin quickstart
//! ```

use s2s_bgp::Ip2AsnMap;
use s2s_core::annotate::annotate;
use s2s_netsim::{CongestionModel, CongestionParams, Network, NetworkParams};
use s2s_probe::{ping_once, trace, TraceOptions};
use s2s_routing::{Dynamics, DynamicsParams, RouteOracle};
use s2s_topology::{build_topology, TopologyParams};
use s2s_types::{ClusterId, Protocol, SimTime};
use std::sync::Arc;

fn main() {
    // 1. A seeded world: topology, routing dynamics, congestion, noise.
    let topo = Arc::new(build_topology(&TopologyParams { seed: 2015, n_clusters: 24, ..TopologyParams::default() }));
    let horizon = SimTime::from_days(30);
    let dynamics = Arc::new(Dynamics::generate(
        &topo,
        &DynamicsParams { horizon, ..DynamicsParams::default() },
    ));
    let oracle = Arc::new(RouteOracle::new(Arc::clone(&topo), dynamics));
    let congestion = CongestionModel::generate(
        &topo,
        &CongestionParams { horizon, ..CongestionParams::default() },
    );
    let net = Network::new(oracle, congestion, NetworkParams::default());
    println!(
        "world: {} ASes, {} routers, {} links, {} CDN clusters",
        topo.ases.len(),
        topo.routers.len(),
        topo.links.len(),
        topo.clusters.len()
    );

    // 2. Pick a representative pair: scan a few candidates and keep the one
    //    whose RTT sits closest to the speed-of-light bound (median
    //    inflation in the paper is ~3x; tail pairs ride detours).
    let src = ClusterId::new(0);
    let t0 = SimTime::from_days(3);
    let dst = (1..topo.clusters.len().min(12))
        .map(ClusterId::from)
        .min_by_key(|&d| {
            let crtt = s2s_geo::c_rtt_ms(
                &topo.cluster_city(src).point(),
                &topo.cluster_city(d).point(),
            );
            match net.ideal_rtt(src, d, Protocol::V4, t0) {
                Some(rtt) if crtt > 1.0 => (rtt / crtt * 100.0) as u64,
                _ => u64::MAX,
            }
        })
        .expect("at least two clusters");
    println!(
        "measuring {} ({}) -> {} ({})",
        topo.cluster_city(src).name,
        topo.cluster_city(src).country,
        topo.cluster_city(dst).name,
        topo.cluster_city(dst).country
    );

    // 3. One ping and one Paris traceroute over IPv4.
    let t = t0;
    let pr = ping_once(&net, src, dst, Protocol::V4, t);
    println!("ping: {:?} ms", pr.rtt_ms.map(|r| (r * 100.0).round() / 100.0));
    let rec = trace(&net, src, dst, Protocol::V4, t, TraceOptions::default());
    println!("traceroute ({} hops, reached = {}):", rec.hops.len(), rec.reached);
    for (i, h) in rec.hops.iter().enumerate() {
        match (h.addr, h.rtt_ms) {
            (Some(a), Some(r)) => println!("  {:>2}  {a:<18} {r:>8.2} ms", i + 1),
            _ => println!("  {:>2}  *", i + 1),
        }
    }

    // 4. Map the hops to an AS-level path, the way the paper's pipeline does.
    let ip2asn = Ip2AsnMap::from_announcements(&topo.announcements);
    let ann = annotate(&rec, &ip2asn);
    println!("AS path: {}", ann.as_path);
    println!(
        "completeness: {:?}; loop = {}; imputed hops = {}",
        ann.completeness, ann.has_loop, ann.imputed
    );
}
