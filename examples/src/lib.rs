//! Shared nothing: each example is a standalone binary; this library target
//! exists only so the package has a stable build unit for `cargo test`.
