//! Core atlas — a tour of the simulated Internet core: tiers, geography,
//! interconnect census, IXPs, BGP table, and routing sanity checks. Useful
//! as a reference for what the substrate actually builds.
//!
//! ```text
//! cargo run -p s2s-examples --release --bin core_atlas
//! ```

use s2s_bgp::Ip2AsnMap;
use s2s_routing::{Dynamics, RouteOracle};
use s2s_topology::{build_topology, AsKind, Tier, TopologyParams};
use s2s_types::{ClusterId, Protocol, SimTime};
use std::collections::HashMap;
use std::sync::Arc;

fn main() {
    let params = TopologyParams::default();
    let topo = Arc::new(build_topology(&params));

    // AS-level view.
    let count = |t: Tier| topo.ases.iter().filter(|a| a.tier == t).count();
    let fabric = topo.ases.iter().filter(|a| a.kind == AsKind::IxpFabric).count();
    println!("ASes: {} total", topo.ases.len());
    println!("  tier-1 backbones : {}", count(Tier::Tier1));
    println!("  tier-2 regionals : {}", count(Tier::Tier2));
    println!("  stubs            : {}", count(Tier::Stub) - fabric);
    println!("  IXP fabric ASes  : {fabric}");
    let dual = topo.ases.iter().filter(|a| a.dual_stack).count();
    let mpls = topo.ases.iter().filter(|a| a.mpls).count();
    println!("  dual-stack: {dual}; MPLS (hidden interiors): {mpls}");

    // Link census.
    let (internal, transit, private, ixp) = topo.link_census();
    println!("\nlinks: {} total", topo.links.len());
    println!("  internal backbone : {internal}");
    println!("  transit (c2p)     : {transit}");
    println!("  private peering   : {private}");
    println!("  IXP public fabric : {ixp}");
    let v4_only = topo
        .links
        .iter()
        .filter(|l| l.kind.is_interconnect() && !l.v6_enabled)
        .count();
    let unannounced = topo.links.iter().filter(|l| !l.announced_v4).count();
    println!("  v4-only interconnects: {v4_only}; unannounced subnets: {unannounced}");

    // Geography of the CDN deployment.
    let mut by_country: HashMap<&str, usize> = HashMap::new();
    for c in 0..topo.clusters.len() {
        *by_country
            .entry(topo.cluster_city(ClusterId::from(c)).country)
            .or_default() += 1;
    }
    let mut countries: Vec<_> = by_country.into_iter().collect();
    countries.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    println!("\nCDN deployment: {} clusters in {} countries", topo.clusters.len(), countries.len());
    for (cc, n) in countries.iter().take(8) {
        println!("  {cc}: {n}");
    }

    // BGP table.
    let ip2asn = Ip2AsnMap::from_announcements(&topo.announcements);
    println!("\nBGP: {} announcements", ip2asn.announcement_count());

    // Routing sanity: every cluster pair reachable over IPv4, and AS path
    // lengths look like the Internet's (3-6 ASes).
    let oracle = RouteOracle::new(
        Arc::clone(&topo),
        Arc::new(Dynamics::all_up(&topo, SimTime::from_days(1))),
    );
    let mut lens: HashMap<usize, usize> = HashMap::new();
    let n = topo.clusters.len().min(40);
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            if let Some(p) = oracle.as_path_idx(
                topo.clusters[a].host_as,
                topo.clusters[b].host_as,
                Protocol::V4,
                SimTime::T0,
            ) {
                *lens.entry(p.len()).or_default() += 1;
            }
        }
    }
    println!("\nAS-path length distribution over {n}x{n} cluster mesh:");
    let mut ls: Vec<_> = lens.into_iter().collect();
    ls.sort();
    let total: usize = ls.iter().map(|&(_, c)| c).sum();
    for (len, c) in ls {
        println!("  {len} ASes: {:>5.1}%", 100.0 * c as f64 / total as f64);
    }
}
