//! No-op derive macros backing the offline `serde` shim.
//!
//! Each derive expands to nothing: the `Serialize`/`Deserialize` traits are
//! never invoked at runtime anywhere in the workspace, so empty expansions
//! keep every annotated type compiling without pulling in syn/quote.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
