//! Offline shim for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API
//! (`read()`/`write()`/`lock()` return guards directly). Poisoning is
//! handled by propagating the panic, which matches parking_lot's effective
//! behavior for this workspace: a panicked writer is a bug either way.

use std::sync::{self, LockResult};

/// Reader-writer lock with parking_lot's guard-returning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

fn unpoison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => panic!("lock poisoned by a panicked holder: {poisoned:?}"),
    }
}

impl<T> RwLock<T> {
    /// Creates the lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock { inner: sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Shared access.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        unpoison(self.inner.read())
    }

    /// Exclusive access.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        unpoison(self.inner.write())
    }
}

/// Mutex with parking_lot's guard-returning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates the mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex { inner: sync::Mutex::new(value) }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Exclusive access.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        unpoison(self.inner.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 41;
        assert_eq!(*l.read(), 42);
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(String::from("a"));
        m.lock().push('b');
        assert_eq!(&*m.lock(), "ab");
    }
}
