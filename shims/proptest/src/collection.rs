//! Collection strategies: `vec` with a size range.

use crate::strategy::Strategy;
use crate::TestRng;
use std::ops::{Range, RangeInclusive};

/// An inclusive size interval for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose elements come from `element` and whose length
/// falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.lo + rng.below(self.size.hi - self.size.lo + 1);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_size_from_usize() {
        let mut rng = TestRng::for_case("collection::tests", 0);
        let v = vec(0u32..10, 5).generate(&mut rng);
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn half_open_range_excludes_end() {
        for case in 0..100 {
            let mut rng = TestRng::for_case("collection::tests", case);
            let v = vec(0u8..=1, 0..4).generate(&mut rng);
            assert!(v.len() < 4);
        }
    }

    #[test]
    fn inclusive_range_reaches_both_ends() {
        let mut seen = std::collections::HashSet::new();
        for case in 0..200 {
            let mut rng = TestRng::for_case("collection::tests::ends", case);
            seen.insert(vec(0u8..=1, 1..=3).generate(&mut rng).len());
        }
        assert!(seen.contains(&1) && seen.contains(&3), "lengths seen: {seen:?}");
    }
}
