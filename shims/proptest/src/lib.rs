//! Offline shim for `proptest`.
//!
//! A deterministic property-test runner covering the strategy surface this
//! workspace uses: numeric ranges, `collection::vec`, tuples, `any::<T>()`,
//! and a small regex-subset string strategy. No shrinking — on failure the
//! panic message names the property and the failing case index, and the
//! case sequence is a pure function of the test's module path, so failures
//! reproduce exactly across runs and machines.

use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod strategy;

pub use strategy::Strategy;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Compatibility module mirroring `proptest::test_runner`.
pub mod test_runner {
    pub use crate::ProptestConfig;
}

/// Why a generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// A `prop_assert*!` failed.
    Fail(String),
    /// A `prop_assume!` filtered the case out.
    Reject,
}

/// The deterministic generator handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator for one (property, case) pair.
    pub fn for_case(property: &str, case: u32) -> TestRng {
        // FNV-1a over the property name, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in property.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100000001b3);
        }
        TestRng { state: h ^ (u64::from(case).wrapping_mul(0x9E3779B97F4A7C15)) }
    }

    /// Next 64 raw bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in [0, n) (n > 0).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Types with a default "any value" strategy (used by `any::<T>()` and by
/// `name: Type` arguments in `proptest!`).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Full-width bits, with the edges over-represented the way
                // fuzzing wants: 1-in-16 cases pick an extreme value.
                match rng.below(16) {
                    0 => <$t>::MIN,
                    1 => <$t>::MAX,
                    _ => {
                        let hi = (rng.next_u64() as u128) << 64;
                        (hi | rng.next_u64() as u128) as $t
                    }
                }
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII, the occasional control/unicode escapee.
        match rng.below(12) {
            0 => char::from_u32(rng.below(0xD7FF) as u32).unwrap_or('\u{FFFD}'),
            1 => '\n',
            _ => (0x20 + rng.below(0x5F) as u8) as char,
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

/// The `any::<T>()` strategy.
pub fn any<T: Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

/// Everything a `use proptest::prelude::*;` is expected to bring in.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = (rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = (rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                // Hit the inclusive endpoints now and then; they are the
                // interesting values of a closed interval.
                match rng.below(64) {
                    0 => *self.start(),
                    1 => *self.end(),
                    _ => *self.start() + (rng.unit_f64() as $t) * (*self.end() - *self.start()),
                }
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests. Supports the argument forms the workspace uses:
/// `pat in strategy` and `name: Type` (= `any::<Type>()`), plus an optional
/// leading `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    $crate::__proptest_case!(@bind __rng, ($($args)*) -> $body []);
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "property {} failed on case {}: {}",
                            stringify!($name), __case, __msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    (@bind $rng:ident, () -> $body:block [$($lets:tt)*]) => {{
        $($lets)*
        (|| -> ::std::result::Result<(), $crate::TestCaseError> {
            $body
            ::std::result::Result::Ok(())
        })()
    }};
    (@bind $rng:ident, ($pat:pat in $strat:expr, $($rest:tt)*) -> $body:block [$($lets:tt)*]) => {
        $crate::__proptest_case!(@bind $rng, ($($rest)*) -> $body
            [$($lets)* let $pat = $crate::Strategy::generate(&($strat), &mut $rng);])
    };
    (@bind $rng:ident, ($pat:pat in $strat:expr) -> $body:block [$($lets:tt)*]) => {
        $crate::__proptest_case!(@bind $rng, () -> $body
            [$($lets)* let $pat = $crate::Strategy::generate(&($strat), &mut $rng);])
    };
    (@bind $rng:ident, ($id:ident : $ty:ty, $($rest:tt)*) -> $body:block [$($lets:tt)*]) => {
        $crate::__proptest_case!(@bind $rng, ($($rest)*) -> $body
            [$($lets)* let $id = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);])
    };
    (@bind $rng:ident, ($id:ident : $ty:ty) -> $body:block [$($lets:tt)*]) => {
        $crate::__proptest_case!(@bind $rng, () -> $body
            [$($lets)* let $id = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);])
    };
}

/// `assert!` that reports through the property runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the property runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), l, r
        );
    }};
}

/// `assert_ne!` that reports through the property runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "{}\n  both: {:?}",
            format!($($fmt)+), l
        );
    }};
}

/// Filters out cases that do not meet a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_property_and_case() {
        let mut a = crate::TestRng::for_case("x::y", 3);
        let mut b = crate::TestRng::for_case("x::y", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("x::y", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in 3u32..17, b in 0.0f64..1.0, c in 0u8..=4) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((0.0..1.0).contains(&b));
            prop_assert!(c <= 4);
        }

        #[test]
        fn type_ascription_generates(x: u16, flag: bool) {
            // Mere generation is the point; the bindings must exist.
            let _ = (x, flag);
            prop_assert!(u32::from(x) <= u32::from(u16::MAX));
        }

        #[test]
        fn vectors_respect_size_ranges(
            v in crate::collection::vec(0u32..5, 0..40),
            exact in crate::collection::vec(any::<u8>(), 9),
            mut w in crate::collection::vec(0i32..3, 1..=4),
        ) {
            prop_assert!(v.len() < 40);
            prop_assert_eq!(exact.len(), 9);
            prop_assert!((1..=4).contains(&w.len()));
            w.push(0);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn tuples_generate_pairwise(p in (0.0f64..100.0, 0.0f64..100.0)) {
            prop_assert!(p.0 < 100.0 && p.1 < 100.0);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        /// Doc comments and explicit configs parse.
        #[test]
        fn config_is_honored(_x in 0u32..10) {
            prop_assert!(true);
        }
    }

    #[test]
    fn string_strategies_match_their_regex() {
        for case in 0..200 {
            let mut rng = crate::TestRng::for_case("strings", case);
            let s = Strategy::generate(&"[a-z0-9*.]{0,8}", &mut rng);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()
                || c.is_ascii_digit()
                || c == '*'
                || c == '.'));
            let any = Strategy::generate(&".*", &mut rng);
            let _ = any.len(); // anything goes; it just must generate
        }
    }

    #[test]
    #[should_panic(expected = "failed on case")]
    fn failures_panic_with_case_number() {
        // No #[test] attribute here: the item is local to this fn, and an
        // inner #[test] would be unnameable to the harness anyway.
        proptest! {
            fn inner(x in 10u32..20) {
                prop_assert!(x < 10, "x = {}", x);
            }
        }
        inner();
    }
}
