//! The [`Strategy`] trait and the non-collection strategies: `any`, `Just`,
//! tuples, and string generation from a small regex subset.

use crate::{Arbitrary, TestRng};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// The strategy behind [`crate::any`].
pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

// ---------------------------------------------------------------------------
// Regex-subset string strategy
// ---------------------------------------------------------------------------

/// One atom of the pattern: what character to draw.
enum CharSet {
    Literal(char),
    /// `.` — any character (mostly printable ASCII, with escapees).
    Dot,
    /// `[...]` ranges/members, possibly negated.
    Class { ranges: Vec<(char, char)>, negated: bool },
}

/// How many times to repeat the preceding atom.
enum Rep {
    One,
    Star,
    Plus,
    Opt,
    Between(usize, usize),
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>) -> CharSet {
    let mut ranges = Vec::new();
    let negated = chars.peek() == Some(&'^') && {
        chars.next();
        true
    };
    let mut pending: Option<char> = None;
    while let Some(c) = chars.next() {
        match c {
            ']' => break,
            '-' if pending.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                let lo = pending.take().expect("checked above");
                let hi = chars.next().expect("checked above");
                ranges.push((lo, hi));
            }
            '\\' => {
                if let Some(p) = pending.take() {
                    ranges.push((p, p));
                }
                let e = chars.next().unwrap_or('\\');
                pending = Some(unescape(e));
            }
            _ => {
                if let Some(p) = pending.take() {
                    ranges.push((p, p));
                }
                pending = Some(c);
            }
        }
    }
    if let Some(p) = pending {
        ranges.push((p, p));
    }
    if ranges.is_empty() {
        ranges.push(('a', 'a'));
    }
    CharSet::Class { ranges, negated }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

/// Parses the supported subset: literals, `\x` escapes, `.`, `[...]`
/// classes, and the postfix repetitions `*`, `+`, `?`, `{n}`, `{m,n}`.
fn parse_pattern(pattern: &str) -> Vec<(CharSet, Rep)> {
    let mut out: Vec<(CharSet, Rep)> = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let set = match c {
            '.' => CharSet::Dot,
            '[' => parse_class(&mut chars),
            '\\' => {
                let e = chars.next().unwrap_or('\\');
                match e {
                    'd' => CharSet::Class { ranges: vec![('0', '9')], negated: false },
                    'w' => CharSet::Class {
                        ranges: vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')],
                        negated: false,
                    },
                    's' => CharSet::Class { ranges: vec![(' ', ' '), ('\t', '\t')], negated: false },
                    other => CharSet::Literal(unescape(other)),
                }
            }
            other => CharSet::Literal(other),
        };
        let rep = match chars.peek() {
            Some('*') => {
                chars.next();
                Rep::Star
            }
            Some('+') => {
                chars.next();
                Rep::Plus
            }
            Some('?') => {
                chars.next();
                Rep::Opt
            }
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                let (lo, hi) = match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().unwrap_or(0),
                        hi.trim().parse().unwrap_or_else(|_| lo.trim().parse().unwrap_or(0)),
                    ),
                    None => {
                        let n = spec.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                };
                Rep::Between(lo, hi.max(lo))
            }
            _ => Rep::One,
        };
        out.push((set, rep));
    }
    out
}

fn draw_char(set: &CharSet, rng: &mut TestRng) -> char {
    match set {
        CharSet::Literal(c) => *c,
        CharSet::Dot => match rng.below(16) {
            0 => '\n',
            1 => char::from_u32(rng.below(0xD7FF) as u32).unwrap_or('\u{FFFD}'),
            _ => (0x20 + rng.below(0x5F) as u8) as char,
        },
        CharSet::Class { ranges, negated } => {
            if *negated {
                // Rejection-sample printable ASCII outside the class.
                for _ in 0..100 {
                    let c = (0x20 + rng.below(0x5F) as u8) as char;
                    if !ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&c)) {
                        return c;
                    }
                }
                return '\u{FFFD}';
            }
            // Weight by range width so [a-z0] is not half zeros.
            let total: usize =
                ranges.iter().map(|&(lo, hi)| (hi as usize).saturating_sub(lo as usize) + 1).sum();
            let mut pick = rng.below(total.max(1));
            for &(lo, hi) in ranges {
                let width = (hi as usize).saturating_sub(lo as usize) + 1;
                if pick < width {
                    return char::from_u32(lo as u32 + pick as u32).unwrap_or(lo);
                }
                pick -= width;
            }
            ranges[0].0
        }
    }
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (set, rep) in &atoms {
            let count = match rep {
                Rep::One => 1,
                Rep::Opt => rng.below(2),
                Rep::Star => rng.below(13),
                Rep::Plus => 1 + rng.below(12),
                Rep::Between(lo, hi) => lo + rng.below(hi - lo + 1),
            };
            for _ in 0..count {
                out.push(draw_char(set, rng));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(pattern: &str, case: u32) -> String {
        let mut rng = TestRng::for_case("strategy::tests", case);
        Strategy::generate(&pattern, &mut rng)
    }

    #[test]
    fn literals_pass_through() {
        assert_eq!(gen("abc", 0), "abc");
        assert_eq!(gen(r"a\.b", 1), "a.b");
    }

    #[test]
    fn counted_repetition_bounds_length() {
        for case in 0..100 {
            let s = gen("[0-9]{2,5}", case);
            assert!((2..=5).contains(&s.len()), "bad length: {s:?}");
            assert!(s.chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn exact_repetition() {
        for case in 0..50 {
            assert_eq!(gen("x{4}", case).len(), 4);
        }
    }

    #[test]
    fn class_honors_members_and_ranges() {
        for case in 0..200 {
            let s = gen("[a-c_*]+", case);
            assert!(!s.is_empty());
            assert!(s.chars().all(|c| matches!(c, 'a'..='c' | '_' | '*')), "{s:?}");
        }
    }

    #[test]
    fn negated_class_excludes_members() {
        for case in 0..100 {
            let s = gen("[^|]{3}", case);
            assert!(!s.contains('|'), "{s:?}");
        }
    }

    #[test]
    fn dot_star_varies() {
        let distinct: std::collections::HashSet<String> = (0..50).map(|c| gen(".*", c)).collect();
        assert!(distinct.len() > 10, "dot-star should vary: {} distinct", distinct.len());
    }
}
