//! Offline shim for `criterion`.
//!
//! Implements the `criterion_group!`/`criterion_main!`/`bench_function`
//! surface the workspace's benches use, backed by a plain wall-clock loop:
//! a short warm-up, then `sample_size` timed samples, printing the median
//! per-iteration time. No statistics machinery, no HTML reports — enough to
//! keep `cargo bench` informative and the bench sources compiling
//! unchanged against the real crate.

use std::time::{Duration, Instant};

/// Re-export of the standard black box (criterion's is a re-export too).
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup (ignored by this shim's timing loop).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh setup every iteration.
    PerIteration,
}

/// The bench harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each bench takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one named bench.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: Vec::with_capacity(self.sample_size) };
        // One warm-up pass, then the timed samples.
        f(&mut b);
        b.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let mut per_iter: Vec<Duration> = b.samples;
        per_iter.sort_unstable();
        let median = per_iter.get(per_iter.len() / 2).copied().unwrap_or_default();
        println!("bench {id:<48} median {median:>12.3?} ({} samples)", per_iter.len());
        self
    }
}

/// Times the closure the bench hands it.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one sample of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let t = Instant::now();
        black_box(f());
        self.samples.push(t.elapsed());
    }

    /// Times `routine` on a fresh `setup()` input, excluding setup time.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let t = Instant::now();
        black_box(routine(input));
        self.samples.push(t.elapsed());
    }
}

/// Declares a bench group runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                runs += 1;
                (0..100).sum::<u64>()
            })
        });
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn iter_batched_uses_fresh_input() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("shim/batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
