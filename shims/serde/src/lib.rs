//! Offline shim for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its vocabulary types
//! so downstream users *could* serialize them, but nothing in-tree actually
//! does (there is no `serde_json` and no serializer call anywhere). With no
//! network access to fetch the real crate, this shim supplies the two trait
//! names and re-exports no-op derive macros, keeping every `#[derive(...)]`
//! line compiling unchanged. Swapping the real serde back in is a one-line
//! change in the workspace manifest.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
