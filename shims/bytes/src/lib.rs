//! Offline shim for the `bytes` crate.
//!
//! `Bytes` here is a plain `Vec<u8>` plus a cursor — no refcounted shared
//! buffers, no vtables. The packet codec in `s2s-netsim` only needs
//! big-endian get/put, `slice`, `freeze`, and slice indexing, all of which
//! behave identically to the real crate for that usage.

use std::ops::{Bound, Deref, DerefMut, RangeBounds};

/// Immutable byte buffer with a read cursor.
#[derive(Clone, Default, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wraps a static slice (copied — this shim has no zero-copy path).
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes { data: s.to_vec(), pos: 0 }
    }

    /// Remaining (unread) bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-buffer of the remaining bytes.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&x) => x,
            Bound::Excluded(&x) => x + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&x) => x + 1,
            Bound::Excluded(&x) => x,
            Bound::Unbounded => self.len(),
        };
        Bytes { data: self.as_slice()[lo..hi].to_vec(), pos: 0 }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn take(&mut self, n: usize) -> &[u8] {
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        s
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes { data: s.to_vec(), pos: 0 }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// Growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(n: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(n) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data, pos: 0 }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> BytesMut {
        BytesMut { data: s.to_vec() }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Read-side accessors (big-endian), consuming from the front.
pub trait Buf {
    /// Unread byte count.
    fn remaining(&self) -> usize;

    /// Pops one byte.
    fn get_u8(&mut self) -> u8;

    /// Pops a big-endian u16.
    fn get_u16(&mut self) -> u16;

    /// Pops a big-endian u32.
    fn get_u32(&mut self) -> u32;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }
    fn get_u16(&mut self) -> u16 {
        let s = self.take(2);
        u16::from_be_bytes([s[0], s[1]])
    }
    fn get_u32(&mut self) -> u32 {
        let s = self.take(4);
        u32::from_be_bytes([s[0], s[1], s[2], s[3]])
    }
}

/// Write-side accessors (big-endian), appending at the back.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16);

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32);

    /// Appends a slice.
    fn put_slice(&mut self, s: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_cursor() {
        let mut m = BytesMut::with_capacity(8);
        m.put_u8(0xAB);
        m.put_u16(0x1234);
        m.put_u32(0xDEADBEEF);
        m.put_slice(b"xy");
        let mut b = m.freeze();
        assert_eq!(b.len(), 9);
        assert_eq!(b.get_u8(), 0xAB);
        assert_eq!(b.get_u16(), 0x1234);
        assert_eq!(b.get_u32(), 0xDEADBEEF);
        assert_eq!(&b[..], b"xy");
        assert_eq!(b.remaining(), 2);
    }

    #[test]
    fn slice_and_eq_ignore_consumed_prefix() {
        let mut a = Bytes::from(vec![1, 2, 3, 4]);
        a.get_u8();
        assert_eq!(a, Bytes::from(vec![2, 3, 4]));
        assert_eq!(a.slice(..2), Bytes::from(vec![2, 3]));
    }

    #[test]
    fn bytesmut_is_indexable() {
        let mut m = BytesMut::from(&b"abcd"[..]);
        m[1] ^= 0xFF;
        m[2..4].copy_from_slice(b"ZZ");
        assert_eq!(&m[..], &[b'a', b'b' ^ 0xFF, b'Z', b'Z']);
    }
}
