//! Offline shim for [`rand` 0.9](https://docs.rs/rand/0.9).
//!
//! The build container has no network access and no vendored registry, so
//! the workspace ships minimal reimplementations of the external crates it
//! depends on (see `shims/README.md`). This one covers exactly the surface
//! the simulator uses: `StdRng::seed_from_u64`, `Rng::{random, random_bool,
//! random_range}`, and `SliceRandom::shuffle`.
//!
//! The generator is SplitMix64 — statistically solid for simulation
//! purposes and, critically, *deterministic*: every simulated world is a
//! pure function of its seed, which the campaign checkpoint/resume
//! machinery in `s2s-probe` relies on.

use std::ops::{Bound, RangeBounds};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// The next 64 raw bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 raw bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (only the `u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types `Rng::random` can produce.
pub trait StandardDistribution: Sized {
    /// Draws one value from the "standard" distribution for the type
    /// (uniform in [0,1) for floats, uniform over the full range for ints).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardDistribution for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardDistribution for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardDistribution for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardDistribution for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types `Rng::random_range` can produce.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; `hi > lo` is the caller's obligation.
    fn sample_below<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Steps an inclusive upper bound up to the matching exclusive one.
    fn successor(self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_below<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is below 2^-64 for every span the simulator
                // uses; determinism matters more than the last ulp here.
                let r = (rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
            fn successor(self) -> $t { self + 1 }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_below<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        lo + f64::sample_standard(rng) * (hi - lo)
    }
    fn successor(self) -> f64 {
        self
    }
}

/// The user-facing generator interface (blanket-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Draws from the type's standard distribution.
    fn random<T: StandardDistribution>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// `true` with probability `p` (clamped to [0, 1]).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }

    /// Uniform draw from a range (`a..b` or `a..=b`).
    fn random_range<T, B>(&mut self, bounds: B) -> T
    where
        T: SampleUniform,
        B: RangeBounds<T>,
        Self: Sized,
    {
        let lo = match bounds.start_bound() {
            Bound::Included(&x) => x,
            Bound::Excluded(&x) => x.successor(),
            Bound::Unbounded => panic!("random_range requires a lower bound"),
        };
        let hi = match bounds.end_bound() {
            Bound::Included(&x) => x.successor(),
            Bound::Excluded(&x) => x,
            Bound::Unbounded => panic!("random_range requires an upper bound"),
        };
        assert!(lo < hi, "empty range");
        T::sample_below(self, lo, hi)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Named generators.

    use super::{RngCore, SeedableRng};

    /// SplitMix64. Not the real `StdRng` (ChaCha12), but a fast,
    /// well-distributed 64-bit generator with the same shim API.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod seq {
    //! Slice helpers.

    use super::RngCore;

    /// Shuffling (the only sequence op the workspace uses).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<f64>(), b.random::<f64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<f64>(), c.random::<f64>());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x: usize = r.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: i32 = r.random_range(10..=14);
            assert!((10..=14).contains(&y));
            let f: f64 = r.random_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.random_bool(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
        assert!(!(0..1000).any(|_| r.random_bool(0.0)));
        assert!((0..1000).all(|_| r.random_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }
}
