//! Fabric worker binary for the integration suite — the same entry point
//! `reproduce worker` dispatches to, built inside this package so
//! `env!("CARGO_BIN_EXE_fabric-worker")` resolves in tests.

fn main() {
    std::process::exit(s2s_bench::fabric::worker_main());
}
