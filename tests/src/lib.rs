//! Shared fixtures for the cross-crate integration tests.

use s2s_bgp::{AsRelStore, Ip2AsnMap};
use s2s_netsim::{CongestionModel, CongestionParams, Network, NetworkParams};
use s2s_routing::{Dynamics, DynamicsParams, RouteOracle};
use s2s_topology::{build_topology, Topology, TopologyParams};
use s2s_types::SimTime;
use std::sync::Arc;

/// A small but fully featured world: dynamics, congestion, noise, loss.
pub struct World {
    /// The topology.
    pub topo: Arc<Topology>,
    /// The routing oracle.
    pub oracle: Arc<RouteOracle>,
    /// The measurement plane.
    pub net: Network,
    /// IP→ASN mapping from the announcements.
    pub ip2asn: Ip2AsnMap,
    /// Ground-truth relationships.
    pub rels: AsRelStore,
    /// The modeled horizon.
    pub horizon: SimTime,
}

impl World {
    /// Builds a world with every subsystem enabled.
    pub fn full(seed: u64, days: u32) -> World {
        let horizon = SimTime::from_days(days);
        let topo = Arc::new(build_topology(&TopologyParams::tiny(seed)));
        let dynamics = Arc::new(Dynamics::generate(
            &topo,
            &DynamicsParams { seed: seed ^ 0xD, horizon, ..DynamicsParams::default() },
        ));
        let oracle = Arc::new(RouteOracle::new(Arc::clone(&topo), dynamics));
        let congestion = CongestionModel::generate(
            &topo,
            &CongestionParams { seed: seed ^ 0xC, horizon, ..CongestionParams::default() },
        );
        let net = Network::new(Arc::clone(&oracle), congestion, NetworkParams::default());
        let ip2asn = Ip2AsnMap::from_topology(&topo);
        let rels = AsRelStore::from_topology(&topo);
        World { topo, oracle, net, ip2asn, rels, horizon }
    }

    /// Builds a quiet world: no failures, no congestion, no loss, no spikes.
    pub fn quiet(seed: u64, days: u32) -> World {
        let horizon = SimTime::from_days(days);
        let topo = Arc::new(build_topology(&TopologyParams::tiny(seed)));
        let dynamics = Arc::new(Dynamics::all_up(&topo, horizon));
        let oracle = Arc::new(RouteOracle::new(Arc::clone(&topo), dynamics));
        let net = Network::new(
            Arc::clone(&oracle),
            CongestionModel::none(),
            NetworkParams { loss_prob: 0.0, spike_prob: 0.0, ..NetworkParams::default() },
        );
        let ip2asn = Ip2AsnMap::from_topology(&topo);
        let rels = AsRelStore::from_topology(&topo);
        World { topo, oracle, net, ip2asn, rels, horizon }
    }
}
