//! Reproducibility: identical seeds must give bit-identical campaigns and
//! analyses across the whole stack — the property every experiment and
//! bench relies on.

use s2s_core::timeline::TimelineBuilder;
use s2s_integration::World;
use s2s_probe::{Campaign, CampaignConfig, TraceOptions};
use s2s_types::{ClusterId, Protocol, SimDuration, SimTime};

fn campaign_fingerprint(w: &World, threads: usize) -> Vec<(usize, usize, u64)> {
    let pairs: Vec<_> =
        (1usize..7).map(|d| (ClusterId::new(0), ClusterId::from(d))).collect();
    let cfg = CampaignConfig {
        start: SimTime::T0,
        end: SimTime::from_days(6),
        interval: SimDuration::from_hours(3),
        protocols: vec![Protocol::V4, Protocol::V6],
        threads,
    };
    Campaign::new(cfg)
        .run_traceroute(
            &w.net,
            &pairs,
            TraceOptions::default(),
            |s, d, p| TimelineBuilder::new(s, d, p, &w.ip2asn),
            |b, rec| b.push(rec),
        )
        .expect("in-memory campaign cannot fail")
        .0
        .into_iter()
    .map(|b| {
        let tl = b.finish();
        // Fingerprint: path count, usable samples, and a sum over RTT bits.
        let rtt_hash = tl
            .samples
            .iter()
            .filter_map(|s| s.rtt_ms)
            .fold(0u64, |acc, r| acc.wrapping_mul(31).wrapping_add(r.to_bits() as u64));
        (tl.unique_paths(), tl.usable_samples(), rtt_hash)
    })
    .collect()
}

#[test]
fn same_seed_same_world_same_measurements() {
    let a = campaign_fingerprint(&World::full(77, 10), 2);
    let b = campaign_fingerprint(&World::full(77, 10), 2);
    assert_eq!(a, b);
}

#[test]
fn thread_count_does_not_change_results() {
    let w = World::full(78, 10);
    let serial = campaign_fingerprint(&w, 1);
    let parallel = campaign_fingerprint(&w, 8);
    assert_eq!(serial, parallel);
}

#[test]
fn different_seeds_give_different_worlds() {
    let a = campaign_fingerprint(&World::full(79, 10), 2);
    let b = campaign_fingerprint(&World::full(80, 10), 2);
    assert_ne!(a, b);
}

#[test]
fn ping_campaigns_are_deterministic() {
    let w = World::full(81, 10);
    let cfg = CampaignConfig::ping_week(SimTime::from_days(1));
    let pairs = vec![(ClusterId::new(0), ClusterId::new(3))];
    let run = || {
        Campaign::new(cfg.clone())
            .run_ping(&w.net, &pairs)
            .expect("in-memory campaign cannot fail")
            .0
            .into_iter()
            .map(|t| t.rtts.iter().map(|r| r.to_bits()).collect::<Vec<_>>())
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn two_worlds_same_seed_share_everything() {
    let a = World::full(99, 5);
    let b = World::full(99, 5);
    assert_eq!(a.topo.links.len(), b.topo.links.len());
    assert_eq!(a.topo.clusters.len(), b.topo.clusters.len());
    for (ca, cb) in a.topo.clusters.iter().zip(&b.topo.clusters) {
        assert_eq!(ca.v4, cb.v4);
        assert_eq!(ca.v6, cb.v6);
    }
    // Congestion ground truth identical.
    assert_eq!(
        a.net.congestion().congested_links(),
        b.net.congestion().congested_links()
    );
}
