//! The columnar analysis plane must be invisible in the output: timelines
//! produced by interning the campaign into a `TraceStore` and running the
//! sharded columnar driver must be byte-identical — `Debug`-rendering and
//! all — to the legacy record-at-a-time `TimelineBuilder` path, across
//! seeds, fault profiles, and thread counts.

use s2s_bench::experiments::LongTermData;
use s2s_bench::{Scale, Scenario};
use s2s_core::Analysis;
use s2s_probe::{FaultProfile, RetryPolicy, TraceStore};

fn micro(seed: u64) -> Scenario {
    Scenario::build(Scale {
        seed,
        clusters: 12,
        days: 12,
        pairs: 16,
        ping_pairs: 30,
        cong_pairs: 8,
    })
}

fn profiles() -> Vec<(&'static str, FaultProfile)> {
    vec![
        ("quiet", FaultProfile::default()),
        (
            "noisy",
            FaultProfile {
                crash_rate: 0.02,
                drop_rate: 0.05,
                stuck_rate: 0.02,
                truncate_rate: 0.05,
                ..FaultProfile::default()
            },
        ),
    ]
}

/// The acceptance invariant: columnar == legacy, byte for byte, for every
/// seed × fault profile × thread count combination.
#[test]
fn columnar_equals_legacy_across_seeds_profiles_and_threads() {
    for seed in [3u64, 11, 29] {
        let scenario = micro(seed);
        for (name, profile) in profiles() {
            let pairs = scenario.sample_pair_list(scenario.scale.pairs / 2, 0x10e6);
            assert_eq!(
                pairs,
                scenario.sample_pair_list(scenario.scale.pairs / 2, 0x10e6),
                "pair sampling must be deterministic"
            );
            let (legacy, legacy_report) =
                scenario.long_term_timelines_faulty(&pairs, &profile, &RetryPolicy::default());
            let (store, report) =
                scenario.long_term_store_faulty(&pairs, &profile, &RetryPolicy::default());
            assert_eq!(
                format!("{:?}", report),
                format!("{:?}", legacy_report),
                "seed {seed} {name}: campaign reports diverged"
            );
            for threads in [1usize, 2, 4] {
                let columnar =
                    Analysis::new(&store).threads(threads).timelines(&scenario.ip2asn);
                assert_eq!(
                    columnar, legacy,
                    "seed {seed} {name} threads={threads}: timelines diverged"
                );
                assert_eq!(
                    format!("{columnar:?}"),
                    format!("{legacy:?}"),
                    "seed {seed} {name} threads={threads}: byte divergence"
                );
            }
        }
    }
}

/// `LongTermData::collect_with` (the production path every figure runs on)
/// must agree with the legacy record-at-a-time path and report arena
/// statistics that add up.
#[test]
fn collect_with_matches_legacy_and_reports_arena_stats() {
    let scenario = micro(7);
    let profile = FaultProfile { drop_rate: 0.1, ..FaultProfile::default() };
    let columnar = LongTermData::collect_with(&scenario, &profile);
    let (legacy, _) = scenario.long_term_timelines_faulty(
        &columnar.pairs,
        &profile,
        &RetryPolicy::default(),
    );
    assert_eq!(columnar.timelines, legacy);
    let arena = columnar.arena.expect("columnar collection records arena stats");
    assert_eq!(arena.traces, columnar.timelines.iter().map(|t| t.samples.len()).sum());
    assert!(arena.distinct_seqs <= arena.traces);
    assert!(
        arena.dedup_ratio >= 1.0,
        "hop slots cannot outnumber their interned storage"
    );
    assert!(arena.arena_bytes > 0);
}

/// The store a faulty campaign accumulates must round-trip: materializing
/// its records and re-interning them yields an identical store (the
/// analysis plane loses nothing the campaign delivered).
#[test]
fn campaign_store_round_trips_through_records() {
    let scenario = micro(13);
    let pairs = scenario.sample_pair_list(6, 0x10e6);
    let profile = FaultProfile { truncate_rate: 0.1, ..FaultProfile::default() };
    let (store, _) =
        scenario.long_term_store_faulty(&pairs, &profile, &RetryPolicy::default());
    let records = store.to_records();
    assert_eq!(records.len(), store.len());
    let rebuilt = TraceStore::from_records(&records);
    assert_eq!(rebuilt.to_records(), records);
    assert_eq!(rebuilt.stats(), store.stats());
}
