//! Split-invariance of the epoch-incremental analysis: for **any**
//! partition of a measured corpus into `Analysis::update(delta)` steps,
//! the live state must be byte-identical — timelines, change verdicts,
//! prevalence datasets, `Debug` rendering and all — to one batch
//! `Analysis` over the whole corpus, across seeds × fault profiles ×
//! batch thread counts. This is the contract that lets the always-on
//! service answer §4 questions without ever recomputing O(corpus).

use proptest::prelude::*;
use s2s_bench::{Scale, Scenario};
use s2s_core::changes::{detect_changes, path_stats};
use s2s_core::{Analysis, IncrementalState};
use s2s_probe::{FaultProfile, RetryPolicy, TraceStore, TracerouteRecord};
use s2s_types::SimDuration;
use std::sync::OnceLock;

const SEEDS: [u64; 3] = [3, 11, 29];
const THREADS: [usize; 3] = [1, 2, 4];

fn micro(seed: u64) -> Scenario {
    Scenario::build(Scale {
        seed,
        clusters: 12,
        days: 6,
        pairs: 8,
        ping_pairs: 12,
        cong_pairs: 4,
    })
}

fn profiles() -> Vec<(&'static str, FaultProfile)> {
    vec![
        ("quiet", FaultProfile::default()),
        (
            "noisy",
            FaultProfile {
                crash_rate: 0.02,
                drop_rate: 0.05,
                stuck_rate: 0.02,
                truncate_rate: 0.05,
                ..FaultProfile::default()
            },
        ),
    ]
}

/// One corpus plus its batch ground truth, rendered to comparison keys.
struct Corpus {
    label: String,
    scenario: Scenario,
    records: Vec<TracerouteRecord>,
    /// `Debug` of the batch timelines, identical for every thread count
    /// (asserted at build time).
    batch_timelines: String,
    batch_changes: String,
    batch_paths: String,
}

fn interval() -> SimDuration {
    SimDuration::from_hours(3)
}

/// Corpora are expensive to measure (a seeded world each), so they build
/// once and every proptest case reuses them.
fn corpora() -> &'static [Corpus] {
    static CORPORA: OnceLock<Vec<Corpus>> = OnceLock::new();
    CORPORA.get_or_init(|| {
        let mut out = Vec::new();
        for seed in SEEDS {
            let scenario = micro(seed);
            for (name, profile) in profiles() {
                let pairs = scenario.sample_pair_list(scenario.scale.pairs / 2, 0x10e6);
                let (store, _report) = scenario.long_term_store_faulty(
                    &pairs,
                    &profile,
                    &RetryPolicy::default(),
                );
                // The batch ground truth, pinned identical across thread
                // counts before any split is compared against it.
                let per_thread: Vec<String> = THREADS
                    .iter()
                    .map(|&n| {
                        format!(
                            "{:?}",
                            Analysis::new(&store).threads(n).timelines(&scenario.ip2asn)
                        )
                    })
                    .collect();
                for (i, t) in per_thread.iter().enumerate().skip(1) {
                    assert_eq!(
                        t, &per_thread[0],
                        "seed {seed} {name}: batch analysis diverged between \
                         {} and {} threads",
                        THREADS[0], THREADS[i]
                    );
                }
                let tls = Analysis::new(&store).timelines(&scenario.ip2asn);
                let batch_changes =
                    format!("{:?}", tls.iter().map(detect_changes).collect::<Vec<_>>());
                let batch_paths = format!(
                    "{:?}",
                    tls.iter().map(|tl| path_stats(tl, interval())).collect::<Vec<_>>()
                );
                out.push(Corpus {
                    label: format!("seed {seed} {name}"),
                    scenario: micro(seed),
                    records: store.to_records(),
                    batch_timelines: per_thread.into_iter().next().unwrap(),
                    batch_changes,
                    batch_paths,
                });
            }
        }
        out
    })
}

/// Splits `records` at the given cut fractions (deduped, sorted) and
/// feeds each chunk as one `update(delta)`.
fn fold_split(c: &Corpus, cuts: &[usize]) -> Analysis<IncrementalState> {
    let mut a = Analysis::new(IncrementalState::new());
    let mut at = 0usize;
    for &cut in cuts {
        let cut = cut.min(c.records.len());
        if cut > at {
            a.update(&TraceStore::from_records(&c.records[at..cut]), &c.scenario.ip2asn);
            at = cut;
        }
    }
    if at < c.records.len() {
        a.update(&TraceStore::from_records(&c.records[at..]), &c.scenario.ip2asn);
    }
    a
}

fn assert_equivalent(c: &Corpus, a: &Analysis<IncrementalState>, how: &str) {
    assert_eq!(
        format!("{:?}", a.timelines()),
        c.batch_timelines,
        "{}: {how}: incremental timelines diverged from batch",
        c.label
    );
    assert_eq!(
        format!("{:?}", a.change_stats()),
        c.batch_changes,
        "{}: {how}: folded change verdicts diverged from batch recompute",
        c.label
    );
    assert_eq!(
        format!("{:?}", a.path_stats(interval())),
        c.batch_paths,
        "{}: {how}: folded prevalence datasets diverged from batch recompute",
        c.label
    );
    assert_eq!(a.source().samples(), c.records.len() as u64, "{}: sample count", c.label);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    /// Any split — random cut points, any count, in any order — folds to
    /// the batch state.
    #[test]
    fn any_split_folds_to_the_batch_state(
        corpus_idx in 0usize..6,
        mut cuts in proptest::collection::vec(0usize..4000, 0..12),
    ) {
        let c = &corpora()[corpus_idx];
        cuts.sort_unstable();
        cuts.dedup();
        let a = fold_split(c, &cuts);
        assert_equivalent(c, &a, &format!("cuts {cuts:?}"));
    }
}

/// The degenerate splits the fuzzer is unlikely to hit exactly: one
/// record per update, one epoch per update, and the whole corpus as a
/// single delta — for every seed × profile corpus.
#[test]
fn canonical_splits_fold_to_the_batch_state() {
    for c in corpora() {
        let slots = {
            // One (pair, protocol) slot count's worth of records per
            // delta — the cadence a per-epoch service naturally feeds.
            let pairs = c.scenario.sample_pair_list(c.scenario.scale.pairs / 2, 0x10e6);
            pairs.len() * 2
        };
        for (how, step) in [("per-record", 1usize), ("per-slot-batch", slots)] {
            let cuts: Vec<usize> = (step..c.records.len()).step_by(step).collect();
            let a = fold_split(c, &cuts);
            assert_equivalent(c, &a, how);
        }
        let a = fold_split(c, &[]);
        assert_equivalent(c, &a, "single-delta");
    }
}
