//! Cross-crate analysis invariants, property-tested over random worlds:
//! whatever the seed rolls, the paper's statistics must stay internally
//! consistent.

use proptest::prelude::*;
use s2s_core::bestpath::{best_path_analysis, suboptimal_prevalence};
use s2s_core::changes::{detect_changes, path_stats};
use s2s_core::timeline::TimelineBuilder;
use s2s_integration::World;
use s2s_probe::{trace, TraceOptions};
use s2s_types::{ClusterId, Protocol, SimDuration, SimTime};

fn build_timeline(
    w: &World,
    src: usize,
    dst: usize,
    days: u32,
) -> s2s_core::timeline::TraceTimeline {
    let mut b = TimelineBuilder::new(
        ClusterId::from(src),
        ClusterId::from(dst),
        Protocol::V4,
        &w.ip2asn,
    );
    let mut t = SimTime::T0;
    while t < SimTime::from_days(days) {
        b.push(trace(
            &w.net,
            ClusterId::from(src),
            ClusterId::from(dst),
            Protocol::V4,
            t,
            TraceOptions::default(),
        ));
        t += SimDuration::from_hours(3);
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn prop_change_and_path_accounting_agree(seed in 0u64..300, dst in 1usize..8) {
        let w = World::full(seed, 12);
        let tl = build_timeline(&w, 0, dst, 12);
        let changes = detect_changes(&tl).changes;
        let paths = tl.unique_paths();
        // k distinct paths require at least k-1 transitions.
        if paths > 1 {
            prop_assert!(changes >= paths - 1, "{paths} paths but {changes} changes");
        } else {
            prop_assert_eq!(changes, 0);
        }
        // Lifetimes sum to the usable time; prevalence to 1.
        let stats = path_stats(&tl, SimDuration::from_hours(3));
        let total_minutes: u32 = stats.lifetimes.iter().map(|d| d.minutes()).sum();
        prop_assert_eq!(
            total_minutes,
            tl.usable_samples() as u32 * 180
        );
        if tl.usable_samples() > 0 {
            let total_prev: f64 = stats.prevalence.iter().sum();
            prop_assert!((total_prev - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn prop_suboptimal_prevalence_is_monotone_in_threshold(
        seed in 0u64..300, dst in 1usize..8,
    ) {
        let w = World::full(seed, 12);
        let tl = build_timeline(&w, 0, dst, 12);
        let iv = SimDuration::from_hours(3);
        let p20 = suboptimal_prevalence(&tl, iv, 20.0);
        let p50 = suboptimal_prevalence(&tl, iv, 50.0);
        let p100 = suboptimal_prevalence(&tl, iv, 100.0);
        prop_assert!(p20 >= p50 && p50 >= p100);
        prop_assert!((0.0..=1.0).contains(&p20));
    }

    #[test]
    fn prop_best_path_is_never_its_own_delta(seed in 0u64..300, dst in 1usize..8) {
        let w = World::full(seed, 12);
        let tl = build_timeline(&w, 0, dst, 12);
        if let Some(a) = best_path_analysis(&tl, SimDuration::from_hours(3)) {
            prop_assert!(a.deltas.iter().all(|d| d.path != a.best_by_p10));
            // The best path is among the timeline's paths.
            prop_assert!(a.best_by_p10 < tl.unique_paths());
        }
    }
}
