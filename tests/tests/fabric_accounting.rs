//! Property: the fabric's accounting identities survive *arbitrary*
//! seeded fault schedules. Worker attempts fail by kill, stall, corrupt
//! frame, or nonzero exit at random rates; shards recover or exhaust the
//! retry budget at random; and through all of it the merged
//! [`CampaignReport`] (accepted shards plus synthesized lost-slot
//! accounting) must satisfy the offered/attempted identities, and the
//! [`FabricStats`] ledger must be internally coherent.
//!
//! Runs against an in-process scripted launcher (the coordinator cannot
//! tell), so hundreds of schedules cost milliseconds; the subprocess
//! reality check lives in `fabric_equivalence.rs`.

use proptest::prelude::*;
use s2s_probe::fabric::{
    emit_shard, shard_range, Frame, LaunchedWorker, WorkerEvent, WorkerLauncher,
};
use s2s_probe::{
    CampaignReport, Coordinator, FabricConfig, FabricFaultProfile, ShardPayload,
    WorkerFault,
};
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Slots each shard offers in the scripted campaign.
const SLOTS_PER_SHARD: usize = 12;

/// A shard report with the per-process identities holding by
/// construction: a seeded split of the slots across delivered, truncated,
/// gave-up, and agent-down outcomes.
fn shard_report(shard: usize, seed: u64) -> CampaignReport {
    let mut x = seed ^ (shard as u64).wrapping_mul(0x9E3779B97F4A7C15);
    let mut draw = |max: usize| {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x % (max as u64 + 1)) as usize
    };
    let offered = SLOTS_PER_SHARD;
    let agent_down_slots = draw(2);
    let gave_up = draw(2);
    let truncated = draw(2);
    let delivered = offered - agent_down_slots - gave_up - truncated;
    let retried = draw(3);
    CampaignReport {
        offered,
        attempted: offered - agent_down_slots + retried,
        delivered,
        truncated,
        retried,
        gave_up,
        dropped_probes: retried + gave_up,
        stuck_probes: 0,
        agent_down_slots,
        ..CampaignReport::default()
    }
}

/// In-process workers that obey a [`FabricFaultProfile`] fate per attempt
/// and emit real frames for accepted attempts.
struct Scripted {
    faults: FabricFaultProfile,
    report_seed: u64,
}

impl WorkerLauncher for Scripted {
    fn launch(&self, shard: usize, attempt: u32) -> io::Result<LaunchedWorker> {
        let (tx, rx) = mpsc::channel();
        let fault = self.faults.decide(shard, attempt, SLOTS_PER_SHARD);
        let report = shard_report(shard, self.report_seed);
        let killed = Arc::new(AtomicBool::new(false));
        let kflag = Arc::clone(&killed);
        std::thread::spawn(move || {
            let _ = tx.send(WorkerEvent::Line(
                Frame::Hello { shard, attempt }.to_line(),
            ));
            match fault {
                WorkerFault::None | WorkerFault::CorruptFrame => {
                    let payload = ShardPayload {
                        lines: (0..report.delivered)
                            .map(|i| format!("rec|{shard}|{i}"))
                            .collect(),
                        report,
                        counters: vec![("campaign.runs".into(), 1)],
                    };
                    let mut buf = Vec::new();
                    emit_shard(
                        &mut buf,
                        shard,
                        &payload,
                        fault == WorkerFault::CorruptFrame,
                    )
                    .unwrap();
                    for l in String::from_utf8(buf).unwrap().lines() {
                        let _ = tx.send(WorkerEvent::Line(l.to_string()));
                    }
                    let _ = tx.send(WorkerEvent::Exit(Some(0)));
                }
                WorkerFault::ExitNonzero => {
                    let _ = tx.send(WorkerEvent::Exit(Some(3)));
                }
                WorkerFault::Kill { .. } => {
                    let _ = tx.send(WorkerEvent::Exit(None));
                }
                WorkerFault::Stall => {
                    while !kflag.load(Ordering::Relaxed) {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    let _ = tx.send(WorkerEvent::Exit(None));
                }
            }
        });
        Ok(LaunchedWorker {
            events: rx,
            kill: Box::new(move || killed.store(true, Ordering::Relaxed)),
        })
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary rates, seeds, shard counts, worker counts, and retry
    /// budgets: the merged report's identities and the stats ledger hold.
    #[test]
    fn accounting_identities_hold_under_arbitrary_fault_schedules(
        fault_seed in any::<u64>(),
        report_seed in any::<u64>(),
        kill_rate in 0.0..0.5f64,
        stall_rate in 0.0..0.2f64,
        corrupt_rate in 0.0..0.5f64,
        exit_rate in 0.0..0.5f64,
        n_shards in 1usize..6,
        workers in 1usize..4,
        max_attempts in 1u32..4,
    ) {
        let faults = FabricFaultProfile {
            seed: fault_seed,
            kill_rate,
            stall_rate,
            corrupt_rate,
            exit_rate,
            plan: Vec::new(),
        };
        let cfg = FabricConfig {
            workers,
            max_attempts,
            heartbeat_timeout: Duration::from_millis(40),
            backoff_base_ms: 0.5,
            backoff_cap_ms: 2.0,
            seed: fault_seed,
        };
        let launcher = Scripted { faults, report_seed };
        let out = Coordinator::new(cfg, launcher).run(n_shards).unwrap();

        // Stats ledger coherence.
        let s = &out.stats;
        prop_assert_eq!(s.shards, n_shards);
        prop_assert_eq!(s.launches, n_shards + s.retries);
        prop_assert!(s.recoveries <= s.retries);
        prop_assert_eq!(
            out.shards.iter().filter(|r| r.lost).count(),
            s.lost
        );
        let failures =
            s.timeouts + s.corrupt_frames + s.nonzero_exits + s.incomplete_streams;
        prop_assert_eq!(failures, s.retries + s.lost, "every failure retries or loses");

        // Per-shard: accepted shards carry exactly their report's
        // delivered lines; lost shards carry nothing.
        for r in &out.shards {
            if r.lost {
                prop_assert!(r.lines.is_empty());
                prop_assert!(r.report.is_none());
                prop_assert_eq!(r.attempts, max_attempts);
            } else {
                let rep = r.report.as_ref().expect("accepted shard has a report");
                prop_assert_eq!(r.lines.len(), rep.delivered);
            }
        }

        // Merged report with degraded-mode lost-slot synthesis — exactly
        // what the bench merge does — keeps both identities exact.
        let mut merged = out.merged_report();
        for r in out.lost_shards() {
            let slots = shard_range(n_shards * SLOTS_PER_SHARD, n_shards, r).len();
            merged.merge(&CampaignReport {
                offered: slots,
                lost_slots: slots,
                ..CampaignReport::default()
            });
        }
        prop_assert_eq!(merged.offered, n_shards * SLOTS_PER_SHARD);
        prop_assert_eq!(
            merged.offered,
            merged.delivered
                + merged.truncated
                + merged.gave_up
                + merged.agent_down_slots
                + merged.lost_slots
        );
        prop_assert_eq!(
            merged.attempted,
            merged.offered - merged.agent_down_slots - merged.lost_slots
                + merged.retried
        );
    }
}
