//! End-to-end pipeline tests: simulator → probes → annotation → analyses.

use s2s_core::annotate::annotate;
use s2s_core::bestpath::best_path_analysis;
use s2s_core::changes::{detect_changes, path_stats};
use s2s_core::timeline::TimelineBuilder;
use s2s_integration::World;
use s2s_probe::{trace, Campaign, CampaignConfig, TraceOptions};
use s2s_types::{ClusterId, Protocol, SimDuration, SimTime};

#[test]
fn traceroute_as_path_matches_oracle_ground_truth() {
    let w = World::quiet(3, 10);
    let mut checked = 0;
    for b in 1..w.topo.clusters.len() {
        let rec = trace(
            &w.net,
            ClusterId::new(0),
            ClusterId::from(b),
            Protocol::V4,
            SimTime::from_days(1),
            TraceOptions::default(),
        );
        if !rec.reached {
            continue;
        }
        let ann = annotate(&rec, &w.ip2asn);
        if !ann.as_path.is_complete() {
            continue; // unannounced link subnet on the path
        }
        // Ground truth from the oracle.
        let truth_idx = w
            .oracle
            .as_path_idx(
                w.topo.clusters[0].host_as,
                w.topo.clusters[b].host_as,
                Protocol::V4,
                SimTime::from_days(1),
            )
            .unwrap();
        let truth: Vec<_> = truth_idx.iter().map(|&i| w.topo.asn(i)).collect();
        let inferred: Vec<_> =
            ann.as_path.hops().iter().map(|h| h.unwrap()).collect();
        // The inferred path may insert neighbor ASes at interconnect
        // crossings (provider-numbered subnets) — every ground-truth AS
        // must appear, in order.
        let mut ti = 0;
        for asn in &inferred {
            if ti < truth.len() && *asn == truth[ti] {
                ti += 1;
            }
        }
        assert_eq!(
            ti,
            truth.len(),
            "truth {truth:?} not a subsequence of inferred {inferred:?}"
        );
        checked += 1;
    }
    assert!(checked >= 5, "only {checked} paths checked");
}

#[test]
fn full_campaign_to_analysis_pipeline() {
    let w = World::full(9, 30);
    let pairs: Vec<(ClusterId, ClusterId)> = (1usize..6)
        .map(|d| (ClusterId::new(0), ClusterId::from(d)))
        .collect();
    let cfg = CampaignConfig {
        start: SimTime::T0,
        end: SimTime::from_days(30),
        interval: SimDuration::from_hours(3),
        protocols: vec![Protocol::V4, Protocol::V6],
        threads: 4,
    };
    let timelines: Vec<_> = Campaign::new(cfg)
        .run_traceroute(
            &w.net,
            &pairs,
            TraceOptions::default(),
            |s, d, p| TimelineBuilder::new(s, d, p, &w.ip2asn),
            |b, rec| b.push(rec),
        )
        .expect("in-memory campaign cannot fail")
        .0
        .into_iter()
        .map(TimelineBuilder::finish)
        .collect();

    assert_eq!(timelines.len(), pairs.len() * 2);
    for tl in &timelines {
        // 30 days of 3-hour sampling = 240 offered samples.
        assert_eq!(tl.samples.len(), 240);
        if tl.usable_samples() == 0 {
            continue; // v6-dark pair
        }
        // Most samples should be usable (reached + loop-free). Either
        // protocol can sit behind a long edge outage for part of the
        // month; IPv6's bar is lower still because its topology is
        // sparser.
        let min_usable = if tl.proto == Protocol::V4 { 180 } else { 100 };
        assert!(
            tl.usable_samples() > min_usable,
            "{}->{} {}: only {} usable",
            tl.src,
            tl.dst,
            tl.proto,
            tl.usable_samples()
        );
        // Analyses run without panicking and produce consistent values.
        let ch = detect_changes(tl);
        assert!(ch.changes < 240);
        let st = path_stats(tl, SimDuration::from_hours(3));
        let total: f64 = st.prevalence.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "prevalence sums to {total}");
        if let Some(a) = best_path_analysis(tl, SimDuration::from_hours(3)) {
            for d in &a.deltas {
                assert!(d.delta_p10_ms >= 0.0);
                assert!(d.prevalence > 0.0 && d.prevalence < 1.0);
            }
        }
    }
}

#[test]
fn table1_shape_holds_at_small_scale() {
    let w = World::full(11, 10);
    let mut counts = s2s_core::annotate::CompletenessCounts::default();
    for a in 0..w.topo.clusters.len().min(10) {
        for b in 0..w.topo.clusters.len().min(10) {
            if a == b {
                continue;
            }
            for day in [2u32, 5, 8] {
                let rec = trace(
                    &w.net,
                    ClusterId::from(a),
                    ClusterId::from(b),
                    Protocol::V4,
                    SimTime::from_days(day),
                    TraceOptions::default(),
                );
                let ann = annotate(&rec, &w.ip2asn);
                counts.add(&rec, &ann);
            }
        }
    }
    let (complete, _missing_as, missing_ip) = counts.fractions();
    // The paper's Table 1 shape: most traceroutes complete, a meaningful
    // minority with unresponsive hops.
    assert!(complete > 0.5, "complete fraction {complete}");
    assert!(missing_ip > 0.05, "missing-IP fraction {missing_ip}");
    assert!(missing_ip < 0.6, "missing-IP fraction {missing_ip}");
}

#[test]
fn dualstack_rtts_track_ideal() {
    let w = World::quiet(21, 5);
    for b in 1..w.topo.clusters.len().min(8) {
        for proto in [Protocol::V4, Protocol::V6] {
            let t = SimTime::from_days(2);
            let Some(ideal) =
                w.net.ideal_rtt(ClusterId::new(0), ClusterId::from(b), proto, t)
            else {
                continue;
            };
            let rec = trace(
                &w.net,
                ClusterId::new(0),
                ClusterId::from(b),
                proto,
                t,
                TraceOptions::default(),
            );
            if let Some(rtt) = rec.e2e_rtt_ms {
                if (rtt - ideal).abs() < 5.0 {
                    continue; // ideal plus the tiny jitter floor, as expected
                }
                // A larger gap is only legitimate when flow-based load
                // balancing put the traceroute flow on a different parallel
                // path than the ping flow `ideal_rtt` rides (§2.1). The
                // ping itself must still track the ideal exactly.
                let ping = w
                    .net
                    .ping(ClusterId::new(0), ClusterId::from(b), proto, t, 0)
                    .expect("quiet world: ping cannot be lost");
                assert!(
                    (ping - ideal).abs() < 5.0,
                    "proto {proto}: ping {ping} vs ideal {ideal} (trace {rtt})"
                );
            }
        }
    }
}
