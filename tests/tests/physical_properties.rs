//! Physical and structural invariants of the whole stack, property-tested
//! across seeds.

use proptest::prelude::*;
use s2s_integration::World;
use s2s_probe::{trace, TraceOptions};
use s2s_types::rel::AsRel;
use s2s_types::{ClusterId, Protocol, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// RTTs never beat the speed of light, for any seed.
    #[test]
    fn prop_rtt_at_least_crtt(seed in 0u64..500) {
        let w = World::quiet(seed, 5);
        let t = SimTime::from_days(1);
        for b in 1..w.topo.clusters.len().min(6) {
            let src = ClusterId::new(0);
            let dst = ClusterId::from(b);
            if let Some(rtt) = w.net.ideal_rtt(src, dst, Protocol::V4, t) {
                let crtt = s2s_geo::c_rtt_ms(
                    &w.topo.cluster_city(src).point(),
                    &w.topo.cluster_city(dst).point(),
                );
                prop_assert!(rtt >= crtt * 0.999, "rtt {rtt} < cRTT {crtt}");
            }
        }
    }

    /// Every AS path the oracle emits is valley-free, across seeds,
    /// protocols, and random failure states.
    #[test]
    fn prop_paths_stay_valley_free(seed in 0u64..500, day in 0u32..30) {
        let w = World::full(seed, 30);
        let t = SimTime::from_days(day);
        for b in 1..w.topo.clusters.len().min(6) {
            for proto in [Protocol::V4, Protocol::V6] {
                let Some(path) = w.oracle.as_path_idx(
                    w.topo.clusters[0].host_as,
                    w.topo.clusters[b].host_as,
                    proto,
                    t,
                ) else { continue };
                // Valley-free: once descending (customer/peer edge taken),
                // never ascend or peer again.
                let mut descending = false;
                for win in path.windows(2) {
                    let rel = w.topo.rel(win[0], win[1]).expect("adjacent");
                    match rel {
                        AsRel::Provider => prop_assert!(!descending, "valley in {path:?}"),
                        AsRel::Peer => {
                            prop_assert!(!descending, "peer after descent in {path:?}");
                            descending = true;
                        }
                        AsRel::Customer => descending = true,
                    }
                }
                // And loop-free.
                let mut sorted = path.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), path.len(), "AS loop");
            }
        }
    }

    /// Traceroute hop RTTs grow monotonically (modulo the jitter floor)
    /// in a quiet world.
    #[test]
    fn prop_hop_rtts_monotone(seed in 0u64..200) {
        let w = World::quiet(seed, 5);
        let rec = trace(
            &w.net,
            ClusterId::new(0),
            ClusterId::new(2),
            Protocol::V4,
            SimTime::from_days(1),
            TraceOptions::default(),
        );
        let rtts: Vec<f64> = rec.hops.iter().filter_map(|h| h.rtt_ms).collect();
        for pair in rtts.windows(2) {
            prop_assert!(pair[1] + 2.0 >= pair[0], "regression {pair:?}");
        }
    }

    /// Forward and reverse traceroutes exist together: reachability is
    /// symmetric even when paths are not.
    #[test]
    fn prop_reachability_is_symmetric(seed in 0u64..200, day in 0u32..20) {
        let w = World::full(seed, 20);
        let t = SimTime::from_days(day);
        for b in 1..w.topo.clusters.len().min(5) {
            let fwd = w.oracle.as_path_idx(
                w.topo.clusters[0].host_as,
                w.topo.clusters[b].host_as,
                Protocol::V4,
                t,
            );
            let rev = w.oracle.as_path_idx(
                w.topo.clusters[b].host_as,
                w.topo.clusters[0].host_as,
                Protocol::V4,
                t,
            );
            prop_assert_eq!(fwd.is_some(), rev.is_some());
        }
    }

    /// The v6 address family is a strict subset: wherever v6 routes, v4
    /// routes too (every dual-stack link carries v4).
    #[test]
    fn prop_v6_implies_v4(seed in 0u64..200) {
        let w = World::full(seed, 10);
        let t = SimTime::from_days(2);
        for a in 0..w.topo.clusters.len().min(5) {
            for b in 0..w.topo.clusters.len().min(5) {
                if a == b { continue }
                let v6 = w.oracle.as_path_idx(
                    w.topo.clusters[a].host_as,
                    w.topo.clusters[b].host_as,
                    Protocol::V6,
                    t,
                );
                if v6.is_some() {
                    let v4 = w.oracle.as_path_idx(
                        w.topo.clusters[a].host_as,
                        w.topo.clusters[b].host_as,
                        Protocol::V4,
                        t,
                    );
                    prop_assert!(v4.is_some(), "v6 routes but v4 does not");
                }
            }
        }
    }
}
