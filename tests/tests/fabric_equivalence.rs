//! The scale-out fabric must be invisible in the data: the merged
//! long-term dataset (archived record lines) and the merged short-term
//! sink states must be **byte-identical across {1 process, 2 workers,
//! 4 workers} × {clean, seeded crash/kill/resume schedules} × seeds ×
//! {quiet, noisy} probe-fault profiles** — real subprocess workers
//! (`fabric-worker`, the `reproduce worker` entry point), real kills,
//! real checkpoint resume. Degraded mode (a shard lost after the retry
//! budget) must keep the dataset dense and the accounting identities
//! exact.

use s2s_bench::fabric::{
    self, collect_longterm_fabric, collect_ping_fabric, store_digest, worker_launcher,
    FabricCollection,
};
use s2s_bench::{Scale, Scenario};
use s2s_probe::{
    Campaign, CampaignConfig, FabricConfig, FaultProfile, PairProfileSink, RetryPolicy,
    StreamSink,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

fn scale(seed: u64) -> Scale {
    Scale {
        seed,
        clusters: 10,
        days: 6,
        pairs: 8,
        ping_pairs: 12,
        cong_pairs: 4,
    }
}

/// The scale knobs as env vars for a worker subprocess — the worker
/// rebuilds the world from its environment and must land on the exact
/// world the test built in-process.
fn scale_envs(s: &Scale) -> Vec<(String, String)> {
    vec![
        ("S2S_SEED".into(), s.seed.to_string()),
        ("S2S_CLUSTERS".into(), s.clusters.to_string()),
        ("S2S_DAYS".into(), s.days.to_string()),
        ("S2S_PAIRS".into(), s.pairs.to_string()),
        ("S2S_PING_PAIRS".into(), s.ping_pairs.to_string()),
        ("S2S_CONG_PAIRS".into(), s.cong_pairs.to_string()),
        // Keep debug-build workers lean; results are thread-count
        // independent anyway.
        ("S2S_THREADS".into(), "2".to_string()),
    ]
}

fn quiet() -> (&'static str, FaultProfile, Vec<(String, String)>) {
    ("quiet", FaultProfile::default(), Vec::new())
}

fn noisy() -> (&'static str, FaultProfile, Vec<(String, String)>) {
    let profile = FaultProfile {
        crash_rate: 0.02,
        drop_rate: 0.05,
        stuck_rate: 0.02,
        truncate_rate: 0.05,
        ..FaultProfile::default()
    };
    let envs = vec![
        ("S2S_FAULT_CRASH".into(), "0.02".to_string()),
        ("S2S_FAULT_DROP".into(), "0.05".to_string()),
        ("S2S_FAULT_STUCK".into(), "0.02".to_string()),
        ("S2S_FAULT_TRUNC".into(), "0.05".to_string()),
    ];
    ("noisy", profile, envs)
}

static RUN_ID: AtomicUsize = AtomicUsize::new(0);

/// A fresh checkpoint dir per fabric run, removed on drop so retries
/// within a run share state but runs never do.
struct CkptDir(PathBuf);

impl CkptDir {
    fn new() -> CkptDir {
        let dir = std::env::temp_dir().join(format!(
            "s2s-fabeq-{}-{}",
            std::process::id(),
            RUN_ID.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create checkpoint dir");
        CkptDir(dir)
    }
}

impl Drop for CkptDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn fabric_cfg(workers: usize) -> FabricConfig {
    FabricConfig {
        workers,
        max_attempts: 3,
        // Faults are plan-driven in these tests; a generous timeout keeps
        // slow debug-build workers from being reaped spuriously (the
        // stall test overrides this).
        heartbeat_timeout: Duration::from_secs(120),
        backoff_base_ms: 1.0,
        backoff_cap_ms: 10.0,
        seed: 0xFAB,
    }
}

fn launch_fabric(
    sc: &Scale,
    mode: &str,
    workers: usize,
    plan: &str,
    fault_envs: &[(String, String)],
    cfg: FabricConfig,
    ckpt: &CkptDir,
) -> (FabricConfig, s2s_probe::ProcessLauncher) {
    let mut envs = scale_envs(sc);
    envs.extend(fault_envs.iter().cloned());
    if !plan.is_empty() {
        envs.push(("S2S_FABRIC_FAULT_PLAN".into(), plan.to_string()));
    }
    let launcher = worker_launcher(
        PathBuf::from(env!("CARGO_BIN_EXE_fabric-worker")),
        Vec::new(),
        mode,
        workers,
        &ckpt.0,
        envs,
    );
    (cfg, launcher)
}

fn run_longterm(
    scenario: &Scenario,
    workers: usize,
    plan: &str,
    fault_envs: &[(String, String)],
) -> FabricCollection {
    let ckpt = CkptDir::new();
    let (cfg, launcher) = launch_fabric(
        &scenario.scale,
        "longterm",
        workers,
        plan,
        fault_envs,
        fabric_cfg(workers),
        &ckpt,
    );
    collect_longterm_fabric(scenario, cfg, launcher).expect("fabric run")
}

/// The acceptance invariant: for every seed × fault profile, the 2-worker
/// fabric under a kill/resume schedule and the 4-worker fabric under an
/// exit+corrupt schedule both produce the one-process dataset, byte for
/// byte, after recovering every injected failure.
#[test]
fn fabric_dataset_is_byte_identical_across_workers_and_crash_schedules() {
    for seed in [3u64, 11, 29] {
        let scenario = Scenario::build(scale(seed));
        for (name, profile, fault_envs) in [quiet(), noisy()] {
            let (store, _) = scenario.long_term_store_faulty(
                &fabric::longterm_pairs(&scenario),
                &profile,
                &RetryPolicy::default(),
            );
            let want = store_digest(&store);
            // Schedule A: 2 workers, kill-after-k on both shards — the
            // retry must resume from the worker-local checkpoint.
            let a = run_longterm(&scenario, 2, "kill@0.1=1;kill@1.1=2", &fault_envs);
            assert_eq!(
                a.digest, want,
                "seed {seed} {name}: 2-worker kill/resume dataset diverged"
            );
            assert_eq!(a.outcome.stats.lost, 0);
            assert_eq!(a.outcome.stats.recoveries, 2, "both kills must recover");
            assert!(a.outcome.stats.retries >= 2);
            // Schedule B: 4 workers, one plain crash and one corrupted
            // result stream — both detected, both retried clean.
            let b = run_longterm(&scenario, 4, "exit@1.1;corrupt@2.1", &fault_envs);
            assert_eq!(
                b.digest, want,
                "seed {seed} {name}: 4-worker exit+corrupt dataset diverged"
            );
            assert_eq!(b.outcome.stats.lost, 0);
            assert_eq!(b.outcome.stats.nonzero_exits, 1);
            assert_eq!(b.outcome.stats.corrupt_frames, 1);
            assert_eq!(b.outcome.stats.recoveries, 2);
            // The timelines derived from the merged store match the
            // in-process analysis exactly.
            let want_tl = s2s_core::Analysis::new(&store).timelines(&scenario.ip2asn);
            assert_eq!(a.data.timelines, want_tl, "seed {seed} {name}");
            assert_eq!(b.data.timelines, want_tl, "seed {seed} {name}");
            // Replayed pairs book as resume accounting, not re-delivery,
            // so reports aren't compared to the one-process run wholesale
            // — but the accounting identities must hold, and the kill
            // schedule must have actually resumed from a checkpoint.
            for rep in [&a.data.report, &b.data.report] {
                assert_eq!(
                    rep.offered,
                    rep.delivered
                        + rep.truncated
                        + rep.gave_up
                        + rep.agent_down_slots
                        + rep.lost_slots,
                    "seed {seed} {name}: offered identity"
                );
            }
            assert!(
                a.data.report.resumed_pairs >= 1,
                "seed {seed} {name}: kill schedule must resume from checkpoint"
            );
        }
    }
}

/// A stalled worker (hello, then silence) is reaped by the heartbeat
/// timeout and its shard recovers on retry with an identical dataset.
#[test]
fn stalled_worker_is_reaped_and_recovered() {
    let scenario = Scenario::build(scale(3));
    let (store, _) = scenario.long_term_store_faulty(
        &fabric::longterm_pairs(&scenario),
        &FaultProfile::default(),
        &RetryPolicy::default(),
    );
    let ckpt = CkptDir::new();
    let mut cfg = fabric_cfg(2);
    // Short reap clock: the stalled worker emits nothing after HELLO,
    // while healthy workers heartbeat every 100 ms.
    cfg.heartbeat_timeout = Duration::from_secs(5);
    let (cfg, launcher) = launch_fabric(
        &scenario.scale,
        "longterm",
        2,
        "stall@0.1",
        &[],
        cfg,
        &ckpt,
    );
    let run = collect_longterm_fabric(&scenario, cfg, launcher).expect("fabric run");
    assert_eq!(run.digest, store_digest(&store));
    assert_eq!(run.outcome.stats.timeouts, 1, "the stall must be reaped by timeout");
    assert_eq!(run.outcome.stats.recoveries, 1);
    assert_eq!(run.outcome.stats.lost, 0);
}

/// A shard that fails every attempt is lost, not dropped: the dataset
/// stays dense (synthesized lost rows), the accounting identities hold
/// exactly, and coverage falls below the clean run's.
#[test]
fn exhausted_retry_budget_degrades_with_exact_accounting() {
    let scenario = Scenario::build(scale(3));
    let clean = run_longterm(&scenario, 2, "", &[]);
    assert_eq!(clean.outcome.stats.lost, 0);
    let run = run_longterm(&scenario, 2, "exit@1.1;exit@1.2;exit@1.3", &[]);
    assert_eq!(run.outcome.stats.lost, 1);
    assert_eq!(run.outcome.lost_shards(), vec![1]);
    // Dense dataset: same timeline count and same slots per timeline.
    assert_eq!(run.data.timelines.len(), clean.data.timelines.len());
    let cfg = CampaignConfig::long_term(scenario.scale.days);
    let shard_pairs = fabric::longterm_pairs(&scenario).len() / 2;
    let lost_slots = shard_pairs * cfg.protocols.len() * cfg.times().len();
    let r = &run.data.report;
    assert_eq!(r.lost_slots, lost_slots, "every slot of the lost shard is booked");
    assert_eq!(
        r.offered,
        r.delivered + r.truncated + r.gave_up + r.agent_down_slots + r.lost_slots,
        "offered identity must hold in degraded mode"
    );
    assert_eq!(
        r.attempted,
        r.offered - r.agent_down_slots - r.lost_slots + r.retried,
        "attempted identity must hold in degraded mode"
    );
    assert!(run.data.coverage().fraction() < clean.data.coverage().fraction());
    assert_ne!(run.digest, clean.digest, "lost rows must be visible");
}

/// The short-term plane through the fabric: merged serialized sink states
/// equal the one-process sink campaign's, including across a kill/resume
/// schedule.
#[test]
fn fabric_sink_states_are_byte_identical() {
    let scenario = Scenario::build(scale(11));
    let (cfg, pairs) = fabric::ping_mesh(&scenario);
    let sink = PairProfileSink::for_config(&cfg);
    let (states, _) = Campaign::new(cfg)
        .sink(sink)
        .run_ping(&scenario.net, &pairs)
        .expect("in-memory campaign cannot fail");
    let (cfg2, _) = fabric::ping_mesh(&scenario);
    let sink = PairProfileSink::for_config(&cfg2);
    let want: Vec<String> = states.iter().map(|st| sink.save(st)).collect();

    for (workers, plan) in [(2usize, ""), (2, "kill@1.1=1"), (4, "exit@0.1")] {
        let ckpt = CkptDir::new();
        let (fcfg, launcher) = launch_fabric(
            &scenario.scale,
            "ping",
            workers,
            plan,
            &[],
            fabric_cfg(workers),
            &ckpt,
        );
        let (lines, report, outcome) =
            collect_ping_fabric(&scenario, fcfg, launcher).expect("fabric run");
        assert_eq!(
            lines, want,
            "{workers}-worker ping fabric (plan '{plan}') states diverged"
        );
        assert_eq!(outcome.stats.lost, 0);
        assert_eq!(
            report.offered,
            report.delivered
                + report.truncated
                + report.gave_up
                + report.agent_down_slots
                + report.lost_slots
        );
    }
}
