//! Validation of the Fig. 8 ownership heuristics against simulator ground
//! truth — the check the paper itself could not run.

use s2s_core::ownership::infer_ownership;
use s2s_integration::World;
use s2s_probe::{trace, TraceOptions};
use s2s_types::{ClusterId, Protocol, SimTime};
use std::net::IpAddr;

fn sweep_paths(w: &World, protos: &[Protocol]) -> Vec<Vec<Option<IpAddr>>> {
    let mut paths = Vec::new();
    let n = w.topo.clusters.len();
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            for &proto in protos {
                let rec = trace(
                    &w.net,
                    ClusterId::from(a),
                    ClusterId::from(b),
                    proto,
                    SimTime::from_days(1),
                    TraceOptions::default(),
                );
                if rec.reached {
                    paths.push(rec.hops.iter().map(|h| h.addr).collect());
                }
            }
        }
    }
    paths
}

#[test]
fn inference_is_accurate_against_ground_truth() {
    let w = World::quiet(13, 5);
    let paths = sweep_paths(&w, &[Protocol::V4]);
    let inf = infer_ownership(&paths, &w.ip2asn, &w.rels);
    let addr_index = w.topo.addr_index();
    let mut correct = 0;
    let mut wrong = 0;
    for (&addr, &owner) in &inf.owners {
        let Some(&iface) = addr_index.get(&addr) else { continue };
        let truth = w.topo.asn(w.topo.iface_operator(iface));
        if owner == truth {
            correct += 1;
        } else {
            wrong += 1;
        }
    }
    let total = correct + wrong;
    assert!(total > 50, "too few elected owners ({total})");
    let acc = correct as f64 / total as f64;
    assert!(acc > 0.93, "accuracy {acc:.3} ({correct}/{total})");
}

#[test]
fn inference_beats_raw_prefix_mapping() {
    let w = World::quiet(14, 5);
    let paths = sweep_paths(&w, &[Protocol::V4]);
    let inf = infer_ownership(&paths, &w.ip2asn, &w.rels);
    let addr_index = w.topo.addr_index();

    let mut seen: std::collections::HashSet<IpAddr> = Default::default();
    for p in &paths {
        seen.extend(p.iter().flatten());
    }
    let mut heur_correct = 0;
    let mut heur_total = 0;
    let mut raw_correct = 0;
    let mut raw_total = 0;
    for &addr in &seen {
        let Some(&iface) = addr_index.get(&addr) else { continue };
        let truth = w.topo.asn(w.topo.iface_operator(iface));
        if let Some(o) = inf.owner(addr) {
            heur_total += 1;
            heur_correct += (o == truth) as usize;
        }
        if let Some(asn) = w.ip2asn.lookup(addr) {
            raw_total += 1;
            raw_correct += (asn == truth) as usize;
        }
    }
    let heur_acc = heur_correct as f64 / heur_total.max(1) as f64;
    let raw_acc = raw_correct as f64 / raw_total.max(1) as f64;
    assert!(
        heur_acc > raw_acc,
        "heuristics {heur_acc:.3} did not beat raw mapping {raw_acc:.3}"
    );
}

#[test]
fn v6_paths_also_support_inference() {
    let w = World::quiet(15, 5);
    let paths = sweep_paths(&w, &[Protocol::V6]);
    assert!(!paths.is_empty());
    let inf = infer_ownership(&paths, &w.ip2asn, &w.rels);
    assert!(
        inf.owners.keys().any(|a| a.is_ipv6()),
        "no v6 owners inferred"
    );
}

#[test]
fn coverage_is_partial_but_substantial() {
    // The paper: "our method annotates the likely owner of most, but not
    // all interfaces."
    let w = World::quiet(16, 5);
    let paths = sweep_paths(&w, &[Protocol::V4]);
    let inf = infer_ownership(&paths, &w.ip2asn, &w.rels);
    let mut seen: std::collections::HashSet<IpAddr> = Default::default();
    for p in &paths {
        seen.extend(p.iter().flatten());
    }
    let coverage = inf.owners.len() as f64 / seen.len() as f64;
    assert!(coverage > 0.5, "coverage {coverage:.3} too low");
    assert!(coverage < 1.0, "implausibly perfect coverage");
}
