//! Out-of-core streaming must be invisible in the data, property-tested:
//! for any way of cutting a campaign corpus into shard files, any shard
//! write block size, any streamed batch budget, and any permutation of
//! shard contents, the streaming multi-shard absorb
//! (`snapshot::absorb_files`) must land on the **byte-identical** store
//! that the legacy full-reopen-then-`absorb` merge produces — same
//! record sequence, same FNV-64 digest, same arena statistics — and
//! chunked `SnapshotReader` iteration must reconstruct every record in
//! stream order.
//!
//! Corpora are real simulated campaigns (3 seeds × {quiet, noisy} probe
//! faults), built once and cached; the property then explores the
//! sharding/budget space on top of them.

use proptest::prelude::*;
use s2s_bench::fabric::{self, store_digest};
use s2s_bench::{Scale, Scenario};
use s2s_probe::store::TraceStore;
use s2s_probe::{FaultProfile, RetryPolicy, TracerouteRecord};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

fn scale(seed: u64) -> Scale {
    Scale {
        seed,
        clusters: 8,
        days: 4,
        pairs: 6,
        ping_pairs: 8,
        cong_pairs: 4,
    }
}

fn noisy() -> FaultProfile {
    FaultProfile {
        crash_rate: 0.02,
        drop_rate: 0.05,
        stuck_rate: 0.02,
        truncate_rate: 0.05,
        ..FaultProfile::default()
    }
}

/// The six cached corpora: 3 seeds × {quiet, noisy} long-term campaigns,
/// built once for the whole property run.
fn corpora() -> &'static Vec<Vec<TracerouteRecord>> {
    static CORPORA: OnceLock<Vec<Vec<TracerouteRecord>>> = OnceLock::new();
    CORPORA.get_or_init(|| {
        let mut out = Vec::new();
        for seed in [3u64, 11, 29] {
            let scenario = Scenario::build(scale(seed));
            for profile in [FaultProfile::default(), noisy()] {
                let (store, _) = scenario.long_term_store_faulty(
                    &fabric::longterm_pairs(&scenario),
                    &profile,
                    &RetryPolicy::default(),
                );
                out.push(store.to_records());
            }
        }
        out
    })
}

static RUN_ID: AtomicUsize = AtomicUsize::new(0);

/// A fresh shard directory per case, removed on drop.
struct ShardDirGuard(PathBuf);

impl ShardDirGuard {
    fn new() -> ShardDirGuard {
        let dir = std::env::temp_dir().join(format!(
            "s2s-oocprop-{}-{}",
            std::process::id(),
            RUN_ID.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create shard dir");
        ShardDirGuard(dir)
    }
}

impl Drop for ShardDirGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For any corpus, shard cuts, shard permutation, write block size and
    /// streamed batch budget: `absorb_files` == full-reopen + `absorb`,
    /// byte for byte, and batch iteration rebuilds every record in order.
    #[test]
    fn prop_streamed_shard_absorb_matches_full_reopen_merge(
        corpus in 0usize..6,
        raw_cuts in proptest::collection::vec(0usize..10_000, 0..3),
        perm_seed in 0u64..1000,
        budget in 1usize..512,
        block in 1usize..64,
    ) {
        let records = &corpora()[corpus];
        let n = records.len();

        // Cut the corpus into up to four contiguous shards, then permute
        // the chunk-to-file assignment with a seeded Fisher–Yates so the
        // merge order the property checks is not always corpus order.
        let mut cuts: Vec<usize> = raw_cuts.iter().map(|c| c % (n + 1)).collect();
        cuts.sort_unstable();
        let mut bounds = vec![0usize];
        bounds.extend(&cuts);
        bounds.push(n);
        bounds.dedup();
        let mut chunks: Vec<&[TracerouteRecord]> =
            bounds.windows(2).map(|w| &records[w[0]..w[1]]).collect();
        let mut s = perm_seed;
        for i in (1..chunks.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            chunks.swap(i, j);
        }

        let dir = ShardDirGuard::new();
        let mut paths = Vec::new();
        for (i, ch) in chunks.iter().enumerate() {
            let path = dir.0.join(format!("shard-{i}.snap"));
            let st = TraceStore::from_records(ch);
            let mut f = std::io::BufWriter::new(
                std::fs::File::create(&path).expect("create shard"),
            );
            s2s_probe::snapshot::write(&mut f, &st, &[], block).expect("write shard");
            std::io::Write::flush(&mut f).expect("flush shard");
            paths.push(path);
        }

        // Reference: the PR-7 merge — materialize each shard fully, then
        // absorb it into the merged store.
        let mut reference = TraceStore::new();
        for p in &paths {
            let snap = s2s_probe::snapshot::open_file(p).expect("reopen shard");
            reference.absorb(&snap.store);
        }

        // Contender: the streaming absorb, bounded by `budget` traces of
        // residency per shard.
        let options =
            s2s_probe::Snapshot::options().stream(true).block_budget(budget);
        let mut streamed = TraceStore::new();
        let (report, sinks) =
            s2s_probe::snapshot::absorb_files(&mut streamed, &paths, &options)
                .expect("streamed absorb");
        prop_assert!(report.clean(), "streamed absorb reported damage: {report:?}");
        prop_assert!(sinks.is_empty());
        prop_assert_eq!(store_digest(&streamed), store_digest(&reference));
        prop_assert_eq!(streamed.stats(), reference.stats());
        prop_assert_eq!(streamed.to_records(), reference.to_records());

        // Chunked iteration reconstructs the records in stream order.
        let mut rebuilt = Vec::new();
        for p in &paths {
            let mut reader = options.open(p).expect("streamed open");
            while let Some(batch) = reader.next_batch().expect("streamed batch") {
                rebuilt.extend(batch.to_records());
            }
        }
        prop_assert_eq!(rebuilt, reference.to_records());
    }
}
