//! The data-source-agnostic claim, proven end to end: a campaign's records
//! written to the archive format, read back, and analyzed must produce the
//! same results as analyzing in-memory — i.e. the `s2s-core` pipeline can
//! run on any archived traceroute corpus.

use s2s_core::changes::detect_changes;
use s2s_core::timeline::TimelineBuilder;
use s2s_integration::World;
use s2s_probe::dataset::{read_traceroutes, write_traceroutes};
use s2s_probe::{trace, TraceOptions};
use s2s_types::{ClusterId, Protocol, SimDuration, SimTime};

fn campaign_records(w: &World) -> Vec<s2s_probe::TracerouteRecord> {
    let mut recs = Vec::new();
    for d in 1..5usize {
        let mut t = SimTime::T0;
        while t < SimTime::from_days(8) {
            recs.push(trace(
                &w.net,
                ClusterId::new(0),
                ClusterId::from(d),
                Protocol::V4,
                t,
                TraceOptions::default(),
            ));
            t += SimDuration::from_hours(3);
        }
    }
    recs
}

#[test]
fn archived_corpus_analyzes_identically() {
    let w = World::full(31, 10);
    let recs = campaign_records(&w);

    // Round trip through the archive format.
    let mut buf = Vec::new();
    write_traceroutes(&mut buf, &recs).unwrap();
    let restored = read_traceroutes(std::io::Cursor::new(buf)).unwrap();
    assert_eq!(restored.len(), recs.len());

    // Same analysis both ways.
    let analyze = |records: &[s2s_probe::TracerouteRecord]| {
        let mut builders: std::collections::HashMap<_, TimelineBuilder> =
            Default::default();
        for r in records {
            builders
                .entry((r.src, r.dst, r.proto))
                .or_insert_with(|| TimelineBuilder::new(r.src, r.dst, r.proto, &w.ip2asn))
                .push(r.clone());
        }
        let mut out: Vec<_> = builders
            .into_iter()
            .map(|(k, b)| {
                let tl = b.finish();
                (k, tl.unique_paths(), detect_changes(&tl).changes, tl.usable_samples())
            })
            .collect();
        out.sort_by_key(|&(k, ..)| k);
        out
    };
    assert_eq!(analyze(&recs), analyze(&restored));
}

#[test]
fn archive_is_stable_text() {
    // The format is line-oriented text a human can grep.
    let w = World::full(32, 5);
    let recs = campaign_records(&w);
    let mut buf = Vec::new();
    write_traceroutes(&mut buf, &recs[..10]).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert_eq!(text.lines().count(), 10);
    for line in text.lines() {
        assert!(line.starts_with("T|"), "unexpected line {line}");
        assert!(line.split('|').count() == 10);
    }
}

#[test]
fn rtts_survive_with_millisecond_precision() {
    let w = World::full(33, 5);
    let recs = campaign_records(&w);
    let mut buf = Vec::new();
    write_traceroutes(&mut buf, &recs).unwrap();
    let restored = read_traceroutes(std::io::Cursor::new(buf)).unwrap();
    for (a, b) in recs.iter().zip(&restored) {
        match (a.e2e_rtt_ms, b.e2e_rtt_ms) {
            (Some(x), Some(y)) => assert!((x - y).abs() < 0.001),
            (None, None) => {}
            other => panic!("e2e mismatch {other:?}"),
        }
    }
}
