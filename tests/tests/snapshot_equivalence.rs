//! The snapshot plane must be invisible in the data: `Analysis` over a
//! reopened `.snap` file must be **byte-identical** to the legacy
//! line-import path — same record sequence, same FNV-64 digest, same
//! timelines at every thread count — across seeds × {quiet, noisy}
//! probe-fault profiles × {1, 2, 4} analysis workers. Sink states ride
//! through the SINK segment bit-exactly: the saved lines come back as
//! the same bytes and still `load` into working accumulators.

use s2s_bench::fabric::{self, ping_mesh, store_digest};
use s2s_bench::{Scale, Scenario};
use s2s_probe::snapshot::{open_file, write_file};
use s2s_probe::store::TraceStore;
use s2s_probe::{Campaign, FaultProfile, PairProfileSink, RetryPolicy, StreamSink};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn scale(seed: u64) -> Scale {
    Scale {
        seed,
        clusters: 10,
        days: 6,
        pairs: 8,
        ping_pairs: 12,
        cong_pairs: 4,
    }
}

fn noisy() -> FaultProfile {
    FaultProfile {
        crash_rate: 0.02,
        drop_rate: 0.05,
        stuck_rate: 0.02,
        truncate_rate: 0.05,
        ..FaultProfile::default()
    }
}

static RUN_ID: AtomicUsize = AtomicUsize::new(0);

/// A fresh snapshot path per run, removed on drop.
struct SnapFile(PathBuf);

impl SnapFile {
    fn new() -> SnapFile {
        let dir = std::env::temp_dir();
        SnapFile(dir.join(format!(
            "s2s-snapeq-{}-{}.snap",
            std::process::id(),
            RUN_ID.fetch_add(1, Ordering::Relaxed)
        )))
    }
}

impl Drop for SnapFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// A fresh shard directory per run, removed on drop.
struct SnapDir(PathBuf);

impl SnapDir {
    fn new() -> SnapDir {
        let dir = std::env::temp_dir().join(format!(
            "s2s-snapeq-shards-{}-{}",
            std::process::id(),
            RUN_ID.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create shard dir");
        SnapDir(dir)
    }
}

impl Drop for SnapDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The legacy import path: archived record lines parsed back one by one
/// and pushed into a fresh store — exactly what `Analysis::new` used to
/// sit on before snapshots existed.
fn import_lines(store: &TraceStore) -> TraceStore {
    let mut text = Vec::new();
    s2s_probe::dataset::write_traceroutes(&mut text, &store.to_records())
        .expect("write archive lines");
    s2s_probe::dataset::read_traceroutes(&text[..])
        .map(|records| TraceStore::from_records(&records))
        .expect("reparse archive lines")
}

/// Serialized short-term sink states for the scenario's ping mesh — the
/// payload the SINK segment must carry bit-exactly.
fn sink_lines(scenario: &Scenario, profile: &FaultProfile) -> Vec<String> {
    let (cfg, pairs) = ping_mesh(scenario);
    let sink = PairProfileSink::for_config(&cfg);
    let (states, _) = Campaign::new(cfg.clone())
        .faults(*profile)
        .sink(sink)
        .run_ping(&scenario.net, &pairs)
        .expect("in-memory ping campaign cannot fail");
    let sink = PairProfileSink::for_config(&cfg);
    states.iter().map(|st| sink.save(st)).collect()
}

/// The acceptance invariant: for every seed × fault profile, writing the
/// campaign store to a snapshot and reopening it yields the one-process
/// dataset byte for byte — records, digest, sink lines — and `Analysis`
/// over the reopened store matches the line-import path at 1, 2 and 4
/// worker threads.
#[test]
fn analysis_over_reopened_snapshot_matches_line_import_byte_for_byte() {
    for seed in [3u64, 11, 29] {
        let scenario = Scenario::build(scale(seed));
        for (name, profile) in [("quiet", FaultProfile::default()), ("noisy", noisy())] {
            let (store, _) = scenario.long_term_store_faulty(
                &fabric::longterm_pairs(&scenario),
                &profile,
                &RetryPolicy::default(),
            );
            let sinks = sink_lines(&scenario, &profile);
            let snap_file = SnapFile::new();
            write_file(&snap_file.0, &store, &sinks).expect("write snapshot");
            // Strict open: any damage is an error, so what comes back is
            // certified clean.
            let snap = open_file(&snap_file.0).expect("reopen snapshot");

            // The dataset itself is byte-identical: record sequence and
            // the fabric's line-form FNV-64 fingerprint both match.
            assert_eq!(
                snap.store.to_records(),
                store.to_records(),
                "seed {seed} {name}: reopened records diverged"
            );
            assert_eq!(
                store_digest(&snap.store),
                store_digest(&store),
                "seed {seed} {name}: reopened digest diverged"
            );

            // Sink states ride through the SINK segment bit-exactly and
            // still parse back into live accumulators.
            assert_eq!(snap.sinks, sinks, "seed {seed} {name}: sink lines diverged");
            let (cfg, _) = ping_mesh(&scenario);
            let sink = PairProfileSink::for_config(&cfg);
            for line in &snap.sinks {
                let state = sink.load(line).expect("reopened sink line must load");
                assert_eq!(
                    sink.save(&state),
                    *line,
                    "seed {seed} {name}: sink line does not round-trip"
                );
            }

            // Streamed sources: a chunked out-of-core reader over the same
            // file (a tiny batch budget forces many buffer refills) and a
            // directory of shard files. Both must match the in-memory
            // analysis byte for byte, and sink lines must ride through the
            // streaming path bit-exactly too.
            let options =
                s2s_probe::Snapshot::options().stream(true).block_budget(97);
            let mut sink_reader =
                options.open(&snap_file.0).expect("streamed open");
            while sink_reader.next_batch().expect("streamed batch").is_some() {}
            assert_eq!(
                sink_reader.take_sinks(),
                sinks,
                "seed {seed} {name}: streamed sink lines diverged"
            );
            let via_streamed = s2s_core::Analysis::new(
                options.open(&snap_file.0).expect("streamed open"),
            )
            .timelines(&scenario.ip2asn)
            .expect("streamed analysis");
            let shard_dir = SnapDir::new();
            let records = store.to_records();
            let chunk = records.len().div_ceil(3).max(1);
            for (i, ch) in records.chunks(chunk).enumerate() {
                write_file(
                    &shard_dir.0.join(format!("shard-{i}.snap")),
                    &TraceStore::from_records(ch),
                    &[],
                )
                .expect("write shard");
            }
            let via_dir = s2s_core::Analysis::new(
                options.open_dir(&shard_dir.0).expect("open shard dir"),
            )
            .timelines(&scenario.ip2asn)
            .expect("sharded analysis");

            // Analysis over the reopened snapshot == analysis over the
            // legacy line-import path, at every worker count — and the
            // streamed/sharded sources match them all.
            let imported = import_lines(&store);
            assert_eq!(
                store_digest(&imported),
                store_digest(&store),
                "seed {seed} {name}: line import must be lossless"
            );
            for threads in [1usize, 2, 4] {
                let via_snapshot = s2s_core::Analysis::new(&snap)
                    .threads(threads)
                    .timelines(&scenario.ip2asn);
                let via_import = s2s_core::Analysis::new(&imported)
                    .threads(threads)
                    .timelines(&scenario.ip2asn);
                assert_eq!(
                    via_snapshot, via_import,
                    "seed {seed} {name} threads {threads}: timelines diverged"
                );
                assert_eq!(
                    via_streamed, via_snapshot,
                    "seed {seed} {name} threads {threads}: streamed timelines diverged"
                );
                assert_eq!(
                    via_dir, via_snapshot,
                    "seed {seed} {name} threads {threads}: sharded timelines diverged"
                );
            }
        }
    }
}

/// A reopened store is live, not a read-only view: records pushed after
/// reopening intern into the restored tables and the result is
/// indistinguishable from a store that never went to disk.
#[test]
fn reopened_snapshot_store_absorbs_new_records_like_a_live_store() {
    let scenario = Scenario::build(scale(7));
    let (store, _) = scenario.long_term_store_faulty(
        &fabric::longterm_pairs(&scenario),
        &FaultProfile::default(),
        &RetryPolicy::default(),
    );
    let records = store.to_records();
    let (head, tail) = records.split_at(records.len() / 2);

    let snap_file = SnapFile::new();
    write_file(&snap_file.0, &TraceStore::from_records(head), &[]).expect("write snapshot");
    let mut snap = open_file(&snap_file.0).expect("reopen snapshot");
    for rec in tail {
        snap.store.push(rec);
    }

    assert_eq!(snap.store.to_records(), records);
    assert_eq!(store_digest(&snap.store), store_digest(&store));
    let want = s2s_core::Analysis::new(&store).timelines(&scenario.ip2asn);
    let got = s2s_core::Analysis::new(&snap.store).timelines(&scenario.ip2asn);
    assert_eq!(got, want, "push-after-reopen timelines diverged");
}
