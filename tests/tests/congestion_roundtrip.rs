//! Ground-truth round trip for the §5 pipeline: congestion planted on a
//! known link must be detected, localized to that link, and classified
//! correctly.

use s2s_core::congestion::{
    detect, DetectParams, LocateOutcome, LocateParams, SegmentAccumulator,
};
use s2s_core::ownership::{classify_link, infer_ownership, CongestedLinkClass};
use s2s_integration::World;
use s2s_netsim::{CongestionModel, LinkProfile, Network, NetworkParams};
use s2s_probe::{trace, Campaign, CampaignConfig, TraceOptions};
use s2s_topology::LinkKind;
use s2s_types::{ClusterId, LinkId, Protocol, RouterId, SimDuration, SimTime};
use std::sync::Arc;

/// Plants a profile on the k-th hop link of (0 → dst) and returns the
/// instrumented network plus the victim link.
fn plant(
    w: &World,
    dst: ClusterId,
    hop_idx: usize,
    amplitude: f64,
) -> (Network, LinkId, RouterId) {
    let path = w
        .oracle
        .router_path(ClusterId::new(0), dst, Protocol::V4, SimTime::T0, 1)
        .expect("path");
    let k = hop_idx.min(path.hops.len() - 1);
    let victim = path.hops[k].ingress_link;
    let toward = path.hops[k].router;
    let profile = LinkProfile {
        amplitude_ms: amplitude,
        peak_local_hour: 20.0,
        width_hours: 3.0,
        start_min: 0,
        end_min: w.horizon.minutes(),
        lon_deg: 0.0,
        toward: toward.0,
        v6_factor: 1.0,
    };
    let net = Network::new(
        Arc::clone(&w.oracle),
        CongestionModel::from_profiles(vec![(victim, profile)]),
        NetworkParams { loss_prob: 0.0, spike_prob: 0.0, ..NetworkParams::default() },
    );
    (net, victim, toward)
}

#[test]
fn planted_congestion_is_detected_by_pings() {
    let w = World::quiet(5, 40);
    let dst = ClusterId::new(6);
    let (net, _, _) = plant(&w, dst, 2, 30.0);
    let cfg = CampaignConfig::ping_week(SimTime::from_days(2));
    let (tls, _) = Campaign::new(cfg)
        .run_ping(&net, &[(ClusterId::new(0), dst)])
        .expect("in-memory campaign cannot fail");
    let v4 = tls.iter().find(|t| t.proto == Protocol::V4).unwrap();
    let r = detect(v4, &DetectParams::default()).expect("enough samples");
    assert!(r.high_variation, "spread {}", r.spread_ms);
    assert!(r.consistent, "psd {:?}", r.psd_ratio);
    // Spread tracks the planted amplitude (one direction only).
    assert!(
        (15.0..45.0).contains(&r.spread_ms),
        "spread {} vs planted 30",
        r.spread_ms
    );
}

#[test]
fn clean_pairs_stay_clean() {
    let w = World::quiet(5, 40);
    let cfg = CampaignConfig::ping_week(SimTime::from_days(2));
    let pairs: Vec<_> =
        (1usize..6).map(|d| (ClusterId::new(0), ClusterId::from(d))).collect();
    let (tls, _) = Campaign::new(cfg)
        .run_ping(&w.net, &pairs)
        .expect("in-memory campaign cannot fail");
    for tl in tls {
        if let Some(r) = detect(&tl, &DetectParams::default()) {
            assert!(!r.consistent, "clean pair flagged: spread {}", r.spread_ms);
        }
    }
}

#[test]
fn localization_blames_the_planted_link() {
    let w = World::quiet(5, 40);
    let dst = ClusterId::new(6);
    let (net, victim, toward) = plant(&w, dst, 3, 30.0);
    let mut acc = SegmentAccumulator::default();
    let mut t = SimTime::from_days(1);
    while t < SimTime::from_days(22) {
        acc.push(&trace(&net, ClusterId::new(0), dst, Protocol::V4, t, TraceOptions::default()));
        t += SimDuration::from_minutes(30);
    }
    match acc.locate(&LocateParams::default()) {
        LocateOutcome::Located { far, rho, .. } => {
            assert!(rho >= 0.5);
            // The blamed far-side address must be the victim link's
            // interface on the toward router.
            let iface = w.topo.links[victim.index()].iface_of(toward);
            let expect = std::net::IpAddr::V4(w.topo.ifaces[iface.index()].v4);
            assert_eq!(far, expect, "blamed {far}, victim iface {expect}");
        }
        other => panic!("expected location, got {other:?}"),
    }
}

#[test]
fn located_link_classifies_by_ground_truth_kind() {
    let w = World::quiet(5, 40);
    // Try several destinations / hops until we hit an interconnect victim.
    let mut tried_interconnect = false;
    for dst_i in 2..w.topo.clusters.len().min(12) {
        let dst = ClusterId::from(dst_i);
        for hop in 1..6 {
            let Some(path) = w
                .oracle
                .router_path(ClusterId::new(0), dst, Protocol::V4, SimTime::T0, 1)
            else {
                continue;
            };
            if hop >= path.hops.len() {
                continue;
            }
            let kind = w.topo.links[path.hops[hop].ingress_link.index()].kind;
            if kind == LinkKind::Internal && tried_interconnect {
                continue;
            }
            let (net, _, _) = plant(&w, dst, hop, 30.0);
            let mut acc = SegmentAccumulator::default();
            let mut t = SimTime::from_days(1);
            while t < SimTime::from_days(15) {
                acc.push(&trace(
                    &net,
                    ClusterId::new(0),
                    dst,
                    Protocol::V4,
                    t,
                    TraceOptions::default(),
                ));
                t += SimDuration::from_minutes(30);
            }
            let LocateOutcome::Located { near, far, .. } =
                acc.locate(&LocateParams::default())
            else {
                continue;
            };
            let corpus = vec![acc.reference_path().unwrap().to_vec()];
            let inf = infer_ownership(&corpus, &w.ip2asn, &w.rels);
            let class = classify_link(near, far, &inf, &w.rels);
            match kind {
                LinkKind::Internal => {
                    // Internal links must never classify as interconnect.
                    assert!(
                        matches!(
                            class,
                            CongestedLinkClass::Internal | CongestedLinkClass::Unknown
                        ),
                        "internal link classified {class:?}"
                    );
                }
                _ => {
                    tried_interconnect = true;
                    assert!(
                        !matches!(class, CongestedLinkClass::Internal),
                        "interconnect ({kind:?}) classified Internal"
                    );
                }
            }
        }
    }
    assert!(tried_interconnect, "never exercised an interconnect victim");
}

#[test]
fn detection_survives_realistic_noise() {
    // Full world (loss, spikes, rate limiting) with a planted strong signal.
    let w = World::quiet(8, 40);
    let dst = ClusterId::new(4);
    let path = w
        .oracle
        .router_path(ClusterId::new(0), dst, Protocol::V4, SimTime::T0, 1)
        .unwrap();
    let k = 2.min(path.hops.len() - 1);
    let profile = LinkProfile {
        amplitude_ms: 35.0,
        peak_local_hour: 20.0,
        width_hours: 3.5,
        start_min: 0,
        end_min: w.horizon.minutes(),
        lon_deg: 0.0,
        toward: path.hops[k].router.0,
        v6_factor: 1.0,
    };
    let net = Network::new(
        Arc::clone(&w.oracle),
        CongestionModel::from_profiles(vec![(path.hops[k].ingress_link, profile)]),
        NetworkParams::default(), // real loss + spikes + rate limiting
    );
    let cfg = CampaignConfig::ping_week(SimTime::from_days(2));
    let (tls, _) = Campaign::new(cfg)
        .run_ping(&net, &[(ClusterId::new(0), dst)])
        .expect("in-memory campaign cannot fail");
    let v4 = tls.iter().find(|t| t.proto == Protocol::V4).unwrap();
    let r = detect(v4, &DetectParams::default()).expect("enough samples despite loss");
    assert!(r.consistent, "noise drowned the signal: {r:?}");
}
