//! The one-front-door guarantee: `Campaign` (the builder) produces
//! byte-for-byte the same datasets as the deprecated free functions and as
//! the sequential reference runner — across seeds, thread counts, and
//! fault profiles — and installing a metrics registry changes nothing.

#![allow(deprecated)] // the point of this suite is to pin the legacy wrappers

use s2s_integration::World;
use s2s_probe::dataset::traceroute_to_line;
use s2s_probe::{
    run_ping_campaign, run_ping_campaign_faulty, run_traceroute_campaign,
    run_traceroute_campaign_faulty, Campaign, CampaignConfig, FaultProfile, RetryPolicy,
    TraceOptions, TracerouteRecord,
};
use s2s_types::{ClusterId, Protocol, SimDuration, SimTime};
use std::sync::Arc;

fn cfg(threads: usize) -> CampaignConfig {
    CampaignConfig {
        start: SimTime::T0,
        end: SimTime::from_days(5),
        interval: SimDuration::from_hours(3),
        protocols: vec![Protocol::V4, Protocol::V6],
        threads,
    }
}

fn pairs(_w: &World) -> Vec<(ClusterId, ClusterId)> {
    (1usize..6).map(|d| (ClusterId::new(0), ClusterId::from(d))).collect()
}

/// Serializes a builder campaign to dataset lines — the byte-level view.
fn builder_lines(
    w: &World,
    c: Campaign,
    pairs: &[(ClusterId, ClusterId)],
) -> Vec<Vec<String>> {
    c.run_traceroute(
        &w.net,
        pairs,
        TraceOptions::default(),
        |_, _, _| Vec::new(),
        |acc: &mut Vec<String>, rec: TracerouteRecord| acc.push(traceroute_to_line(&rec)),
    )
    .expect("in-memory campaign cannot fail")
    .0
}

#[test]
fn builder_matches_legacy_and_reference_across_seeds_and_threads() {
    for seed in [3u64, 41] {
        let w = World::full(seed, 5);
        let ps = pairs(&w);
        let baseline = builder_lines(&w, Campaign::new(cfg(1)).reference(), &ps);
        for threads in [1usize, 4] {
            let built = builder_lines(&w, Campaign::new(cfg(threads)), &ps);
            assert_eq!(baseline, built, "seed {seed}, {threads} threads");
            let legacy = run_traceroute_campaign(
                &w.net,
                &ps,
                &cfg(threads),
                TraceOptions::default(),
                |_, _, _| Vec::new(),
                |acc: &mut Vec<String>, rec| acc.push(traceroute_to_line(&rec)),
            );
            assert_eq!(baseline, legacy, "seed {seed}, {threads} threads (legacy)");
        }
    }
}

#[test]
fn faulty_builder_matches_legacy_across_profiles() {
    let w = World::full(7, 5);
    let ps = pairs(&w);
    let retry = RetryPolicy::default();
    for profile in [
        FaultProfile::default(),
        FaultProfile { drop_rate: 0.1, ..FaultProfile::default() },
        FaultProfile { crash_rate: 0.05, drop_rate: 0.05, ..FaultProfile::default() },
    ] {
        let (built, report) = Campaign::new(cfg(4))
            .faults(profile)
            .retry(retry)
            .run_traceroute(
                &w.net,
                &ps,
                TraceOptions::default(),
                |_, _, _| Vec::new(),
                |acc: &mut Vec<String>, rec| acc.push(traceroute_to_line(&rec)),
            )
            .expect("in-memory campaign cannot fail");
        let (legacy, legacy_report) = run_traceroute_campaign_faulty(
            &w.net,
            &ps,
            &cfg(4),
            |_, _| TraceOptions::default(),
            &profile,
            &retry,
            |_, _, _| Vec::new(),
            |acc: &mut Vec<String>, rec| acc.push(traceroute_to_line(&rec)),
        );
        assert_eq!(built, legacy, "drop {}", profile.drop_rate);
        assert_eq!(report, legacy_report, "drop {}", profile.drop_rate);
        // The reference runner agrees too, so all three execution paths
        // converge on the same bytes.
        let (reference, ref_report) = Campaign::new(cfg(1))
            .reference()
            .faults(profile)
            .retry(retry)
            .run_traceroute(
                &w.net,
                &ps,
                TraceOptions::default(),
                |_, _, _| Vec::new(),
                |acc: &mut Vec<String>, rec| acc.push(traceroute_to_line(&rec)),
            )
            .expect("in-memory campaign cannot fail");
        assert_eq!(built, reference, "drop {}", profile.drop_rate);
        assert_eq!(report, ref_report, "drop {}", profile.drop_rate);
    }
}

#[test]
fn ping_builder_matches_legacy_with_and_without_faults() {
    let w = World::full(13, 5);
    let ps = pairs(&w);
    let c = CampaignConfig { protocols: vec![Protocol::V4], ..cfg(4) };
    let (built, _) = Campaign::new(c.clone())
        .run_ping(&w.net, &ps)
        .expect("in-memory campaign cannot fail");
    let legacy = run_ping_campaign(&w.net, &ps, &c);
    let bits = |tls: &[s2s_probe::PingTimeline]| {
        tls.iter()
            .map(|t| t.rtts.iter().map(|r| r.to_bits()).collect::<Vec<_>>())
            .collect::<Vec<_>>()
    };
    assert_eq!(bits(&built), bits(&legacy));

    let profile = FaultProfile { drop_rate: 0.2, ..FaultProfile::default() };
    let retry = RetryPolicy { max_attempts: 1, ..RetryPolicy::default() };
    let (built_f, report) = Campaign::new(c.clone())
        .faults(profile)
        .retry(retry)
        .run_ping(&w.net, &ps)
        .expect("in-memory campaign cannot fail");
    let (legacy_f, legacy_report) =
        run_ping_campaign_faulty(&w.net, &ps, &c, &profile, &retry);
    assert_eq!(bits(&built_f), bits(&legacy_f));
    assert_eq!(report, legacy_report);
    assert!(report.dropped_probes > 0, "a 20% drop rate must lose something");
}

#[test]
fn installed_metrics_registry_changes_no_bytes() {
    let w = World::full(29, 5);
    let ps = pairs(&w);
    let plain = builder_lines(&w, Campaign::new(cfg(4)), &ps);

    let registry = Arc::new(s2s_obs::Registry::new());
    w.net.observe(&registry);
    s2s_obs::install(Arc::clone(&registry));
    let observed = builder_lines(&w, Campaign::new(cfg(4)), &ps);
    s2s_obs::uninstall();

    assert_eq!(plain, observed, "metrics must never perturb the dataset");
    let snap = registry.snapshot();
    assert!(
        snap.counters.get("campaign.runs").copied().unwrap_or(0) >= 1,
        "the observed run must have published its report"
    );
    assert!(
        snap.counters.get("netsim.probes").copied().unwrap_or(0) > 0,
        "probe traffic must show up in the shared network counters"
    );
}
