//! The one-front-door guarantee: `Campaign` (the builder) produces
//! byte-for-byte the same datasets as the sequential reference runner —
//! across seeds, thread counts, and fault profiles — and installing a
//! metrics registry changes nothing.

use s2s_integration::World;
use s2s_probe::dataset::traceroute_to_line;
use s2s_probe::{
    Campaign, CampaignConfig, FaultProfile, RetryPolicy, TraceOptions, TracerouteRecord,
};
use s2s_types::{ClusterId, Protocol, SimDuration, SimTime};
use std::sync::Arc;

fn cfg(threads: usize) -> CampaignConfig {
    CampaignConfig {
        start: SimTime::T0,
        end: SimTime::from_days(5),
        interval: SimDuration::from_hours(3),
        protocols: vec![Protocol::V4, Protocol::V6],
        threads,
    }
}

fn pairs(_w: &World) -> Vec<(ClusterId, ClusterId)> {
    (1usize..6).map(|d| (ClusterId::new(0), ClusterId::from(d))).collect()
}

/// Serializes a builder campaign to dataset lines — the byte-level view.
fn builder_lines(
    w: &World,
    c: Campaign,
    pairs: &[(ClusterId, ClusterId)],
) -> Vec<Vec<String>> {
    c.run_traceroute(
        &w.net,
        pairs,
        TraceOptions::default(),
        |_, _, _| Vec::new(),
        |acc: &mut Vec<String>, rec: TracerouteRecord| acc.push(traceroute_to_line(&rec)),
    )
    .expect("in-memory campaign cannot fail")
    .0
}

#[test]
fn builder_matches_reference_across_seeds_and_threads() {
    for seed in [3u64, 41] {
        let w = World::full(seed, 5);
        let ps = pairs(&w);
        let baseline = builder_lines(&w, Campaign::new(cfg(1)).reference(), &ps);
        for threads in [1usize, 4] {
            let built = builder_lines(&w, Campaign::new(cfg(threads)), &ps);
            assert_eq!(baseline, built, "seed {seed}, {threads} threads");
        }
    }
}

#[test]
fn faulty_builder_matches_reference_across_profiles() {
    let w = World::full(7, 5);
    let ps = pairs(&w);
    let retry = RetryPolicy::default();
    for profile in [
        FaultProfile::default(),
        FaultProfile { drop_rate: 0.1, ..FaultProfile::default() },
        FaultProfile { crash_rate: 0.05, drop_rate: 0.05, ..FaultProfile::default() },
    ] {
        let collect = |c: Campaign| {
            c.faults(profile)
                .retry(retry)
                .run_traceroute(
                    &w.net,
                    &ps,
                    TraceOptions::default(),
                    |_, _, _| Vec::new(),
                    |acc: &mut Vec<String>, rec| acc.push(traceroute_to_line(&rec)),
                )
                .expect("in-memory campaign cannot fail")
        };
        let (built, report) = collect(Campaign::new(cfg(4)));
        // The batched parallel path and the sequential reference runner
        // converge on the same bytes and the same failure accounting.
        let (reference, ref_report) = collect(Campaign::new(cfg(1)).reference());
        assert_eq!(built, reference, "drop {}", profile.drop_rate);
        assert_eq!(report, ref_report, "drop {}", profile.drop_rate);
    }
}

#[test]
fn ping_builder_is_thread_deterministic_with_and_without_faults() {
    let w = World::full(13, 5);
    let ps = pairs(&w);
    let c = CampaignConfig { protocols: vec![Protocol::V4], ..cfg(4) };
    let bits = |tls: &[s2s_probe::PingTimeline]| {
        tls.iter()
            .map(|t| t.rtts.iter().map(|r| r.to_bits()).collect::<Vec<_>>())
            .collect::<Vec<_>>()
    };
    let single = CampaignConfig { threads: 1, ..c.clone() };
    let (built, _) = Campaign::new(c.clone())
        .run_ping(&w.net, &ps)
        .expect("in-memory campaign cannot fail");
    let (baseline, _) = Campaign::new(single.clone())
        .run_ping(&w.net, &ps)
        .expect("in-memory campaign cannot fail");
    assert_eq!(bits(&built), bits(&baseline));

    let profile = FaultProfile { drop_rate: 0.2, ..FaultProfile::default() };
    let retry = RetryPolicy { max_attempts: 1, ..RetryPolicy::default() };
    let faulty = |c: CampaignConfig| {
        Campaign::new(c)
            .faults(profile)
            .retry(retry)
            .run_ping(&w.net, &ps)
            .expect("in-memory campaign cannot fail")
    };
    let (built_f, report) = faulty(c);
    let (baseline_f, baseline_report) = faulty(single);
    assert_eq!(bits(&built_f), bits(&baseline_f));
    assert_eq!(report, baseline_report);
    assert!(report.dropped_probes > 0, "a 20% drop rate must lose something");
}

#[test]
fn installed_metrics_registry_changes_no_bytes() {
    let w = World::full(29, 5);
    let ps = pairs(&w);
    let plain = builder_lines(&w, Campaign::new(cfg(4)), &ps);

    let registry = Arc::new(s2s_obs::Registry::new());
    w.net.observe(&registry);
    s2s_obs::install(Arc::clone(&registry));
    let observed = builder_lines(&w, Campaign::new(cfg(4)), &ps);
    s2s_obs::uninstall();

    assert_eq!(plain, observed, "metrics must never perturb the dataset");
    let snap = registry.snapshot();
    assert!(
        snap.counters.get("campaign.runs").copied().unwrap_or(0) >= 1,
        "the observed run must have published its report"
    );
    assert!(
        snap.counters.get("netsim.probes").copied().unwrap_or(0) > 0,
        "probe traffic must show up in the shared network counters"
    );
}
