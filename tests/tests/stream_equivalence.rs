//! The streaming short-term plane must be invisible in the verdicts: a
//! `PairProfileSink` campaign (constant-memory sketches) classifies
//! congestion the same way as the materialized ping timelines it replaces,
//! across seeds and fault profiles; sink states are thread-count
//! deterministic; and a killed checkpointed ping campaign resumes to the
//! bit-identical dataset.

use s2s_bench::{Scale, Scenario};
use s2s_core::congestion::DetectParams;
use s2s_core::Analysis;
use s2s_probe::{
    Campaign, CampaignConfig, FaultProfile, PairProfile, PairProfileSink, PingTimeline,
};
use s2s_types::{ClusterId, SimTime};

fn micro(seed: u64) -> Scenario {
    Scenario::build(Scale {
        seed,
        clusters: 12,
        days: 12,
        pairs: 16,
        ping_pairs: 20,
        cong_pairs: 8,
    })
}

fn profiles() -> Vec<(&'static str, FaultProfile)> {
    vec![
        ("quiet", FaultProfile::default()),
        (
            "noisy",
            FaultProfile {
                crash_rate: 0.02,
                drop_rate: 0.05,
                stuck_rate: 0.02,
                truncate_rate: 0.05,
                ..FaultProfile::default()
            },
        ),
    ]
}

fn mesh(scenario: &Scenario) -> Vec<(ClusterId, ClusterId)> {
    scenario.sample_pair_list(scenario.scale.ping_pairs, 0x5EC5)
}

fn run_materialized(
    scenario: &Scenario,
    cfg: &CampaignConfig,
    profile: FaultProfile,
    pairs: &[(ClusterId, ClusterId)],
) -> Vec<PingTimeline> {
    Campaign::new(cfg.clone())
        .faults(profile)
        .run_ping(&scenario.net, pairs)
        .expect("in-memory campaign cannot fail")
        .0
}

fn run_streamed(
    scenario: &Scenario,
    cfg: &CampaignConfig,
    profile: FaultProfile,
    pairs: &[(ClusterId, ClusterId)],
) -> Vec<PairProfile> {
    Campaign::new(cfg.clone())
        .faults(profile)
        .sink(PairProfileSink::for_config(cfg))
        .run_ping(&scenario.net, pairs)
        .expect("in-memory campaign cannot fail")
        .0
}

/// The acceptance invariant: streamed classification agrees with the
/// materialized path on >= 99% of (pair, protocol) timelines for every
/// seed × fault profile combination — and the constant-memory state stays
/// a fraction of the dense timelines it replaces.
#[test]
fn streamed_congestion_matches_materialized_across_seeds_and_profiles() {
    let params = DetectParams::default();
    for seed in [3u64, 11, 29] {
        let scenario = micro(seed);
        let pairs = mesh(&scenario);
        let cfg = CampaignConfig::ping_week(SimTime::T0);
        for (name, profile) in profiles() {
            let timelines = run_materialized(&scenario, &cfg, profile, &pairs);
            let streamed = run_streamed(&scenario, &cfg, profile, &pairs);
            assert_eq!(timelines.len(), streamed.len());

            // Both planes see the same offered/valid counts per timeline.
            for (tl, pf) in timelines.iter().zip(&streamed) {
                assert_eq!((tl.src, tl.dst, tl.proto), (pf.src, pf.dst, pf.proto));
                assert_eq!(
                    tl.valid_samples(),
                    pf.valid_samples(),
                    "seed {seed} {name}: valid-sample counts diverged"
                );
            }

            let exact = Analysis::new(timelines.as_slice()).congestion(&params);
            let sketched = Analysis::new(streamed.as_slice()).congestion(&params);
            let agreeing = exact
                .iter()
                .zip(&sketched)
                .filter(|(a, b)| match (a, b) {
                    (None, None) => true,
                    (Some(x), Some(y)) => x.consistent == y.consistent,
                    _ => false,
                })
                .count();
            let agreement = agreeing as f64 / exact.len().max(1) as f64;
            assert!(
                agreement >= 0.99,
                "seed {seed} {name}: streamed verdicts agree on only \
                 {:.1}% of {} timelines",
                100.0 * agreement,
                exact.len()
            );

            // The constant-memory claim: every per-(pair, protocol) state is
            // bounded by the sketch shape, never by the sample count (the
            // bench pins the flatness across window lengths; here we pin
            // the absolute bound at the default shape).
            for pf in &streamed {
                assert!(
                    pf.memory_bytes() < 32 * 1024,
                    "seed {seed} {name}: sink state for {:?}->{:?} grew to \
                     {} B — no longer constant-memory",
                    pf.src,
                    pf.dst,
                    pf.memory_bytes()
                );
            }
        }
    }
}

/// Sink states are a deterministic function of the schedule and the fault
/// profile — never of the worker count.
#[test]
fn sink_states_are_thread_count_deterministic() {
    let scenario = micro(7);
    let pairs = mesh(&scenario);
    let (_, noisy) = profiles().remove(1);
    let base = CampaignConfig::ping_week(SimTime::T0);
    let baseline = run_streamed(
        &scenario,
        &CampaignConfig { threads: 1, ..base.clone() },
        noisy,
        &pairs,
    );
    for threads in [2usize, 4] {
        let cfg = CampaignConfig { threads, ..base.clone() };
        let got = run_streamed(&scenario, &cfg, noisy, &pairs);
        assert_eq!(
            baseline, got,
            "{threads}-thread sink states diverged from the single-thread run"
        );
        // The serialized form is the state the checkpoint writes — pin the
        // bytes, not just structural equality.
        for (a, b) in baseline.iter().zip(&got) {
            assert_eq!(a.to_line(), b.to_line());
        }
    }
}

/// A checkpointed ping campaign killed mid-write resumes to the exact
/// bytes — and the resumed dataset classifies identically.
#[test]
fn killed_ping_checkpoint_resumes_bit_identically() {
    let scenario = micro(13);
    let pairs = mesh(&scenario);
    let (_, noisy) = profiles().remove(1);
    let cfg = CampaignConfig::ping_week(SimTime::T0);
    let bits = |tls: &[PingTimeline]| {
        tls.iter()
            .map(|t| t.rtts.iter().map(|r| r.to_bits()).collect::<Vec<_>>())
            .collect::<Vec<_>>()
    };

    let memory = run_materialized(&scenario, &cfg, noisy, &pairs);

    let dir = std::env::temp_dir();
    let full_path = dir.join("s2s_stream_equiv_full.ckpt");
    let _ = std::fs::remove_file(&full_path);
    let (full, _) = Campaign::new(cfg.clone())
        .faults(noisy)
        .checkpoint(&full_path)
        .run_ping(&scenario.net, &pairs)
        .expect("checkpointed campaign");
    assert_eq!(bits(&full), bits(&memory));
    let full_bytes = std::fs::read(&full_path).unwrap();

    for cut in [0usize, full_bytes.len() / 2, full_bytes.len() - 3] {
        let path = dir.join(format!("s2s_stream_equiv_cut_{cut}.ckpt"));
        std::fs::write(&path, &full_bytes[..cut]).unwrap();
        let (resumed, report) = Campaign::new(cfg.clone())
            .faults(noisy)
            .checkpoint(&path)
            .run_ping(&scenario.net, &pairs)
            .expect("resumed campaign");
        assert_eq!(
            std::fs::read(&path).unwrap(),
            full_bytes,
            "kill at byte {cut}: resumed checkpoint must be bit-identical"
        );
        assert_eq!(bits(&resumed), bits(&memory), "kill at byte {cut}");
        assert!(report.resumed_pairs <= pairs.len());
        let _ = std::fs::remove_file(&path);
    }
    let _ = std::fs::remove_file(&full_path);
}
