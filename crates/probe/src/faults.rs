//! Deterministic fault injection for the measurement plane.
//!
//! A 16-month campaign across hundreds of vantage points does not run
//! cleanly: agents crash and stay down for hours, probes are dropped or
//! wedge past their deadline, results are truncated in flight, and archive
//! lines rot. This module injects those faults *deterministically*: every
//! decision is a pure function of the profile seed and the identity of the
//! thing being decided (agent, pair, instant, attempt), never of thread
//! count, wall clock, or execution order. That is what lets a fault-ridden
//! campaign be checkpointed, killed, resumed, and still produce the
//! bit-identical dataset an uninterrupted run would have produced.
//!
//! The all-zero [`FaultProfile::default`] injects nothing, so fault-aware
//! runners degrade to exactly the behavior of the plain ones.

use s2s_types::{ClusterId, Protocol, SimTime};

/// An agent outage can hide at most this many epochs (bounds the lookback
/// scan in [`FaultInjector::agent_down`]).
const MAX_DOWNTIME_EPOCHS: u64 = 60;

/// Fault rates for one campaign. All rates are probabilities in [0, 1];
/// the default is all-zero (a perfectly healthy plane).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultProfile {
    /// Seed for every fault decision.
    pub seed: u64,
    /// Per-(agent, epoch) probability that a crash *starts*.
    pub crash_rate: f64,
    /// Mean crash downtime in epochs (exponential, ≥ 1, capped at
    /// `MAX_DOWNTIME_EPOCHS`).
    pub crash_mean_epochs: f64,
    /// Per-probe probability the result is dropped outright.
    pub drop_rate: f64,
    /// Per-probe probability the probe wedges past its deadline (counted
    /// separately from drops: stuck probes hold an agent slot).
    pub stuck_rate: f64,
    /// Per-traceroute probability the result is truncated in flight
    /// (loses its tail hops and the destination echo).
    pub truncate_rate: f64,
    /// Per-archive-line probability of corruption on export.
    pub corrupt_rate: f64,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile {
            seed: 0x5EED,
            crash_rate: 0.0,
            crash_mean_epochs: 4.0,
            drop_rate: 0.0,
            stuck_rate: 0.0,
            truncate_rate: 0.0,
            corrupt_rate: 0.0,
        }
    }
}

impl FaultProfile {
    /// True when no fault can ever fire.
    pub fn is_quiet(&self) -> bool {
        self.crash_rate == 0.0
            && self.drop_rate == 0.0
            && self.stuck_rate == 0.0
            && self.truncate_rate == 0.0
            && self.corrupt_rate == 0.0
    }

    /// Reads the profile from the `S2S_FAULT_*` environment knobs via the
    /// shared warn-and-default parsers in [`s2s_types::env`]: unset knobs
    /// silently take the default, malformed or out-of-range values print
    /// one warning to stderr and take the default. The full knob table
    /// lives in [`crate::env`].
    pub fn from_env() -> FaultProfile {
        use s2s_types::env as tenv;
        let d = FaultProfile::default();
        let crash_mean_epochs = {
            let raw = tenv::var_raw("S2S_FAULT_CRASH_LEN");
            let (v, warning) = tenv::parse_checked(
                "S2S_FAULT_CRASH_LEN",
                raw.as_deref(),
                d.crash_mean_epochs,
                |&v: &f64| v >= 1.0,
                "a number >= 1",
            );
            if let Some(w) = warning {
                eprintln!("{w}");
            }
            v
        };
        FaultProfile {
            seed: tenv::var_u64("S2S_FAULT_SEED", d.seed),
            crash_rate: tenv::var_rate("S2S_FAULT_CRASH", d.crash_rate),
            crash_mean_epochs,
            drop_rate: tenv::var_rate("S2S_FAULT_DROP", d.drop_rate),
            stuck_rate: tenv::var_rate("S2S_FAULT_STUCK", d.stuck_rate),
            truncate_rate: tenv::var_rate("S2S_FAULT_TRUNC", d.truncate_rate),
            corrupt_rate: tenv::var_rate("S2S_FAULT_CORRUPT", d.corrupt_rate),
        }
    }
}

/// What the fault plane did to one probe attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbeFault {
    /// The probe ran normally.
    None,
    /// The result never came back.
    Dropped,
    /// The probe wedged past its deadline.
    Stuck,
    /// A traceroute result lost its tail in flight.
    Truncated,
}

/// Content-keyed fault decisions for one campaign.
#[derive(Clone, Copy, Debug)]
pub struct FaultInjector {
    profile: FaultProfile,
}

// Distinct salts so decisions of different kinds never share a key stream.
const SALT_CRASH_START: u64 = 0xC0A5;
const SALT_CRASH_LEN: u64 = 0xC1EA;
const SALT_PROBE: u64 = 0x9B0B;
const SALT_TRUNC_LEN: u64 = 0x7123;
const SALT_CORRUPT: u64 = 0xC039;

pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

pub(crate) fn key(seed: u64, words: &[u64]) -> u64 {
    let mut h = mix(seed);
    for &w in words {
        h = mix(h ^ w);
    }
    h
}

pub(crate) fn uniform(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultInjector {
    /// Builds the injector for one profile.
    pub fn new(profile: FaultProfile) -> FaultInjector {
        FaultInjector { profile }
    }

    /// The profile driving this injector.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// Whether `agent` is crashed during epoch `epoch` (the campaign's
    /// sample index). A crash starting at epoch `e` takes the agent down
    /// for an exponentially distributed number of epochs decided at `e`.
    pub fn agent_down(&self, agent: ClusterId, epoch: u64) -> bool {
        if self.profile.crash_rate <= 0.0 {
            return false;
        }
        let lookback = epoch.min(MAX_DOWNTIME_EPOCHS.saturating_sub(1));
        for back in 0..=lookback {
            let start = epoch - back;
            let h = key(self.profile.seed, &[SALT_CRASH_START, agent.0 as u64, start]);
            if uniform(h) < self.profile.crash_rate && back < self.downtime_epochs(agent, start) {
                return true;
            }
        }
        false
    }

    /// Downtime length, in epochs, of a crash starting at `start`.
    fn downtime_epochs(&self, agent: ClusterId, start: u64) -> u64 {
        let h = key(self.profile.seed, &[SALT_CRASH_LEN, agent.0 as u64, start]);
        // Exponential via inverse CDF; 1 - u avoids ln(0).
        let draw = -self.profile.crash_mean_epochs * (1.0 - uniform(h)).ln();
        ((1.0 + draw) as u64).clamp(1, MAX_DOWNTIME_EPOCHS)
    }

    /// The fate of one probe attempt. Keyed by everything identifying the
    /// attempt — including `attempt` itself, so a retry of a dropped probe
    /// can succeed.
    pub fn probe_fault(
        &self,
        src: ClusterId,
        dst: ClusterId,
        proto: Protocol,
        t: SimTime,
        attempt: u32,
    ) -> ProbeFault {
        let p = &self.profile;
        if p.drop_rate == 0.0 && p.stuck_rate == 0.0 && p.truncate_rate == 0.0 {
            return ProbeFault::None;
        }
        let h = key(
            p.seed,
            &[
                SALT_PROBE,
                src.0 as u64,
                dst.0 as u64,
                proto as u64,
                u64::from(t.minutes()),
                u64::from(attempt),
            ],
        );
        // One draw partitioned across the three fates keeps them disjoint.
        let u = uniform(h);
        if u < p.stuck_rate {
            ProbeFault::Stuck
        } else if u < p.stuck_rate + p.drop_rate {
            ProbeFault::Dropped
        } else if u < p.stuck_rate + p.drop_rate + p.truncate_rate {
            ProbeFault::Truncated
        } else {
            ProbeFault::None
        }
    }

    /// How many leading hops a truncated traceroute keeps (strictly fewer
    /// than `n_hops` whenever there is anything to lose).
    pub fn truncated_hop_count(
        &self,
        src: ClusterId,
        dst: ClusterId,
        t: SimTime,
        n_hops: usize,
    ) -> usize {
        if n_hops == 0 {
            return 0;
        }
        let h = key(
            self.profile.seed,
            &[SALT_TRUNC_LEN, src.0 as u64, dst.0 as u64, u64::from(t.minutes())],
        );
        (h % n_hops as u64) as usize
    }

    /// Corrupts an archive line with probability `corrupt_rate`, keyed by
    /// the line's own content. Returns `None` when the line survives
    /// intact. Corruption keeps the line valid UTF-8 (the archive is
    /// ASCII) but mangles its content: a character replaced, the tail
    /// sheared off, or a character injected.
    pub fn corrupt_line(&self, line: &str) -> Option<String> {
        if self.profile.corrupt_rate <= 0.0 || line.is_empty() {
            return None;
        }
        let content = line.bytes().fold(0u64, |h, b| mix(h ^ u64::from(b)));
        let h = key(self.profile.seed, &[SALT_CORRUPT, content]);
        if uniform(h) >= self.profile.corrupt_rate {
            return None;
        }
        let chars: Vec<char> = line.chars().collect();
        let pos = (mix(h) % chars.len() as u64) as usize;
        let garbage = (b'!' + (mix(h ^ 0xF00D) % 90) as u8) as char;
        let mut out: Vec<char> = chars.clone();
        match mix(h ^ 0xBEEF) % 3 {
            0 => out[pos] = garbage,
            // Never truncate to nothing: the lossy reader treats blank
            // lines as legal formatting, so an emptied line would vanish
            // from the import accounting instead of counting as a skip.
            1 => out.truncate(pos.max(1)),
            _ => out.insert(pos, garbage),
        }
        let corrupted: String = out.into_iter().collect();
        // Replacing a char with itself would be a silent no-op; nudge it.
        if corrupted == line {
            return Some(format!("{line}{garbage}"));
        }
        Some(corrupted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn injector(p: FaultProfile) -> FaultInjector {
        FaultInjector::new(p)
    }

    #[test]
    fn default_profile_is_quiet() {
        let f = injector(FaultProfile::default());
        assert!(f.profile().is_quiet());
        for epoch in 0..100 {
            assert!(!f.agent_down(ClusterId::new(3), epoch));
            assert_eq!(
                f.probe_fault(
                    ClusterId::new(0),
                    ClusterId::new(1),
                    Protocol::V4,
                    SimTime::from_minutes(epoch as u32 * 180),
                    0
                ),
                ProbeFault::None
            );
        }
        assert_eq!(f.corrupt_line("T|0|1|v4|0|1|5.0|-|-|"), None);
    }

    #[test]
    fn decisions_are_deterministic_and_content_keyed() {
        let p = FaultProfile { drop_rate: 0.5, ..FaultProfile::default() };
        let a = injector(p);
        let b = injector(p);
        for i in 0..200u32 {
            let t = SimTime::from_minutes(i * 15);
            assert_eq!(
                a.probe_fault(ClusterId::new(1), ClusterId::new(2), Protocol::V6, t, 0),
                b.probe_fault(ClusterId::new(1), ClusterId::new(2), Protocol::V6, t, 0),
            );
        }
    }

    #[test]
    fn retry_attempts_get_independent_fates() {
        let p = FaultProfile { drop_rate: 0.5, ..FaultProfile::default() };
        let f = injector(p);
        let t = SimTime::from_minutes(0);
        // Over many slots, a first-attempt drop must sometimes succeed on
        // retry — the attempt index is part of the key.
        let mut recovered = 0;
        let mut first_drops = 0;
        for i in 0..500 {
            let (s, d) = (ClusterId::new(i), ClusterId::new(i + 1));
            if f.probe_fault(s, d, Protocol::V4, t, 0) == ProbeFault::Dropped {
                first_drops += 1;
                if f.probe_fault(s, d, Protocol::V4, t, 1) == ProbeFault::None {
                    recovered += 1;
                }
            }
        }
        assert!(first_drops > 150, "drop rate off: {first_drops}/500");
        assert!(recovered > first_drops / 4, "{recovered} of {first_drops} recovered");
    }

    #[test]
    fn fault_rates_are_calibrated() {
        let p = FaultProfile {
            drop_rate: 0.2,
            stuck_rate: 0.05,
            truncate_rate: 0.1,
            ..FaultProfile::default()
        };
        let f = injector(p);
        let (mut drop, mut stuck, mut trunc) = (0usize, 0usize, 0usize);
        let n = 20_000;
        for i in 0..n {
            match f.probe_fault(
                ClusterId::new(i % 97),
                ClusterId::new(i % 89 + 100),
                Protocol::V4,
                SimTime::from_minutes((i / 97) * 15),
                i % 3,
            ) {
                ProbeFault::Dropped => drop += 1,
                ProbeFault::Stuck => stuck += 1,
                ProbeFault::Truncated => trunc += 1,
                ProbeFault::None => {}
            }
        }
        let frac = |c: usize| c as f64 / n as f64;
        assert!((frac(drop) - 0.2).abs() < 0.02, "drop {}", frac(drop));
        assert!((frac(stuck) - 0.05).abs() < 0.01, "stuck {}", frac(stuck));
        assert!((frac(trunc) - 0.1).abs() < 0.015, "trunc {}", frac(trunc));
    }

    #[test]
    fn crashes_have_contiguous_downtime() {
        let p = FaultProfile {
            crash_rate: 0.02,
            crash_mean_epochs: 5.0,
            ..FaultProfile::default()
        };
        let f = injector(p);
        // Downtime arrives in runs: count transitions vs. down epochs over
        // a long horizon; exponential outages mean far fewer starts than
        // down-epochs.
        let mut down_epochs = 0;
        let mut starts = 0;
        let mut was_down = false;
        for e in 0..5_000u64 {
            let down = f.agent_down(ClusterId::new(7), e);
            if down {
                down_epochs += 1;
                if !was_down {
                    starts += 1;
                }
            }
            was_down = down;
        }
        assert!(down_epochs > 200, "outages too rare: {down_epochs}");
        assert!(
            down_epochs as f64 / starts as f64 > 2.0,
            "outages not contiguous: {down_epochs} down epochs in {starts} runs"
        );
    }

    #[test]
    fn crash_rate_zero_is_always_up() {
        let f = injector(FaultProfile { crash_rate: 0.0, ..FaultProfile::default() });
        assert!((0..1000).all(|e| !f.agent_down(ClusterId::new(0), e)));
    }

    #[test]
    fn corrupt_line_fires_at_rate_one_and_changes_content() {
        let p = FaultProfile { corrupt_rate: 1.0, ..FaultProfile::default() };
        let f = injector(p);
        for line in ["T|0|1|v4|180|1|42.125|10.0.0.1|10.1.0.1|1,0.5", "P|2|3|v6|0|15|1.5;*;2.0"] {
            let c = f.corrupt_line(line).expect("rate 1.0 must corrupt");
            assert_ne!(c, line);
            assert_eq!(f.corrupt_line(line).unwrap(), c, "corruption must be deterministic");
        }
    }

    #[test]
    fn truncation_always_shortens() {
        let f = injector(FaultProfile::default());
        for hops in 1..20 {
            let keep = f.truncated_hop_count(
                ClusterId::new(1),
                ClusterId::new(2),
                SimTime::from_minutes(180),
                hops,
            );
            assert!(keep < hops);
        }
        assert_eq!(
            f.truncated_hop_count(ClusterId::new(1), ClusterId::new(2), SimTime::T0, 0),
            0
        );
    }

    #[test]
    fn from_env_parsing_warns_and_defaults() {
        // Avoid mutating the process environment (tests run in parallel);
        // exercise the shared parsing cores directly instead.
        use s2s_types::env::{parse_checked, parse_rate};
        assert_eq!(parse_rate("S2S_FAULT_DROP", None, 0.25), (0.25, None));
        let (v, w) = parse_rate("S2S_FAULT_DROP", Some("2.0"), 0.0);
        assert_eq!(v, 0.0);
        assert!(w.unwrap().contains("S2S_FAULT_DROP"));
        // The crash-length floor rejects sub-1 means with a warning
        // instead of silently clamping.
        let (v, w) = parse_checked(
            "S2S_FAULT_CRASH_LEN",
            Some("0.2"),
            4.0,
            |&v: &f64| v >= 1.0,
            "a number >= 1",
        );
        assert_eq!(v, 4.0);
        assert!(w.is_some());
    }
}
