//! Campaign scheduling and parallel execution.
//!
//! Campaigns sweep a pair list at a fixed cadence over a time window,
//! exactly like the CDN's measurement schedule (§2): full-mesh traceroutes
//! every 3 hours, pings every 15 minutes, focused traceroutes every 30
//! minutes. Because a 16-month full-mesh campaign produces millions of
//! records, execution is *streaming*: each worker folds its pairs' records
//! into a caller-supplied accumulator instead of materializing everything.
//!
//! Work is partitioned by pair (each pair's whole timeline is folded by one
//! worker, so accumulators never need locking); workers sweep time in the
//! same epoch order, which keeps the routing oracle's configuration cache
//! hot across threads.

use crate::records::{PingRecord, TracerouteRecord};
use crate::tracer::{trace, TraceOptions};
use s2s_netsim::Network;
use s2s_types::time::sample_times;
use s2s_types::{ClusterId, Protocol, SimDuration, SimTime};

/// When and how often to measure.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// First sample instant.
    pub start: SimTime,
    /// End of the window (exclusive).
    pub end: SimTime,
    /// Sampling cadence.
    pub interval: SimDuration,
    /// Protocols to probe (each pair is measured over all of them).
    pub protocols: Vec<Protocol>,
    /// Worker threads.
    pub threads: usize,
}

impl CampaignConfig {
    /// The paper's long-term schedule: every 3 hours, both protocols.
    pub fn long_term(days: u32) -> Self {
        CampaignConfig {
            start: SimTime::T0,
            end: SimTime::from_days(days),
            interval: SimDuration::from_hours(3),
            protocols: vec![Protocol::V4, Protocol::V6],
            threads: default_threads(),
        }
    }

    /// The paper's short-term ping schedule: every 15 minutes for a week.
    pub fn ping_week(start: SimTime) -> Self {
        CampaignConfig {
            start,
            end: start + SimDuration::from_days(7),
            interval: SimDuration::from_minutes(15),
            protocols: vec![Protocol::V4, Protocol::V6],
            threads: default_threads(),
        }
    }

    /// The paper's focused traceroute schedule: every 30 minutes.
    pub fn focused_traceroute(start: SimTime, days: u32) -> Self {
        CampaignConfig {
            start,
            end: start + SimDuration::from_days(days),
            interval: SimDuration::from_minutes(30),
            protocols: vec![Protocol::V4, Protocol::V6],
            threads: default_threads(),
        }
    }

    /// Number of sampling instants.
    pub fn n_samples(&self) -> usize {
        sample_times(self.start, self.end, self.interval).count()
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

/// All ordered (directed) cluster pairs — the full mesh of §2.1.
pub fn full_mesh_pairs(n_clusters: usize) -> Vec<(ClusterId, ClusterId)> {
    let mut v = Vec::with_capacity(n_clusters * n_clusters.saturating_sub(1));
    for a in 0..n_clusters {
        for b in 0..n_clusters {
            if a != b {
                v.push((ClusterId::from(a), ClusterId::from(b)));
            }
        }
    }
    v
}

/// Directed pairs of clusters sharing a city — the colocated full-mesh
/// campaign of §2.2.
pub fn colocated_pairs(topo: &s2s_topology::Topology) -> Vec<(ClusterId, ClusterId)> {
    let mut v = Vec::new();
    for a in 0..topo.clusters.len() {
        for b in 0..topo.clusters.len() {
            if a != b && topo.clusters[a].city == topo.clusters[b].city {
                v.push((ClusterId::from(a), ClusterId::from(b)));
            }
        }
    }
    v
}

/// Runs a traceroute campaign, folding each (pair, protocol) timeline into
/// an accumulator.
///
/// * `init(src, dst, proto)` creates the accumulator for one timeline,
/// * `step(acc, record)` folds one traceroute into it.
///
/// Returns one accumulator per (pair × protocol), ordered pair-major then
/// protocol in `cfg.protocols` order.
pub fn run_traceroute_campaign<A, I, S>(
    net: &Network,
    pairs: &[(ClusterId, ClusterId)],
    cfg: &CampaignConfig,
    opts: TraceOptions,
    init: I,
    step: S,
) -> Vec<A>
where
    A: Send,
    I: Fn(ClusterId, ClusterId, Protocol) -> A + Sync,
    S: Fn(&mut A, TracerouteRecord) + Sync,
{
    run_traceroute_campaign_with(net, pairs, cfg, |_, _| opts, init, step)
}

/// Like [`run_traceroute_campaign`], but with per-measurement tool options:
/// `opts_of(t, proto)` picks the traceroute flavor for each run. This is how
/// the paper's platform behaved — classic traceroute until November 2014,
/// then Paris traceroute for IPv4 (§2.1).
pub fn run_traceroute_campaign_with<A, O, I, S>(
    net: &Network,
    pairs: &[(ClusterId, ClusterId)],
    cfg: &CampaignConfig,
    opts_of: O,
    init: I,
    step: S,
) -> Vec<A>
where
    A: Send,
    O: Fn(SimTime, Protocol) -> TraceOptions + Sync,
    I: Fn(ClusterId, ClusterId, Protocol) -> A + Sync,
    S: Fn(&mut A, TracerouteRecord) + Sync,
{
    let times: Vec<SimTime> = sample_times(cfg.start, cfg.end, cfg.interval).collect();
    let (times, opts_of, init, step) = (&times, &opts_of, &init, &step);
    run_partitioned(pairs, cfg, move |chunk| {
        let mut accs: Vec<A> = chunk
            .iter()
            .flat_map(|&(s, d)| cfg.protocols.iter().map(move |&p| init(s, d, p)))
            .collect();
        for &t in times.iter() {
            for (pi, &(src, dst)) in chunk.iter().enumerate() {
                for (qi, &proto) in cfg.protocols.iter().enumerate() {
                    let rec = trace(net, src, dst, proto, t, opts_of(t, proto));
                    step(&mut accs[pi * cfg.protocols.len() + qi], rec);
                }
            }
        }
        accs
    })
}

/// One (pair, protocol) ping timeline: a slot per sampling instant, `NaN`
/// for lost probes (kept dense so FFTs index by time directly).
#[derive(Clone, Debug)]
pub struct PingTimeline {
    /// Source vantage point.
    pub src: ClusterId,
    /// Destination vantage point.
    pub dst: ClusterId,
    /// Protocol.
    pub proto: Protocol,
    /// First sample instant.
    pub start: SimTime,
    /// Sampling cadence.
    pub interval: SimDuration,
    /// RTTs in ms; `NaN` marks a lost or unreachable sample.
    pub rtts: Vec<f32>,
}

impl PingTimeline {
    /// Number of successful samples.
    pub fn valid_samples(&self) -> usize {
        self.rtts.iter().filter(|r| !r.is_nan()).count()
    }

    /// The valid RTTs as f64 (for the stats toolkit).
    pub fn valid_rtts(&self) -> Vec<f64> {
        self.rtts.iter().filter(|r| !r.is_nan()).map(|&r| f64::from(r)).collect()
    }

    /// RTTs with lost samples interpolated from the previous valid sample
    /// (FFT input must be regular). Leading losses take the first valid
    /// value. `None` when no sample is valid.
    pub fn filled_rtts(&self) -> Option<Vec<f64>> {
        let first = self.rtts.iter().find(|r| !r.is_nan())?;
        let mut last = f64::from(*first);
        Some(
            self.rtts
                .iter()
                .map(|&r| {
                    if r.is_nan() {
                        last
                    } else {
                        last = f64::from(r);
                        last
                    }
                })
                .collect(),
        )
    }
}

/// Runs a ping campaign, returning a dense timeline per (pair, protocol).
pub fn run_ping_campaign(
    net: &Network,
    pairs: &[(ClusterId, ClusterId)],
    cfg: &CampaignConfig,
) -> Vec<PingTimeline> {
    let times: Vec<SimTime> = sample_times(cfg.start, cfg.end, cfg.interval).collect();
    let times = &times;
    run_partitioned(pairs, cfg, move |chunk| {
        let mut out: Vec<PingTimeline> = chunk
            .iter()
            .flat_map(|&(s, d)| {
                cfg.protocols.iter().map(move |&p| PingTimeline {
                    src: s,
                    dst: d,
                    proto: p,
                    start: cfg.start,
                    interval: cfg.interval,
                    rtts: Vec::with_capacity(times.len()),
                })
            })
            .collect();
        for (ti, &t) in times.iter().enumerate() {
            for (pi, &(src, dst)) in chunk.iter().enumerate() {
                for (qi, &proto) in cfg.protocols.iter().enumerate() {
                    let rtt = net.ping(src, dst, proto, t, ti as u64);
                    out[pi * cfg.protocols.len() + qi]
                        .rtts
                        .push(rtt.map(|r| r as f32).unwrap_or(f32::NAN));
                }
            }
        }
        out
    })
}

/// Convenience: a single ping as a [`PingRecord`].
pub fn ping_once(
    net: &Network,
    src: ClusterId,
    dst: ClusterId,
    proto: Protocol,
    t: SimTime,
) -> PingRecord {
    PingRecord { src, dst, proto, t, rtt_ms: net.ping(src, dst, proto, t, 0) }
}

/// Partitions pairs across workers and concatenates per-chunk outputs in
/// pair order.
fn run_partitioned<A, F>(
    pairs: &[(ClusterId, ClusterId)],
    cfg: &CampaignConfig,
    work: F,
) -> Vec<A>
where
    A: Send,
    F: Fn(&[(ClusterId, ClusterId)]) -> Vec<A> + Sync,
{
    let threads = cfg.threads.max(1).min(pairs.len().max(1));
    if threads <= 1 || pairs.len() < 4 {
        return work(pairs);
    }
    let chunk_size = pairs.len().div_ceil(threads);
    let chunks: Vec<&[(ClusterId, ClusterId)]> = pairs.chunks(chunk_size).collect();
    let mut results: Vec<Option<Vec<A>>> = (0..chunks.len()).map(|_| None).collect();
    crossbeam::scope(|scope| {
        let mut handles = Vec::new();
        for chunk in &chunks {
            let work = &work;
            handles.push(scope.spawn(move |_| work(chunk)));
        }
        for (slot, h) in results.iter_mut().zip(handles) {
            *slot = Some(h.join().expect("campaign worker panicked"));
        }
    })
    .expect("campaign scope failed");
    results.into_iter().flat_map(|r| r.expect("worker result")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2s_netsim::{CongestionModel, NetworkParams};
    use s2s_routing::{Dynamics, RouteOracle};
    use s2s_topology::{build_topology, TopologyParams};
    use std::sync::Arc;

    fn network(seed: u64) -> Network {
        let topo = Arc::new(build_topology(&TopologyParams::tiny(seed)));
        let oracle = Arc::new(RouteOracle::new(
            Arc::clone(&topo),
            Arc::new(Dynamics::all_up(&topo, SimTime::from_days(10))),
        ));
        Network::new(
            oracle,
            CongestionModel::none(),
            NetworkParams { loss_prob: 0.0, spike_prob: 0.0, ..NetworkParams::default() },
        )
    }

    #[test]
    fn full_mesh_has_n_times_n_minus_one() {
        let pairs = full_mesh_pairs(5);
        assert_eq!(pairs.len(), 20);
        assert!(pairs.iter().all(|(a, b)| a != b));
    }

    #[test]
    fn campaign_counts_match_schedule() {
        let net = network(42);
        let pairs = vec![
            (ClusterId::new(0), ClusterId::new(1)),
            (ClusterId::new(2), ClusterId::new(3)),
        ];
        let cfg = CampaignConfig {
            start: SimTime::T0,
            end: SimTime::from_days(1),
            interval: SimDuration::from_hours(3),
            protocols: vec![Protocol::V4, Protocol::V6],
            threads: 2,
        };
        assert_eq!(cfg.n_samples(), 8);
        let counts = run_traceroute_campaign(
            &net,
            &pairs,
            &cfg,
            TraceOptions::default(),
            |_, _, _| 0usize,
            |acc, _| *acc += 1,
        );
        // 2 pairs × 2 protocols accumulators, 8 records each.
        assert_eq!(counts, vec![8, 8, 8, 8]);
    }

    #[test]
    fn accumulators_are_pair_major_proto_minor() {
        let net = network(42);
        let pairs =
            vec![(ClusterId::new(0), ClusterId::new(1)), (ClusterId::new(1), ClusterId::new(2))];
        let cfg = CampaignConfig {
            start: SimTime::T0,
            end: SimTime::from_hours(3),
            interval: SimDuration::from_hours(3),
            protocols: vec![Protocol::V4, Protocol::V6],
            threads: 1,
        };
        let ids = run_traceroute_campaign(
            &net,
            &pairs,
            &cfg,
            TraceOptions::default(),
            |s, d, p| (s, d, p),
            |_, _| {},
        );
        assert_eq!(ids[0], (ClusterId::new(0), ClusterId::new(1), Protocol::V4));
        assert_eq!(ids[1], (ClusterId::new(0), ClusterId::new(1), Protocol::V6));
        assert_eq!(ids[2], (ClusterId::new(1), ClusterId::new(2), Protocol::V4));
    }

    #[test]
    fn parallel_equals_serial() {
        let net = network(42);
        let pairs = full_mesh_pairs(6);
        let mk_cfg = |threads| CampaignConfig {
            start: SimTime::T0,
            end: SimTime::from_hours(9),
            interval: SimDuration::from_hours(3),
            protocols: vec![Protocol::V4],
            threads,
        };
        let collect = |cfg: &CampaignConfig| {
            run_traceroute_campaign(
                &net,
                &pairs,
                cfg,
                TraceOptions::default(),
                |_, _, _| Vec::new(),
                |acc: &mut Vec<Option<f64>>, rec| acc.push(rec.e2e_rtt_ms),
            )
        };
        assert_eq!(collect(&mk_cfg(1)), collect(&mk_cfg(4)));
    }

    #[test]
    fn ping_campaign_produces_dense_timelines() {
        let net = network(42);
        let pairs = vec![(ClusterId::new(0), ClusterId::new(2))];
        let cfg = CampaignConfig {
            start: SimTime::T0,
            end: SimTime::from_hours(2),
            interval: SimDuration::from_minutes(15),
            protocols: vec![Protocol::V4],
            threads: 1,
        };
        let tl = run_ping_campaign(&net, &pairs, &cfg);
        assert_eq!(tl.len(), 1);
        assert_eq!(tl[0].rtts.len(), 8);
        assert_eq!(tl[0].valid_samples(), 8, "no loss configured");
        assert!(tl[0].valid_rtts().iter().all(|&r| r > 0.0));
    }

    #[test]
    fn filled_rtts_interpolates_losses() {
        let tl = PingTimeline {
            src: ClusterId::new(0),
            dst: ClusterId::new(1),
            proto: Protocol::V4,
            start: SimTime::T0,
            interval: SimDuration::from_minutes(15),
            rtts: vec![f32::NAN, 10.0, f32::NAN, 12.0, f32::NAN],
        };
        assert_eq!(tl.filled_rtts().unwrap(), vec![10.0, 10.0, 10.0, 12.0, 12.0]);
        assert_eq!(tl.valid_samples(), 2);
        let empty = PingTimeline { rtts: vec![f32::NAN], ..tl };
        assert!(empty.filled_rtts().is_none());
    }

    #[test]
    fn colocated_pairs_share_cities() {
        let topo = build_topology(&TopologyParams::tiny(42));
        let pairs = colocated_pairs(&topo);
        for (a, b) in &pairs {
            assert_eq!(topo.clusters[a.index()].city, topo.clusters[b.index()].city);
        }
    }

    #[test]
    fn ping_once_returns_record() {
        let net = network(42);
        let r = ping_once(&net, ClusterId::new(0), ClusterId::new(1), Protocol::V4, SimTime::T0);
        assert!(r.rtt_ms.is_some());
        assert_eq!(r.src, ClusterId::new(0));
    }
}
