//! Campaign scheduling and parallel execution.
//!
//! Campaigns sweep a pair list at a fixed cadence over a time window,
//! exactly like the CDN's measurement schedule (§2): full-mesh traceroutes
//! every 3 hours, pings every 15 minutes, focused traceroutes every 30
//! minutes. Because a 16-month full-mesh campaign produces millions of
//! records, execution is *streaming*: each worker folds its pairs' records
//! into a caller-supplied accumulator instead of materializing everything.
//!
//! Work is partitioned by pair (each pair's whole timeline is folded by one
//! worker, so accumulators never need locking). Within a worker, probes are
//! batched by **(availability epoch, destination AS)**: routing is
//! piecewise-constant between link-failure breakpoints, so the schedule's
//! sample instants are grouped into epoch runs and pairs are visited in
//! destination-AS order inside each run — every routing computation happens
//! once per epoch and every destination's route table stays hot while it is
//! being probed. The batching only reorders *when* slots execute; each
//! (pair, protocol) accumulator still folds its records in time order, and
//! probes are content-keyed, so the dataset is byte-identical to the
//! sequential reference runner regardless of thread count or batch size
//! (`S2S_EPOCH_BATCH` caps samples per run; unset means unlimited).

use crate::dataset::{traceroute_from_line, traceroute_to_line};
use crate::faults::{FaultInjector, FaultProfile, ProbeFault};
use crate::records::{PingRecord, TracerouteRecord};
use crate::stream::StreamSink;
use crate::tracer::{trace, TraceOptions};
use s2s_netsim::Network;
use s2s_types::time::sample_times;
use s2s_types::{ClusterId, Coverage, Protocol, SimDuration, SimTime};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// When and how often to measure.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// First sample instant.
    pub start: SimTime,
    /// End of the window (exclusive).
    pub end: SimTime,
    /// Sampling cadence.
    pub interval: SimDuration,
    /// Protocols to probe (each pair is measured over all of them).
    pub protocols: Vec<Protocol>,
    /// Worker threads.
    pub threads: usize,
}

impl CampaignConfig {
    /// The paper's long-term schedule: every 3 hours, both protocols.
    pub fn long_term(days: u32) -> Self {
        CampaignConfig {
            start: SimTime::T0,
            end: SimTime::from_days(days),
            interval: SimDuration::from_hours(3),
            protocols: vec![Protocol::V4, Protocol::V6],
            threads: default_threads(),
        }
    }

    /// The paper's short-term ping schedule: every 15 minutes for a week.
    pub fn ping_week(start: SimTime) -> Self {
        CampaignConfig {
            start,
            end: start + SimDuration::from_days(7),
            interval: SimDuration::from_minutes(15),
            protocols: vec![Protocol::V4, Protocol::V6],
            threads: default_threads(),
        }
    }

    /// The paper's focused traceroute schedule: every 30 minutes.
    pub fn focused_traceroute(start: SimTime, days: u32) -> Self {
        CampaignConfig {
            start,
            end: start + SimDuration::from_days(days),
            interval: SimDuration::from_minutes(30),
            protocols: vec![Protocol::V4, Protocol::V6],
            threads: default_threads(),
        }
    }

    /// Number of sampling instants.
    pub fn n_samples(&self) -> usize {
        sample_times(self.start, self.end, self.interval).count()
    }

    /// The sampling instants themselves, in schedule order — what the
    /// fabric's degraded mode iterates to synthesize lost records for an
    /// abandoned shard's slots.
    pub fn times(&self) -> Vec<SimTime> {
        sample_times(self.start, self.end, self.interval).collect()
    }
}

/// Worker-thread default: the `S2S_THREADS` environment knob when set to
/// a valid integer ≥ 1 (malformed values warn and fall back), otherwise
/// the machine's available parallelism. An alias for
/// [`crate::env::threads`], kept here because campaign configs are where
/// the value lands.
pub fn default_threads() -> usize {
    crate::env::threads()
}

/// Groups consecutive sample instants into runs that share one routing
/// epoch (capped at `cap` samples per run). Concatenated, the runs cover
/// `times` in order, so sweeping them run-by-run preserves the per-pair
/// time order of the schedule.
fn epoch_runs(net: &Network, times: &[SimTime], cap: usize) -> Vec<std::ops::Range<usize>> {
    let dynamics = net.oracle().dynamics();
    let mut runs = Vec::new();
    let mut start = 0;
    while start < times.len() {
        let epoch = dynamics.epoch_of(times[start]);
        let mut end = start + 1;
        while end < times.len()
            && end - start < cap
            && dynamics.epoch_of(times[end]) == epoch
        {
            end += 1;
        }
        runs.push(start..end);
        start = end;
    }
    runs
}

/// The order a worker visits its pairs in: grouped by destination AS (ties
/// broken by position, so the order is deterministic). Consecutive pairs
/// then share per-destination route tables inside one epoch run.
fn dst_batched_order(net: &Network, chunk: &[(ClusterId, ClusterId)]) -> Vec<usize> {
    let topo = net.oracle().topology();
    let mut order: Vec<usize> = (0..chunk.len()).collect();
    order.sort_by_key(|&i| (topo.clusters[chunk[i].1.index()].host_as, i));
    order
}

/// All ordered (directed) cluster pairs — the full mesh of §2.1.
pub fn full_mesh_pairs(n_clusters: usize) -> Vec<(ClusterId, ClusterId)> {
    let mut v = Vec::with_capacity(n_clusters * n_clusters.saturating_sub(1));
    for a in 0..n_clusters {
        for b in 0..n_clusters {
            if a != b {
                v.push((ClusterId::from(a), ClusterId::from(b)));
            }
        }
    }
    v
}

/// Directed pairs of clusters sharing a city — the colocated full-mesh
/// campaign of §2.2.
pub fn colocated_pairs(topo: &s2s_topology::Topology) -> Vec<(ClusterId, ClusterId)> {
    let mut v = Vec::new();
    for a in 0..topo.clusters.len() {
        for b in 0..topo.clusters.len() {
            if a != b && topo.clusters[a].city == topo.clusters[b].city {
                v.push((ClusterId::from(a), ClusterId::from(b)));
            }
        }
    }
    v
}

/// The plain (fault-free) epoch-batched parallel runner. The builder
/// always routes through the fault-aware cores (an all-zero profile is a
/// no-op by construction); this one survives as the independent baseline
/// the internal zero-fault equivalence tests compare against.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn traceroute_with_impl<A, O, I, S>(
    net: &Network,
    pairs: &[(ClusterId, ClusterId)],
    cfg: &CampaignConfig,
    opts_of: O,
    init: I,
    step: S,
) -> Vec<A>
where
    A: Send,
    O: Fn(SimTime, Protocol) -> TraceOptions + Sync,
    I: Fn(ClusterId, ClusterId, Protocol) -> A + Sync,
    S: Fn(&mut A, TracerouteRecord) + Sync,
{
    let (times, runs) = s2s_obs::timed("campaign.plan", || {
        let times: Vec<SimTime> = sample_times(cfg.start, cfg.end, cfg.interval).collect();
        let runs = epoch_runs(net, &times, crate::env::epoch_batch_cap());
        (times, runs)
    });
    let (times, runs, opts_of, init, step) = (&times, &runs, &opts_of, &init, &step);
    s2s_obs::timed("campaign.execute", || {
        run_partitioned(pairs, cfg, move |chunk| {
            let mut accs: Vec<A> = chunk
                .iter()
                .flat_map(|&(s, d)| cfg.protocols.iter().map(move |&p| init(s, d, p)))
                .collect();
            let order = dst_batched_order(net, chunk);
            for run in runs.iter() {
                for &pi in &order {
                    let (src, dst) = chunk[pi];
                    for ti in run.clone() {
                        let t = times[ti];
                        for (qi, &proto) in cfg.protocols.iter().enumerate() {
                            let rec = trace(net, src, dst, proto, t, opts_of(t, proto));
                            step(&mut accs[pi * cfg.protocols.len() + qi], rec);
                        }
                    }
                }
            }
            accs
        })
    })
}

/// One (pair, protocol) ping timeline: a slot per sampling instant, `NaN`
/// for lost probes (kept dense so FFTs index by time directly).
#[derive(Clone, Debug)]
pub struct PingTimeline {
    /// Source vantage point.
    pub src: ClusterId,
    /// Destination vantage point.
    pub dst: ClusterId,
    /// Protocol.
    pub proto: Protocol,
    /// First sample instant.
    pub start: SimTime,
    /// Sampling cadence.
    pub interval: SimDuration,
    /// RTTs in ms; `NaN` marks a lost or unreachable sample.
    pub rtts: Vec<f32>,
}

impl PingTimeline {
    /// Number of successful samples.
    pub fn valid_samples(&self) -> usize {
        self.rtts.iter().filter(|r| !r.is_nan()).count()
    }

    /// The valid RTTs as f64 (for the stats toolkit).
    pub fn valid_rtts(&self) -> Vec<f64> {
        self.rtts.iter().filter(|r| !r.is_nan()).map(|&r| f64::from(r)).collect()
    }

    /// RTTs with lost samples interpolated from the previous valid sample
    /// (FFT input must be regular). Leading losses take the first valid
    /// value. `None` when no sample is valid.
    pub fn filled_rtts(&self) -> Option<Vec<f64>> {
        let first = self.rtts.iter().find(|r| !r.is_nan())?;
        let mut last = f64::from(*first);
        Some(
            self.rtts
                .iter()
                .map(|&r| {
                    if r.is_nan() {
                        last
                    } else {
                        last = f64::from(r);
                        last
                    }
                })
                .collect(),
        )
    }
}

/// The plain (fault-free) parallel ping runner — the independent baseline
/// of the internal zero-fault equivalence tests (the builder always routes
/// through the fault-aware core).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn ping_impl(
    net: &Network,
    pairs: &[(ClusterId, ClusterId)],
    cfg: &CampaignConfig,
) -> Vec<PingTimeline> {
    let times: Vec<SimTime> = sample_times(cfg.start, cfg.end, cfg.interval).collect();
    let times = &times;
    run_partitioned(pairs, cfg, move |chunk| {
        let mut out: Vec<PingTimeline> = chunk
            .iter()
            .flat_map(|&(s, d)| {
                cfg.protocols.iter().map(move |&p| PingTimeline {
                    src: s,
                    dst: d,
                    proto: p,
                    start: cfg.start,
                    interval: cfg.interval,
                    rtts: Vec::with_capacity(times.len()),
                })
            })
            .collect();
        for (ti, &t) in times.iter().enumerate() {
            for (pi, &(src, dst)) in chunk.iter().enumerate() {
                for (qi, &proto) in cfg.protocols.iter().enumerate() {
                    let rtt = net.ping(src, dst, proto, t, ti as u64);
                    out[pi * cfg.protocols.len() + qi]
                        .rtts
                        .push(rtt.map(|r| r as f32).unwrap_or(f32::NAN));
                }
            }
        }
        out
    })
}

/// Convenience: a single ping as a [`PingRecord`].
pub fn ping_once(
    net: &Network,
    src: ClusterId,
    dst: ClusterId,
    proto: Protocol,
    t: SimTime,
) -> PingRecord {
    PingRecord { src, dst, proto, t, rtt_ms: net.ping(src, dst, proto, t, 0) }
}

/// Retry and timeout policy for the hardened campaign runners.
///
/// The backoff and deadline fields are *accounting* quantities: the
/// simulator's clock is the campaign schedule, so a retry re-probes the
/// same nominal instant, but the time an operator would have lost to
/// backoffs and wedged probes is tallied in the [`CampaignReport`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Attempts per probe slot (first try + retries), ≥ 1.
    pub max_attempts: u32,
    /// Deadline after which a stuck probe is abandoned, ms.
    pub probe_deadline_ms: f64,
    /// First retry backoff, ms; doubles per subsequent retry.
    pub backoff_base_ms: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 3, probe_deadline_ms: 5_000.0, backoff_base_ms: 100.0 }
    }
}

/// What a fault-aware campaign did, slot by slot. A *slot* is one
/// (pair, protocol, instant) in the schedule.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CampaignReport {
    /// Slots the schedule offered to this process run.
    pub offered: usize,
    /// Probe attempts launched, including retries.
    pub attempted: usize,
    /// Slots that delivered a clean record.
    pub delivered: usize,
    /// Slots that delivered a truncated record (tail hops and destination
    /// echo lost in flight).
    pub truncated: usize,
    /// Retry attempts performed after a failed attempt.
    pub retried: usize,
    /// Slots abandoned after exhausting every attempt.
    pub gave_up: usize,
    /// Attempts lost to dropped results.
    pub dropped_probes: usize,
    /// Attempts lost to probes wedging past their deadline.
    pub stuck_probes: usize,
    /// Slots skipped because the source agent was crashed.
    pub agent_down_slots: usize,
    /// Pairs replayed from a checkpoint instead of being re-measured.
    pub resumed_pairs: usize,
    /// Operator time spent in retry backoffs, ms.
    pub backoff_ms: f64,
    /// Operator time lost waiting out stuck-probe deadlines, ms.
    pub deadline_ms_lost: f64,
    /// Workers that panicked (their pairs are in `poisoned_pairs`).
    pub worker_panics: usize,
    /// Pairs whose worker panicked; their accumulators are empty.
    pub poisoned_pairs: Vec<(ClusterId, ClusterId)>,
    /// Slots on shards the fabric abandoned after its retry budget: the
    /// schedule offered them, no process ever measured them. Dataset rows
    /// exist (synthetic lost records keep the timeline dense) but carry no
    /// signal, so they count against coverage like `agent_down_slots`.
    pub lost_slots: usize,
}

impl CampaignReport {
    /// Folds another report in (order-independent except for the poisoned
    /// pair list, which concatenates).
    pub fn merge(&mut self, other: &CampaignReport) {
        self.offered += other.offered;
        self.attempted += other.attempted;
        self.delivered += other.delivered;
        self.truncated += other.truncated;
        self.retried += other.retried;
        self.gave_up += other.gave_up;
        self.dropped_probes += other.dropped_probes;
        self.stuck_probes += other.stuck_probes;
        self.agent_down_slots += other.agent_down_slots;
        self.resumed_pairs += other.resumed_pairs;
        self.backoff_ms += other.backoff_ms;
        self.deadline_ms_lost += other.deadline_ms_lost;
        self.worker_panics += other.worker_panics;
        self.poisoned_pairs.extend(other.poisoned_pairs.iter().copied());
        self.lost_slots += other.lost_slots;
    }

    /// Coverage of the slots this run measured itself: clean deliveries
    /// over offered slots (truncated and abandoned slots are gaps).
    pub fn coverage(&self) -> Coverage {
        Coverage::new(self.delivered, self.offered)
    }

    /// Serializes the report to one `R|`-tagged line for the fabric's
    /// framed worker protocol. Floats render shortest-round-trip, so
    /// [`CampaignReport::from_line`] restores the exact values; the
    /// poisoned pair list rides along as `src,dst` entries.
    pub fn to_line(&self) -> String {
        let pairs: Vec<String> =
            self.poisoned_pairs.iter().map(|(s, d)| format!("{},{}", s.0, d.0)).collect();
        format!(
            "R|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}",
            self.offered,
            self.attempted,
            self.delivered,
            self.truncated,
            self.retried,
            self.gave_up,
            self.dropped_probes,
            self.stuck_probes,
            self.agent_down_slots,
            self.resumed_pairs,
            self.backoff_ms,
            self.deadline_ms_lost,
            self.worker_panics,
            self.lost_slots,
            pairs.join(";")
        )
    }

    /// Parses a line produced by [`CampaignReport::to_line`].
    pub fn from_line(line: &str) -> Result<CampaignReport, String> {
        let mut it = line.split('|');
        if it.next() != Some("R") {
            return Err(format!("expected R-tagged report line, got '{line}'"));
        }
        let mut field = |name: &str| {
            it.next().ok_or_else(|| format!("report line missing field {name}"))
        };
        fn num<T: std::str::FromStr>(s: &str, name: &str) -> Result<T, String> {
            s.parse().map_err(|_| format!("bad report field {name}='{s}'"))
        }
        let mut r = CampaignReport {
            offered: num(field("offered")?, "offered")?,
            attempted: num(field("attempted")?, "attempted")?,
            delivered: num(field("delivered")?, "delivered")?,
            truncated: num(field("truncated")?, "truncated")?,
            retried: num(field("retried")?, "retried")?,
            gave_up: num(field("gave_up")?, "gave_up")?,
            dropped_probes: num(field("dropped_probes")?, "dropped_probes")?,
            stuck_probes: num(field("stuck_probes")?, "stuck_probes")?,
            agent_down_slots: num(field("agent_down_slots")?, "agent_down_slots")?,
            resumed_pairs: num(field("resumed_pairs")?, "resumed_pairs")?,
            backoff_ms: num(field("backoff_ms")?, "backoff_ms")?,
            deadline_ms_lost: num(field("deadline_ms_lost")?, "deadline_ms_lost")?,
            worker_panics: num(field("worker_panics")?, "worker_panics")?,
            lost_slots: num(field("lost_slots")?, "lost_slots")?,
            poisoned_pairs: Vec::new(),
        };
        let pairs = field("poisoned_pairs")?;
        if it.next().is_some() {
            return Err(format!("trailing fields in report line '{line}'"));
        }
        for entry in pairs.split(';').filter(|e| !e.is_empty()) {
            let (s, d) = entry
                .split_once(',')
                .ok_or_else(|| format!("bad poisoned pair '{entry}'"))?;
            r.poisoned_pairs.push((
                ClusterId::new(num::<u32>(s, "poisoned src")?),
                ClusterId::new(num::<u32>(d, "poisoned dst")?),
            ));
        }
        Ok(r)
    }
}

/// How one slot resolved under fault injection.
enum SlotOutcome {
    /// A record to fold (clean or truncated).
    Record(TracerouteRecord),
    /// Nothing came back; the caller folds a synthetic lost record so the
    /// timeline stays dense (a gap, not a hole, in the schedule).
    Lost,
}

/// A record standing in for a slot that produced nothing: the schedule
/// offered the measurement, the plane lost it. Public so the fabric's
/// degraded mode can synthesize byte-identical rows for shards abandoned
/// after the retry budget.
pub fn lost_record(
    src: ClusterId,
    dst: ClusterId,
    proto: Protocol,
    t: SimTime,
) -> TracerouteRecord {
    TracerouteRecord {
        src,
        dst,
        proto,
        t,
        hops: Vec::new(),
        reached: false,
        e2e_rtt_ms: None,
        src_addr: None,
        dst_addr: None,
    }
}

/// Resolves one traceroute slot under the fault plane: crash check, then
/// up to `retry.max_attempts` probes with exponential backoff accounting.
#[allow(clippy::too_many_arguments)]
fn traceroute_slot(
    net: &Network,
    injector: &FaultInjector,
    retry: &RetryPolicy,
    src: ClusterId,
    dst: ClusterId,
    proto: Protocol,
    t: SimTime,
    epoch: u64,
    opts: TraceOptions,
    report: &mut CampaignReport,
) -> SlotOutcome {
    report.offered += 1;
    if injector.agent_down(src, epoch) {
        // A crashed agent launches nothing this epoch; retrying from the
        // same dead box is pointless.
        report.agent_down_slots += 1;
        return SlotOutcome::Lost;
    }
    let attempts = retry.max_attempts.max(1);
    for attempt in 0..attempts {
        report.attempted += 1;
        match injector.probe_fault(src, dst, proto, t, attempt) {
            ProbeFault::None => {
                report.delivered += 1;
                return SlotOutcome::Record(trace(net, src, dst, proto, t, opts));
            }
            ProbeFault::Truncated => {
                // The probe completed but its result lost the tail in
                // flight: deliver what survived. No retry — the agent got
                // *a* result and moves on.
                let mut rec = trace(net, src, dst, proto, t, opts);
                let keep = injector.truncated_hop_count(src, dst, t, rec.hops.len());
                rec.hops.truncate(keep);
                rec.reached = false;
                rec.e2e_rtt_ms = None;
                rec.dst_addr = None;
                report.truncated += 1;
                return SlotOutcome::Record(rec);
            }
            ProbeFault::Dropped => report.dropped_probes += 1,
            ProbeFault::Stuck => {
                report.stuck_probes += 1;
                report.deadline_ms_lost += retry.probe_deadline_ms;
            }
        }
        if attempt + 1 < attempts {
            report.retried += 1;
            report.backoff_ms += retry.backoff_base_ms * f64::from(1u32 << attempt.min(20));
        }
    }
    report.gave_up += 1;
    SlotOutcome::Lost
}

/// The fault-aware, panic-isolated epoch-batched parallel execution core
/// (see [`Campaign::run_traceroute_with`] for the public front door).
///
/// The measurement plane sits behind a [`FaultProfile`]: crashed agents
/// skip their epochs, dropped and stuck probes retry under `retry`,
/// truncated results are delivered as incomplete records, and slots that
/// produce nothing fold a synthetic lost record so every timeline stays
/// dense (one sample per scheduled instant). Workers are panic-isolated: a
/// panicking worker poisons only its own pairs (reported, with empty
/// accumulators) instead of taking the campaign down.
///
/// Every fault decision is content-keyed on the profile seed, so the
/// outcome is independent of thread count and execution order — and under
/// the all-zero default profile the accumulators are identical to the
/// plain runner's.
#[allow(clippy::too_many_arguments)]
pub(crate) fn traceroute_faulty_impl<A, O, I, S>(
    net: &Network,
    pairs: &[(ClusterId, ClusterId)],
    cfg: &CampaignConfig,
    opts_of: O,
    profile: &FaultProfile,
    retry: &RetryPolicy,
    init: I,
    step: S,
) -> (Vec<A>, CampaignReport)
where
    A: Send,
    O: Fn(SimTime, Protocol) -> TraceOptions + Sync,
    I: Fn(ClusterId, ClusterId, Protocol) -> A + Sync,
    S: Fn(&mut A, TracerouteRecord) + Sync,
{
    let injector = FaultInjector::new(*profile);
    let (times, runs) = s2s_obs::timed("campaign.plan", || {
        let times: Vec<SimTime> = sample_times(cfg.start, cfg.end, cfg.interval).collect();
        let runs = epoch_runs(net, &times, crate::env::epoch_batch_cap());
        (times, runs)
    });
    let (times, runs, opts_of, init, step) = (&times, &runs, &opts_of, &init, &step);
    let t_exec = std::time::Instant::now();
    let out = run_partitioned_isolated(
        pairs,
        cfg,
        move |chunk| {
            let mut report = CampaignReport::default();
            let mut accs: Vec<A> = chunk
                .iter()
                .flat_map(|&(s, d)| cfg.protocols.iter().map(move |&p| init(s, d, p)))
                .collect();
            let order = dst_batched_order(net, chunk);
            for run in runs.iter() {
                for &pi in &order {
                    let (src, dst) = chunk[pi];
                    for ti in run.clone() {
                        let t = times[ti];
                        for (qi, &proto) in cfg.protocols.iter().enumerate() {
                            let outcome = traceroute_slot(
                                net,
                                &injector,
                                retry,
                                src,
                                dst,
                                proto,
                                t,
                                // Fault decisions are keyed on the *sample
                                // index*, not the routing epoch — keeping
                                // the key stable under any batching.
                                ti as u64,
                                opts_of(t, proto),
                                &mut report,
                            );
                            let rec = match outcome {
                                SlotOutcome::Record(rec) => rec,
                                SlotOutcome::Lost => lost_record(src, dst, proto, t),
                            };
                            step(&mut accs[pi * cfg.protocols.len() + qi], rec);
                        }
                    }
                }
            }
            (accs, report)
        },
        move |chunk| {
            chunk
                .iter()
                .flat_map(|&(s, d)| cfg.protocols.iter().map(move |&p| init(s, d, p)))
                .collect()
        },
    );
    if let Some(reg) = s2s_obs::installed() {
        reg.span("campaign.execute").record(t_exec.elapsed());
    }
    out
}

/// The sequential, unbatched fault-aware execution core — the reference
/// side of the byte-identity suites and of [`Campaign::reference`]:
/// validates that batching changes neither the accumulators nor the
/// [`CampaignReport`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn traceroute_faulty_reference_impl<A, O, I, S>(
    net: &Network,
    pairs: &[(ClusterId, ClusterId)],
    cfg: &CampaignConfig,
    opts_of: O,
    profile: &FaultProfile,
    retry: &RetryPolicy,
    init: I,
    step: S,
) -> (Vec<A>, CampaignReport)
where
    O: Fn(SimTime, Protocol) -> TraceOptions,
    I: Fn(ClusterId, ClusterId, Protocol) -> A,
    S: Fn(&mut A, TracerouteRecord),
{
    let times: Vec<SimTime> = sample_times(cfg.start, cfg.end, cfg.interval).collect();
    let injector = FaultInjector::new(*profile);
    let mut report = CampaignReport::default();
    let init = &init;
    let mut accs: Vec<A> = pairs
        .iter()
        .flat_map(|&(s, d)| cfg.protocols.iter().map(move |&p| init(s, d, p)))
        .collect();
    for (ti, &t) in times.iter().enumerate() {
        for (pi, &(src, dst)) in pairs.iter().enumerate() {
            for (qi, &proto) in cfg.protocols.iter().enumerate() {
                let outcome = traceroute_slot(
                    net,
                    &injector,
                    retry,
                    src,
                    dst,
                    proto,
                    t,
                    ti as u64,
                    opts_of(t, proto),
                    &mut report,
                );
                let rec = match outcome {
                    SlotOutcome::Record(rec) => rec,
                    SlotOutcome::Lost => lost_record(src, dst, proto, t),
                };
                step(&mut accs[pi * cfg.protocols.len() + qi], rec);
            }
        }
    }
    (accs, report)
}

/// The single-epoch execution core behind the always-on service (see
/// [`Campaign::run_traceroute_epoch`] for the public front door): resolves
/// every (pair, protocol) slot of **one** schedule instant, in the
/// reference executor's slot order (pair-major, protocol in
/// `cfg.protocols` order).
///
/// Fault decisions are keyed on the *global* sample index `epoch` — the
/// same key every batch core uses — so driving the schedule epoch by
/// epoch reproduces the batch outcome exactly: folding each epoch's
/// records into per-slot accumulators yields byte-identical accumulators,
/// and [merging](CampaignReport::merge) the per-epoch reports yields the
/// batch [`CampaignReport`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn traceroute_epoch_impl<O, S>(
    net: &Network,
    pairs: &[(ClusterId, ClusterId)],
    cfg: &CampaignConfig,
    opts_of: O,
    injector: &FaultInjector,
    retry: &RetryPolicy,
    epoch: usize,
    t: SimTime,
    mut step: S,
) -> CampaignReport
where
    O: Fn(SimTime, Protocol) -> TraceOptions,
    S: FnMut(usize, TracerouteRecord),
{
    let mut report = CampaignReport::default();
    for (pi, &(src, dst)) in pairs.iter().enumerate() {
        for (qi, &proto) in cfg.protocols.iter().enumerate() {
            let outcome = traceroute_slot(
                net,
                injector,
                retry,
                src,
                dst,
                proto,
                t,
                epoch as u64,
                opts_of(t, proto),
                &mut report,
            );
            let rec = match outcome {
                SlotOutcome::Record(rec) => rec,
                SlotOutcome::Lost => lost_record(src, dst, proto, t),
            };
            step(pi * cfg.protocols.len() + qi, rec);
        }
    }
    report
}

/// The fault-aware parallel ping execution core (see
/// [`Campaign::run_ping`]): lost slots (crashes, drops, stuck probes) are
/// recorded as `NaN` so the dense timeline shape — one slot per scheduled
/// instant — is preserved.
pub(crate) fn ping_faulty_impl(
    net: &Network,
    pairs: &[(ClusterId, ClusterId)],
    cfg: &CampaignConfig,
    profile: &FaultProfile,
    retry: &RetryPolicy,
) -> (Vec<PingTimeline>, CampaignReport) {
    let times: Vec<SimTime> = sample_times(cfg.start, cfg.end, cfg.interval).collect();
    let injector = FaultInjector::new(*profile);
    let times = &times;
    run_partitioned_isolated(
        pairs,
        cfg,
        move |chunk| {
            let mut report = CampaignReport::default();
            let mut out: Vec<PingTimeline> = empty_ping_timelines(chunk, cfg, times.len());
            for (ti, &t) in times.iter().enumerate() {
                for (pi, &(src, dst)) in chunk.iter().enumerate() {
                    for (qi, &proto) in cfg.protocols.iter().enumerate() {
                        report.offered += 1;
                        let rtt = if injector.agent_down(src, ti as u64) {
                            report.agent_down_slots += 1;
                            None
                        } else {
                            ping_slot(
                                net, &injector, retry, src, dst, proto, t, ti, &mut report,
                            )
                        };
                        out[pi * cfg.protocols.len() + qi]
                            .rtts
                            .push(rtt.map(|r| r as f32).unwrap_or(f32::NAN));
                    }
                }
            }
            (out, report)
        },
        move |chunk| empty_ping_timelines(chunk, cfg, 0),
    )
}

fn empty_ping_timelines(
    chunk: &[(ClusterId, ClusterId)],
    cfg: &CampaignConfig,
    capacity: usize,
) -> Vec<PingTimeline> {
    chunk
        .iter()
        .flat_map(|&(s, d)| {
            cfg.protocols.iter().map(move |&p| PingTimeline {
                src: s,
                dst: d,
                proto: p,
                start: cfg.start,
                interval: cfg.interval,
                rtts: Vec::with_capacity(capacity),
            })
        })
        .collect()
}

/// One ping slot under the fault plane (the agent is known to be up).
#[allow(clippy::too_many_arguments)]
fn ping_slot(
    net: &Network,
    injector: &FaultInjector,
    retry: &RetryPolicy,
    src: ClusterId,
    dst: ClusterId,
    proto: Protocol,
    t: SimTime,
    seq: usize,
    report: &mut CampaignReport,
) -> Option<f64> {
    let attempts = retry.max_attempts.max(1);
    for attempt in 0..attempts {
        report.attempted += 1;
        match injector.probe_fault(src, dst, proto, t, attempt) {
            // Pings have no tail to truncate; a truncated reply is a
            // delivered reply.
            ProbeFault::None | ProbeFault::Truncated => {
                report.delivered += 1;
                return net.ping(src, dst, proto, t, seq as u64);
            }
            ProbeFault::Dropped => report.dropped_probes += 1,
            ProbeFault::Stuck => {
                report.stuck_probes += 1;
                report.deadline_ms_lost += retry.probe_deadline_ms;
            }
        }
        if attempt + 1 < attempts {
            report.retried += 1;
            report.backoff_ms += retry.backoff_base_ms * f64::from(1u32 << attempt.min(20));
        }
    }
    report.gave_up += 1;
    None
}

/// Like [`run_partitioned`], but workers return a report alongside their
/// accumulators and are panic-isolated: a panicking worker contributes
/// empty accumulators (built by `mk_empty`) and marks its pairs poisoned
/// instead of aborting the campaign.
fn run_partitioned_isolated<A, F, E>(
    pairs: &[(ClusterId, ClusterId)],
    cfg: &CampaignConfig,
    work: F,
    mk_empty: E,
) -> (Vec<A>, CampaignReport)
where
    A: Send,
    F: Fn(&[(ClusterId, ClusterId)]) -> (Vec<A>, CampaignReport) + Sync,
    E: Fn(&[(ClusterId, ClusterId)]) -> Vec<A> + Sync,
{
    let threads = cfg.threads.max(1).min(pairs.len().max(1));
    let chunk_size = pairs.len().div_ceil(threads).max(1);
    let chunk_results: Vec<(Vec<A>, CampaignReport)> = std::thread::scope(|scope| {
        let handles: Vec<_> = pairs
            .chunks(chunk_size)
            .map(|chunk| {
                let (work, mk_empty) = (&work, &mk_empty);
                scope.spawn(move || match catch_unwind(AssertUnwindSafe(|| work(chunk))) {
                    Ok(result) => result,
                    Err(_) => {
                        let report = CampaignReport {
                            worker_panics: 1,
                            poisoned_pairs: chunk.to_vec(),
                            ..CampaignReport::default()
                        };
                        (mk_empty(chunk), report)
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("isolated campaign worker cannot panic"))
            .collect()
    });
    let mut report = CampaignReport::default();
    let mut accs = Vec::new();
    for (chunk_accs, chunk_report) in chunk_results {
        report.merge(&chunk_report);
        accs.extend(chunk_accs);
    }
    (accs, report)
}

// ---------------------------------------------------------------------------
// Streaming sinks
// ---------------------------------------------------------------------------

/// The fault-aware parallel ping executor over a [`StreamSink`]: identical
/// schedule, fault decisions, and report accounting to [`ping_faulty_impl`],
/// but every slot is folded into per-(pair, protocol) sink state instead of
/// a materialized timeline — memory stays proportional to pairs, not
/// samples. States are ordered pair-major, then protocol in
/// `cfg.protocols` order, like every other campaign accumulator.
pub(crate) fn ping_sink_impl<K: StreamSink>(
    net: &Network,
    pairs: &[(ClusterId, ClusterId)],
    cfg: &CampaignConfig,
    profile: &FaultProfile,
    retry: &RetryPolicy,
    sink: &K,
) -> (Vec<K::State>, CampaignReport) {
    let times: Vec<SimTime> = sample_times(cfg.start, cfg.end, cfg.interval).collect();
    let injector = FaultInjector::new(*profile);
    let times = &times;
    run_partitioned_isolated(
        pairs,
        cfg,
        move |chunk| {
            let mut report = CampaignReport::default();
            let mut out: Vec<K::State> = empty_sink_states(chunk, cfg, sink);
            for (ti, &t) in times.iter().enumerate() {
                for (pi, &(src, dst)) in chunk.iter().enumerate() {
                    for (qi, &proto) in cfg.protocols.iter().enumerate() {
                        report.offered += 1;
                        let rtt = if injector.agent_down(src, ti as u64) {
                            report.agent_down_slots += 1;
                            None
                        } else {
                            ping_slot(
                                net, &injector, retry, src, dst, proto, t, ti, &mut report,
                            )
                        };
                        // Round through f32 first: sink state must see the
                        // exact values a materialized timeline stores.
                        let rtt = rtt.map(|r| f64::from(r as f32));
                        sink.fold(&mut out[pi * cfg.protocols.len() + qi], ti as u64, t, rtt);
                    }
                }
            }
            for st in &mut out {
                sink.finish(st);
            }
            (out, report)
        },
        move |chunk| empty_sink_states(chunk, cfg, sink),
    )
}

fn empty_sink_states<K: StreamSink>(
    chunk: &[(ClusterId, ClusterId)],
    cfg: &CampaignConfig,
    sink: &K,
) -> Vec<K::State> {
    chunk
        .iter()
        .flat_map(|&(s, d)| cfg.protocols.iter().map(move |&p| sink.init(s, d, p)))
        .collect()
}

/// The checkpoint/resume ping executor over a [`StreamSink`] — the same
/// framing and bit-identical-resume guarantee as
/// [`traceroute_resumable_impl`], with serialized sink states as the block
/// payload: per pair, `B|<pair_index>|<n_states>`, one
/// [`StreamSink::save`] line per protocol, then `E|<pair_index>`. On
/// resume, complete leading blocks are [`StreamSink::load`]ed instead of
/// re-measured (the per-probe report counters of replayed pairs are not
/// reconstructed, mirroring the traceroute path); a partial trailing block
/// is discarded. Because fault decisions are content-keyed and
/// `save`/`load` round-trip bit-exactly, the finished file and the
/// returned states match an uninterrupted run's.
pub(crate) fn ping_sink_resumable_impl<K: StreamSink>(
    net: &Network,
    pairs: &[(ClusterId, ClusterId)],
    cfg: &CampaignConfig,
    profile: &FaultProfile,
    retry: &RetryPolicy,
    checkpoint: &std::path::Path,
    sink: &K,
) -> std::io::Result<(Vec<K::State>, CampaignReport)> {
    let times: Vec<SimTime> = sample_times(cfg.start, cfg.end, cfg.interval).collect();
    let states_per_pair = cfg.protocols.len();
    let injector = FaultInjector::new(*profile);
    let mut report = CampaignReport::default();

    let (replayable, keep_bytes) = load_checkpoint_prefix(checkpoint, states_per_pair)?;
    let done_pairs = replayable.len().min(pairs.len());
    let file = std::fs::OpenOptions::new()
        .create(true)
        .write(true)
        .read(true)
        .truncate(false)
        .open(checkpoint)?;
    file.set_len(keep_bytes)?;
    let mut out = std::io::BufWriter::new(file);
    use std::io::{Seek, SeekFrom, Write};
    out.seek(SeekFrom::End(0))?;

    let mut accs: Vec<K::State> = Vec::with_capacity(pairs.len() * states_per_pair);
    for (pi, lines) in replayable.iter().take(done_pairs).enumerate() {
        for line in lines {
            let st = sink.load(line).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("checkpoint block {pi}: {e}"),
                )
            })?;
            accs.push(st);
        }
        report.resumed_pairs += 1;
    }

    // Measure the rest in batches of `threads` pairs, blocks appended in
    // pair order after each batch — a kill loses at most one batch.
    let threads = cfg.threads.max(1);
    let remaining = &pairs[done_pairs..];
    let times_ref = &times;
    for (bi, batch) in remaining.chunks(threads).enumerate() {
        let batch_base = done_pairs + bi * threads;
        let batch_results: Vec<(Vec<K::State>, CampaignReport)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = batch
                    .iter()
                    .map(|&(src, dst)| {
                        let injector = &injector;
                        scope.spawn(move || {
                            let mut rep = CampaignReport::default();
                            let mut pair_states: Vec<K::State> = cfg
                                .protocols
                                .iter()
                                .map(|&p| sink.init(src, dst, p))
                                .collect();
                            for (ti, &t) in times_ref.iter().enumerate() {
                                for (qi, &proto) in cfg.protocols.iter().enumerate() {
                                    rep.offered += 1;
                                    let rtt = if injector.agent_down(src, ti as u64) {
                                        rep.agent_down_slots += 1;
                                        None
                                    } else {
                                        ping_slot(
                                            net, injector, retry, src, dst, proto, t, ti,
                                            &mut rep,
                                        )
                                    };
                                    let rtt = rtt.map(|r| f64::from(r as f32));
                                    sink.fold(&mut pair_states[qi], ti as u64, t, rtt);
                                }
                            }
                            for st in &mut pair_states {
                                sink.finish(st);
                            }
                            (pair_states, rep)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("resumable ping worker panicked"))
                    .collect()
            });
        for (off, (pair_states, rep)) in batch_results.into_iter().enumerate() {
            let pair_index = batch_base + off;
            report.merge(&rep);
            writeln!(out, "B|{}|{}", pair_index, pair_states.len())?;
            for st in &pair_states {
                writeln!(out, "{}", sink.save(st))?;
            }
            writeln!(out, "E|{pair_index}")?;
            accs.extend(pair_states);
        }
        out.flush()?;
    }
    Ok((accs, report))
}

// ---------------------------------------------------------------------------
// Checkpoint / resume
// ---------------------------------------------------------------------------

/// The checkpoint/resume execution core (see [`Campaign::checkpoint`] for
/// the public front door): measures pairs in index order, appending each
/// completed pair's records to `checkpoint` as a framed block, and on
/// start replays whatever complete blocks the file already holds instead
/// of re-measuring those pairs.
///
/// **Bit-identical dataset guarantee.** Kill this process at any instant
/// and rerun with the same arguments: the finished checkpoint file is
/// byte-identical to the one an uninterrupted run writes, and the returned
/// accumulators are equal. Three properties make that true: fault
/// decisions are content-keyed (never order- or wallclock-dependent);
/// blocks are written in pair order and a partial trailing block is
/// discarded on resume; and *every* record — fresh or replayed — is folded
/// through the archive line format, so a replayed pair folds exactly the
/// bytes a fresh pair would have archived.
///
/// The checkpoint format rides the dataset line format: per pair,
/// `B|<pair_index>|<n_records>`, the records as `T|…` lines, then
/// `E|<pair_index>`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn traceroute_resumable_impl<A, O, I, S>(
    net: &Network,
    pairs: &[(ClusterId, ClusterId)],
    cfg: &CampaignConfig,
    opts_of: O,
    profile: &FaultProfile,
    retry: &RetryPolicy,
    checkpoint: &std::path::Path,
    init: I,
    step: S,
) -> std::io::Result<(Vec<A>, CampaignReport)>
where
    A: Send,
    O: Fn(SimTime, Protocol) -> TraceOptions + Sync,
    I: Fn(ClusterId, ClusterId, Protocol) -> A + Sync,
    S: Fn(&mut A, TracerouteRecord) + Sync,
{
    let times: Vec<SimTime> = sample_times(cfg.start, cfg.end, cfg.interval).collect();
    let records_per_pair = times.len() * cfg.protocols.len();
    let injector = FaultInjector::new(*profile);
    let mut report = CampaignReport::default();

    // Load the complete leading blocks; truncate anything after them (a
    // partial block from a mid-write kill).
    let (replayable, keep_bytes) = load_checkpoint_prefix(checkpoint, records_per_pair)?;
    let done_pairs = replayable.len().min(pairs.len());
    let file = std::fs::OpenOptions::new()
        .create(true)
        .write(true)
        .read(true)
        // Not truncated on open: the complete leading blocks are kept and
        // set_len below discards only the partial tail.
        .truncate(false)
        .open(checkpoint)?;
    file.set_len(keep_bytes)?;
    let mut out = std::io::BufWriter::new(file);
    use std::io::{Seek, SeekFrom, Write};
    out.seek(SeekFrom::End(0))?;

    let mut accs: Vec<A> = Vec::with_capacity(pairs.len() * cfg.protocols.len());

    // Replay finished pairs through the same fold a fresh run uses.
    for (pi, lines) in replayable.iter().take(done_pairs).enumerate() {
        let (src, dst) = pairs[pi];
        let mut pair_accs: Vec<A> =
            cfg.protocols.iter().map(|&p| init(src, dst, p)).collect();
        for (li, line) in lines.iter().enumerate() {
            let rec = traceroute_from_line(line, li + 1).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("checkpoint block {pi}: {e}"),
                )
            })?;
            let qi = cfg
                .protocols
                .iter()
                .position(|&p| p == rec.proto)
                .unwrap_or(0);
            step(&mut pair_accs[qi], rec);
        }
        accs.extend(pair_accs);
        report.resumed_pairs += 1;
    }

    // Measure the rest in batches of `threads` pairs; blocks append in
    // pair order after each batch so a kill loses at most one batch.
    let threads = cfg.threads.max(1);
    let remaining = &pairs[done_pairs..];
    let (times_ref, opts_ref, init_ref, step_ref) = (&times, &opts_of, &init, &step);
    for (bi, batch) in remaining.chunks(threads).enumerate() {
        let batch_base = done_pairs + bi * threads;
        let batch_results: Vec<(Vec<A>, Vec<String>, CampaignReport)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = batch
                    .iter()
                    .map(|&(src, dst)| {
                        let injector = &injector;
                        scope.spawn(move || {
                            let mut rep = CampaignReport::default();
                            let mut pair_accs: Vec<A> = cfg
                                .protocols
                                .iter()
                                .map(|&p| init_ref(src, dst, p))
                                .collect();
                            let mut lines = Vec::with_capacity(records_per_pair);
                            for (ti, &t) in times_ref.iter().enumerate() {
                                for (qi, &proto) in cfg.protocols.iter().enumerate() {
                                    let outcome = traceroute_slot(
                                        net,
                                        injector,
                                        retry,
                                        src,
                                        dst,
                                        proto,
                                        t,
                                        ti as u64,
                                        opts_ref(t, proto),
                                        &mut rep,
                                    );
                                    let rec = match outcome {
                                        SlotOutcome::Record(rec) => rec,
                                        SlotOutcome::Lost => lost_record(src, dst, proto, t),
                                    };
                                    let line = traceroute_to_line(&rec);
                                    // Fold the archived form, not the live
                                    // one: replay and fresh paths must fold
                                    // identical bytes.
                                    let archived = traceroute_from_line(&line, 0)
                                        .expect("own format must round-trip");
                                    step_ref(&mut pair_accs[qi], archived);
                                    lines.push(line);
                                }
                            }
                            (pair_accs, lines, rep)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("resumable campaign worker panicked"))
                    .collect()
            });
        for (off, (pair_accs, lines, rep)) in batch_results.into_iter().enumerate() {
            let pair_index = batch_base + off;
            report.merge(&rep);
            writeln!(out, "B|{}|{}", pair_index, lines.len())?;
            for line in &lines {
                writeln!(out, "{line}")?;
            }
            writeln!(out, "E|{pair_index}")?;
            accs.extend(pair_accs);
        }
        out.flush()?;
    }
    Ok((accs, report))
}

/// Reads the complete leading blocks of a checkpoint file. Returns the
/// record lines of each complete pair block (in pair order) and the byte
/// length of the accepted prefix; everything after — a torn block from a
/// mid-write kill, or trailing garbage — is for the caller to truncate.
fn load_checkpoint_prefix(
    path: &std::path::Path,
    records_per_pair: usize,
) -> std::io::Result<(Vec<Vec<String>>, u64)> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok((Vec::new(), 0));
        }
        Err(e) => return Err(e),
    };
    let mut blocks: Vec<Vec<String>> = Vec::new();
    let mut accepted: u64 = 0;
    let mut lines = text.split_inclusive('\n');
    'blocks: while let Some(header) = lines.next() {
        let h = header.trim_end();
        let mut parts = h.split('|');
        let (Some("B"), Some(idx), Some(n), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            break;
        };
        // Blocks are written in pair order; anything out of sequence is a
        // torn or foreign tail.
        if idx.parse::<usize>() != Ok(blocks.len()) {
            break;
        }
        let Ok(n) = n.parse::<usize>() else { break };
        if n != records_per_pair {
            break; // written under a different schedule — don't trust it
        }
        let mut block_bytes = header.len() as u64;
        let mut records = Vec::with_capacity(n);
        for _ in 0..n {
            let Some(line) = lines.next() else { break 'blocks };
            block_bytes += line.len() as u64;
            records.push(line.trim_end().to_string());
        }
        let Some(footer) = lines.next() else { break };
        block_bytes += footer.len() as u64;
        if footer.trim_end() != format!("E|{}", blocks.len()) {
            break;
        }
        // Only a block whose footer landed on disk intact counts.
        if !footer.ends_with('\n') {
            break;
        }
        accepted += block_bytes;
        blocks.push(records);
    }
    Ok((blocks, accepted))
}

/// Partitions pairs across workers and concatenates per-chunk outputs in
/// pair order.
fn run_partitioned<A, F>(
    pairs: &[(ClusterId, ClusterId)],
    cfg: &CampaignConfig,
    work: F,
) -> Vec<A>
where
    A: Send,
    F: Fn(&[(ClusterId, ClusterId)]) -> Vec<A> + Sync,
{
    let threads = cfg.threads.max(1).min(pairs.len().max(1));
    if threads <= 1 || pairs.len() < 4 {
        return work(pairs);
    }
    let chunk_size = pairs.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = pairs
            .chunks(chunk_size)
            .map(|chunk| {
                let work = &work;
                scope.spawn(move || work(chunk))
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("campaign worker panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Campaign;
    use s2s_netsim::{CongestionModel, NetworkParams};
    use s2s_routing::{Dynamics, DynamicsParams, RouteOracle};
    use s2s_topology::{build_topology, TopologyParams};
    use std::sync::Arc;

    fn network(seed: u64) -> Network {
        let topo = Arc::new(build_topology(&TopologyParams::tiny(seed)));
        let oracle = Arc::new(RouteOracle::new(
            Arc::clone(&topo),
            Arc::new(Dynamics::all_up(&topo, SimTime::from_days(10))),
        ));
        Network::new(
            oracle,
            CongestionModel::none(),
            NetworkParams { loss_prob: 0.0, spike_prob: 0.0, ..NetworkParams::default() },
        )
    }

    /// A network whose availability timeline has many epochs, so the
    /// epoch-batched runners actually exercise run boundaries.
    fn dynamic_network(seed: u64) -> Network {
        let topo = Arc::new(build_topology(&TopologyParams::tiny(seed)));
        let dynamics = Arc::new(Dynamics::generate(
            &topo,
            &DynamicsParams {
                seed: seed ^ 0xD1CE,
                horizon: SimTime::from_days(10),
                stable_fraction: 0.25,
                mean_episodes: 4.0,
                ..DynamicsParams::default()
            },
        ));
        assert!(
            dynamics.epoch_count() > 3,
            "test world must span several epochs, got {}",
            dynamics.epoch_count()
        );
        let oracle = Arc::new(RouteOracle::new(Arc::clone(&topo), dynamics));
        Network::new(
            oracle,
            CongestionModel::none(),
            NetworkParams { loss_prob: 0.0, spike_prob: 0.0, ..NetworkParams::default() },
        )
    }

    #[test]
    fn report_line_round_trips_exactly() {
        let r = CampaignReport {
            offered: 120,
            attempted: 131,
            delivered: 101,
            truncated: 7,
            retried: 11,
            gave_up: 3,
            dropped_probes: 9,
            stuck_probes: 2,
            agent_down_slots: 5,
            resumed_pairs: 4,
            backoff_ms: 1234.5678901,
            deadline_ms_lost: 0.1 + 0.2, // a value that would betray rounding
            worker_panics: 1,
            poisoned_pairs: vec![(ClusterId::new(3), ClusterId::new(9))],
            lost_slots: 4,
        };
        let back = CampaignReport::from_line(&r.to_line()).unwrap();
        assert_eq!(back, r, "report codec must be the identity");
        // And an all-default report survives too (empty poisoned list).
        let d = CampaignReport::default();
        assert_eq!(CampaignReport::from_line(&d.to_line()).unwrap(), d);
    }

    #[test]
    fn report_line_rejects_malformed_input() {
        assert!(CampaignReport::from_line("X|1|2").is_err());
        assert!(CampaignReport::from_line("R|1|2").is_err(), "too few fields");
        let good = CampaignReport::default().to_line();
        assert!(CampaignReport::from_line(&format!("{good}|extra")).is_err());
        let mangled = good.replace("R|0", "R|zero");
        assert!(CampaignReport::from_line(&mangled).is_err());
    }

    #[test]
    fn merge_folds_lost_slots_and_preserves_identities() {
        let mut a = CampaignReport {
            offered: 10,
            attempted: 10,
            delivered: 10,
            ..CampaignReport::default()
        };
        let b = CampaignReport { offered: 6, lost_slots: 6, ..CampaignReport::default() };
        a.merge(&b);
        assert_eq!(a.offered, 16);
        assert_eq!(a.lost_slots, 6);
        // offered = delivered + truncated + gave_up + agent_down + lost
        assert_eq!(
            a.offered,
            a.delivered + a.truncated + a.gave_up + a.agent_down_slots + a.lost_slots
        );
        // lost slots launched nothing, so attempted excludes them
        assert_eq!(a.attempted, a.offered - a.agent_down_slots - a.lost_slots + a.retried);
    }

    #[test]
    fn full_mesh_has_n_times_n_minus_one() {
        let pairs = full_mesh_pairs(5);
        assert_eq!(pairs.len(), 20);
        assert!(pairs.iter().all(|(a, b)| a != b));
    }

    #[test]
    fn campaign_counts_match_schedule() {
        let net = network(42);
        let pairs = vec![
            (ClusterId::new(0), ClusterId::new(1)),
            (ClusterId::new(2), ClusterId::new(3)),
        ];
        let cfg = CampaignConfig {
            start: SimTime::T0,
            end: SimTime::from_days(1),
            interval: SimDuration::from_hours(3),
            protocols: vec![Protocol::V4, Protocol::V6],
            threads: 2,
        };
        assert_eq!(cfg.n_samples(), 8);
        let (counts, report) = Campaign::new(cfg)
            .run_traceroute(&net, &pairs, TraceOptions::default(), |_, _, _| 0usize, |acc, _| {
                *acc += 1
            })
            .unwrap();
        // 2 pairs × 2 protocols accumulators, 8 records each.
        assert_eq!(counts, vec![8, 8, 8, 8]);
        assert_eq!(report.offered, 32);
        assert_eq!(report.delivered, 32, "quiet default profile delivers every slot");
    }

    #[test]
    fn accumulators_are_pair_major_proto_minor() {
        let net = network(42);
        let pairs =
            vec![(ClusterId::new(0), ClusterId::new(1)), (ClusterId::new(1), ClusterId::new(2))];
        let cfg = CampaignConfig {
            start: SimTime::T0,
            end: SimTime::from_hours(3),
            interval: SimDuration::from_hours(3),
            protocols: vec![Protocol::V4, Protocol::V6],
            threads: 1,
        };
        let (ids, _) = Campaign::new(cfg)
            .run_traceroute(&net, &pairs, TraceOptions::default(), |s, d, p| (s, d, p), |_, _| {})
            .unwrap();
        assert_eq!(ids[0], (ClusterId::new(0), ClusterId::new(1), Protocol::V4));
        assert_eq!(ids[1], (ClusterId::new(0), ClusterId::new(1), Protocol::V6));
        assert_eq!(ids[2], (ClusterId::new(1), ClusterId::new(2), Protocol::V4));
    }

    #[test]
    fn parallel_equals_serial() {
        let net = network(42);
        let pairs = full_mesh_pairs(6);
        let mk_cfg = |threads| CampaignConfig {
            start: SimTime::T0,
            end: SimTime::from_hours(9),
            interval: SimDuration::from_hours(3),
            protocols: vec![Protocol::V4],
            threads,
        };
        let collect = |cfg: &CampaignConfig| {
            Campaign::new(cfg.clone())
                .run_traceroute(
                    &net,
                    &pairs,
                    TraceOptions::default(),
                    |_, _, _| Vec::new(),
                    |acc: &mut Vec<Option<f64>>, rec| acc.push(rec.e2e_rtt_ms),
                )
                .unwrap()
                .0
        };
        assert_eq!(collect(&mk_cfg(1)), collect(&mk_cfg(4)));
    }

    #[test]
    fn ping_campaign_produces_dense_timelines() {
        let net = network(42);
        let pairs = vec![(ClusterId::new(0), ClusterId::new(2))];
        let cfg = CampaignConfig {
            start: SimTime::T0,
            end: SimTime::from_hours(2),
            interval: SimDuration::from_minutes(15),
            protocols: vec![Protocol::V4],
            threads: 1,
        };
        let (tl, _) = Campaign::new(cfg).run_ping(&net, &pairs).unwrap();
        assert_eq!(tl.len(), 1);
        assert_eq!(tl[0].rtts.len(), 8);
        assert_eq!(tl[0].valid_samples(), 8, "no loss configured");
        assert!(tl[0].valid_rtts().iter().all(|&r| r > 0.0));
    }

    #[test]
    fn filled_rtts_interpolates_losses() {
        let tl = PingTimeline {
            src: ClusterId::new(0),
            dst: ClusterId::new(1),
            proto: Protocol::V4,
            start: SimTime::T0,
            interval: SimDuration::from_minutes(15),
            rtts: vec![f32::NAN, 10.0, f32::NAN, 12.0, f32::NAN],
        };
        assert_eq!(tl.filled_rtts().unwrap(), vec![10.0, 10.0, 10.0, 12.0, 12.0]);
        assert_eq!(tl.valid_samples(), 2);
        let empty = PingTimeline { rtts: vec![f32::NAN], ..tl };
        assert!(empty.filled_rtts().is_none());
    }

    #[test]
    fn colocated_pairs_share_cities() {
        let topo = build_topology(&TopologyParams::tiny(42));
        let pairs = colocated_pairs(&topo);
        for (a, b) in &pairs {
            assert_eq!(topo.clusters[a.index()].city, topo.clusters[b.index()].city);
        }
    }

    #[test]
    fn ping_once_returns_record() {
        let net = network(42);
        let r = ping_once(&net, ClusterId::new(0), ClusterId::new(1), Protocol::V4, SimTime::T0);
        assert!(r.rtt_ms.is_some());
        assert_eq!(r.src, ClusterId::new(0));
    }

    // -- hardened / fault-aware runners ------------------------------------

    fn small_cfg(threads: usize) -> CampaignConfig {
        CampaignConfig {
            start: SimTime::T0,
            end: SimTime::from_hours(12),
            interval: SimDuration::from_hours(3),
            protocols: vec![Protocol::V4, Protocol::V6],
            threads,
        }
    }

    fn lossy_profile() -> FaultProfile {
        FaultProfile {
            crash_rate: 0.02,
            drop_rate: 0.15,
            stuck_rate: 0.05,
            truncate_rate: 0.05,
            ..FaultProfile::default()
        }
    }

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let dir = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/tmp"));
        std::fs::create_dir_all(dir).expect("create target/tmp");
        let p = dir.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn zero_faults_match_plain_traceroute_runner() {
        let net = network(42);
        let pairs = full_mesh_pairs(5);
        let cfg = small_cfg(3);
        let quiet = FaultProfile::default();
        assert!(quiet.is_quiet());
        // The independent fault-free baseline: the plain runner, which the
        // builder never calls (it always routes through the fault plane).
        let plain = traceroute_with_impl(
            &net,
            &pairs,
            &cfg,
            |_, _| TraceOptions::default(),
            |_, _, _| Vec::new(),
            |acc: &mut Vec<Option<f64>>, rec| acc.push(rec.e2e_rtt_ms),
        );
        let (faulty, report) = Campaign::new(cfg)
            .run_traceroute(
                &net,
                &pairs,
                TraceOptions::default(),
                |_, _, _| Vec::new(),
                |acc: &mut Vec<Option<f64>>, rec| acc.push(rec.e2e_rtt_ms),
            )
            .unwrap();
        assert_eq!(plain, faulty, "quiet profile must not change the dataset");
        assert_eq!(report.delivered, report.offered);
        assert_eq!(report.attempted, report.offered, "no retries under a quiet profile");
        assert_eq!(report.gave_up, 0);
        assert_eq!(report.worker_panics, 0);
        assert!((report.coverage().fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_faults_match_plain_ping_runner() {
        let net = network(42);
        let pairs = full_mesh_pairs(4);
        let cfg = CampaignConfig {
            interval: SimDuration::from_minutes(30),
            ..small_cfg(2)
        };
        let plain = ping_impl(&net, &pairs, &cfg);
        let (faulty, report) = Campaign::new(cfg).run_ping(&net, &pairs).unwrap();
        assert_eq!(plain.len(), faulty.len());
        for (a, b) in plain.iter().zip(&faulty) {
            assert_eq!(a.src, b.src);
            assert_eq!(a.proto, b.proto);
            let bits =
                |v: &[f32]| v.iter().map(|r| r.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&a.rtts), bits(&b.rtts));
        }
        assert_eq!(report.delivered, report.offered);
    }

    #[test]
    fn epoch_sweep_matches_batch_run_under_faults() {
        let net = dynamic_network(42);
        let pairs = full_mesh_pairs(5);
        let cfg = small_cfg(3);
        // Per-measurement options, so the sweep exercises opts_of too.
        let opts_of = |t: SimTime, proto: Protocol| TraceOptions {
            mode: if proto == Protocol::V4 && t >= SimTime::from_hours(6) {
                crate::tracer::TracerouteMode::Paris
            } else {
                crate::tracer::TracerouteMode::Classic
            },
            ..TraceOptions::default()
        };
        let campaign = Campaign::new(cfg.clone()).faults(lossy_profile());
        let (batch, batch_report) = campaign
            .run_traceroute_with(
                &net,
                &pairs,
                opts_of,
                |_, _, _| Vec::new(),
                |acc: &mut Vec<TracerouteRecord>, rec| acc.push(rec),
            )
            .unwrap();
        let slots = pairs.len() * cfg.protocols.len();
        let mut swept: Vec<Vec<TracerouteRecord>> = vec![Vec::new(); slots];
        let mut swept_report = CampaignReport::default();
        for epoch in 0..cfg.n_samples() {
            let r = campaign.run_traceroute_epoch(&net, &pairs, opts_of, epoch, |slot, rec| {
                swept[slot].push(rec)
            });
            swept_report.merge(&r);
        }
        assert_eq!(swept, batch, "epoch sweep must reproduce the batch dataset exactly");
        assert_eq!(swept_report, batch_report, "merged per-epoch reports must equal batch");
        assert!(swept_report.gave_up > 0, "profile must actually lose slots");
    }

    #[test]
    #[should_panic(expected = "out of schedule range")]
    fn epoch_past_schedule_end_panics() {
        let net = network(7);
        let pairs = vec![(ClusterId::new(0), ClusterId::new(1))];
        let cfg = small_cfg(1);
        let n = cfg.n_samples();
        Campaign::new(cfg).run_traceroute_epoch(
            &net,
            &pairs,
            |_, _| TraceOptions::default(),
            n,
            |_, _| {},
        );
    }

    #[test]
    fn fault_accounting_is_internally_consistent() {
        let net = network(42);
        let pairs = full_mesh_pairs(6);
        let cfg = small_cfg(3);
        let retry = RetryPolicy::default();
        let (accs, report) = Campaign::new(cfg)
            .faults(lossy_profile())
            .retry(retry)
            .run_traceroute(&net, &pairs, TraceOptions::default(), |_, _, _| 0usize, |acc, _| {
                *acc += 1
            })
            .unwrap();
        // Every slot folds exactly one record (real or synthetic): dense.
        let slots_per_acc = 4; // 12h at 3h intervals, end-exclusive -> t = 0,3,6,9
        assert!(accs.iter().all(|&n| n == slots_per_acc), "timelines must stay dense");
        // Every offered slot resolves exactly one way.
        assert_eq!(
            report.offered,
            report.delivered + report.truncated + report.gave_up + report.agent_down_slots
        );
        // Every attempt resolves exactly one way.
        assert_eq!(
            report.attempted,
            report.delivered + report.truncated + report.dropped_probes + report.stuck_probes
        );
        assert!(report.dropped_probes > 0, "15% drop rate over {} slots", report.offered);
        assert!(report.coverage().fraction() < 1.0);
        assert!(report.stuck_probes as f64 * retry.probe_deadline_ms <= report.deadline_ms_lost + 1e-9);
    }

    #[test]
    fn faulty_runner_is_thread_count_invariant() {
        let net = network(42);
        let pairs = full_mesh_pairs(6);
        let run = |threads| {
            Campaign::new(small_cfg(threads))
                .faults(lossy_profile())
                .run_traceroute(
                    &net,
                    &pairs,
                    TraceOptions::default(),
                    |_, _, _| Vec::new(),
                    |acc: &mut Vec<Option<f64>>, rec| acc.push(rec.e2e_rtt_ms),
                )
                .unwrap()
        };
        let (a1, r1) = run(1);
        let (a4, r4) = run(4);
        assert_eq!(a1, a4, "fault decisions are content-keyed, not order-keyed");
        assert_eq!(r1, r4);
    }

    #[test]
    fn worker_panic_poisons_only_its_pairs() {
        let net = network(42);
        let pairs = full_mesh_pairs(3); // 6 ordered pairs
        let bad = pairs[2];
        let cfg = CampaignConfig { protocols: vec![Protocol::V4], threads: pairs.len(), ..small_cfg(1) };
        let (accs, report) = Campaign::new(cfg)
            .run_traceroute(
                &net,
                &pairs,
                TraceOptions::default(),
                |_, _, _| 0usize,
                |acc: &mut usize, rec| {
                    assert!(
                        ((rec.src, rec.dst) != bad),
                        "injected worker failure for pair {:?}",
                        bad
                    );
                    *acc += 1;
                },
            )
            .unwrap();
        assert_eq!(report.worker_panics, 1);
        assert_eq!(report.poisoned_pairs, vec![bad]);
        for (i, &n) in accs.iter().enumerate() {
            if pairs[i] == bad {
                assert_eq!(n, 0, "poisoned pair contributes an empty accumulator");
            } else {
                assert_eq!(n, 4, "healthy pairs are untouched by the panic");
            }
        }
    }

    // -- epoch batching ----------------------------------------------------

    #[test]
    fn epoch_runs_are_contiguous_single_epoch_and_capped() {
        let net = dynamic_network(42);
        let dyns = net.oracle().dynamics();
        let times: Vec<SimTime> =
            sample_times(SimTime::T0, SimTime::from_days(10), SimDuration::from_hours(2))
                .collect();
        for cap in [usize::MAX, 5, 2, 1] {
            let runs = epoch_runs(&net, &times, cap);
            // Runs tile 0..times.len() in order, without gaps or overlap.
            let mut next = 0;
            for r in &runs {
                assert_eq!(r.start, next, "runs must be contiguous");
                assert!(r.end > r.start, "runs must be non-empty");
                assert!(r.len() <= cap, "cap {cap} exceeded by {r:?}");
                let e0 = dyns.epoch_of(times[r.start]);
                for ti in r.clone() {
                    assert_eq!(dyns.epoch_of(times[ti]), e0, "run crosses an epoch boundary");
                }
                next = r.end;
            }
            assert_eq!(next, times.len(), "runs must cover every sample");
        }
        // With breakpoints inside the horizon, an uncapped grouping still
        // produces more than one run.
        assert!(epoch_runs(&net, &times, usize::MAX).len() > 1);
        assert!(epoch_runs(&net, &[], usize::MAX).is_empty());
    }

    #[test]
    fn batched_parallel_matches_sequential_reference_byte_identical() {
        // The tentpole invariant: epoch-batched, dst-sorted, multi-threaded
        // execution serializes to exactly the bytes of the plain sequential
        // time-outer runner, for several worlds and thread counts.
        for seed in [7u64, 21, 42] {
            let net = dynamic_network(seed);
            let pairs = full_mesh_pairs(5);
            let mk_cfg = |threads| CampaignConfig {
                start: SimTime::T0,
                end: SimTime::from_days(5),
                interval: SimDuration::from_hours(6),
                protocols: vec![Protocol::V4, Protocol::V6],
                threads,
            };
            let init = |_, _, _| Vec::new();
            let step = |acc: &mut Vec<String>, rec: TracerouteRecord| {
                acc.push(traceroute_to_line(&rec))
            };
            let (reference, _) = Campaign::new(mk_cfg(1))
                .reference()
                .run_traceroute_with(&net, &pairs, |_, _| TraceOptions::default(), init, step)
                .unwrap();
            for threads in [1usize, 3] {
                let (batched, _) = Campaign::new(mk_cfg(threads))
                    .run_traceroute_with(&net, &pairs, |_, _| TraceOptions::default(), init, step)
                    .unwrap();
                assert_eq!(
                    batched, reference,
                    "seed {seed}, {threads} threads: batched runner diverged"
                );
            }
        }
    }

    #[test]
    fn faulty_batched_matches_faulty_reference() {
        // Fault decisions key on the sample index, so epoch batching must
        // not move any slot's fault outcome — dataset and report both match
        // for every fault profile shape the S2S_FAULT_* knobs can express.
        let net = dynamic_network(42);
        let pairs = full_mesh_pairs(5);
        let retry = RetryPolicy::default();
        let opts = |_, _| TraceOptions::default();
        let init = |_, _, _| Vec::new();
        let step =
            |acc: &mut Vec<String>, rec: TracerouteRecord| acc.push(traceroute_to_line(&rec));
        let cfg = CampaignConfig {
            start: SimTime::T0,
            end: SimTime::from_days(5),
            interval: SimDuration::from_hours(6),
            protocols: vec![Protocol::V4, Protocol::V6],
            threads: 3,
        };
        let crash_heavy = FaultProfile {
            crash_rate: 0.2,
            crash_mean_epochs: 3.0,
            drop_rate: 0.02,
            ..FaultProfile::default()
        };
        for profile in [FaultProfile::default(), lossy_profile(), crash_heavy] {
            let (ref_accs, ref_report) = Campaign::new(cfg.clone())
                .reference()
                .faults(profile)
                .retry(retry)
                .run_traceroute_with(&net, &pairs, opts, init, step)
                .unwrap();
            let (accs, report) = Campaign::new(cfg.clone())
                .faults(profile)
                .retry(retry)
                .run_traceroute_with(&net, &pairs, opts, init, step)
                .unwrap();
            assert_eq!(accs, ref_accs, "faulty batched runner diverged from reference");
            assert_eq!(report, ref_report);
            // The report's coverage identities survive batching + faults.
            assert_eq!(
                report.offered,
                report.delivered + report.truncated + report.gave_up + report.agent_down_slots
            );
            assert_eq!(
                report.attempted,
                report.delivered + report.truncated + report.dropped_probes + report.stuck_probes
            );
            assert!(report.coverage().fraction() <= 1.0);
        }
    }

    #[test]
    fn killed_and_resumed_checkpoint_is_bit_identical() {
        let net = network(42);
        let pairs = full_mesh_pairs(5); // 20 ordered pairs
        let cfg = small_cfg(3);
        let profile = lossy_profile();
        let retry = RetryPolicy::default();
        let run = |path: &std::path::Path| {
            Campaign::new(cfg.clone())
                .faults(profile)
                .retry(retry)
                .checkpoint(path)
                .run_traceroute(
                    &net,
                    &pairs,
                    TraceOptions::default(),
                    |_, _, _| Vec::new(),
                    |acc: &mut Vec<Option<f64>>, rec| acc.push(rec.e2e_rtt_ms),
                )
                .expect("resumable campaign")
        };

        let full_path = tmp_path("ckpt_uninterrupted.txt");
        let (full_accs, full_report) = run(&full_path);
        let full_bytes = std::fs::read(&full_path).unwrap();
        assert_eq!(full_report.resumed_pairs, 0);

        // Kill the campaign at several points, including mid-line, and
        // resume: the finished file must match the uninterrupted one.
        for cut in [0usize, 1, full_bytes.len() / 3, full_bytes.len() / 2, full_bytes.len() - 7] {
            let path = tmp_path(&format!("ckpt_killed_at_{cut}.txt"));
            std::fs::write(&path, &full_bytes[..cut]).unwrap();
            let (accs, report) = run(&path);
            let resumed_bytes = std::fs::read(&path).unwrap();
            assert_eq!(
                resumed_bytes, full_bytes,
                "kill at byte {cut}: resumed checkpoint must be bit-identical"
            );
            assert_eq!(accs, full_accs, "kill at byte {cut}: accumulators must match");
            assert_eq!(
                report.resumed_pairs + (report.offered / (4 * cfg.protocols.len())),
                pairs.len(),
                "kill at byte {cut}: every pair is either replayed or re-measured"
            );
            let _ = std::fs::remove_file(&path);
        }

        // Resuming a finished checkpoint re-measures nothing.
        let (accs, report) = run(&full_path);
        assert_eq!(accs, full_accs);
        assert_eq!(report.resumed_pairs, pairs.len());
        assert_eq!(report.offered, 0);
        assert_eq!(std::fs::read(&full_path).unwrap(), full_bytes);
        let _ = std::fs::remove_file(&full_path);
    }

    // -- the builder front door --------------------------------------------

    fn timeline_bits(tls: &[PingTimeline]) -> Vec<Vec<u32>> {
        tls.iter().map(|tl| tl.rtts.iter().map(|r| r.to_bits()).collect()).collect()
    }

    /// Ping campaigns checkpoint through serialized sink state: a
    /// checkpointed run matches the in-memory one, and a run killed at any
    /// byte resumes to a bit-identical file and bit-identical timelines.
    #[test]
    fn ping_checkpoint_resumes_bit_identically() {
        let net = network(42);
        let pairs = full_mesh_pairs(4);
        let cfg = small_cfg(2);
        let profile = lossy_profile();
        let campaign =
            |path: &std::path::Path| Campaign::new(cfg.clone()).faults(profile).checkpoint(path);

        let (memory, memory_report) =
            Campaign::new(cfg.clone()).faults(profile).run_ping(&net, &pairs).unwrap();

        let full_path = tmp_path("ping_ckpt_full.txt");
        let (full, full_report) = campaign(&full_path).run_ping(&net, &pairs).unwrap();
        let full_bytes = std::fs::read(&full_path).unwrap();
        assert_eq!(timeline_bits(&full), timeline_bits(&memory));
        assert_eq!(full_report, memory_report);

        for cut in [0usize, 1, full_bytes.len() / 3, full_bytes.len() - 5] {
            let path = tmp_path(&format!("ping_ckpt_cut_{cut}.txt"));
            std::fs::write(&path, &full_bytes[..cut]).unwrap();
            let (resumed, report) = campaign(&path).run_ping(&net, &pairs).unwrap();
            assert_eq!(
                std::fs::read(&path).unwrap(),
                full_bytes,
                "kill at byte {cut}: resumed checkpoint must be bit-identical"
            );
            assert_eq!(timeline_bits(&resumed), timeline_bits(&memory));
            assert!(report.resumed_pairs <= pairs.len());
            let _ = std::fs::remove_file(&path);
        }

        // Resuming a finished checkpoint re-measures nothing.
        let (replayed, report) = campaign(&full_path).run_ping(&net, &pairs).unwrap();
        assert_eq!(timeline_bits(&replayed), timeline_bits(&memory));
        assert_eq!(report.resumed_pairs, pairs.len());
        assert_eq!(report.offered, 0);
        let _ = std::fs::remove_file(&full_path);
    }

    /// The sink path folds exactly what the materializing path stores:
    /// a `PairProfileSink` run agrees with profiles rebuilt from the
    /// in-memory timelines, and its states are identical across thread
    /// counts.
    #[test]
    fn sink_campaign_matches_materialized_run() {
        let net = network(42);
        let pairs = full_mesh_pairs(4);
        let profile = lossy_profile();
        // A longer schedule so PSD ratios exist (≥ 2 days of slots).
        let cfg = CampaignConfig {
            start: SimTime::T0,
            end: SimTime::from_days(3),
            interval: SimDuration::from_hours(3),
            protocols: vec![Protocol::V4, Protocol::V6],
            threads: 2,
        };
        let sink = crate::stream::PairProfileSink::with_shape(&cfg, 64, 32);

        let (timelines, tl_report) =
            Campaign::new(cfg.clone()).faults(profile).run_ping(&net, &pairs).unwrap();
        let (profiles, pf_report) = Campaign::new(cfg.clone())
            .faults(profile)
            .sink(sink.clone())
            .run_ping(&net, &pairs)
            .unwrap();
        assert_eq!(tl_report, pf_report);
        assert_eq!(profiles.len(), timelines.len());

        for (tl, pf) in timelines.iter().zip(&profiles) {
            assert_eq!((pf.src, pf.dst, pf.proto), (tl.src, tl.dst, tl.proto));
            assert_eq!(pf.valid_samples(), tl.valid_samples());
            assert_eq!(pf.offered() as usize, tl.rtts.len());
            // Refold the materialized timeline through the sink: the state
            // must come out identical — the executor fed the same values.
            let mut refold = sink.init(tl.src, tl.dst, tl.proto);
            let times: Vec<SimTime> =
                sample_times(cfg.start, cfg.end, cfg.interval).collect();
            for (ti, (&r, &t)) in tl.rtts.iter().zip(&times).enumerate() {
                let rtt = (!r.is_nan()).then(|| f64::from(r));
                sink.fold(&mut refold, ti as u64, t, rtt);
            }
            assert_eq!(*pf, refold);
        }

        // Thread-count determinism of sink states.
        for threads in [1usize, 4] {
            let mut cfg_t = cfg.clone();
            cfg_t.threads = threads;
            let (p2, _) = Campaign::new(cfg_t)
                .faults(profile)
                .sink(sink.clone())
                .run_ping(&net, &pairs)
                .unwrap();
            assert_eq!(p2, profiles, "sink states must not depend on thread count");
        }
    }

    /// Re-running the builder with identical arguments must reproduce the
    /// dataset bit for bit — the determinism the checkpoint/resume and
    /// sink-state guarantees are built on.
    #[test]
    fn repeated_builder_runs_are_bit_identical() {
        let net = network(42);
        let pairs = full_mesh_pairs(4);
        let cfg = small_cfg(2);
        let profile = lossy_profile();
        let init = |_, _, _| Vec::new();
        let step = |acc: &mut Vec<String>, rec: TracerouteRecord| {
            acc.push(traceroute_to_line(&rec))
        };

        let collect = || {
            Campaign::new(cfg.clone())
                .faults(profile)
                .run_traceroute_with(&net, &pairs, |_, _| TraceOptions::default(), init, step)
                .unwrap()
        };
        let (a, report_a) = collect();
        let (b, report_b) = collect();
        assert_eq!(a, b);
        assert_eq!(report_a, report_b);

        let bits = |v: &[f32]| v.iter().map(|r| r.to_bits()).collect::<Vec<_>>();
        let (p1, _) = Campaign::new(cfg.clone()).run_ping(&net, &pairs).unwrap();
        let (p2, _) = Campaign::new(cfg).run_ping(&net, &pairs).unwrap();
        for (x, y) in p1.iter().zip(&p2) {
            assert_eq!(bits(&x.rtts), bits(&y.rtts));
        }
    }

    /// A run publishes its report into an explicitly observed registry —
    /// and observation must not change the dataset.
    #[test]
    fn observed_run_publishes_report_and_changes_nothing() {
        let net = network(42);
        let pairs = full_mesh_pairs(4);
        let cfg = small_cfg(2);
        let collect = |c: Campaign| {
            c.run_traceroute(
                &net,
                &pairs,
                TraceOptions::default(),
                |_, _, _| Vec::new(),
                |acc: &mut Vec<String>, rec| acc.push(traceroute_to_line(&rec)),
            )
            .unwrap()
        };
        let (bare, bare_report) = collect(Campaign::new(cfg.clone()).faults(lossy_profile()));
        let reg = Arc::new(s2s_obs::Registry::new());
        let (observed, report) = collect(
            Campaign::new(cfg).faults(lossy_profile()).observe(Arc::clone(&reg)),
        );
        assert_eq!(bare, observed, "observing a campaign must not perturb its dataset");
        assert_eq!(bare_report, report);
        assert_eq!(reg.counter("campaign.offered").get(), report.offered as u64);
        assert_eq!(reg.counter("campaign.delivered").get(), report.delivered as u64);
        assert_eq!(reg.counter("campaign.runs").get(), 1);
        if report.gave_up > 0 {
            let labels: Vec<String> =
                reg.events().into_iter().map(|e| e.label).collect();
            assert!(labels.iter().any(|l| l == "campaign.retry_exhausted"), "{labels:?}");
        }
    }
}
