//! Measurement records.
//!
//! These are the boundary types between measurement and analysis: the
//! `s2s-core` pipeline consumes only these (never the simulator), so a
//! downstream user can populate them from real scamper/MDA output instead.

use s2s_types::{ClusterId, Protocol, SimTime};
use serde::{Deserialize, Serialize};
use std::net::IpAddr;

/// One observed traceroute hop.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HopObs {
    /// The answering address; `None` when no reply arrived after retries
    /// (rendered `*` by the classic tool).
    pub addr: Option<IpAddr>,
    /// RTT to this hop, ms; `None` when unanswered.
    pub rtt_ms: Option<f64>,
}

/// One traceroute.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TracerouteRecord {
    /// Source vantage point.
    pub src: ClusterId,
    /// Destination vantage point.
    pub dst: ClusterId,
    /// Protocol probed.
    pub proto: Protocol,
    /// When the traceroute ran.
    pub t: SimTime,
    /// Hops in TTL order, excluding the final destination hop.
    pub hops: Vec<HopObs>,
    /// Whether the destination answered (the paper keeps only complete
    /// traceroutes for most analyses — 75% of the 2.6B collected).
    pub reached: bool,
    /// End-to-end RTT from the destination's echo, ms.
    pub e2e_rtt_ms: Option<f64>,
    /// The vantage point's own address (the path's implicit first element;
    /// annotation anchors the AS path at the source AS with it).
    pub src_addr: Option<IpAddr>,
    /// The destination address probed (identifies the family + server).
    pub dst_addr: Option<IpAddr>,
}

impl TracerouteRecord {
    /// The number of hops that never answered.
    pub fn unresponsive_hops(&self) -> usize {
        self.hops.iter().filter(|h| h.addr.is_none()).count()
    }

    /// True when every hop answered and the destination was reached.
    pub fn fully_responsive(&self) -> bool {
        self.reached && self.unresponsive_hops() == 0
    }
}

/// One ping measurement.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PingRecord {
    /// Source vantage point.
    pub src: ClusterId,
    /// Destination vantage point.
    pub dst: ClusterId,
    /// Protocol probed.
    pub proto: Protocol,
    /// When the ping ran.
    pub t: SimTime,
    /// Measured RTT, ms; `None` when the probe or reply was lost.
    pub rtt_ms: Option<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hop(addr: Option<&str>, rtt: Option<f64>) -> HopObs {
        HopObs { addr: addr.map(|a| a.parse().unwrap()), rtt_ms: rtt }
    }

    #[test]
    fn unresponsive_counting() {
        let r = TracerouteRecord {
            src: ClusterId::new(0),
            dst: ClusterId::new(1),
            proto: Protocol::V4,
            t: SimTime::T0,
            hops: vec![
                hop(Some("10.0.0.1"), Some(1.0)),
                hop(None, None),
                hop(Some("10.0.0.3"), Some(3.0)),
            ],
            reached: true,
            e2e_rtt_ms: Some(10.0),
            src_addr: None,
            dst_addr: Some("10.1.0.1".parse().unwrap()),
        };
        assert_eq!(r.unresponsive_hops(), 1);
        assert!(!r.fully_responsive());
    }

    #[test]
    fn fully_responsive_requires_reached() {
        let mut r = TracerouteRecord {
            src: ClusterId::new(0),
            dst: ClusterId::new(1),
            proto: Protocol::V6,
            t: SimTime::T0,
            hops: vec![hop(Some("2600::1"), Some(1.0))],
            reached: true,
            e2e_rtt_ms: Some(5.0),
            src_addr: None,
            dst_addr: None,
        };
        assert!(r.fully_responsive());
        r.reached = false;
        assert!(!r.fully_responsive());
    }
}
