//! The consolidated `S2S_*` environment-knob module.
//!
//! Every knob the measurement plane reads resolves here, through the
//! shared warn-and-default parsers in [`s2s_types::env`]: an unset knob
//! silently takes its default, a malformed one (`S2S_THREADS=abc`,
//! `S2S_EPOCH_BATCH=0`) prints one warning to stderr and takes the
//! default. `reproduce --print-config` dumps the resolved values.
//!
//! ## Knob table
//!
//! | Variable | Default | Meaning |
//! |---|---|---|
//! | `S2S_THREADS` | available parallelism | Campaign worker + columnar analysis shard threads (≥ 1) |
//! | `S2S_EPOCH_BATCH` | unlimited | Max sample instants per epoch run (≥ 1) |
//! | `S2S_FAULT_SEED` | `0x5EED` | Fault-decision seed |
//! | `S2S_FAULT_CRASH` | `0` | Per-(agent, epoch) crash-start probability |
//! | `S2S_FAULT_CRASH_LEN` | `4` | Mean crash downtime, epochs (≥ 1) |
//! | `S2S_FAULT_DROP` | `0` | Per-probe drop probability |
//! | `S2S_FAULT_STUCK` | `0` | Per-probe stuck-past-deadline probability |
//! | `S2S_FAULT_TRUNC` | `0` | Per-traceroute truncation probability |
//! | `S2S_FAULT_CORRUPT` | `0` | Per-archive-line corruption probability |
//! | `S2S_SKETCH_CENTROIDS` | `256` | Quantile-sketch centroid capacity (≥ 8) |
//! | `S2S_SKETCH_EXACT` | `128` | Samples a sketch keeps exact before compressing |
//! | `S2S_FABRIC_FAULT_SEED` | `0xFAB` | Fabric fault-decision seed |
//! | `S2S_FABRIC_FAULT_KILL` | `0` | Per-worker-attempt kill probability |
//! | `S2S_FABRIC_FAULT_STALL` | `0` | Per-worker-attempt stall probability |
//! | `S2S_FABRIC_FAULT_CORRUPT` | `0` | Per-worker-attempt corrupt-frame probability |
//! | `S2S_FABRIC_FAULT_EXIT` | `0` | Per-worker-attempt exit-nonzero probability |
//! | `S2S_FABRIC_FAULT_PLAN` | empty | Surgical faults, e.g. `kill@0.1=2;stall@1.1` |
//! | `S2S_FABRIC_RETRIES` | `3` | Attempts per shard (first try + retries) |
//! | `S2S_FABRIC_TIMEOUT_MS` | `2000` | Reap a worker after this long with no stdout event |
//! | `S2S_FABRIC_BACKOFF_MS` | `10` | First retry backoff (doubles per attempt, jittered) |
//! | `S2S_FABRIC_HB_MS` | `100` | Worker heartbeat interval |
//! | `S2S_FABRIC_WORKERS` | `1` | Default worker count for `reproduce` (1 = in-process) |
//! | `S2S_SNAPSHOT_BLOCK` | `4096` | Traces per snapshot `BLOCK` segment (≥ 1, the unit of loss) |
//! | `S2S_SNAPSHOT_BUDGET` | `4096` | Traces per streamed-read batch (≥ 1, the reader's reuse-buffer cap) |
//! | `S2S_SNAPSHOT_DIR` | unset | Fabric merge also writes per-shard snapshots here |
//! | `S2S_SNAPSHOT_PATH` | unset | Default for `reproduce --snapshot` |
//! | `S2S_SERVICE_CADENCE_MS` | `0` | Wall-clock sleep between service epochs (0 = free-run) |
//! | `S2S_SERVICE_SNAP_EVERY` | `8` | Service checkpoint cadence, epochs (≥ 1) |
//! | `S2S_SERVICE_QUERY_BUDGET` | `4096` | Queries a service run answers before refusing (≥ 1) |
//!
//! The experiment-scale knobs (`S2S_SEED`, `S2S_CLUSTERS`, `S2S_DAYS`,
//! `S2S_PAIRS`, `S2S_PING_PAIRS`, `S2S_CONG_PAIRS`), the bench-only
//! `S2S_BENCH_QUICK` flag, and the always-on-service knobs
//! (`S2S_SERVICE_CADENCE_MS`, `S2S_SERVICE_SNAP_EVERY`,
//! `S2S_SERVICE_QUERY_BUDGET`) resolve in `s2s-bench` (their defaults are
//! experiment/service policy, not measurement-plane policy) — through the
//! same shared parsers, and they appear in the same `--print-config` dump.
//!
//! Typos are caught, not ignored: [`resolved_knobs`] scans the process
//! environment for `S2S_*` names outside the recognized set and prints
//! one warning per process run (`S2S_FAULT_DORP=1` would otherwise
//! silently measure a healthy plane).

use crate::faults::FaultProfile;
use s2s_types::env as tenv;

/// Worker-thread default: the `S2S_THREADS` knob when set to a valid
/// integer ≥ 1, otherwise the machine's available parallelism. Sizes both
/// campaign workers and the columnar analysis shards (`reproduce
/// --threads` overrides the knob); outputs are byte-identical across
/// thread counts either way.
pub fn threads() -> usize {
    let fallback = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    tenv::var_usize_at_least("S2S_THREADS", fallback, 1)
}

/// Maximum sample instants batched per epoch run: the `S2S_EPOCH_BATCH`
/// knob when set to a valid integer ≥ 1; unset means unlimited (one run
/// per availability epoch).
pub fn epoch_batch_cap() -> usize {
    let raw = tenv::var_raw("S2S_EPOCH_BATCH");
    let (v, warning) = tenv::parse_checked_desc(
        "S2S_EPOCH_BATCH",
        raw.as_deref(),
        usize::MAX,
        "unlimited",
        |&v| v >= 1,
        "an integer >= 1",
    );
    if let Some(w) = warning {
        eprintln!("{w}");
    }
    v
}

/// The fault profile from the `S2S_FAULT_*` knobs — an alias for
/// [`FaultProfile::from_env`], here so the whole knob surface is
/// reachable from one module.
pub fn fault_profile() -> FaultProfile {
    FaultProfile::from_env()
}

/// Quantile-sketch centroid capacity: the `S2S_SKETCH_CENTROIDS` knob when
/// set to a valid integer ≥ 8, default
/// [`s2s_stats::sketch::DEFAULT_SKETCH_CAPACITY`]. Larger means tighter
/// quantile rank-error (≤ `2·ceil(n/capacity) + 1` ranks) and more memory
/// per (pair, protocol) profile.
pub fn sketch_centroids() -> usize {
    tenv::var_usize_at_least(
        "S2S_SKETCH_CENTROIDS",
        s2s_stats::sketch::DEFAULT_SKETCH_CAPACITY,
        8,
    )
}

/// Samples a quantile sketch keeps verbatim (exact quantiles) before
/// compressing into centroids: the `S2S_SKETCH_EXACT` knob, default
/// [`s2s_stats::sketch::DEFAULT_SKETCH_EXACT`].
pub fn sketch_exact() -> usize {
    tenv::var_usize_at_least("S2S_SKETCH_EXACT", s2s_stats::sketch::DEFAULT_SKETCH_EXACT, 0)
}

/// The fabric fault profile from the `S2S_FABRIC_FAULT_*` knobs — an
/// alias for [`crate::fabric::FabricFaultProfile::from_env`].
pub fn fabric_fault_profile() -> crate::fabric::FabricFaultProfile {
    crate::fabric::FabricFaultProfile::from_env()
}

/// Worker heartbeat interval: the `S2S_FABRIC_HB_MS` knob, default 100 ms.
pub fn fabric_hb_interval() -> std::time::Duration {
    std::time::Duration::from_millis(tenv::var_u64("S2S_FABRIC_HB_MS", 100))
}

/// Default worker-process count for `reproduce`: the `S2S_FABRIC_WORKERS`
/// knob, default 1 (run in-process, no fabric). `reproduce --workers`
/// overrides it.
pub fn fabric_workers() -> usize {
    tenv::var_usize_at_least("S2S_FABRIC_WORKERS", 1, 1)
}

/// Traces per snapshot `BLOCK` segment: the `S2S_SNAPSHOT_BLOCK` knob when
/// set to a valid integer ≥ 1, default
/// [`crate::snapshot::DEFAULT_BLOCK_TRACES`]. The block is the unit of
/// loss under corruption — smaller blocks lose less per bad byte, larger
/// blocks amortize segment headers better.
pub fn snapshot_block() -> usize {
    tenv::var_usize_at_least(
        "S2S_SNAPSHOT_BLOCK",
        crate::snapshot::DEFAULT_BLOCK_TRACES,
        1,
    )
}

/// Traces per streamed-read batch: the `S2S_SNAPSHOT_BUDGET` knob when
/// set to a valid integer ≥ 1, default
/// [`crate::snapshot::DEFAULT_BLOCK_TRACES`]. This is the
/// `SnapshotReader` reuse-buffer cap — the out-of-core read counterpart
/// of `S2S_SNAPSHOT_BLOCK` — overridden per open by
/// `Snapshot::options().block_budget(n)`.
pub fn snapshot_budget() -> usize {
    tenv::var_usize_at_least(
        "S2S_SNAPSHOT_BUDGET",
        crate::snapshot::DEFAULT_BLOCK_TRACES,
        1,
    )
}

/// Directory the fabric merge writes per-shard snapshot files into: the
/// `S2S_SNAPSHOT_DIR` knob; unset (the default) means the merge keeps its
/// in-memory absorb path only.
pub fn snapshot_dir() -> Option<std::path::PathBuf> {
    tenv::var_raw("S2S_SNAPSHOT_DIR").map(std::path::PathBuf::from)
}

/// Default snapshot path for `reproduce --snapshot`: the
/// `S2S_SNAPSHOT_PATH` knob; unset means no snapshot unless the flag is
/// given.
pub fn snapshot_path() -> Option<std::path::PathBuf> {
    tenv::var_raw("S2S_SNAPSHOT_PATH").map(std::path::PathBuf::from)
}

/// Every `S2S_*` variable some layer of the platform recognizes: the
/// measurement-plane knobs above, the fabric knobs (including the
/// coordinator→worker assignment variables), and the `s2s-bench`
/// experiment-scale knobs. [`resolved_knobs`] warns about anything else.
pub const KNOWN_KNOBS: &[&str] = &[
    // Measurement plane.
    "S2S_THREADS",
    "S2S_EPOCH_BATCH",
    "S2S_FAULT_SEED",
    "S2S_FAULT_CRASH",
    "S2S_FAULT_CRASH_LEN",
    "S2S_FAULT_DROP",
    "S2S_FAULT_STUCK",
    "S2S_FAULT_TRUNC",
    "S2S_FAULT_CORRUPT",
    "S2S_SKETCH_CENTROIDS",
    "S2S_SKETCH_EXACT",
    // Fabric: operator knobs.
    "S2S_FABRIC_FAULT_SEED",
    "S2S_FABRIC_FAULT_KILL",
    "S2S_FABRIC_FAULT_STALL",
    "S2S_FABRIC_FAULT_CORRUPT",
    "S2S_FABRIC_FAULT_EXIT",
    "S2S_FABRIC_FAULT_PLAN",
    "S2S_FABRIC_RETRIES",
    "S2S_FABRIC_TIMEOUT_MS",
    "S2S_FABRIC_BACKOFF_MS",
    "S2S_FABRIC_HB_MS",
    "S2S_FABRIC_WORKERS",
    // Snapshot persistence.
    "S2S_SNAPSHOT_BLOCK",
    "S2S_SNAPSHOT_BUDGET",
    "S2S_SNAPSHOT_DIR",
    "S2S_SNAPSHOT_PATH",
    // Fabric: coordinator→worker assignment (not operator-set).
    "S2S_FABRIC_SHARD",
    "S2S_FABRIC_SHARDS",
    "S2S_FABRIC_ATTEMPT",
    "S2S_FABRIC_CKPT_DIR",
    "S2S_FABRIC_MODE",
    // Experiment scale (resolved in s2s-bench).
    "S2S_SEED",
    "S2S_CLUSTERS",
    "S2S_DAYS",
    "S2S_PAIRS",
    "S2S_PING_PAIRS",
    "S2S_CONG_PAIRS",
    "S2S_BENCH_QUICK",
    // Always-on measurement service (resolved in s2s-bench).
    "S2S_SERVICE_CADENCE_MS",
    "S2S_SERVICE_SNAP_EVERY",
    "S2S_SERVICE_QUERY_BUDGET",
];

/// The pure core of typo detection: which of `names` look like platform
/// knobs (`S2S_` prefix) but match nothing in [`KNOWN_KNOBS`]. Split out
/// from the environment scan so tests need not mutate the process env.
pub fn unknown_knob_names<'a, I: IntoIterator<Item = &'a str>>(names: I) -> Vec<String> {
    let mut out: Vec<String> = names
        .into_iter()
        .filter(|n| n.starts_with("S2S_") && !KNOWN_KNOBS.contains(n))
        .map(str::to_string)
        .collect();
    out.sort();
    out
}

/// Scans the process environment for unrecognized `S2S_*` variables and
/// warns once per process run — a mistyped knob (`S2S_FAULT_DORP=1`)
/// silently configuring nothing is worse than a noisy line on stderr.
pub fn warn_unknown_knobs() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let names: Vec<String> = std::env::vars().map(|(k, _)| k).collect();
        let unknown = unknown_knob_names(names.iter().map(String::as_str));
        if !unknown.is_empty() {
            eprintln!(
                "warning: unrecognized S2S_* variable(s): {} — not a knob any layer \
                 reads (typo?); see `reproduce --print-config` for the knob table",
                unknown.join(", ")
            );
        }
    });
}

/// One knob's resolved state, for `--print-config` style dumps.
#[derive(Clone, Debug)]
pub struct ResolvedKnob {
    /// Environment variable name.
    pub name: &'static str,
    /// The value the process will actually use, rendered.
    pub value: String,
    /// The default, rendered.
    pub default: String,
    /// Whether the operator set the variable at all.
    pub set: bool,
    /// One-line description.
    pub doc: &'static str,
}

impl ResolvedKnob {
    fn new(name: &'static str, value: String, default: String, doc: &'static str) -> Self {
        let set = tenv::var_raw(name).is_some();
        ResolvedKnob { name, value, default, set, doc }
    }
}

/// The measurement-plane knobs, resolved against the current environment.
/// Also the typo checkpoint: the first call warns (once) about `S2S_*`
/// variables no layer recognizes.
pub fn resolved_knobs() -> Vec<ResolvedKnob> {
    warn_unknown_knobs();
    let d = FaultProfile::default();
    let p = FaultProfile::from_env();
    let fd = crate::fabric::FabricFaultProfile::default();
    let fp = fabric_fault_profile();
    let fabric_cfg = crate::fabric::FabricConfig::from_env(1);
    let fabric_dft = crate::fabric::FabricConfig::default();
    let cap = epoch_batch_cap();
    let cap_str =
        if cap == usize::MAX { "unlimited".to_string() } else { cap.to_string() };
    vec![
        ResolvedKnob::new(
            "S2S_THREADS",
            threads().to_string(),
            "available parallelism".to_string(),
            "campaign worker + analysis shard threads",
        ),
        ResolvedKnob::new(
            "S2S_EPOCH_BATCH",
            cap_str,
            "unlimited".to_string(),
            "max sample instants per epoch run",
        ),
        ResolvedKnob::new(
            "S2S_FAULT_SEED",
            p.seed.to_string(),
            d.seed.to_string(),
            "fault-decision seed",
        ),
        ResolvedKnob::new(
            "S2S_FAULT_CRASH",
            p.crash_rate.to_string(),
            d.crash_rate.to_string(),
            "per-(agent, epoch) crash-start probability",
        ),
        ResolvedKnob::new(
            "S2S_FAULT_CRASH_LEN",
            p.crash_mean_epochs.to_string(),
            d.crash_mean_epochs.to_string(),
            "mean crash downtime, epochs",
        ),
        ResolvedKnob::new(
            "S2S_FAULT_DROP",
            p.drop_rate.to_string(),
            d.drop_rate.to_string(),
            "per-probe drop probability",
        ),
        ResolvedKnob::new(
            "S2S_FAULT_STUCK",
            p.stuck_rate.to_string(),
            d.stuck_rate.to_string(),
            "per-probe stuck-past-deadline probability",
        ),
        ResolvedKnob::new(
            "S2S_FAULT_TRUNC",
            p.truncate_rate.to_string(),
            d.truncate_rate.to_string(),
            "per-traceroute truncation probability",
        ),
        ResolvedKnob::new(
            "S2S_FAULT_CORRUPT",
            p.corrupt_rate.to_string(),
            d.corrupt_rate.to_string(),
            "per-archive-line corruption probability",
        ),
        ResolvedKnob::new(
            "S2S_SKETCH_CENTROIDS",
            sketch_centroids().to_string(),
            s2s_stats::sketch::DEFAULT_SKETCH_CAPACITY.to_string(),
            "quantile-sketch centroid capacity",
        ),
        ResolvedKnob::new(
            "S2S_SKETCH_EXACT",
            sketch_exact().to_string(),
            s2s_stats::sketch::DEFAULT_SKETCH_EXACT.to_string(),
            "samples kept exact before sketch compression",
        ),
        ResolvedKnob::new(
            "S2S_FABRIC_FAULT_SEED",
            fp.seed.to_string(),
            fd.seed.to_string(),
            "fabric fault-decision seed",
        ),
        ResolvedKnob::new(
            "S2S_FABRIC_FAULT_KILL",
            fp.kill_rate.to_string(),
            fd.kill_rate.to_string(),
            "per-worker-attempt kill probability",
        ),
        ResolvedKnob::new(
            "S2S_FABRIC_FAULT_STALL",
            fp.stall_rate.to_string(),
            fd.stall_rate.to_string(),
            "per-worker-attempt stall probability",
        ),
        ResolvedKnob::new(
            "S2S_FABRIC_FAULT_CORRUPT",
            fp.corrupt_rate.to_string(),
            fd.corrupt_rate.to_string(),
            "per-worker-attempt corrupt-frame probability",
        ),
        ResolvedKnob::new(
            "S2S_FABRIC_FAULT_EXIT",
            fp.exit_rate.to_string(),
            fd.exit_rate.to_string(),
            "per-worker-attempt exit-nonzero probability",
        ),
        ResolvedKnob::new(
            "S2S_FABRIC_FAULT_PLAN",
            format!("{} entr(ies)", fp.plan.len()),
            "empty".to_string(),
            "surgical fabric faults (kill@shard.attempt=k;…)",
        ),
        ResolvedKnob::new(
            "S2S_FABRIC_RETRIES",
            fabric_cfg.max_attempts.to_string(),
            fabric_dft.max_attempts.to_string(),
            "attempts per shard (first try + retries)",
        ),
        ResolvedKnob::new(
            "S2S_FABRIC_TIMEOUT_MS",
            fabric_cfg.heartbeat_timeout.as_millis().to_string(),
            fabric_dft.heartbeat_timeout.as_millis().to_string(),
            "reap a worker after this long with no stdout event",
        ),
        ResolvedKnob::new(
            "S2S_FABRIC_BACKOFF_MS",
            fabric_cfg.backoff_base_ms.to_string(),
            fabric_dft.backoff_base_ms.to_string(),
            "first retry backoff (doubles per attempt, jittered)",
        ),
        ResolvedKnob::new(
            "S2S_FABRIC_HB_MS",
            fabric_hb_interval().as_millis().to_string(),
            "100".to_string(),
            "worker heartbeat interval",
        ),
        ResolvedKnob::new(
            "S2S_FABRIC_WORKERS",
            fabric_workers().to_string(),
            "1".to_string(),
            "default reproduce worker count (1 = in-process)",
        ),
        ResolvedKnob::new(
            "S2S_SNAPSHOT_BLOCK",
            snapshot_block().to_string(),
            crate::snapshot::DEFAULT_BLOCK_TRACES.to_string(),
            "traces per snapshot BLOCK segment (the unit of loss)",
        ),
        ResolvedKnob::new(
            "S2S_SNAPSHOT_BUDGET",
            snapshot_budget().to_string(),
            crate::snapshot::DEFAULT_BLOCK_TRACES.to_string(),
            "traces per streamed-read batch (reader reuse-buffer cap)",
        ),
        ResolvedKnob::new(
            "S2S_SNAPSHOT_DIR",
            snapshot_dir()
                .map(|p| p.display().to_string())
                .unwrap_or_else(|| "unset".to_string()),
            "unset".to_string(),
            "fabric merge also writes per-shard snapshots here",
        ),
        ResolvedKnob::new(
            "S2S_SNAPSHOT_PATH",
            snapshot_path()
                .map(|p| p.display().to_string())
                .unwrap_or_else(|| "unset".to_string()),
            "unset".to_string(),
            "default for reproduce --snapshot",
        ),
    ]
}

/// Renders resolved knobs as an aligned table, one knob per line, with a
/// `*` marker on knobs the operator explicitly set.
pub fn format_knob_table(knobs: &[ResolvedKnob]) -> String {
    let name_w = knobs.iter().map(|k| k.name.len()).max().unwrap_or(0);
    let val_w = knobs.iter().map(|k| k.value.len()).max().unwrap_or(0);
    let mut out = String::new();
    for k in knobs {
        let mark = if k.set { "*" } else { " " };
        out.push_str(&format!(
            "{mark} {:<name_w$}  {:<val_w$}  (default {}) — {}\n",
            k.name, k.value, k.default, k.doc
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Parsing edge cases are covered against the pure cores in
    // `s2s_types::env` (no process-env mutation in parallel tests); here
    // we pin the probe-level wiring: which core, which default, which
    // constraint each knob uses.

    #[test]
    fn epoch_batch_core_maps_unset_and_garbage_to_unlimited() {
        let parse = |raw: Option<&str>| {
            s2s_types::env::parse_checked_desc(
                "S2S_EPOCH_BATCH",
                raw,
                usize::MAX,
                "unlimited",
                |&v| v >= 1,
                "an integer >= 1",
            )
        };
        assert_eq!(parse(None), (usize::MAX, None));
        assert_eq!(parse(Some("8")).0, 8);
        let (v, w) = parse(Some("0"));
        assert_eq!(v, usize::MAX);
        assert!(w.unwrap().contains("using default unlimited"));
        let (v, w) = parse(Some("abc"));
        assert_eq!(v, usize::MAX);
        assert!(w.is_some());
    }

    #[test]
    fn threads_core_rejects_zero() {
        let (v, w) = s2s_types::env::parse_checked(
            "S2S_THREADS",
            Some("0"),
            6usize,
            |&v| v >= 1,
            "an integer >= 1",
        );
        assert_eq!(v, 6);
        assert!(w.unwrap().contains("S2S_THREADS"));
    }

    #[test]
    fn resolved_knobs_cover_the_documented_table() {
        let knobs = resolved_knobs();
        let names: Vec<&str> = knobs.iter().map(|k| k.name).collect();
        for expect in [
            "S2S_THREADS",
            "S2S_EPOCH_BATCH",
            "S2S_FAULT_SEED",
            "S2S_FAULT_CRASH",
            "S2S_FAULT_CRASH_LEN",
            "S2S_FAULT_DROP",
            "S2S_FAULT_STUCK",
            "S2S_FAULT_TRUNC",
            "S2S_FAULT_CORRUPT",
            "S2S_SKETCH_CENTROIDS",
            "S2S_SKETCH_EXACT",
            "S2S_FABRIC_FAULT_SEED",
            "S2S_FABRIC_FAULT_KILL",
            "S2S_FABRIC_FAULT_STALL",
            "S2S_FABRIC_FAULT_CORRUPT",
            "S2S_FABRIC_FAULT_EXIT",
            "S2S_FABRIC_FAULT_PLAN",
            "S2S_FABRIC_RETRIES",
            "S2S_FABRIC_TIMEOUT_MS",
            "S2S_FABRIC_BACKOFF_MS",
            "S2S_FABRIC_HB_MS",
            "S2S_FABRIC_WORKERS",
            "S2S_SNAPSHOT_BLOCK",
            "S2S_SNAPSHOT_BUDGET",
            "S2S_SNAPSHOT_DIR",
            "S2S_SNAPSHOT_PATH",
        ] {
            assert!(names.contains(&expect), "missing {expect}");
        }
        let table = format_knob_table(&knobs);
        assert!(table.contains("S2S_EPOCH_BATCH"));
        assert!(table.lines().count() >= knobs.len());
    }

    #[test]
    fn unknown_knob_detection_flags_typos_only() {
        // Typos with the S2S_ prefix are flagged, sorted.
        let found = unknown_knob_names(
            ["S2S_FAULT_DORP", "S2S_THREADS", "PATH", "S2S_FABRIC_FAULT_KILLL"],
        );
        assert_eq!(found, vec!["S2S_FABRIC_FAULT_KILLL", "S2S_FAULT_DORP"]);
        // Everything documented — including the coordinator→worker
        // assignment variables a worker process inherits — is recognized.
        assert!(unknown_knob_names(KNOWN_KNOBS.iter().copied()).is_empty());
        // Non-S2S variables are never the platform's business.
        assert!(unknown_knob_names(["HOME", "CARGO_HOME"].into_iter()).is_empty());
    }

    #[test]
    fn every_resolved_knob_is_in_the_known_list() {
        // `--print-config` and the typo detector must agree, or a
        // documented knob would warn about itself.
        for k in resolved_knobs() {
            assert!(
                KNOWN_KNOBS.contains(&k.name),
                "{} resolved but not in KNOWN_KNOBS",
                k.name
            );
        }
    }
}
