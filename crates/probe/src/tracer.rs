//! Traceroute over the simulated network.
//!
//! Classic traceroute varies the flow identifier per probe; routers doing
//! per-flow load balancing then answer from *different* parallel paths at
//! different TTLs, splicing inconsistent router sequences together — the
//! artifact (including spurious AS-path loops) that Paris traceroute fixes
//! by holding the flow fields constant (§2.1, Augustin et al.). Both modes
//! are implemented; the ablation bench compares their false-loop rates.

use crate::records::{HopObs, TracerouteRecord};
use s2s_netsim::{Network, ProbeReply};
use s2s_types::{ClusterId, Protocol, SimTime};

/// Which traceroute flavor to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TracerouteMode {
    /// Flow fields vary per probe (pre-November-2014 behavior).
    Classic,
    /// Flow fields held constant across all probes of one traceroute.
    Paris,
}

/// Traceroute options.
#[derive(Clone, Copy, Debug)]
pub struct TraceOptions {
    /// Flavor.
    pub mode: TracerouteMode,
    /// Give up after this TTL.
    pub max_ttl: u8,
    /// Probes per TTL before recording `*`.
    pub retries: u8,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions { mode: TracerouteMode::Paris, max_ttl: 32, retries: 3 }
    }
}

/// The flow identifier a probe uses. Paris keeps the 5-tuple fixed per
/// (src, dst, proto); classic lets it vary with TTL and retry (the TTL sits
/// in fields routers hash on).
fn probe_flow(
    mode: TracerouteMode,
    src: ClusterId,
    dst: ClusterId,
    proto: Protocol,
    ttl: u8,
    attempt: u8,
) -> u64 {
    let base = (u64::from(src.0) << 40) ^ (u64::from(dst.0) << 16) ^ (proto as u64);
    match mode {
        TracerouteMode::Paris => base,
        TracerouteMode::Classic => {
            base ^ (u64::from(ttl) << 8) ^ u64::from(attempt) << 32
        }
    }
}

/// Runs one traceroute.
pub fn trace(
    net: &Network,
    src: ClusterId,
    dst: ClusterId,
    proto: Protocol,
    t: SimTime,
    opts: TraceOptions,
) -> TracerouteRecord {
    let mut hops: Vec<HopObs> = Vec::with_capacity(20);
    let mut reached = false;
    let mut e2e = None;
    let mut dst_addr = None;
    let src_cluster = &net.oracle().topology().clusters[src.index()];
    let src_addr = Some(match proto {
        Protocol::V4 => std::net::IpAddr::V4(src_cluster.v4),
        Protocol::V6 => std::net::IpAddr::V6(src_cluster.v6),
    });

    // Paris holds the flow constant, so every probe of this traceroute
    // takes one forward path: resolve it once instead of per TTL × retry.
    // Classic varies the flow per probe, so each probe resolves its own.
    let paris_fwd = (opts.mode == TracerouteMode::Paris).then(|| {
        let flow = probe_flow(opts.mode, src, dst, proto, 1, 0);
        net.forward_path(src, dst, proto, t, flow)
    });

    'ttl_loop: for ttl in 1..=opts.max_ttl {
        let mut observed: Option<HopObs> = None;
        for attempt in 0..opts.retries.max(1) {
            let flow = probe_flow(opts.mode, src, dst, proto, ttl, attempt);
            let reply = match &paris_fwd {
                Some(Some(fwd)) => {
                    net.probe_on(fwd, src, dst, proto, t, ttl, flow, u64::from(attempt))
                }
                Some(None) => ProbeReply::Unreachable,
                None => net.probe(src, dst, proto, t, ttl, flow, u64::from(attempt)),
            };
            match reply {
                ProbeReply::TimeExceeded { from, rtt_ms } => {
                    observed = Some(HopObs { addr: Some(from), rtt_ms: Some(rtt_ms) });
                    break;
                }
                ProbeReply::EchoReply { from, rtt_ms } => {
                    reached = true;
                    e2e = Some(rtt_ms);
                    dst_addr = Some(from);
                    break 'ttl_loop;
                }
                ProbeReply::Lost => continue,
                ProbeReply::Unreachable => break 'ttl_loop,
            }
        }
        hops.push(observed.unwrap_or(HopObs { addr: None, rtt_ms: None }));
    }

    TracerouteRecord { src, dst, proto, t, hops, reached, e2e_rtt_ms: e2e, src_addr, dst_addr }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2s_netsim::{CongestionModel, NetworkParams};
    use s2s_routing::{Dynamics, RouteOracle};
    use s2s_topology::{build_topology, TopologyParams};
    use std::sync::Arc;

    fn network(seed: u64, loss: f64) -> Network {
        let topo = Arc::new(build_topology(&TopologyParams::tiny(seed)));
        let oracle = Arc::new(RouteOracle::new(
            Arc::clone(&topo),
            Arc::new(Dynamics::all_up(&topo, SimTime::from_days(30))),
        ));
        Network::new(
            oracle,
            CongestionModel::none(),
            NetworkParams {
                loss_prob: loss,
                spike_prob: 0.0,
                rate_limit_prob_v4: 0.0,
                rate_limit_prob_v6: 0.0,
                ..NetworkParams::default()
            },
        )
    }

    #[test]
    fn paris_trace_reaches_and_matches_ground_truth() {
        let net = network(42, 0.0);
        let rec = trace(
            &net,
            ClusterId::new(0),
            ClusterId::new(5),
            Protocol::V4,
            SimTime::T0,
            TraceOptions::default(),
        );
        assert!(rec.reached);
        assert!(rec.e2e_rtt_ms.unwrap() > 0.0);
        // Ground truth: hops equal the oracle's visible path.
        let topo = net.oracle().topology();
        let flow = probe_flow(
            TracerouteMode::Paris,
            ClusterId::new(0),
            ClusterId::new(5),
            Protocol::V4,
            1,
            0,
        );
        let path = net
            .oracle()
            .router_path(ClusterId::new(0), ClusterId::new(5), Protocol::V4, SimTime::T0, flow)
            .unwrap();
        let visible: Vec<_> = path.hops.iter().filter(|h| !h.hidden).collect();
        assert_eq!(rec.hops.len(), visible.len());
        for (obs, truth) in rec.hops.iter().zip(&visible) {
            let iface =
                topo.links[truth.ingress_link.index()].iface_of(truth.router);
            let expect = std::net::IpAddr::V4(topo.ifaces[iface.index()].v4);
            assert_eq!(obs.addr, Some(expect));
        }
        assert_eq!(
            rec.dst_addr,
            Some(std::net::IpAddr::V4(topo.clusters[5].v4))
        );
    }

    #[test]
    fn hop_rtts_are_monotonic_without_noise() {
        let net = network(42, 0.0);
        let rec = trace(
            &net,
            ClusterId::new(1),
            ClusterId::new(8),
            Protocol::V4,
            SimTime::T0,
            TraceOptions::default(),
        );
        let rtts: Vec<f64> = rec.hops.iter().filter_map(|h| h.rtt_ms).collect();
        for w in rtts.windows(2) {
            assert!(w[1] + 1.5 >= w[0], "rtt regression: {w:?}");
        }
    }

    #[test]
    fn retries_recover_transient_loss() {
        // 30% loss but 5 retries: most hops should still answer.
        let net = network(42, 0.3);
        let rec = trace(
            &net,
            ClusterId::new(0),
            ClusterId::new(3),
            Protocol::V4,
            SimTime::T0,
            TraceOptions { retries: 5, ..TraceOptions::default() },
        );
        let unresponsive = rec.unresponsive_hops();
        assert!(
            unresponsive <= rec.hops.len() / 2,
            "{unresponsive}/{} hops lost despite retries",
            rec.hops.len()
        );
    }

    #[test]
    fn unresponsive_router_yields_star_and_continues() {
        let topo = Arc::new(build_topology(&TopologyParams {
            unresponsive_router_prob: 0.35,
            ..TopologyParams::tiny(99)
        }));
        let oracle = Arc::new(RouteOracle::new(
            Arc::clone(&topo),
            Arc::new(Dynamics::all_up(&topo, SimTime::from_days(5))),
        ));
        let net = Network::new(
            oracle,
            CongestionModel::none(),
            NetworkParams { loss_prob: 0.0, spike_prob: 0.0, ..NetworkParams::default() },
        );
        let mut stars = 0;
        let mut reached = 0;
        for b in 1..topo.clusters.len() {
            let rec = trace(
                &net,
                ClusterId::new(0),
                ClusterId::from(b),
                Protocol::V4,
                SimTime::T0,
                TraceOptions::default(),
            );
            stars += rec.unresponsive_hops();
            reached += rec.reached as usize;
        }
        assert!(stars > 0, "no unresponsive hops despite 35% unresponsive routers");
        assert_eq!(reached, topo.clusters.len() - 1, "stars must not stop the walk");
    }

    #[test]
    fn classic_flow_varies_paris_does_not() {
        let (s, d) = (ClusterId::new(1), ClusterId::new(2));
        let p1 = probe_flow(TracerouteMode::Paris, s, d, Protocol::V4, 1, 0);
        let p2 = probe_flow(TracerouteMode::Paris, s, d, Protocol::V4, 9, 2);
        assert_eq!(p1, p2);
        let c1 = probe_flow(TracerouteMode::Classic, s, d, Protocol::V4, 1, 0);
        let c2 = probe_flow(TracerouteMode::Classic, s, d, Protocol::V4, 2, 0);
        assert_ne!(c1, c2);
        // Direction matters.
        let rev = probe_flow(TracerouteMode::Paris, d, s, Protocol::V4, 1, 0);
        assert_ne!(p1, rev);
    }

    #[test]
    fn classic_can_splice_paths() {
        // With ECMP present, classic traceroute hop sequences eventually
        // differ from any single Paris path.
        let net = network(7, 0.0);
        let mut spliced = false;
        let n = net.oracle().topology().clusters.len();
        'outer: for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let classic = trace(
                    &net,
                    ClusterId::from(a),
                    ClusterId::from(b),
                    Protocol::V4,
                    SimTime::T0,
                    TraceOptions { mode: TracerouteMode::Classic, ..Default::default() },
                );
                let paris = trace(
                    &net,
                    ClusterId::from(a),
                    ClusterId::from(b),
                    Protocol::V4,
                    SimTime::T0,
                    TraceOptions::default(),
                );
                if classic.hops.iter().map(|h| h.addr).collect::<Vec<_>>()
                    != paris.hops.iter().map(|h| h.addr).collect::<Vec<_>>()
                {
                    spliced = true;
                    break 'outer;
                }
            }
        }
        assert!(spliced, "classic never diverged from Paris despite ECMP");
    }

    #[test]
    fn v6_trace_uses_v6_family() {
        let net = network(42, 0.0);
        let rec = trace(
            &net,
            ClusterId::new(0),
            ClusterId::new(4),
            Protocol::V6,
            SimTime::T0,
            TraceOptions::default(),
        );
        if rec.reached {
            assert!(rec.dst_addr.unwrap().is_ipv6());
            for h in &rec.hops {
                if let Some(a) = h.addr {
                    assert!(a.is_ipv6());
                }
            }
        }
    }

    #[test]
    fn max_ttl_caps_unreached_traces() {
        let net = network(42, 0.0);
        let rec = trace(
            &net,
            ClusterId::new(0),
            ClusterId::new(5),
            Protocol::V4,
            SimTime::T0,
            TraceOptions { max_ttl: 2, ..TraceOptions::default() },
        );
        assert!(!rec.reached);
        assert_eq!(rec.hops.len(), 2);
        assert!(rec.e2e_rtt_ms.is_none());
    }

    #[test]
    fn trace_is_deterministic() {
        let net = network(42, 0.01);
        let run = || {
            trace(
                &net,
                ClusterId::new(3),
                ClusterId::new(9),
                Protocol::V4,
                SimTime::from_hours(5),
                TraceOptions::default(),
            )
        };
        assert_eq!(run(), run());
    }
}
