//! Streaming campaign sinks: fold samples as they are produced.
//!
//! The §5 short-term plane pings ~3 M pairs every 15 minutes for a week —
//! ~2 B samples. Materializing that as [`PingTimeline`]s before analysis
//! costs memory proportional to *samples*; a [`StreamSink`] folds each
//! sample into per-(pair, protocol) state the moment it is measured, so a
//! campaign's resident size is proportional to *pairs* only.
//!
//! * [`StreamSink`] — the fold contract a sink implements; plugged into
//!   the builder via [`Campaign::sink`](crate::Campaign::sink),
//! * [`PairProfileSink`] → [`PairProfile`] — the constant-memory RTT
//!   profile (quantile sketch, Welford moments, diurnal ring bins, and a
//!   streamed filled-series PSD) that `s2s-core`'s streamed congestion
//!   classification consumes,
//! * [`TimelineSink`] → [`PingTimeline`] — the materializing sink; what
//!   [`Campaign::run_ping`](crate::Campaign::run_ping) folds through when
//!   a checkpoint is set, making ping campaigns resumable like traceroute
//!   ones.
//!
//! Sink state is single-writer: the campaign partitions pairs across
//! workers and every (pair, protocol) state sees only its own samples, in
//! schedule order — so results are byte-identical across thread counts by
//! construction. `save`/`load` round-trip state bit-exactly; that is the
//! ping checkpoint format (see the `campaign` module docs for the framing
//! and the bit-identical-resume guarantee).

use crate::campaign::PingTimeline;
use s2s_stats::sketch::{DiurnalProfile, FilledSpectrum, QuantileSketch, StreamingMoments};
use s2s_types::{ClusterId, Coverage, Protocol, SimDuration, SimTime, MINUTES_PER_DAY};

/// A streaming fold over a ping campaign's samples.
///
/// The campaign calls [`init`](StreamSink::init) once per
/// (pair, protocol), then [`fold`](StreamSink::fold) for **every**
/// scheduled slot in time order (`None` marks a lost sample — the slot
/// was offered but nothing came back), then [`finish`](StreamSink::finish)
/// when the pair's schedule is exhausted.
///
/// [`save`](StreamSink::save) and [`load`](StreamSink::load) serialize a
/// finished state to one line of text and back, *bit-exactly* — the
/// checkpoint path replays saved states instead of re-measuring, and the
/// resumed campaign must be indistinguishable from an uninterrupted one.
pub trait StreamSink: Sync {
    /// Per-(pair, protocol) accumulator.
    type State: Send;

    /// Creates the accumulator for one (pair, protocol) series.
    fn init(&self, src: ClusterId, dst: ClusterId, proto: Protocol) -> Self::State;

    /// Folds one scheduled slot: `seq` is the global sample index, `t` the
    /// nominal instant, `rtt_ms` the delivered RTT (`None` for a lost
    /// slot). Called once per slot, in schedule order.
    fn fold(&self, state: &mut Self::State, seq: u64, t: SimTime, rtt_ms: Option<f64>);

    /// Called once after the last slot of the series. Default: no-op.
    fn finish(&self, _state: &mut Self::State) {}

    /// Serializes a state to a single line (no `'\n'`); must round-trip
    /// bit-exactly through [`load`](StreamSink::load).
    fn save(&self, state: &Self::State) -> String;

    /// Parses a [`save`](StreamSink::save) line back into a state.
    fn load(&self, line: &str) -> std::io::Result<Self::State>;

    /// Resident bytes of one state (for the `sink.sketch_bytes` gauge and
    /// the bench's peak-memory accounting).
    fn state_bytes(&self, state: &Self::State) -> usize;
}

fn proto_tag(p: Protocol) -> &'static str {
    match p {
        Protocol::V4 => "4",
        Protocol::V6 => "6",
    }
}

fn parse_proto(s: &str) -> Result<Protocol, String> {
    match s {
        "4" => Ok(Protocol::V4),
        "6" => Ok(Protocol::V6),
        other => Err(format!("bad protocol {other:?}")),
    }
}

fn data_err(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

// ---------------------------------------------------------------------------
// PairProfile
// ---------------------------------------------------------------------------

/// The constant-memory RTT profile of one (pair, protocol) series.
///
/// Everything §5.1–§5.2 needs from a ping timeline, in `O(1)` state per
/// pair: offered/valid slot counts (coverage), a mergeable quantile
/// sketch (the 95th−5th spread), Welford moments, time-of-day ring bins
/// (busy/quiet structure), and a streamed filled-series PSD (the diurnal
/// frequency signature). `s2s-core::congestion::streamed` classifies
/// straight from this type.
#[derive(Clone, Debug, PartialEq)]
pub struct PairProfile {
    /// Source vantage point.
    pub src: ClusterId,
    /// Destination vantage point.
    pub dst: ClusterId,
    /// Protocol.
    pub proto: Protocol,
    /// First sample instant of the schedule.
    pub start: SimTime,
    /// Sampling cadence.
    pub interval: SimDuration,
    offered: u64,
    valid: u64,
    sketch: QuantileSketch,
    moments: StreamingMoments,
    diurnal: DiurnalProfile,
    spectrum: FilledSpectrum,
}

impl PairProfile {
    /// Slots the schedule offered this series.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Slots that delivered a valid RTT.
    pub fn valid_samples(&self) -> usize {
        self.valid as usize
    }

    /// Delivered-over-offered coverage of this series.
    pub fn coverage(&self) -> Coverage {
        Coverage::new(self.valid as usize, self.offered as usize)
    }

    /// Samples per day at this cadence (≥ 1).
    pub fn samples_per_day(&self) -> usize {
        (MINUTES_PER_DAY / self.interval.minutes().max(1)).max(1) as usize
    }

    /// RTT quantile estimate for `q ∈ [0, 1]` (see
    /// [`QuantileSketch::quantile`] for the error bound).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.sketch.quantile(q)
    }

    /// The §5.1 95th−5th percentile RTT spread, ms.
    pub fn spread_95_5(&self) -> Option<f64> {
        self.sketch.spread(0.05, 0.95)
    }

    /// Mean RTT, ms.
    pub fn mean(&self) -> Option<f64> {
        self.moments.mean()
    }

    /// Population standard deviation of the RTT, ms.
    pub fn stddev(&self) -> Option<f64> {
        self.moments.stddev()
    }

    /// Diurnal power ratio of the filled series — the streamed equivalent
    /// of `diurnal_psd_ratio(filled_rtts(), samples_per_day)`.
    pub fn psd_ratio(&self) -> Option<f64> {
        self.spectrum.ratio()
    }

    /// The time-of-day ring bins (one per schedule slot of the day).
    pub fn diurnal(&self) -> &DiurnalProfile {
        &self.diurnal
    }

    /// The quantile sketch itself (for merging into aggregate views).
    pub fn sketch(&self) -> &QuantileSketch {
        &self.sketch
    }

    /// Resident bytes of this profile.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() - std::mem::size_of::<QuantileSketch>()
            - std::mem::size_of::<DiurnalProfile>()
            - std::mem::size_of::<FilledSpectrum>()
            + self.sketch.memory_bytes()
            + self.diurnal.memory_bytes()
            + self.spectrum.memory_bytes()
    }

    /// Serializes to one line; bit-exact round trip through
    /// [`PairProfile::parse`].
    pub fn to_line(&self) -> String {
        format!(
            "S|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}",
            self.src.0,
            self.dst.0,
            proto_tag(self.proto),
            self.start.minutes(),
            self.interval.minutes(),
            self.offered,
            self.valid,
            self.sketch.encode(),
            self.moments.encode(),
            self.diurnal.encode(),
            self.spectrum.encode(),
        )
    }

    /// Parses a [`PairProfile::to_line`] line.
    pub fn parse(line: &str) -> std::io::Result<PairProfile> {
        let mut it = line.split('|');
        if it.next() != Some("S") {
            return Err(data_err(format!("not a profile line: {line:?}")));
        }
        let mut next = |what: &str| {
            it.next().ok_or_else(|| data_err(format!("profile line missing {what}")))
        };
        let src = ClusterId::new(
            next("src")?.parse().map_err(|e| data_err(format!("bad src: {e}")))?,
        );
        let dst = ClusterId::new(
            next("dst")?.parse().map_err(|e| data_err(format!("bad dst: {e}")))?,
        );
        let proto = parse_proto(next("proto")?).map_err(data_err)?;
        let start = SimTime::from_minutes(
            next("start")?.parse().map_err(|e| data_err(format!("bad start: {e}")))?,
        );
        let interval = SimDuration::from_minutes(
            next("interval")?.parse().map_err(|e| data_err(format!("bad interval: {e}")))?,
        );
        let offered: u64 =
            next("offered")?.parse().map_err(|e| data_err(format!("bad offered: {e}")))?;
        let valid: u64 =
            next("valid")?.parse().map_err(|e| data_err(format!("bad valid: {e}")))?;
        let sketch = QuantileSketch::decode(next("sketch")?).map_err(data_err)?;
        let moments = StreamingMoments::decode(next("moments")?).map_err(data_err)?;
        let diurnal = DiurnalProfile::decode(next("diurnal")?).map_err(data_err)?;
        let spectrum = FilledSpectrum::decode(next("spectrum")?).map_err(data_err)?;
        if it.next().is_some() {
            return Err(data_err("trailing fields on profile line"));
        }
        Ok(PairProfile {
            src,
            dst,
            proto,
            start,
            interval,
            offered,
            valid,
            sketch,
            moments,
            diurnal,
            spectrum,
        })
    }
}

// ---------------------------------------------------------------------------
// PairProfileSink
// ---------------------------------------------------------------------------

/// The sink producing [`PairProfile`]s: the §5 mesh as a bounded-memory
/// workload.
///
/// Shaped by the campaign schedule (slot count, cadence) plus the sketch
/// knobs (`S2S_SKETCH_CENTROIDS`, `S2S_SKETCH_EXACT` — see
/// [`crate::env::sketch_centroids`]).
#[derive(Clone, Debug)]
pub struct PairProfileSink {
    start: SimTime,
    interval: SimDuration,
    expected_len: usize,
    samples_per_day: usize,
    sketch_capacity: usize,
    sketch_exact: usize,
}

impl PairProfileSink {
    /// A sink for `cfg`'s schedule, sketch shape from the `S2S_SKETCH_*`
    /// knobs.
    pub fn for_config(cfg: &crate::campaign::CampaignConfig) -> PairProfileSink {
        PairProfileSink::with_shape(cfg, crate::env::sketch_centroids(), crate::env::sketch_exact())
    }

    /// A sink for `cfg`'s schedule with an explicit sketch shape.
    pub fn with_shape(
        cfg: &crate::campaign::CampaignConfig,
        sketch_capacity: usize,
        sketch_exact: usize,
    ) -> PairProfileSink {
        let spd = (MINUTES_PER_DAY / cfg.interval.minutes().max(1)).max(1) as usize;
        PairProfileSink {
            start: cfg.start,
            interval: cfg.interval,
            expected_len: cfg.n_samples(),
            samples_per_day: spd,
            sketch_capacity,
            sketch_exact,
        }
    }

    /// Samples per day at the sink's cadence.
    pub fn samples_per_day(&self) -> usize {
        self.samples_per_day
    }
}

impl StreamSink for PairProfileSink {
    type State = PairProfile;

    fn init(&self, src: ClusterId, dst: ClusterId, proto: Protocol) -> PairProfile {
        PairProfile {
            src,
            dst,
            proto,
            start: self.start,
            interval: self.interval,
            offered: 0,
            valid: 0,
            sketch: QuantileSketch::with_shape(self.sketch_capacity, self.sketch_exact),
            moments: StreamingMoments::new(),
            diurnal: DiurnalProfile::new(self.samples_per_day),
            spectrum: FilledSpectrum::new(self.expected_len, self.samples_per_day),
        }
    }

    fn fold(&self, st: &mut PairProfile, _seq: u64, t: SimTime, rtt_ms: Option<f64>) {
        st.offered += 1;
        st.spectrum.fold(rtt_ms);
        if let Some(v) = rtt_ms {
            st.valid += 1;
            st.sketch.push(v);
            st.moments.push(v);
            let bin = t.minute_of_day() / self.interval.minutes().max(1);
            st.diurnal.fold_slot(u64::from(bin), v);
        }
    }

    fn save(&self, st: &PairProfile) -> String {
        st.to_line()
    }

    fn load(&self, line: &str) -> std::io::Result<PairProfile> {
        PairProfile::parse(line)
    }

    fn state_bytes(&self, st: &PairProfile) -> usize {
        st.memory_bytes()
    }
}

// ---------------------------------------------------------------------------
// TimelineSink
// ---------------------------------------------------------------------------

/// The materializing sink: folds every slot into a dense [`PingTimeline`]
/// (lost slots as `NaN`), exactly what the in-memory ping runner builds.
///
/// Exists so ping campaigns can checkpoint/resume through the sink path —
/// [`Campaign::run_ping`](crate::Campaign::run_ping) with `.checkpoint()`
/// folds through this sink. Its `save` format keeps the raw f32 bits
/// (`K|src|dst|proto|start|interval|hex;hex;…`), unlike the human-readable
/// dataset line format which rounds; checkpoint resume must be
/// bit-identical.
#[derive(Clone, Debug)]
pub struct TimelineSink {
    start: SimTime,
    interval: SimDuration,
    expected_len: usize,
}

impl TimelineSink {
    /// A sink for `cfg`'s schedule.
    pub fn for_config(cfg: &crate::campaign::CampaignConfig) -> TimelineSink {
        TimelineSink { start: cfg.start, interval: cfg.interval, expected_len: cfg.n_samples() }
    }
}

impl StreamSink for TimelineSink {
    type State = PingTimeline;

    fn init(&self, src: ClusterId, dst: ClusterId, proto: Protocol) -> PingTimeline {
        PingTimeline {
            src,
            dst,
            proto,
            start: self.start,
            interval: self.interval,
            rtts: Vec::with_capacity(self.expected_len),
        }
    }

    fn fold(&self, st: &mut PingTimeline, _seq: u64, _t: SimTime, rtt_ms: Option<f64>) {
        st.rtts.push(rtt_ms.map(|r| r as f32).unwrap_or(f32::NAN));
    }

    fn save(&self, st: &PingTimeline) -> String {
        let rtts: Vec<String> =
            st.rtts.iter().map(|r| format!("{:08x}", r.to_bits())).collect();
        format!(
            "K|{}|{}|{}|{}|{}|{}",
            st.src.0,
            st.dst.0,
            proto_tag(st.proto),
            st.start.minutes(),
            st.interval.minutes(),
            rtts.join(";")
        )
    }

    fn load(&self, line: &str) -> std::io::Result<PingTimeline> {
        let mut it = line.split('|');
        if it.next() != Some("K") {
            return Err(data_err(format!("not a timeline-state line: {line:?}")));
        }
        let mut next = |what: &str| {
            it.next().ok_or_else(|| data_err(format!("timeline line missing {what}")))
        };
        let src = ClusterId::new(
            next("src")?.parse().map_err(|e| data_err(format!("bad src: {e}")))?,
        );
        let dst = ClusterId::new(
            next("dst")?.parse().map_err(|e| data_err(format!("bad dst: {e}")))?,
        );
        let proto = parse_proto(next("proto")?).map_err(data_err)?;
        let start = SimTime::from_minutes(
            next("start")?.parse().map_err(|e| data_err(format!("bad start: {e}")))?,
        );
        let interval = SimDuration::from_minutes(
            next("interval")?.parse().map_err(|e| data_err(format!("bad interval: {e}")))?,
        );
        let field = next("rtts")?;
        let rtts = if field.is_empty() {
            Vec::new()
        } else {
            field
                .split(';')
                .map(|tok| {
                    u32::from_str_radix(tok, 16)
                        .map(f32::from_bits)
                        .map_err(|e| data_err(format!("bad rtt token {tok:?}: {e}")))
                })
                .collect::<std::io::Result<Vec<f32>>>()?
        };
        if it.next().is_some() {
            return Err(data_err("trailing fields on timeline-state line"));
        }
        Ok(PingTimeline { src, dst, proto, start, interval, rtts })
    }

    fn state_bytes(&self, st: &PingTimeline) -> usize {
        std::mem::size_of::<PingTimeline>() + st.rtts.capacity() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignConfig;
    use s2s_stats::percentile::Summary;

    fn cfg_days(days: u32) -> CampaignConfig {
        let mut cfg = CampaignConfig::ping_week(SimTime::T0);
        cfg.end = SimTime::T0 + SimDuration::from_days(days);
        cfg
    }

    /// Synthetic diurnal series with content-keyed losses.
    fn run_series(sink: &PairProfileSink, cfg: &CampaignConfig, lossy: bool) -> PairProfile {
        let mut st = sink.init(ClusterId::new(1), ClusterId::new(2), Protocol::V4);
        let times: Vec<SimTime> =
            s2s_types::time::sample_times(cfg.start, cfg.end, cfg.interval).collect();
        for (ti, &t) in times.iter().enumerate() {
            let lost = lossy && ti % 9 == 4;
            let rtt = if lost {
                None
            } else {
                let phase = 2.0 * std::f64::consts::PI * ti as f64 / 96.0;
                Some(((50.0 + 12.0 * phase.sin() + (ti % 5) as f64) as f32) as f64)
            };
            sink.fold(&mut st, ti as u64, t, rtt);
        }
        sink.finish(&mut st);
        st
    }

    #[test]
    fn profile_matches_materialized_stats() {
        let cfg = cfg_days(7);
        let sink = PairProfileSink::with_shape(&cfg, 256, 128);
        let st = run_series(&sink, &cfg, true);

        // Rebuild the materialized equivalent and compare.
        let times: Vec<SimTime> =
            s2s_types::time::sample_times(cfg.start, cfg.end, cfg.interval).collect();
        let rtts: Vec<f32> = (0..times.len())
            .map(|ti| {
                if ti % 9 == 4 {
                    f32::NAN
                } else {
                    let phase = 2.0 * std::f64::consts::PI * ti as f64 / 96.0;
                    (50.0 + 12.0 * phase.sin() + (ti % 5) as f64) as f32
                }
            })
            .collect();
        let tl = PingTimeline {
            src: ClusterId::new(1),
            dst: ClusterId::new(2),
            proto: Protocol::V4,
            start: cfg.start,
            interval: cfg.interval,
            rtts,
        };

        assert_eq!(st.valid_samples(), tl.valid_samples());
        assert_eq!(st.offered(), times.len() as u64);
        let summary = Summary::of(&tl.valid_rtts()).unwrap();
        let spread = st.spread_95_5().unwrap();
        assert!(
            (spread - summary.spread_95_5()).abs() < 0.5,
            "sketch spread {spread} vs exact {}",
            summary.spread_95_5()
        );
        assert!((st.mean().unwrap() - summary.mean).abs() < 1e-9);
        let exact_psd = s2s_stats::fft::diurnal_psd_ratio(
            &tl.filled_rtts().unwrap(),
            sink.samples_per_day(),
        )
        .unwrap();
        let streamed_psd = st.psd_ratio().unwrap();
        assert!(
            (streamed_psd - exact_psd).abs() < 1e-6,
            "psd {streamed_psd} vs exact {exact_psd}"
        );
        // The diurnal ring sees the daily swing.
        assert!(st.diurnal().amplitude().unwrap() > 10.0);
    }

    #[test]
    fn profile_round_trips_bit_exactly() {
        let cfg = cfg_days(7);
        let sink = PairProfileSink::with_shape(&cfg, 64, 32);
        for lossy in [false, true] {
            let st = run_series(&sink, &cfg, lossy);
            let line = sink.save(&st);
            assert!(!line.contains('\n'));
            let back = sink.load(&line).unwrap();
            assert_eq!(st, back);
            assert_eq!(sink.save(&back), line);
        }
        // An untouched state round-trips too.
        let fresh = sink.init(ClusterId::new(0), ClusterId::new(3), Protocol::V6);
        let back = sink.load(&sink.save(&fresh)).unwrap();
        assert_eq!(fresh, back);
        assert!(sink.load("garbage").is_err());
        assert!(sink.load("S|1|2|4|0").is_err());
    }

    #[test]
    fn profile_memory_is_sample_count_independent() {
        let short_cfg = cfg_days(7);
        let long_cfg = cfg_days(70);
        let sink_short = PairProfileSink::with_shape(&short_cfg, 64, 32);
        let sink_long = PairProfileSink::with_shape(&long_cfg, 64, 32);
        let a = run_series(&sink_short, &short_cfg, true);
        let b = run_series(&sink_long, &long_cfg, true);
        assert!(b.offered() >= 9 * a.offered());
        // 10x the samples, same-order state size.
        assert!(
            b.memory_bytes() < 2 * a.memory_bytes(),
            "{} vs {} bytes",
            b.memory_bytes(),
            a.memory_bytes()
        );
    }

    #[test]
    fn all_lost_series_has_no_stats() {
        let cfg = cfg_days(7);
        let sink = PairProfileSink::with_shape(&cfg, 64, 32);
        let mut st = sink.init(ClusterId::new(1), ClusterId::new(2), Protocol::V4);
        let times: Vec<SimTime> =
            s2s_types::time::sample_times(cfg.start, cfg.end, cfg.interval).collect();
        for (ti, &t) in times.iter().enumerate() {
            sink.fold(&mut st, ti as u64, t, None);
        }
        assert_eq!(st.valid_samples(), 0);
        assert_eq!(st.offered(), times.len() as u64);
        assert_eq!(st.spread_95_5(), None);
        assert_eq!(st.psd_ratio(), None);
        assert_eq!(st.mean(), None);
        assert!((st.coverage().fraction() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn timeline_sink_reproduces_the_dense_timeline() {
        let cfg = cfg_days(7);
        let sink = TimelineSink::for_config(&cfg);
        let mut st = sink.init(ClusterId::new(3), ClusterId::new(4), Protocol::V6);
        let times: Vec<SimTime> =
            s2s_types::time::sample_times(cfg.start, cfg.end, cfg.interval).collect();
        for (ti, &t) in times.iter().enumerate() {
            let rtt =
                if ti % 4 == 1 { None } else { Some(f64::from((40.0 + ti as f64) as f32)) };
            sink.fold(&mut st, ti as u64, t, rtt);
        }
        assert_eq!(st.rtts.len(), times.len());
        assert!(st.rtts[1].is_nan());
        assert_eq!(st.rtts[0], 40.0);

        let line = sink.save(&st);
        let back = sink.load(&line).unwrap();
        // NaN payload bits included.
        let bits: Vec<u32> = st.rtts.iter().map(|r| r.to_bits()).collect();
        let back_bits: Vec<u32> = back.rtts.iter().map(|r| r.to_bits()).collect();
        assert_eq!(bits, back_bits);
        assert_eq!((back.src, back.dst, back.proto), (st.src, st.dst, st.proto));
        assert_eq!((back.start, back.interval), (st.start, st.interval));
        assert!(sink.load("K|1|2|9|0|15|").is_err());
        assert!(sink.load("P|1|2|4|0|15|1.0").is_err());
    }
}
