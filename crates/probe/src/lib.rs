//! Measurement tooling over the simulated network.
//!
//! The paper's platform runs two tools from every measurement server —
//! ping and traceroute (classic until November 2014, then Paris traceroute
//! for IPv4) — on fixed schedules: full-mesh traceroutes every 3 hours for
//! 16 months, pings every 15 minutes, and focused 30-minute traceroute
//! campaigns toward congested pairs. This crate reproduces the tools and
//! the campaign scheduler:
//!
//! * [`tracer`] — TTL-walking traceroute with classic (per-probe flow) and
//!   Paris (fixed flow) modes, retries, and unresponsive-hop handling,
//! * [`records`] — the measurement record types the analysis pipeline in
//!   `s2s-core` consumes (serde-serializable, data-source agnostic),
//! * [`campaign`] — the scheduler: full-mesh or pair-list sweeps at a fixed
//!   cadence, parallelized with scoped threads (panic-isolated per worker),
//!   aggregating per-pair results via a caller-supplied fold so multi-month
//!   campaigns stream instead of materializing billions of records; the
//!   fault-aware runners add per-probe timeouts, bounded retry, failure
//!   accounting ([`CampaignReport`]), and checkpoint/resume,
//! * [`faults`] — seeded, content-keyed fault injection (agent crashes,
//!   dropped/stuck/truncated probes, archive corruption) with an all-zero
//!   default profile,
//! * [`dataset`] — line-oriented export/import of records for archiving and
//!   external plotting, with strict and lossy (skip-counting) import paths.

pub mod campaign;
pub mod dataset;
pub mod faults;
pub mod records;
pub mod tracer;

pub use campaign::{
    colocated_pairs, full_mesh_pairs, ping_once, run_ping_campaign,
    run_ping_campaign_faulty, run_traceroute_campaign, run_traceroute_campaign_faulty,
    run_traceroute_campaign_faulty_reference, run_traceroute_campaign_reference,
    run_traceroute_campaign_resumable, run_traceroute_campaign_with, CampaignConfig,
    CampaignReport, PingTimeline, RetryPolicy,
};
pub use faults::{FaultInjector, FaultProfile, ProbeFault};
pub use records::{HopObs, PingRecord, TracerouteRecord};
pub use tracer::{trace, TraceOptions, TracerouteMode};
