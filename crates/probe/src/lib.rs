//! Measurement tooling over the simulated network.
//!
//! The paper's platform runs two tools from every measurement server —
//! ping and traceroute (classic until November 2014, then Paris traceroute
//! for IPv4) — on fixed schedules: full-mesh traceroutes every 3 hours for
//! 16 months, pings every 15 minutes, and focused 30-minute traceroute
//! campaigns toward congested pairs. This crate reproduces the tools and
//! the campaign scheduler:
//!
//! * [`builder`] — **the front door**: [`Campaign`] configures any run
//!   (faults, retry, checkpoint, threads, observability) and launches it
//!   via [`Campaign::run_traceroute`] / [`Campaign::run_ping`],
//! * [`tracer`] — TTL-walking traceroute with classic (per-probe flow) and
//!   Paris (fixed flow) modes, retries, and unresponsive-hop handling,
//! * [`records`] — the measurement record types the analysis pipeline in
//!   `s2s-core` consumes (serde-serializable, data-source agnostic),
//! * [`campaign`] — the execution cores behind the builder: full-mesh or
//!   pair-list sweeps at a fixed cadence, parallelized with scoped threads
//!   (panic-isolated per worker), aggregating per-pair results via a
//!   caller-supplied fold so multi-month campaigns stream instead of
//!   materializing billions of records, plus per-probe timeouts, bounded
//!   retry, failure accounting ([`CampaignReport`]), and checkpoint/resume
//!   — every campaign enters through [`Campaign`]; the old free
//!   `run_*_campaign*` shims are gone,
//! * [`mod@env`] — the consolidated `S2S_*` knob table (threads, epoch
//!   batching, fault profile) with warn-and-default parsing,
//! * [`faults`] — seeded, content-keyed fault injection (agent crashes,
//!   dropped/stuck/truncated probes, archive corruption) with an all-zero
//!   default profile,
//! * [`dataset`] — line-oriented export/import of records for archiving and
//!   external plotting, with strict and lossy (skip-counting) import paths,
//! * [`store`] — the columnar trace arena ([`TraceStore`]): interned
//!   addresses, hash-consed hop sequences, flat RTT columns, and zero-copy
//!   [`TraceView`] accessors — what the `s2s-core` columnar analysis driver
//!   consumes,
//! * [`stream`] — streaming campaign sinks ([`StreamSink`],
//!   [`PairProfileSink`]): fold samples into constant-size per-pair state
//!   as they are measured, attached via [`Campaign::sink`] — the §5
//!   short-term mesh as a bounded-memory workload,
//! * [`snapshot`] — binary columnar snapshots: a versioned, checksummed
//!   on-disk twin of [`TraceStore`] (interned address table, hash-consed
//!   sequence arena, raw column blocks, sink states) that reopens in
//!   O(distinct-data) instead of re-parsing O(lines); the
//!   [`Snapshot::options`] builder unifies strict/lossy/streamed opens —
//!   [`SnapshotReader`] walks `BLOCK` segments through a bounded reuse
//!   buffer (resident bytes O(arena + one batch), never O(traces)) and
//!   [`snapshot::absorb_files`] merges per-shard files the same way,
//! * [`fabric`] — the crash-tolerant scale-out layer: a coordinator
//!   shards the pair space across worker subprocesses speaking a framed
//!   stdout protocol, reaps hung or crashed workers by heartbeat timeout,
//!   retries with seeded backoff and worker-local checkpoint resume, and
//!   merges shards deterministically — byte-identical to one process
//!   under any seeded crash schedule (`S2S_FABRIC_FAULT_*`).

pub mod builder;
pub mod campaign;
pub mod dataset;
pub mod env;
pub mod fabric;
pub mod faults;
pub mod records;
pub mod snapshot;
pub mod store;
pub mod stream;
pub mod tracer;

pub use builder::{Campaign, SinkCampaign};
pub use campaign::{
    colocated_pairs, full_mesh_pairs, ping_once, CampaignConfig, CampaignReport,
    PingTimeline, RetryPolicy,
};
pub use fabric::{
    Coordinator, FabricConfig, FabricFaultProfile, FabricOutcome, FabricStats,
    ProcessLauncher, ShardPayload, ShardResult, WorkerAssignment, WorkerFault,
    WorkerLauncher,
};
pub use faults::{FaultInjector, FaultProfile, ProbeFault};
pub use records::{HopObs, PingRecord, TracerouteRecord};
pub use snapshot::{ShardDir, Snapshot, SnapshotOptions, SnapshotReader, SnapshotReport};
pub use store::{StoreStats, TraceStore, TraceView};
pub use stream::{PairProfile, PairProfileSink, StreamSink, TimelineSink};
pub use tracer::{trace, TraceOptions, TracerouteMode};
