//! Dataset export/import.
//!
//! Campaign outputs are plain data; this module round-trips them through a
//! line-oriented text format so results can be archived, diffed, or plotted
//! by external tooling without rerunning a multi-month campaign. The format
//! is deliberately boring: one record per line, `|`-separated fields,
//! `*` for missing values — the same spirit as scamper's text output.

use crate::records::{HopObs, TracerouteRecord};
use crate::PingTimeline;
use s2s_types::{ClusterId, Protocol, SimDuration, SimTime};
use std::fmt::Write as _;
use std::net::IpAddr;
use std::str::FromStr;

/// Errors from parsing a dataset line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Which line failed (1-based, as editors and `grep -n` count).
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn opt<T: ToString>(v: Option<T>) -> String {
    v.map(|x| x.to_string()).unwrap_or_else(|| "*".into())
}

fn parse_opt<T: FromStr>(s: &str) -> Result<Option<T>, String> {
    if s == "*" {
        Ok(None)
    } else {
        s.parse().map(Some).map_err(|_| format!("bad field '{s}'"))
    }
}

fn proto_tag(p: Protocol) -> &'static str {
    match p {
        Protocol::V4 => "4",
        Protocol::V6 => "6",
    }
}

fn parse_proto(s: &str) -> Result<Protocol, String> {
    match s {
        "4" => Ok(Protocol::V4),
        "6" => Ok(Protocol::V6),
        other => Err(format!("bad protocol '{other}'")),
    }
}

/// Serializes one traceroute to a line:
/// `T|src|dst|proto|minute|reached|e2e|src_addr|dst_addr|hop,rtt;hop,rtt;...`
///
/// RTT fields print with `{}` — the shortest decimal that parses back to
/// the exact same float — so the archive is **lossless**: a record folded
/// from its archived line is bit-identical to the live record. That is
/// what lets checkpoint replay, and the fabric's cross-process shard
/// merge, reproduce an in-memory campaign byte for byte.
pub fn traceroute_to_line(r: &TracerouteRecord) -> String {
    let mut line = String::new();
    write_traceroute_line(&mut line, r);
    line
}

/// Appends one traceroute's archive line (no trailing newline) to `buf` —
/// the allocation-free core of [`traceroute_to_line`]. Digest and export
/// loops reuse one buffer across millions of records instead of
/// materializing a `String` per record.
pub fn write_traceroute_line(buf: &mut String, r: &TracerouteRecord) {
    let _ = write!(
        buf,
        "T|{}|{}|{}|{}|{}|{}|{}|{}|",
        r.src.0,
        r.dst.0,
        proto_tag(r.proto),
        r.t.minutes(),
        u8::from(r.reached),
        opt(r.e2e_rtt_ms),
        opt(r.src_addr),
        opt(r.dst_addr),
    );
    for (i, h) in r.hops.iter().enumerate() {
        if i > 0 {
            buf.push(';');
        }
        let _ = write!(buf, "{},{}", opt(h.addr), opt(h.rtt_ms));
    }
}

/// Parses a traceroute line produced by [`traceroute_to_line`].
///
/// Walks the `|`-split once instead of collecting a per-line field vector
/// — the importer's hot path (the `analysis.importer` section of
/// `BENCH_longterm.json` times it); the field count is only computed when
/// the shape is wrong and an error message needs it.
pub fn traceroute_from_line(line: &str, lineno: usize) -> Result<TracerouteRecord, ParseError> {
    let err = |m: String| ParseError { line: lineno, message: m };
    let shape_err =
        || err(format!("expected 10 T-record fields, got {}", line.split('|').count()));
    let mut it = line.split('|');
    if it.next() != Some("T") {
        return Err(shape_err());
    }
    let mut next = || it.next().ok_or_else(shape_err);
    let src = ClusterId::new(next()?.parse().map_err(|_| err("bad src".into()))?);
    let dst = ClusterId::new(next()?.parse().map_err(|_| err("bad dst".into()))?);
    let proto = parse_proto(next()?).map_err(&err)?;
    let t = SimTime::from_minutes(next()?.parse().map_err(|_| err("bad time".into()))?);
    // Strict 0/1: anything else ("2", "true", bit-rotted bytes) is a
    // parse error, not a silent `false` — the lossy importer counts it.
    let reached = match next()? {
        "1" => true,
        "0" => false,
        other => return Err(err(format!("bad reached flag '{other}' (want 0 or 1)"))),
    };
    let e2e_rtt_ms = parse_opt::<f64>(next()?).map_err(&err)?;
    let src_addr = parse_opt::<IpAddr>(next()?).map_err(&err)?;
    let dst_addr = parse_opt::<IpAddr>(next()?).map_err(&err)?;
    let hops_field = next()?;
    if it.next().is_some() {
        return Err(shape_err());
    }
    let mut hops = Vec::new();
    if !hops_field.is_empty() {
        for part in hops_field.split(';') {
            let (a, r) = part
                .split_once(',')
                .ok_or_else(|| err(format!("bad hop '{part}'")))?;
            hops.push(HopObs {
                addr: parse_opt::<IpAddr>(a).map_err(&err)?,
                rtt_ms: parse_opt::<f64>(r).map_err(&err)?,
            });
        }
    }
    Ok(TracerouteRecord { src, dst, proto, t, hops, reached, e2e_rtt_ms, src_addr, dst_addr })
}

/// Serializes a ping timeline to a line:
/// `P|src|dst|proto|start_minute|interval_minutes|rtt;rtt;*;...`
///
/// RTTs use the same lossless shortest-round-trip rendering as
/// [`traceroute_to_line`], so parse ∘ serialize is the identity on the
/// stored `f32` bits (NaN excepted, which renders as `*`).
pub fn ping_timeline_to_line(tl: &PingTimeline) -> String {
    let rtts: Vec<String> = tl
        .rtts
        .iter()
        .map(|r| {
            if r.is_nan() {
                "*".into()
            } else {
                format!("{r}")
            }
        })
        .collect();
    format!(
        "P|{}|{}|{}|{}|{}|{}",
        tl.src.0,
        tl.dst.0,
        proto_tag(tl.proto),
        tl.start.minutes(),
        tl.interval.minutes(),
        rtts.join(";")
    )
}

/// Parses a ping-timeline line produced by [`ping_timeline_to_line`].
/// Single-pass over the split, like [`traceroute_from_line`].
pub fn ping_timeline_from_line(line: &str, lineno: usize) -> Result<PingTimeline, ParseError> {
    let err = |m: String| ParseError { line: lineno, message: m };
    let shape_err =
        || err(format!("expected 7 P-record fields, got {}", line.split('|').count()));
    let mut it = line.split('|');
    if it.next() != Some("P") {
        return Err(shape_err());
    }
    let mut next = || it.next().ok_or_else(shape_err);
    let src = ClusterId::new(next()?.parse().map_err(|_| err("bad src".into()))?);
    let dst = ClusterId::new(next()?.parse().map_err(|_| err("bad dst".into()))?);
    let proto = parse_proto(next()?).map_err(&err)?;
    let start =
        SimTime::from_minutes(next()?.parse().map_err(|_| err("bad start".into()))?);
    let interval =
        SimDuration::from_minutes(next()?.parse().map_err(|_| err("bad interval".into()))?);
    let rtts_field = next()?;
    if it.next().is_some() {
        return Err(shape_err());
    }
    let rtts = if rtts_field.is_empty() {
        Vec::new()
    } else {
        rtts_field
            .split(';')
            .map(|s| {
                if s == "*" {
                    Ok(f32::NAN)
                } else {
                    s.parse::<f32>().map_err(|_| err(format!("bad rtt '{s}'")))
                }
            })
            .collect::<Result<Vec<f32>, _>>()?
    };
    Ok(PingTimeline { src, dst, proto, start, interval, rtts })
}

/// Writes traceroute records to a writer, one line each.
pub fn write_traceroutes<W: std::io::Write>(
    w: &mut W,
    records: &[TracerouteRecord],
) -> std::io::Result<()> {
    for r in records {
        writeln!(w, "{}", traceroute_to_line(r))?;
    }
    Ok(())
}

/// Reads traceroute records from a reader (skipping blank lines and `#`
/// comments). Errors carry 1-based line numbers.
pub fn read_traceroutes<R: std::io::BufRead>(
    r: R,
) -> Result<Vec<TracerouteRecord>, ParseError> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let lineno = i + 1;
        let line =
            line.map_err(|e| ParseError { line: lineno, message: e.to_string() })?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(traceroute_from_line(line, lineno)?);
    }
    Ok(out)
}

/// What a lossy import did: how much survived, how much was skipped, and
/// the first few reasons why.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ImportReport {
    /// Records parsed successfully.
    pub imported: usize,
    /// Lines skipped as unparseable (corrupt, truncated, foreign).
    pub skipped: usize,
    /// The first [`ImportReport::MAX_SAMPLED_ERRORS`] parse errors, for
    /// diagnosis; further errors only bump `skipped`.
    pub first_errors: Vec<ParseError>,
}

impl ImportReport {
    /// How many parse errors a report keeps verbatim.
    pub const MAX_SAMPLED_ERRORS: usize = 8;

    fn skip(&mut self, e: ParseError) {
        self.skipped += 1;
        if self.first_errors.len() < Self::MAX_SAMPLED_ERRORS {
            self.first_errors.push(e);
        }
    }

    /// Coverage of the archive: imported lines over candidate lines.
    pub fn coverage(&self) -> s2s_types::Coverage {
        s2s_types::Coverage::new(self.imported, self.imported + self.skipped)
    }
}

/// Reads traceroute records from a possibly damaged archive. Unparseable
/// lines — bit rot, torn writes, foreign text — degrade to counted skips
/// instead of aborting the import; blank lines and `#` comments are
/// ignored as in [`read_traceroutes`] and count as neither imported nor
/// skipped.
pub fn read_traceroutes_lossy<R: std::io::BufRead>(
    r: R,
) -> std::io::Result<(Vec<TracerouteRecord>, ImportReport)> {
    let mut out = Vec::new();
    let mut report = ImportReport::default();
    for (i, line) in r.lines().enumerate() {
        let Some(line) = lossy_line(line, i + 1, &mut report)? else { continue };
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match traceroute_from_line(line, i + 1) {
            Ok(rec) => {
                report.imported += 1;
                out.push(rec);
            }
            Err(e) => report.skip(e),
        }
    }
    Ok((out, report))
}

/// Resolves one line read for a lossy import: invalid UTF-8 is bit rot in
/// the archive and degrades to a counted skip, while any other I/O error
/// means the *stream* is unreadable — losing the rest of the archive is
/// not a per-line skip — and propagates.
fn lossy_line(
    line: std::io::Result<String>,
    lineno: usize,
    report: &mut ImportReport,
) -> std::io::Result<Option<String>> {
    match line {
        Ok(l) => Ok(Some(l)),
        Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
            report.skip(ParseError { line: lineno, message: "invalid UTF-8".into() });
            Ok(None)
        }
        Err(e) => Err(e),
    }
}

/// Writes ping timelines to a writer, one line each.
pub fn write_ping_timelines<W: std::io::Write>(
    w: &mut W,
    timelines: &[PingTimeline],
) -> std::io::Result<()> {
    for tl in timelines {
        writeln!(w, "{}", ping_timeline_to_line(tl))?;
    }
    Ok(())
}

/// The ping counterpart of [`read_traceroutes_lossy`].
pub fn read_ping_timelines_lossy<R: std::io::BufRead>(
    r: R,
) -> std::io::Result<(Vec<PingTimeline>, ImportReport)> {
    let mut out = Vec::new();
    let mut report = ImportReport::default();
    for (i, line) in r.lines().enumerate() {
        let Some(line) = lossy_line(line, i + 1, &mut report)? else { continue };
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match ping_timeline_from_line(line, i + 1) {
            Ok(tl) => {
                report.imported += 1;
                out.push(tl);
            }
            Err(e) => report.skip(e),
        }
    }
    Ok((out, report))
}

/// Like [`write_traceroutes`], but each line passes through the fault
/// injector's archive-corruption stage on the way out. Returns how many
/// lines were corrupted. Under a zero `corrupt_rate` the output is
/// byte-identical to [`write_traceroutes`].
pub fn write_traceroutes_faulty<W: std::io::Write>(
    w: &mut W,
    records: &[TracerouteRecord],
    injector: &crate::faults::FaultInjector,
) -> std::io::Result<usize> {
    let mut corrupted = 0;
    for r in records {
        let line = traceroute_to_line(r);
        match injector.corrupt_line(&line) {
            Some(mangled) => {
                corrupted += 1;
                writeln!(w, "{mangled}")?;
            }
            None => writeln!(w, "{line}")?,
        }
    }
    Ok(corrupted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The parser must reject or accept arbitrary input without
        /// panicking — it ingests archives from outside the process.
        #[test]
        fn prop_parser_never_panics(line in ".*") {
            let _ = traceroute_from_line(&line, 0);
            let _ = ping_timeline_from_line(&line, 0);
        }

        /// Pipe-structured garbage with the right field count must not
        /// panic either (it exercises the per-field error paths).
        #[test]
        fn prop_structured_garbage_is_rejected_cleanly(
            fields in proptest::collection::vec("[a-z0-9*.]{0,8}", 9),
        ) {
            let line = format!("T|{}", fields.join("|"));
            let _ = traceroute_from_line(&line, 3);
        }

        /// Round trip holds for arbitrary RTT values (3-decimal precision).
        #[test]
        fn prop_rtt_precision(rtt in 0.0f64..1e5) {
            let mut r = sample_record();
            r.e2e_rtt_ms = Some(rtt);
            let back = traceroute_from_line(&traceroute_to_line(&r), 0).unwrap();
            prop_assert!((back.e2e_rtt_ms.unwrap() - rtt).abs() < 0.0005 + rtt * 1e-12);
        }

        /// Export an archive, flip arbitrary bytes in it, import it back:
        /// the lossy reader must never panic, and every candidate line must
        /// be accounted for as either imported or skipped.
        #[test]
        fn prop_flipped_bytes_degrade_to_counted_skips(
            flips in proptest::collection::vec((0usize..4096, 0u8..255), 0..24),
        ) {
            let records = vec![sample_record(); 6];
            let mut buf = Vec::new();
            write_traceroutes(&mut buf, &records).unwrap();
            for &(pos, byte) in &flips {
                let pos = pos % buf.len();
                buf[pos] = byte;
            }
            let (out, report) = read_traceroutes_lossy(std::io::Cursor::new(&buf))
                .expect("in-memory reads cannot fail");
            prop_assert_eq!(out.len(), report.imported);
            // Flips can merge lines (eat a '\n'), split them (mint one),
            // or comment a line out ('#'), so the candidate count is
            // whatever the mutated bytes say — but every candidate must
            // resolve exactly one way.
            let candidates = buf
                .split(|&b| b == b'\n')
                .filter(|l| {
                    let t = String::from_utf8_lossy(l);
                    let t = t.trim();
                    !t.is_empty() && !t.starts_with('#')
                })
                .count();
            prop_assert_eq!(report.imported + report.skipped, candidates);
            prop_assert!(report.first_errors.len() <= ImportReport::MAX_SAMPLED_ERRORS);
        }
    }

    fn sample_record() -> TracerouteRecord {
        TracerouteRecord {
            src: ClusterId::new(3),
            dst: ClusterId::new(9),
            proto: Protocol::V4,
            t: SimTime::from_minutes(1234),
            hops: vec![
                HopObs { addr: Some("10.0.0.1".parse().unwrap()), rtt_ms: Some(1.25) },
                HopObs { addr: None, rtt_ms: None },
                HopObs { addr: Some("2600::1".parse().unwrap()), rtt_ms: Some(9.5) },
            ],
            reached: true,
            e2e_rtt_ms: Some(55.125),
            src_addr: Some("10.9.0.1".parse().unwrap()),
            dst_addr: Some("10.2.0.9".parse().unwrap()),
        }
    }

    #[test]
    fn traceroute_round_trips() {
        let r = sample_record();
        let line = traceroute_to_line(&r);
        let back = traceroute_from_line(&line, 0).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn unreached_record_round_trips() {
        let mut r = sample_record();
        r.reached = false;
        r.e2e_rtt_ms = None;
        r.dst_addr = None;
        let back = traceroute_from_line(&traceroute_to_line(&r), 0).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn empty_hops_round_trip() {
        let mut r = sample_record();
        r.hops.clear();
        let back = traceroute_from_line(&traceroute_to_line(&r), 0).unwrap();
        assert!(back.hops.is_empty());
    }

    #[test]
    fn malformed_lines_error_with_position() {
        assert_eq!(traceroute_from_line("garbage", 7).unwrap_err().line, 7);
        assert!(traceroute_from_line("T|x|2|4|0|1|*|*|*|", 0).is_err());
        assert!(traceroute_from_line("T|1|2|9|0|1|*|*|*|", 0)
            .unwrap_err()
            .message
            .contains("protocol"));
    }

    #[test]
    fn corrupt_reached_flag_is_rejected_not_false() {
        // Regression: `reached` used to parse with `== "1"`, so any
        // corrupt value silently became `false`.
        let good = traceroute_to_line(&sample_record());
        for bad in ["2", "true", "01", "x", "", "-1", "1 "] {
            let mut fields: Vec<&str> = good.split('|').collect();
            fields[5] = bad;
            let line = fields.join("|");
            let e = traceroute_from_line(&line, 4).unwrap_err();
            assert!(
                e.message.contains("reached"),
                "'{bad}' must be a reached-flag error, got: {e}"
            );
            assert_eq!(e.line, 4);
        }
        // The valid flags still parse.
        for (flag, want) in [("1", true), ("0", false)] {
            let mut fields: Vec<&str> = good.split('|').collect();
            fields[5] = flag;
            let r = traceroute_from_line(&fields.join("|"), 0).unwrap();
            assert_eq!(r.reached, want);
        }
    }

    #[test]
    fn lossy_import_counts_corrupt_reached_as_skip() {
        let good = traceroute_to_line(&sample_record());
        let fuzzed = {
            let mut fields: Vec<&str> = good.split('|').collect();
            fields[5] = "7";
            fields.join("|")
        };
        let text = format!("{good}\n{fuzzed}\n{good}\n");
        let (out, report) =
            read_traceroutes_lossy(std::io::Cursor::new(text.into_bytes())).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(report.skipped, 1);
        assert_eq!(report.first_errors[0].line, 2);
        assert!(report.first_errors[0].message.contains("reached"));
    }

    #[test]
    fn parse_errors_report_one_based_lines() {
        // Strict importer: the bad line is the second one.
        let good = traceroute_to_line(&sample_record());
        let text = format!("{good}\ngarbage\n");
        let e = read_traceroutes(std::io::Cursor::new(text.into_bytes())).unwrap_err();
        assert_eq!(e.line, 2, "editors count from 1");
        // Ping importer: damage on line 2 reports line 2.
        let (_, report) = read_ping_timelines_lossy(std::io::Cursor::new(
            b"# comment\nP|not|a|timeline\n".to_vec(),
        ))
        .unwrap();
        assert_eq!(report.first_errors[0].line, 2);
    }

    #[test]
    fn write_traceroute_line_matches_to_line_with_buffer_reuse() {
        let records = [sample_record(), {
            let mut r = sample_record();
            r.hops.clear();
            r.reached = false;
            r
        }];
        let mut buf = String::new();
        for r in &records {
            buf.clear();
            write_traceroute_line(&mut buf, r);
            assert_eq!(buf, traceroute_to_line(r), "reused buffer must agree");
        }
    }

    #[test]
    fn ping_timeline_round_trips() {
        let tl = PingTimeline {
            src: ClusterId::new(1),
            dst: ClusterId::new(2),
            proto: Protocol::V6,
            start: SimTime::from_minutes(500),
            interval: SimDuration::from_minutes(15),
            rtts: vec![10.5, f32::NAN, 12.25],
        };
        let back = ping_timeline_from_line(&ping_timeline_to_line(&tl), 0).unwrap();
        assert_eq!(back.src, tl.src);
        assert_eq!(back.proto, tl.proto);
        assert_eq!(back.rtts.len(), 3);
        assert_eq!(back.rtts[0], 10.5);
        assert!(back.rtts[1].is_nan());
        assert_eq!(back.rtts[2], 12.25);
    }

    #[test]
    fn lossy_import_counts_skips_exactly() {
        let good = traceroute_to_line(&sample_record());
        let text = format!(
            "# header\n{good}\ngarbage line\n\n{good}\nT|x|y|4|0|1|*|*|*|\n{good}\n"
        );
        let (out, report) =
            read_traceroutes_lossy(std::io::Cursor::new(text.into_bytes())).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(report.imported, 3);
        assert_eq!(report.skipped, 2);
        assert_eq!(report.first_errors.len(), 2);
        assert_eq!(report.first_errors[0].line, 3, "1-based line of 'garbage line'");
        assert_eq!(report.coverage().to_string(), "3/5 (60.0%)");
    }

    #[test]
    fn lossy_import_skips_invalid_utf8_lines() {
        let good = traceroute_to_line(&sample_record());
        let mut buf = Vec::new();
        buf.extend_from_slice(good.as_bytes());
        buf.extend_from_slice(b"\nT|3|9|4|\xFF\xFE|1|*|*|*|\n");
        buf.extend_from_slice(good.as_bytes());
        buf.push(b'\n');
        let (out, report) = read_traceroutes_lossy(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(report.skipped, 1);
        assert!(report.first_errors[0].message.contains("UTF-8"));
    }

    #[test]
    fn ping_lossy_import_mirrors_traceroute_behavior() {
        let tl = PingTimeline {
            src: ClusterId::new(1),
            dst: ClusterId::new(2),
            proto: Protocol::V4,
            start: SimTime::T0,
            interval: SimDuration::from_minutes(15),
            rtts: vec![10.0, f32::NAN],
        };
        let mut buf = Vec::new();
        write_ping_timelines(&mut buf, &[tl]).unwrap();
        buf.extend_from_slice(b"P|not|a|timeline\n");
        let (out, report) = read_ping_timelines_lossy(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(report.imported, 1);
        assert_eq!(report.skipped, 1);
    }

    #[test]
    fn faulty_export_is_identity_when_quiet() {
        use crate::faults::{FaultInjector, FaultProfile};
        let records = vec![sample_record(); 4];
        let mut plain = Vec::new();
        write_traceroutes(&mut plain, &records).unwrap();
        let mut faulty = Vec::new();
        let n = write_traceroutes_faulty(
            &mut faulty,
            &records,
            &FaultInjector::new(FaultProfile::default()),
        )
        .unwrap();
        assert_eq!(n, 0);
        assert_eq!(plain, faulty, "zero corrupt_rate must be byte-identical");
    }

    #[test]
    fn corrupted_archive_degrades_to_counted_skips() {
        use crate::faults::{FaultInjector, FaultProfile};
        let records: Vec<_> = (0..40)
            .map(|i| {
                let mut r = sample_record();
                r.t = SimTime::from_minutes(i);
                r
            })
            .collect();
        let injector = FaultInjector::new(FaultProfile {
            corrupt_rate: 0.5,
            ..FaultProfile::default()
        });
        let mut buf = Vec::new();
        let corrupted = write_traceroutes_faulty(&mut buf, &records, &injector).unwrap();
        assert!(corrupted > 5, "half the archive should be mangled, got {corrupted}");
        let (out, report) = read_traceroutes_lossy(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(report.imported + report.skipped, records.len());
        assert_eq!(out.len(), report.imported);
        // A mangled line can still parse (a flipped digit is a different
        // valid record), so skipped ≤ corrupted — but corruption is the
        // only damage source here.
        assert!(report.skipped <= corrupted);
        assert!(report.skipped > 0, "some corruptions must break parsing");
        assert!(report.coverage().fraction() < 1.0);
    }

    #[test]
    fn file_round_trip_with_comments() {
        let records = vec![sample_record(), sample_record()];
        let mut buf = Vec::new();
        buf.extend_from_slice(b"# a comment\n\n");
        write_traceroutes(&mut buf, &records).unwrap();
        let back = read_traceroutes(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn simulated_records_round_trip() {
        use crate::tracer::{trace, TraceOptions};
        use s2s_netsim::{CongestionModel, Network, NetworkParams};
        use s2s_routing::{Dynamics, RouteOracle};
        use s2s_topology::{build_topology, TopologyParams};
        use std::sync::Arc;
        let topo = Arc::new(build_topology(&TopologyParams::tiny(77)));
        let oracle = Arc::new(RouteOracle::new(
            Arc::clone(&topo),
            Arc::new(Dynamics::all_up(&topo, SimTime::from_days(2))),
        ));
        let net = Network::new(oracle, CongestionModel::none(), NetworkParams::default());
        let recs: Vec<_> = (1..6)
            .map(|d| {
                trace(
                    &net,
                    ClusterId::new(0),
                    ClusterId::new(d),
                    Protocol::V4,
                    SimTime::from_hours(6),
                    TraceOptions::default(),
                )
            })
            .collect();
        let mut buf = Vec::new();
        write_traceroutes(&mut buf, &recs).unwrap();
        let back = read_traceroutes(std::io::Cursor::new(buf)).unwrap();
        // RTT fields round to 3 decimals; compare structure and addresses.
        assert_eq!(back.len(), recs.len());
        for (b, r) in back.iter().zip(&recs) {
            assert_eq!(b.src, r.src);
            assert_eq!(b.reached, r.reached);
            assert_eq!(
                b.hops.iter().map(|h| h.addr).collect::<Vec<_>>(),
                r.hops.iter().map(|h| h.addr).collect::<Vec<_>>()
            );
        }
    }
}
