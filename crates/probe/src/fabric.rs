//! Crash-tolerant scale-out campaign fabric.
//!
//! A coordinator splits a campaign's pair space into disjoint shards,
//! launches worker processes (one shard per worker attempt), and merges
//! the framed results deterministically. Workers speak a line-oriented
//! protocol on stdout (`F|…` frames around opaque payload lines), so the
//! payload can be anything the campaign produces — archived traceroute
//! lines, serialized sink states — and the fabric never needs to parse it.
//!
//! The robustness contract: workers heartbeat; the coordinator enforces a
//! per-attempt event timeout, kills hung workers, and retries failed
//! shards with bounded, seeded backoff. A retried worker resumes from its
//! shard's worker-local checkpoint, and because checkpoint replay is
//! bit-identical to live measurement (see [`crate::campaign`]) the merged
//! dataset is **byte-identical across {1 process, N workers, any seeded
//! crash/kill/resume schedule}**. A shard still failing after the retry
//! budget is *lost*, never silently shrunk: the caller synthesizes lost
//! records for its slots and the loss lands in
//! [`CampaignReport::lost_slots`] and the coverage floors.
//!
//! A seeded fault plane ([`FabricFaultProfile`], `S2S_FABRIC_FAULT_*`)
//! exercises every failure path deterministically: kill-after-k-pairs,
//! stall (heartbeat silence), corrupt-frame (checksum mismatch), and
//! plain nonzero exit.
//!
//! ## Protocol frames
//!
//! | Frame | Meaning |
//! |---|---|
//! | `F\|HELLO\|shard\|attempt` | worker is alive, before any real work |
//! | `F\|HB\|shard\|done` | heartbeat; `done` is a progress hint |
//! | `F\|DATA\|shard\|n` | the next `n` raw lines are payload |
//! | `F\|REPORT\|shard\|R\|…` | the shard's [`CampaignReport`] |
//! | `F\|METRICS\|shard\|k=v,…` | worker counter snapshot |
//! | `F\|END\|shard\|fnv64` | payload checksum; stream is complete |
//!
//! An attempt is accepted only if the stream carried `HELLO`, a `REPORT`,
//! an `END` whose FNV-64 checksum matches the received payload, no
//! unparseable protocol lines, and the process exited 0. Anything else —
//! timeout, nonzero exit, checksum mismatch, truncated stream — fails the
//! attempt and the shard goes back on the queue.

use crate::campaign::CampaignReport;
use crate::faults::{key, mix, uniform};
use std::collections::VecDeque;
use std::io::{self, BufRead, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// Salts for fabric fault decisions (distinct from the probe-fault salts in
// `faults.rs` so the two planes never share a key stream).
const SALT_FABRIC_FATE: u64 = 0xFAB0;
const SALT_FABRIC_KILL_AT: u64 = 0xFAB1;
const SALT_FABRIC_BACKOFF: u64 = 0xFAB2;

/// Environment variable carrying the worker's shard index.
pub const ENV_SHARD: &str = "S2S_FABRIC_SHARD";
/// Environment variable carrying the total shard count.
pub const ENV_SHARDS: &str = "S2S_FABRIC_SHARDS";
/// Environment variable carrying the attempt number (1-based).
pub const ENV_ATTEMPT: &str = "S2S_FABRIC_ATTEMPT";
/// Environment variable carrying the worker-local checkpoint directory.
pub const ENV_CKPT_DIR: &str = "S2S_FABRIC_CKPT_DIR";
/// Environment variable selecting the worker's campaign mode.
pub const ENV_MODE: &str = "S2S_FABRIC_MODE";

/// The FNV-1a 64-bit offset basis — the seed for [`fnv64_bytes`] chains.
pub const FNV64_OFFSET: u64 = 0xcbf29ce484222325;

/// Folds `bytes` into a running FNV-1a 64-bit hash `h`. Streaming form:
/// `fnv64_bytes(fnv64_bytes(FNV64_OFFSET, a), b)` equals hashing `a ++ b`
/// in one pass, so callers can digest encoder output chunk by chunk
/// without materializing the whole payload.
pub fn fnv64_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x100000001b3);
    }
    h
}

/// FNV-1a over payload lines, with a `\n` folded after each line so the
/// checksum pins both content and line structure.
pub fn fnv64_lines<S: AsRef<str>>(lines: &[S]) -> u64 {
    let mut h: u64 = FNV64_OFFSET;
    for l in lines {
        h = fnv64_bytes(h, l.as_ref().as_bytes());
        h = fnv64_bytes(h, b"\n");
    }
    h
}

/// The contiguous item range shard `shard` of `n_shards` owns out of
/// `n_items` — even chunks, remainder spread over the first shards. Both
/// sides of the fabric compute this independently and must agree.
pub fn shard_range(n_items: usize, n_shards: usize, shard: usize) -> std::ops::Range<usize> {
    let n_shards = n_shards.max(1);
    let base = n_items / n_shards;
    let rem = n_items % n_shards;
    let start = shard * base + shard.min(rem);
    let len = base + usize::from(shard < rem);
    start..(start + len).min(n_items)
}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

/// One parsed protocol frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Worker is alive and owns (shard, attempt).
    Hello { shard: usize, attempt: u32 },
    /// Heartbeat with a progress hint (units done, free-form).
    Heartbeat { shard: usize, done: u64 },
    /// The next `n` lines on the stream are raw payload.
    Data { shard: usize, n: usize },
    /// The shard's campaign report.
    Report { shard: usize, report: CampaignReport },
    /// Worker counter snapshot, `name=value` pairs.
    Metrics { shard: usize, counters: Vec<(String, u64)> },
    /// End of stream with the payload checksum.
    End { shard: usize, checksum: u64 },
}

impl Frame {
    /// Serializes the frame to its line form.
    pub fn to_line(&self) -> String {
        match self {
            Frame::Hello { shard, attempt } => format!("F|HELLO|{shard}|{attempt}"),
            Frame::Heartbeat { shard, done } => format!("F|HB|{shard}|{done}"),
            Frame::Data { shard, n } => format!("F|DATA|{shard}|{n}"),
            Frame::Report { shard, report } => {
                format!("F|REPORT|{shard}|{}", report.to_line())
            }
            Frame::Metrics { shard, counters } => {
                let kv: Vec<String> =
                    counters.iter().map(|(k, v)| format!("{k}={v}")).collect();
                format!("F|METRICS|{shard}|{}", kv.join(","))
            }
            Frame::End { shard, checksum } => format!("F|END|{shard}|{checksum:016x}"),
        }
    }

    /// Parses a frame line. `Ok(None)` means the line is not a frame at
    /// all (payload or foreign noise); `Err` means it claimed to be a
    /// frame (`F|` prefix) but is malformed — stream corruption.
    pub fn parse(line: &str) -> Result<Option<Frame>, String> {
        let Some(rest) = line.strip_prefix("F|") else { return Ok(None) };
        let mut it = rest.splitn(3, '|');
        let tag = it.next().unwrap_or_default();
        let shard: usize = it
            .next()
            .ok_or_else(|| format!("frame missing shard: '{line}'"))?
            .parse()
            .map_err(|_| format!("bad frame shard: '{line}'"))?;
        let body = it.next();
        fn need<'a>(b: Option<&'a str>, line: &str) -> Result<&'a str, String> {
            b.ok_or_else(|| format!("frame missing body: '{line}'"))
        }
        match tag {
            "HELLO" => {
                let attempt = need(body, line)?
                    .parse()
                    .map_err(|_| format!("bad HELLO attempt: '{line}'"))?;
                Ok(Some(Frame::Hello { shard, attempt }))
            }
            "HB" => {
                let done = need(body, line)?
                    .parse()
                    .map_err(|_| format!("bad HB progress: '{line}'"))?;
                Ok(Some(Frame::Heartbeat { shard, done }))
            }
            "DATA" => {
                let n = need(body, line)?
                    .parse()
                    .map_err(|_| format!("bad DATA count: '{line}'"))?;
                Ok(Some(Frame::Data { shard, n }))
            }
            "REPORT" => {
                let report = CampaignReport::from_line(need(body, line)?)?;
                Ok(Some(Frame::Report { shard, report }))
            }
            "METRICS" => {
                let mut counters = Vec::new();
                for kv in need(body, line)?.split(',').filter(|s| !s.is_empty()) {
                    let (k, v) = kv
                        .split_once('=')
                        .ok_or_else(|| format!("bad METRICS entry '{kv}'"))?;
                    let v =
                        v.parse().map_err(|_| format!("bad METRICS value '{kv}'"))?;
                    counters.push((k.to_string(), v));
                }
                Ok(Some(Frame::Metrics { shard, counters }))
            }
            "END" => {
                let checksum = u64::from_str_radix(need(body, line)?, 16)
                    .map_err(|_| format!("bad END checksum: '{line}'"))?;
                Ok(Some(Frame::End { shard, checksum }))
            }
            _ => Err(format!("unknown frame tag '{tag}' in '{line}'")),
        }
    }
}

// ---------------------------------------------------------------------------
// Fault plane
// ---------------------------------------------------------------------------

/// What the fault plane does to one worker attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerFault {
    /// Run cleanly.
    None,
    /// Measure only the first `after_units` work units (checkpointing
    /// them), then die without emitting results — the effect of a kill
    /// signal landing after unit `after_units`.
    Kill {
        /// Work units completed (and checkpointed) before death.
        after_units: usize,
    },
    /// Say hello, then go silent forever; only the coordinator's
    /// heartbeat timeout can reap this worker.
    Stall,
    /// Complete the work but corrupt the END checksum in flight.
    CorruptFrame,
    /// Exit nonzero immediately after hello, doing no work.
    ExitNonzero,
}

/// One surgical fault from `S2S_FABRIC_FAULT_PLAN`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanEntry {
    /// Shard the fault targets.
    pub shard: usize,
    /// Attempt (1-based) the fault fires on.
    pub attempt: u32,
    /// The fault itself.
    pub fault: WorkerFault,
}

/// Seeded fault rates for worker attempts, plus an explicit plan that
/// overrides the rates for targeted (shard, attempt) pairs. Decisions are
/// content-keyed on (seed, shard, attempt) — independent of timing, host,
/// or how many workers run concurrently — and the attempt number is in
/// the key, so a faulted attempt's retry can come up clean.
#[derive(Clone, Debug, PartialEq)]
pub struct FabricFaultProfile {
    /// Seed for every fabric fault decision.
    pub seed: u64,
    /// Per-attempt kill probability.
    pub kill_rate: f64,
    /// Per-attempt stall probability.
    pub stall_rate: f64,
    /// Per-attempt corrupt-frame probability.
    pub corrupt_rate: f64,
    /// Per-attempt exit-nonzero probability.
    pub exit_rate: f64,
    /// Surgical faults that override the rates.
    pub plan: Vec<PlanEntry>,
}

impl Default for FabricFaultProfile {
    fn default() -> Self {
        FabricFaultProfile {
            seed: 0xFAB,
            kill_rate: 0.0,
            stall_rate: 0.0,
            corrupt_rate: 0.0,
            exit_rate: 0.0,
            plan: Vec::new(),
        }
    }
}

impl FabricFaultProfile {
    /// Reads the profile from the `S2S_FABRIC_FAULT_*` knobs through the
    /// shared warn-and-default parsers.
    pub fn from_env() -> FabricFaultProfile {
        use s2s_types::env as tenv;
        let plan = match tenv::var_raw("S2S_FABRIC_FAULT_PLAN") {
            None => Vec::new(),
            Some(raw) => match Self::parse_plan(&raw) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("warning: S2S_FABRIC_FAULT_PLAN ignored: {e}");
                    Vec::new()
                }
            },
        };
        FabricFaultProfile {
            seed: tenv::var_u64("S2S_FABRIC_FAULT_SEED", 0xFAB),
            kill_rate: tenv::var_rate("S2S_FABRIC_FAULT_KILL", 0.0),
            stall_rate: tenv::var_rate("S2S_FABRIC_FAULT_STALL", 0.0),
            corrupt_rate: tenv::var_rate("S2S_FABRIC_FAULT_CORRUPT", 0.0),
            exit_rate: tenv::var_rate("S2S_FABRIC_FAULT_EXIT", 0.0),
            plan,
        }
    }

    /// Parses a fault plan: `;`-separated entries of the form
    /// `kill@<shard>.<attempt>=<units>`, `stall@<shard>.<attempt>`,
    /// `corrupt@<shard>.<attempt>`, or `exit@<shard>.<attempt>`.
    pub fn parse_plan(s: &str) -> Result<Vec<PlanEntry>, String> {
        let mut out = Vec::new();
        for entry in s.split(';').map(str::trim).filter(|e| !e.is_empty()) {
            let (fate, rest) = entry
                .split_once('@')
                .ok_or_else(|| format!("plan entry '{entry}' missing '@'"))?;
            let (target, arg) = match rest.split_once('=') {
                Some((t, a)) => (t, Some(a)),
                None => (rest, None),
            };
            let (shard, attempt) = target
                .split_once('.')
                .ok_or_else(|| format!("plan target '{target}' not shard.attempt"))?;
            let shard: usize =
                shard.parse().map_err(|_| format!("bad plan shard '{shard}'"))?;
            let attempt: u32 =
                attempt.parse().map_err(|_| format!("bad plan attempt '{attempt}'"))?;
            let fault = match (fate, arg) {
                ("kill", Some(k)) => WorkerFault::Kill {
                    after_units: k
                        .parse()
                        .map_err(|_| format!("bad kill units '{k}'"))?,
                },
                ("kill", None) => WorkerFault::Kill { after_units: 0 },
                ("stall", None) => WorkerFault::Stall,
                ("corrupt", None) => WorkerFault::CorruptFrame,
                ("exit", None) => WorkerFault::ExitNonzero,
                _ => return Err(format!("bad plan entry '{entry}'")),
            };
            out.push(PlanEntry { shard, attempt, fault });
        }
        Ok(out)
    }

    /// True when no fault can ever fire.
    pub fn is_quiet(&self) -> bool {
        self.plan.is_empty()
            && self.kill_rate == 0.0
            && self.stall_rate == 0.0
            && self.corrupt_rate == 0.0
            && self.exit_rate == 0.0
    }

    /// The fate of one worker attempt over `planned_units` work units.
    /// Plan entries win; otherwise one uniform draw is partitioned across
    /// the fates so at most one fires per attempt.
    pub fn decide(&self, shard: usize, attempt: u32, planned_units: usize) -> WorkerFault {
        if let Some(e) =
            self.plan.iter().find(|e| e.shard == shard && e.attempt == attempt)
        {
            return e.fault;
        }
        let total = self.kill_rate + self.stall_rate + self.corrupt_rate + self.exit_rate;
        if total <= 0.0 {
            return WorkerFault::None;
        }
        let h = key(self.seed, &[SALT_FABRIC_FATE, shard as u64, u64::from(attempt)]);
        let u = uniform(h);
        if u < self.kill_rate {
            let at = key(
                self.seed,
                &[SALT_FABRIC_KILL_AT, shard as u64, u64::from(attempt)],
            );
            WorkerFault::Kill { after_units: (mix(at) % planned_units.max(1) as u64) as usize }
        } else if u < self.kill_rate + self.stall_rate {
            WorkerFault::Stall
        } else if u < self.kill_rate + self.stall_rate + self.corrupt_rate {
            WorkerFault::CorruptFrame
        } else if u < total {
            WorkerFault::ExitNonzero
        } else {
            WorkerFault::None
        }
    }
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// What the coordinator assigned this worker process, read back from the
/// `S2S_FABRIC_{SHARD,SHARDS,ATTEMPT}` variables it set at spawn.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerAssignment {
    /// This worker's shard index.
    pub shard: usize,
    /// Total shard count (for [`shard_range`]).
    pub shards: usize,
    /// Attempt number, 1-based.
    pub attempt: u32,
}

impl WorkerAssignment {
    /// Reads the assignment from the environment; errors name the missing
    /// or malformed variable.
    pub fn from_env() -> Result<WorkerAssignment, String> {
        fn get<T: std::str::FromStr>(name: &str) -> Result<T, String> {
            std::env::var(name)
                .map_err(|_| format!("{name} not set (worker mode needs a coordinator)"))?
                .parse()
                .map_err(|_| format!("{name} is not a valid number"))
        }
        Ok(WorkerAssignment {
            shard: get(ENV_SHARD)?,
            shards: get(ENV_SHARDS)?,
            attempt: get(ENV_ATTEMPT)?,
        })
    }
}

/// Everything one shard attempt produced, ready to frame.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ShardPayload {
    /// Opaque payload lines (archived records, sink states, …).
    pub lines: Vec<String>,
    /// The shard's campaign report.
    pub report: CampaignReport,
    /// Worker counter snapshot to aggregate coordinator-side.
    pub counters: Vec<(String, u64)>,
}

/// Payload lines per `DATA` frame; chunking keeps heartbeats flowing
/// between batches on large shards.
const DATA_CHUNK: usize = 512;

/// Writes a complete result stream for one shard: chunked `DATA` frames
/// with heartbeats between chunks, then `REPORT`, `METRICS`, and `END`.
/// `corrupt_end` flips the checksum (the [`WorkerFault::CorruptFrame`]
/// fate) so the coordinator must detect and discard the attempt.
pub fn emit_shard<W: Write>(
    w: &mut W,
    shard: usize,
    payload: &ShardPayload,
    corrupt_end: bool,
) -> io::Result<()> {
    for chunk in payload.lines.chunks(DATA_CHUNK.max(1)) {
        writeln!(w, "{}", Frame::Data { shard, n: chunk.len() }.to_line())?;
        for line in chunk {
            writeln!(w, "{line}")?;
        }
        writeln!(w, "{}", Frame::Heartbeat { shard, done: chunk.len() as u64 }.to_line())?;
    }
    writeln!(
        w,
        "{}",
        Frame::Report { shard, report: payload.report.clone() }.to_line()
    )?;
    if !payload.counters.is_empty() {
        writeln!(
            w,
            "{}",
            Frame::Metrics { shard, counters: payload.counters.clone() }.to_line()
        )?;
    }
    let mut checksum = fnv64_lines(&payload.lines);
    if corrupt_end {
        checksum ^= 0xDEAD;
    }
    writeln!(w, "{}", Frame::End { shard, checksum }.to_line())?;
    w.flush()
}

/// A background thread printing `F|HB` frames to stdout at a fixed
/// interval while the worker computes (each `println!` takes the global
/// stdout lock, so heartbeat lines never shear payload lines). Stops on
/// drop or [`HeartbeatHandle::stop`].
pub struct HeartbeatHandle {
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl HeartbeatHandle {
    /// Starts the heartbeat thread for `shard`.
    pub fn start(shard: usize, interval: Duration) -> HeartbeatHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let join = std::thread::spawn(move || {
            let mut beats = 0u64;
            while !flag.load(Ordering::Relaxed) {
                std::thread::sleep(interval);
                if flag.load(Ordering::Relaxed) {
                    break;
                }
                beats += 1;
                println!("{}", Frame::Heartbeat { shard, done: beats }.to_line());
                let _ = io::stdout().flush();
            }
        });
        HeartbeatHandle { stop, join: Some(join) }
    }

    /// Stops the thread and waits for it.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for HeartbeatHandle {
    fn drop(&mut self) {
        self.halt();
    }
}

// ---------------------------------------------------------------------------
// Coordinator side
// ---------------------------------------------------------------------------

/// An event from a launched worker: one stdout line, or process exit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkerEvent {
    /// One line of worker stdout.
    Line(String),
    /// The worker exited with this status code (`None`: killed by
    /// signal). Always the channel's final event.
    Exit(Option<i32>),
}

/// A running worker as the coordinator sees it: an ordered event stream
/// and a kill switch.
pub struct LaunchedWorker {
    /// Ordered events; `Exit` is always last.
    pub events: mpsc::Receiver<WorkerEvent>,
    /// Best-effort immediate termination (used on heartbeat timeout).
    pub kill: Box<dyn FnMut() + Send>,
}

/// How worker processes come to life. The process launcher is the real
/// one; tests script launchers in-process to exercise the coordinator
/// without subprocess cost.
pub trait WorkerLauncher {
    /// Launches a worker for (shard, attempt).
    fn launch(&self, shard: usize, attempt: u32) -> io::Result<LaunchedWorker>;
}

/// Launches real subprocesses: `program args…` with the fabric assignment
/// in the environment and stdout piped back as the event stream.
pub struct ProcessLauncher {
    /// Worker executable.
    pub program: std::path::PathBuf,
    /// Arguments passed to every worker.
    pub args: Vec<String>,
    /// Extra environment (mode, checkpoint dir, shard count, fault knobs
    /// for tests); the assignment variables are appended per launch.
    pub envs: Vec<(String, String)>,
}

impl WorkerLauncher for ProcessLauncher {
    fn launch(&self, shard: usize, attempt: u32) -> io::Result<LaunchedWorker> {
        let mut cmd = std::process::Command::new(&self.program);
        cmd.args(&self.args)
            .envs(self.envs.iter().map(|(k, v)| (k.as_str(), v.as_str())))
            .env(ENV_SHARD, shard.to_string())
            .env(ENV_ATTEMPT, attempt.to_string())
            .stdout(std::process::Stdio::piped())
            .stdin(std::process::Stdio::null());
        let mut child = cmd.spawn()?;
        let stdout = child.stdout.take().expect("stdout was piped");
        let child = Arc::new(Mutex::new(child));
        let (tx, rx) = mpsc::channel();
        let reaper = Arc::clone(&child);
        std::thread::spawn(move || {
            let reader = io::BufReader::new(stdout);
            for line in reader.lines() {
                match line {
                    Ok(l) => {
                        if tx.send(WorkerEvent::Line(l)).is_err() {
                            break; // coordinator moved on; just reap below
                        }
                    }
                    Err(_) => break,
                }
            }
            let status = reaper.lock().expect("child lock").wait();
            let code = status.ok().and_then(|s| s.code());
            let _ = tx.send(WorkerEvent::Exit(code));
        });
        let killer = Arc::clone(&child);
        Ok(LaunchedWorker {
            events: rx,
            kill: Box::new(move || {
                let _ = killer.lock().expect("child lock").kill();
            }),
        })
    }
}

/// Coordinator policy knobs.
#[derive(Clone, Debug, PartialEq)]
pub struct FabricConfig {
    /// Worker processes in flight at once, ≥ 1.
    pub workers: usize,
    /// Attempts per shard (first try + retries), ≥ 1.
    pub max_attempts: u32,
    /// Reap a worker after this long without any stdout event.
    pub heartbeat_timeout: Duration,
    /// First retry backoff, ms; doubles per attempt with seeded jitter.
    pub backoff_base_ms: f64,
    /// Ceiling on any single backoff sleep, ms.
    pub backoff_cap_ms: f64,
    /// Seed for backoff jitter.
    pub seed: u64,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            workers: 1,
            max_attempts: 3,
            heartbeat_timeout: Duration::from_millis(2_000),
            backoff_base_ms: 10.0,
            backoff_cap_ms: 1_000.0,
            seed: 0xFAB,
        }
    }
}

impl FabricConfig {
    /// Builds the config for `workers` processes, with the retry budget
    /// and timeouts resolved from `S2S_FABRIC_{RETRIES,TIMEOUT_MS,
    /// BACKOFF_MS}` where set.
    pub fn from_env(workers: usize) -> FabricConfig {
        use s2s_types::env as tenv;
        let d = FabricConfig::default();
        FabricConfig {
            workers: workers.max(1),
            max_attempts: tenv::var_usize_at_least(
                "S2S_FABRIC_RETRIES",
                d.max_attempts as usize,
                1,
            ) as u32,
            heartbeat_timeout: Duration::from_millis(tenv::var_u64(
                "S2S_FABRIC_TIMEOUT_MS",
                d.heartbeat_timeout.as_millis() as u64,
            )),
            backoff_base_ms: tenv::var_u64(
                "S2S_FABRIC_BACKOFF_MS",
                d.backoff_base_ms as u64,
            ) as f64,
            backoff_cap_ms: d.backoff_cap_ms,
            seed: tenv::var_u64("S2S_FABRIC_FAULT_SEED", d.seed),
        }
    }

    /// The backoff before retrying `shard` after `failed_attempt`:
    /// exponential in the attempt with a seeded jitter factor in
    /// [0.5, 1.5), capped. Seeded, so reruns back off identically.
    pub fn backoff_ms(&self, shard: usize, failed_attempt: u32) -> f64 {
        let raw = self.backoff_base_ms
            * f64::from(1u32 << (failed_attempt - 1).min(16));
        let h = key(
            self.seed,
            &[SALT_FABRIC_BACKOFF, shard as u64, u64::from(failed_attempt)],
        );
        (raw * (0.5 + uniform(h))).min(self.backoff_cap_ms)
    }
}

/// Why one worker attempt was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttemptFailure {
    /// No stdout event within the heartbeat timeout; worker was killed.
    Timeout,
    /// Worker exited nonzero (or on a signal).
    NonzeroExit,
    /// END checksum did not match the received payload.
    ChecksumMismatch,
    /// Stream ended without HELLO/REPORT/END, or carried malformed
    /// frames.
    IncompleteStream,
}

/// What one shard contributed to the merge.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ShardResult {
    /// Shard index.
    pub shard: usize,
    /// Attempts launched for this shard.
    pub attempts: u32,
    /// Payload lines from the accepted attempt (empty when lost).
    pub lines: Vec<String>,
    /// Report from the accepted attempt.
    pub report: Option<CampaignReport>,
    /// Worker counter snapshot from the accepted attempt.
    pub counters: Vec<(String, u64)>,
    /// True when the retry budget ran out with no accepted attempt.
    pub lost: bool,
}

/// What the fabric did, for the observability plane and the bench.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FabricStats {
    /// Shards coordinated.
    pub shards: usize,
    /// Worker processes launched (first tries + retries).
    pub launches: usize,
    /// Retry launches (launches beyond each shard's first).
    pub retries: usize,
    /// Shards that succeeded after at least one failed attempt.
    pub recoveries: usize,
    /// Shards abandoned after the retry budget.
    pub lost: usize,
    /// Attempts reaped by the heartbeat timeout.
    pub timeouts: usize,
    /// Attempts rejected for a checksum mismatch.
    pub corrupt_frames: usize,
    /// Attempts that exited nonzero.
    pub nonzero_exits: usize,
    /// Attempts whose stream ended incomplete.
    pub incomplete_streams: usize,
    /// Total backoff slept, ms.
    pub backoff_ms: f64,
    /// Total failure-to-recovery latency across recovered shards, ms.
    pub recovery_ms: f64,
    /// Time merging accepted shards, ms.
    pub merge_ms: f64,
}

impl FabricStats {
    /// Publishes `fabric.*` counters (always present, even at zero, so
    /// dashboards and the CI gates can rely on the keys) plus the
    /// aggregated `worker.*` counters from accepted attempts.
    pub fn publish(&self, reg: &s2s_obs::Registry, shards: &[ShardResult]) {
        for (name, v) in [
            ("fabric.shards", self.shards),
            ("fabric.launches", self.launches),
            ("fabric.retries", self.retries),
            ("fabric.recoveries", self.recoveries),
            ("fabric.lost", self.lost),
            ("fabric.timeouts", self.timeouts),
            ("fabric.corrupt_frames", self.corrupt_frames),
            ("fabric.nonzero_exits", self.nonzero_exits),
            ("fabric.incomplete_streams", self.incomplete_streams),
        ] {
            reg.counter(name).add(v as u64);
        }
        reg.gauge("fabric.backoff_ms").set(self.backoff_ms as u64);
        reg.gauge("fabric.recovery_ms").set(self.recovery_ms as u64);
        reg.gauge("fabric.merge_ms").set(self.merge_ms as u64);
        for s in shards {
            for (name, v) in &s.counters {
                reg.counter(&format!("worker.{name}")).add(*v);
            }
        }
        if self.lost > 0 {
            reg.event(
                "fabric.shard_lost",
                format!("{} shard(s) lost after the retry budget", self.lost),
            );
        }
        if self.recoveries > 0 {
            reg.event(
                "fabric.recovered",
                format!(
                    "{} shard(s) recovered after worker failure ({} retries)",
                    self.recoveries, self.retries
                ),
            );
        }
    }
}

/// The coordinator's output: per-shard results in shard order, plus
/// stats. Merging payload is the caller's one-liner —
/// [`FabricOutcome::merged_lines`] — because shard order is total.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FabricOutcome {
    /// One entry per shard, ordered by shard index.
    pub shards: Vec<ShardResult>,
    /// Fabric accounting.
    pub stats: FabricStats,
}

impl FabricOutcome {
    /// All accepted payload lines, concatenated in shard order — the
    /// deterministic merge (lost shards contribute nothing; the caller
    /// synthesizes their slots).
    pub fn merged_lines(&self) -> Vec<String> {
        self.shards.iter().flat_map(|s| s.lines.iter().cloned()).collect()
    }

    /// The merged campaign report across accepted shards.
    pub fn merged_report(&self) -> CampaignReport {
        let mut out = CampaignReport::default();
        for s in &self.shards {
            if let Some(r) = &s.report {
                out.merge(r);
            }
        }
        out
    }

    /// Shards that were lost (retry budget exhausted).
    pub fn lost_shards(&self) -> Vec<usize> {
        self.shards.iter().filter(|s| s.lost).map(|s| s.shard).collect()
    }
}

/// One worker attempt's accumulating protocol state.
#[derive(Default)]
struct AttemptState {
    hello: bool,
    payload: Vec<String>,
    pending_payload: usize,
    report: Option<CampaignReport>,
    counters: Vec<(String, u64)>,
    end_checksum: Option<u64>,
    protocol_errors: usize,
    exit: Option<Option<i32>>,
    /// Reaped by the heartbeat timeout; overrides every other verdict.
    timed_out: bool,
}

impl AttemptState {
    fn feed_line(&mut self, line: &str) {
        if self.pending_payload > 0 {
            self.pending_payload -= 1;
            self.payload.push(line.to_string());
            return;
        }
        match Frame::parse(line) {
            Ok(Some(Frame::Hello { .. })) => self.hello = true,
            Ok(Some(Frame::Heartbeat { .. })) => {}
            Ok(Some(Frame::Data { n, .. })) => self.pending_payload = n,
            Ok(Some(Frame::Report { report, .. })) => self.report = Some(report),
            Ok(Some(Frame::Metrics { counters, .. })) => {
                self.counters.extend(counters);
            }
            Ok(Some(Frame::End { checksum, .. })) => self.end_checksum = Some(checksum),
            // Non-frame noise outside a DATA region, or a malformed
            // frame: either way the stream is damaged.
            Ok(None) | Err(_) => self.protocol_errors += 1,
        }
    }

    /// Judges a finished stream (exit already received).
    fn verdict(&self) -> Result<(), AttemptFailure> {
        if self.timed_out {
            return Err(AttemptFailure::Timeout);
        }
        match self.exit {
            Some(Some(0)) => {}
            Some(_) => return Err(AttemptFailure::NonzeroExit),
            None => return Err(AttemptFailure::IncompleteStream),
        }
        if !self.hello
            || self.report.is_none()
            || self.pending_payload > 0
            || self.protocol_errors > 0
        {
            return Err(AttemptFailure::IncompleteStream);
        }
        match self.end_checksum {
            None => Err(AttemptFailure::IncompleteStream),
            Some(c) if c != fnv64_lines(&self.payload) => {
                Err(AttemptFailure::ChecksumMismatch)
            }
            Some(_) => Ok(()),
        }
    }
}

/// One in-flight worker the coordinator is watching.
struct InFlight {
    shard: usize,
    attempt: u32,
    worker: LaunchedWorker,
    state: AttemptState,
    last_event: Instant,
    /// When this shard first failed (carried across retries, for
    /// recovery-latency accounting).
    first_failure: Option<Instant>,
}

/// A shard waiting to launch (possibly a retry waiting out its backoff).
struct QueuedShard {
    shard: usize,
    attempt: u32,
    ready_at: Instant,
    first_failure: Option<Instant>,
}

/// The coordinator: owns the shard queue, watches in-flight workers,
/// retries failures with seeded backoff, and assembles the outcome.
pub struct Coordinator<L: WorkerLauncher> {
    cfg: FabricConfig,
    launcher: L,
}

impl<L: WorkerLauncher> Coordinator<L> {
    /// Builds a coordinator.
    pub fn new(cfg: FabricConfig, launcher: L) -> Coordinator<L> {
        Coordinator { cfg, launcher }
    }

    /// Runs `n_shards` shards to completion (accepted or lost) and
    /// returns per-shard results in shard order.
    pub fn run(&self, n_shards: usize) -> io::Result<FabricOutcome> {
        let mut stats = FabricStats { shards: n_shards, ..FabricStats::default() };
        let mut queue: VecDeque<QueuedShard> = (0..n_shards)
            .map(|shard| QueuedShard {
                shard,
                attempt: 1,
                ready_at: Instant::now(),
                first_failure: None,
            })
            .collect();
        let mut in_flight: Vec<InFlight> = Vec::new();
        let mut results: Vec<Option<ShardResult>> = (0..n_shards).map(|_| None).collect();

        while results.iter().any(Option::is_none) {
            // Launch up to the worker cap from the ready part of the queue.
            let now = Instant::now();
            while in_flight.len() < self.cfg.workers.max(1) {
                let Some(pos) = queue.iter().position(|q| q.ready_at <= now) else {
                    break;
                };
                let q = queue.remove(pos).expect("position just found");
                let worker = self.launcher.launch(q.shard, q.attempt)?;
                stats.launches += 1;
                if q.attempt > 1 {
                    stats.retries += 1;
                }
                in_flight.push(InFlight {
                    shard: q.shard,
                    attempt: q.attempt,
                    worker,
                    state: AttemptState::default(),
                    last_event: Instant::now(),
                    first_failure: q.first_failure,
                });
            }

            // Drain events from every in-flight worker.
            let mut progressed = false;
            let mut finished: Vec<usize> = Vec::new();
            for (i, f) in in_flight.iter_mut().enumerate() {
                loop {
                    match f.worker.events.try_recv() {
                        Ok(WorkerEvent::Line(l)) => {
                            f.state.feed_line(&l);
                            f.last_event = Instant::now();
                            progressed = true;
                        }
                        Ok(WorkerEvent::Exit(code)) => {
                            f.state.exit = Some(code);
                            f.last_event = Instant::now();
                            progressed = true;
                            finished.push(i);
                            break;
                        }
                        Err(mpsc::TryRecvError::Empty) => break,
                        Err(mpsc::TryRecvError::Disconnected) => {
                            // Channel died without an Exit event: treat as
                            // an incomplete stream.
                            if f.state.exit.is_none() {
                                f.state.exit = Some(None);
                            }
                            finished.push(i);
                            break;
                        }
                    }
                }
            }

            // Reap workers that went silent past the heartbeat timeout.
            for (i, f) in in_flight.iter_mut().enumerate() {
                if finished.contains(&i) {
                    continue;
                }
                if f.last_event.elapsed() > self.cfg.heartbeat_timeout {
                    (f.worker.kill)();
                    f.state.timed_out = true;
                    finished.push(i);
                    progressed = true;
                }
            }

            // Resolve finished attempts (highest index first so removal
            // doesn't shift pending ones).
            finished.sort_unstable();
            finished.dedup();
            for &i in finished.iter().rev() {
                let f = in_flight.remove(i);
                match f.state.verdict() {
                    Ok(()) => {
                        if f.attempt > 1 {
                            stats.recoveries += 1;
                            if let Some(t0) = f.first_failure {
                                stats.recovery_ms += t0.elapsed().as_secs_f64() * 1e3;
                            }
                        }
                        results[f.shard] = Some(ShardResult {
                            shard: f.shard,
                            attempts: f.attempt,
                            lines: f.state.payload,
                            report: f.state.report,
                            counters: f.state.counters,
                            lost: false,
                        });
                    }
                    Err(kind) => {
                        match kind {
                            AttemptFailure::Timeout => stats.timeouts += 1,
                            AttemptFailure::NonzeroExit => stats.nonzero_exits += 1,
                            AttemptFailure::ChecksumMismatch => stats.corrupt_frames += 1,
                            AttemptFailure::IncompleteStream => {
                                stats.incomplete_streams += 1
                            }
                        }
                        let first_failure = f.first_failure.or_else(|| Some(Instant::now()));
                        if f.attempt >= self.cfg.max_attempts.max(1) {
                            stats.lost += 1;
                            results[f.shard] = Some(ShardResult {
                                shard: f.shard,
                                attempts: f.attempt,
                                lines: Vec::new(),
                                report: None,
                                counters: Vec::new(),
                                lost: true,
                            });
                        } else {
                            let backoff = self.cfg.backoff_ms(f.shard, f.attempt);
                            stats.backoff_ms += backoff;
                            queue.push_back(QueuedShard {
                                shard: f.shard,
                                attempt: f.attempt + 1,
                                ready_at: Instant::now()
                                    + Duration::from_micros((backoff * 1e3) as u64),
                                first_failure,
                            });
                        }
                    }
                }
            }

            if !progressed && results.iter().any(Option::is_none) {
                std::thread::sleep(Duration::from_millis(1));
            }
        }

        let t_merge = Instant::now();
        let shards: Vec<ShardResult> =
            results.into_iter().map(|r| r.expect("all shards resolved")).collect();
        stats.merge_ms = t_merge.elapsed().as_secs_f64() * 1e3;
        Ok(FabricOutcome { shards, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(shard: usize, n: usize) -> ShardPayload {
        ShardPayload {
            lines: (0..n).map(|i| format!("T|{shard}|{i}|payload")).collect(),
            report: CampaignReport {
                offered: n,
                attempted: n,
                delivered: n,
                ..CampaignReport::default()
            },
            counters: vec![("campaign.offered".into(), n as u64)],
        }
    }

    /// A launcher that plays scripted worker behaviors in-process.
    struct Scripted {
        faults: FabricFaultProfile,
        lines_per_shard: usize,
    }

    impl WorkerLauncher for Scripted {
        fn launch(&self, shard: usize, attempt: u32) -> io::Result<LaunchedWorker> {
            let (tx, rx) = mpsc::channel();
            let fault = self.faults.decide(shard, attempt, self.lines_per_shard);
            let n = self.lines_per_shard;
            let killed = Arc::new(AtomicBool::new(false));
            let kflag = Arc::clone(&killed);
            std::thread::spawn(move || {
                let send_frames = |tx: &mpsc::Sender<WorkerEvent>, corrupt: bool| {
                    let mut buf = Vec::new();
                    let p = payload(shard, n);
                    emit_shard(&mut buf, shard, &p, corrupt).unwrap();
                    for l in String::from_utf8(buf).unwrap().lines() {
                        let _ = tx.send(WorkerEvent::Line(l.to_string()));
                    }
                };
                let hello = Frame::Hello { shard, attempt }.to_line();
                let _ = tx.send(WorkerEvent::Line(hello));
                match fault {
                    WorkerFault::None => {
                        send_frames(&tx, false);
                        let _ = tx.send(WorkerEvent::Exit(Some(0)));
                    }
                    WorkerFault::CorruptFrame => {
                        send_frames(&tx, true);
                        let _ = tx.send(WorkerEvent::Exit(Some(0)));
                    }
                    WorkerFault::ExitNonzero => {
                        let _ = tx.send(WorkerEvent::Exit(Some(3)));
                    }
                    WorkerFault::Kill { .. } => {
                        let _ = tx.send(WorkerEvent::Exit(None));
                    }
                    WorkerFault::Stall => {
                        // Stay silent until killed, then report exit.
                        while !kflag.load(Ordering::Relaxed) {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        let _ = tx.send(WorkerEvent::Exit(None));
                    }
                }
            });
            Ok(LaunchedWorker {
                events: rx,
                kill: Box::new(move || killed.store(true, Ordering::Relaxed)),
            })
        }
    }

    fn fast_cfg(workers: usize) -> FabricConfig {
        FabricConfig {
            workers,
            max_attempts: 3,
            heartbeat_timeout: Duration::from_millis(60),
            backoff_base_ms: 1.0,
            backoff_cap_ms: 5.0,
            seed: 7,
        }
    }

    fn run_scripted(
        workers: usize,
        shards: usize,
        faults: FabricFaultProfile,
    ) -> FabricOutcome {
        let launcher = Scripted { faults, lines_per_shard: 5 };
        Coordinator::new(fast_cfg(workers), launcher).run(shards).unwrap()
    }

    #[test]
    fn frame_codec_round_trips() {
        let frames = vec![
            Frame::Hello { shard: 3, attempt: 2 },
            Frame::Heartbeat { shard: 3, done: 17 },
            Frame::Data { shard: 3, n: 4 },
            Frame::Report { shard: 3, report: CampaignReport::default() },
            Frame::Metrics {
                shard: 3,
                counters: vec![("campaign.offered".to_string(), 9)],
            },
            Frame::End { shard: 3, checksum: 0xDEADBEEF },
        ];
        for f in frames {
            let line = f.to_line();
            assert_eq!(Frame::parse(&line).unwrap(), Some(f), "line {line}");
        }
        assert_eq!(Frame::parse("T|0|1|not-a-frame").unwrap(), None);
        assert!(Frame::parse("F|BOGUS|1|x").is_err());
        assert!(Frame::parse("F|DATA|1|abc").is_err());
    }

    #[test]
    fn shard_ranges_partition_exactly() {
        for n_items in [0usize, 1, 7, 16, 100] {
            for n_shards in [1usize, 2, 3, 4, 7] {
                let mut covered = 0;
                for s in 0..n_shards {
                    let r = shard_range(n_items, n_shards, s);
                    assert_eq!(r.start, covered, "shards must be contiguous");
                    covered = r.end;
                }
                assert_eq!(covered, n_items, "shards must cover everything");
            }
        }
    }

    #[test]
    fn quiet_fabric_merges_in_shard_order() {
        let out = run_scripted(2, 4, FabricFaultProfile::default());
        assert_eq!(out.stats.lost, 0);
        assert_eq!(out.stats.retries, 0);
        assert_eq!(out.stats.launches, 4);
        let merged = out.merged_lines();
        assert_eq!(merged.len(), 20);
        // Shard order regardless of completion order.
        let expect: Vec<String> = (0..4)
            .flat_map(|s| (0..5).map(move |i| format!("T|{s}|{i}|payload")))
            .collect();
        assert_eq!(merged, expect);
        assert_eq!(out.merged_report().delivered, 20);
    }

    #[test]
    fn exit_nonzero_is_retried_and_recovered() {
        let faults = FabricFaultProfile {
            plan: FabricFaultProfile::parse_plan("exit@1.1").unwrap(),
            ..FabricFaultProfile::default()
        };
        let out = run_scripted(2, 3, faults);
        assert_eq!(out.stats.lost, 0);
        assert_eq!(out.stats.retries, 1);
        assert_eq!(out.stats.recoveries, 1);
        assert_eq!(out.stats.nonzero_exits, 1);
        assert_eq!(out.shards[1].attempts, 2);
        assert_eq!(out.merged_lines().len(), 15);
        assert!(out.stats.recovery_ms >= 0.0);
    }

    #[test]
    fn corrupt_frame_is_detected_by_checksum() {
        let faults = FabricFaultProfile {
            plan: FabricFaultProfile::parse_plan("corrupt@0.1").unwrap(),
            ..FabricFaultProfile::default()
        };
        let out = run_scripted(1, 2, faults);
        assert_eq!(out.stats.corrupt_frames, 1);
        assert_eq!(out.stats.lost, 0);
        assert_eq!(out.merged_lines().len(), 10, "retry must replace corrupt data");
    }

    #[test]
    fn stalled_worker_is_reaped_by_timeout() {
        let faults = FabricFaultProfile {
            plan: FabricFaultProfile::parse_plan("stall@0.1").unwrap(),
            ..FabricFaultProfile::default()
        };
        let out = run_scripted(2, 2, faults);
        assert_eq!(out.stats.timeouts, 1);
        assert_eq!(out.stats.lost, 0);
        assert_eq!(out.shards[0].attempts, 2);
        assert_eq!(out.merged_lines().len(), 10);
    }

    #[test]
    fn shard_is_lost_after_retry_budget() {
        let faults = FabricFaultProfile {
            plan: FabricFaultProfile::parse_plan("exit@0.1;exit@0.2;exit@0.3").unwrap(),
            ..FabricFaultProfile::default()
        };
        let out = run_scripted(1, 2, faults);
        assert_eq!(out.stats.lost, 1);
        assert_eq!(out.lost_shards(), vec![0]);
        assert!(out.shards[0].lost);
        assert_eq!(out.shards[0].attempts, 3);
        // The healthy shard still delivers.
        assert_eq!(out.merged_lines().len(), 5);
        assert_eq!(out.merged_report().delivered, 5);
    }

    #[test]
    fn plan_parsing_and_decide_are_deterministic() {
        let plan =
            FabricFaultProfile::parse_plan("kill@0.1=2; stall@1.2 ;corrupt@2.1;exit@3.1")
                .unwrap();
        assert_eq!(plan.len(), 4);
        assert_eq!(plan[0].fault, WorkerFault::Kill { after_units: 2 });
        assert_eq!(plan[1], PlanEntry { shard: 1, attempt: 2, fault: WorkerFault::Stall });
        assert!(FabricFaultProfile::parse_plan("oops@1").is_err());
        assert!(FabricFaultProfile::parse_plan("kill@x.1").is_err());

        let p = FabricFaultProfile {
            seed: 42,
            kill_rate: 0.25,
            stall_rate: 0.25,
            corrupt_rate: 0.25,
            exit_rate: 0.25,
            plan,
        };
        // Plan overrides rates; off-plan attempts decide from rates,
        // identically every time.
        assert_eq!(p.decide(0, 1, 10), WorkerFault::Kill { after_units: 2 });
        for shard in 0..20 {
            for attempt in 3..5 {
                assert_eq!(
                    p.decide(shard, attempt, 10),
                    p.decide(shard, attempt, 10)
                );
            }
        }
        // A total rate of 1.0 always picks some fault.
        assert_ne!(p.decide(9, 9, 10), WorkerFault::None);
        let quiet = FabricFaultProfile::default();
        assert!(quiet.is_quiet());
        assert_eq!(quiet.decide(0, 1, 10), WorkerFault::None);
    }

    #[test]
    fn seeded_backoff_is_bounded_and_reproducible() {
        let cfg = fast_cfg(1);
        for shard in 0..8 {
            for attempt in 1..6 {
                let b = cfg.backoff_ms(shard, attempt);
                assert!(b >= 0.0 && b <= cfg.backoff_cap_ms);
                assert_eq!(b, cfg.backoff_ms(shard, attempt));
            }
        }
    }

    #[test]
    fn stats_publish_covers_required_counters() {
        let out = run_scripted(2, 3, FabricFaultProfile::default());
        let reg = s2s_obs::Registry::new();
        out.stats.publish(&reg, &out.shards);
        let snap = reg.snapshot();
        for k in
            ["fabric.shards", "fabric.retries", "fabric.recoveries", "fabric.lost"]
        {
            assert!(snap.counters.contains_key(k), "missing {k}");
        }
        assert_eq!(snap.counters["fabric.shards"], 3);
        // Worker counters aggregate under the worker. prefix.
        assert_eq!(snap.counters["worker.campaign.offered"], 15);
    }

    #[test]
    fn fnv_checksum_pins_line_structure() {
        let a = fnv64_lines(&["ab", "c"]);
        let b = fnv64_lines(&["a", "bc"]);
        assert_ne!(a, b, "line boundaries must affect the checksum");
        assert_eq!(fnv64_lines::<&str>(&[]), 0xcbf29ce484222325);
    }
}
