//! The one front door for campaigns: [`Campaign`].
//!
//! Every campaign — plain or fault-injected, batched-parallel or
//! sequential-reference, in-memory or checkpoint/resumed — is launched by
//! building a [`Campaign`] and calling one of its `run_*` methods. The
//! seven free `run_*_campaign*` functions that predate it survive as
//! `#[deprecated]` shims over this type.
//!
//! ```no_run
//! # use s2s_probe::{Campaign, CampaignConfig, FaultProfile, RetryPolicy};
//! # use s2s_probe::tracer::TraceOptions;
//! # fn demo(net: &s2s_netsim::Network, pairs: &[(s2s_types::ClusterId, s2s_types::ClusterId)]) {
//! let (timelines, report) = Campaign::new(CampaignConfig::long_term(30))
//!     .faults(FaultProfile::from_env())
//!     .retry(RetryPolicy::default())
//!     .threads(8)
//!     .run_traceroute(net, pairs, TraceOptions::default(), |s, d, p| (s, d, p, 0u64), |a, _r| a.3 += 1)
//!     .unwrap();
//! # let _ = (timelines, report);
//! # }
//! ```
//!
//! The builder always routes through the fault-aware execution cores: with
//! no [`Campaign::faults`] call the profile is the all-zero default, under
//! which the fault plane provably changes nothing (the internal zero-fault
//! equivalence tests pin the accumulators byte-for-byte against the plain
//! runners). That means every run returns a real [`CampaignReport`] — no
//! variant-specific report synthesis.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::campaign::{
    ping_faulty_impl, ping_sink_impl, ping_sink_resumable_impl, traceroute_epoch_impl,
    traceroute_faulty_impl, traceroute_faulty_reference_impl, traceroute_resumable_impl,
    CampaignConfig, CampaignReport, PingTimeline, RetryPolicy,
};
use crate::faults::{FaultInjector, FaultProfile};
use crate::records::TracerouteRecord;
use crate::stream::{StreamSink, TimelineSink};
use crate::tracer::TraceOptions;
use s2s_netsim::Network;
use s2s_types::{ClusterId, Protocol, SimTime};

/// A configured-but-not-yet-run campaign.
///
/// Construction is pure; nothing happens until a `run_*` method fires.
/// All `run_*` methods return `io::Result<(accumulators, CampaignReport)>`
/// uniformly — in-memory runs cannot actually fail, only
/// [checkpointed](Campaign::checkpoint) ones can, but one signature keeps
/// call sites stable when a checkpoint is added later.
#[derive(Clone, Debug)]
pub struct Campaign {
    cfg: CampaignConfig,
    profile: FaultProfile,
    retry: RetryPolicy,
    checkpoint: Option<PathBuf>,
    reference: bool,
    registry: Option<Arc<s2s_obs::Registry>>,
}

impl Campaign {
    /// Starts a builder from a schedule. Faults default to the all-zero
    /// profile (a fault-free run), retry to [`RetryPolicy::default`].
    pub fn new(cfg: CampaignConfig) -> Self {
        Campaign {
            cfg,
            profile: FaultProfile::default(),
            retry: RetryPolicy::default(),
            checkpoint: None,
            reference: false,
            registry: None,
        }
    }

    /// Injects faults from `profile` (content-keyed on its seed, so results
    /// are independent of thread count and execution order).
    pub fn faults(mut self, profile: FaultProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Sets the retry/timeout policy for faulted probe slots.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Checkpoints completed pairs to `path` and resumes from it on rerun.
    /// The finished file and the accumulators are bit-identical to an
    /// uninterrupted run (see the module docs on `campaign` for why).
    /// Traceroute campaigns archive record blocks; ping campaigns
    /// (including [`Campaign::sink`] runs) archive serialized sink state.
    pub fn checkpoint(mut self, path: impl AsRef<Path>) -> Self {
        self.checkpoint = Some(path.as_ref().to_path_buf());
        self
    }

    /// Overrides the worker-thread count (defaults to the `S2S_THREADS`
    /// knob, see [`crate::env::threads`]).
    pub fn threads(mut self, n: usize) -> Self {
        self.cfg.threads = n.max(1);
        self
    }

    /// Folds the run's [`CampaignReport`] counters and rare events into
    /// `registry` when the run finishes. Without this call the report is
    /// published to the globally [installed](s2s_obs::install) registry,
    /// if any. (Span timings inside the execution cores always go to the
    /// global registry — install one to capture them.)
    pub fn observe(mut self, registry: Arc<s2s_obs::Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Uses the sequential, unbatched reference executor: one thread,
    /// time-outer pair-inner loops, no epoch batching — the seed
    /// implementation's exact execution order. The validation baseline
    /// the batched parallel executor must match byte for byte.
    pub fn reference(mut self) -> Self {
        self.reference = true;
        self
    }

    /// Runs a traceroute campaign with fixed tool options, folding each
    /// (pair, protocol) timeline into an accumulator: `init(src, dst,
    /// proto)` creates it, `step(acc, record)` folds one record in.
    /// Accumulators are ordered pair-major, then protocol in
    /// `cfg.protocols` order.
    pub fn run_traceroute<A, I, S>(
        &self,
        net: &Network,
        pairs: &[(ClusterId, ClusterId)],
        opts: TraceOptions,
        init: I,
        step: S,
    ) -> std::io::Result<(Vec<A>, CampaignReport)>
    where
        A: Send,
        I: Fn(ClusterId, ClusterId, Protocol) -> A + Sync,
        S: Fn(&mut A, TracerouteRecord) + Sync,
    {
        self.run_traceroute_with(net, pairs, move |_, _| opts, init, step)
    }

    /// Like [`Campaign::run_traceroute`], with per-measurement tool
    /// options: `opts_of(t, proto)` picks the traceroute flavor per run —
    /// how the paper's platform behaved (classic traceroute until November
    /// 2014, then Paris traceroute for IPv4, §2.1).
    pub fn run_traceroute_with<A, O, I, S>(
        &self,
        net: &Network,
        pairs: &[(ClusterId, ClusterId)],
        opts_of: O,
        init: I,
        step: S,
    ) -> std::io::Result<(Vec<A>, CampaignReport)>
    where
        A: Send,
        O: Fn(SimTime, Protocol) -> TraceOptions + Sync,
        I: Fn(ClusterId, ClusterId, Protocol) -> A + Sync,
        S: Fn(&mut A, TracerouteRecord) + Sync,
    {
        let result = if let Some(path) = &self.checkpoint {
            traceroute_resumable_impl(
                net, pairs, &self.cfg, opts_of, &self.profile, &self.retry, path, init, step,
            )
        } else if self.reference {
            Ok(traceroute_faulty_reference_impl(
                net, pairs, &self.cfg, opts_of, &self.profile, &self.retry, init, step,
            ))
        } else {
            Ok(traceroute_faulty_impl(
                net, pairs, &self.cfg, opts_of, &self.profile, &self.retry, init, step,
            ))
        };
        if let Ok((_, report)) = &result {
            self.publish(report);
        }
        result
    }

    /// Resolves every (pair, protocol) slot of **one** schedule instant —
    /// the always-on service's per-epoch advance. `epoch` indexes the
    /// schedule (`0..cfg.n_samples()`; out of range panics), and
    /// `step(slot, record)` receives each record with its slot index
    /// (pair-major, protocol in `cfg.protocols` order — the same indexing
    /// as [`Campaign::run_traceroute`]'s accumulators).
    ///
    /// Fault decisions are content-keyed on the global sample index, so
    /// sweeping epochs `0..n_samples` and [merging](CampaignReport::merge)
    /// the per-epoch reports is byte-identical — records, slot order
    /// within each (pair, protocol), and report — to one
    /// [`Campaign::run_traceroute_with`] batch run over the same schedule.
    /// Unlike the batch runners, the per-epoch report is *not* published
    /// to the observability registry (a long-running service would melt
    /// `campaign.runs`); callers merge and publish at their own cadence.
    pub fn run_traceroute_epoch(
        &self,
        net: &Network,
        pairs: &[(ClusterId, ClusterId)],
        opts_of: impl Fn(SimTime, Protocol) -> TraceOptions,
        epoch: usize,
        step: impl FnMut(usize, TracerouteRecord),
    ) -> CampaignReport {
        let t = s2s_types::time::sample_times(self.cfg.start, self.cfg.end, self.cfg.interval)
            .nth(epoch)
            .unwrap_or_else(|| {
                panic!("epoch {epoch} out of schedule range 0..{}", self.cfg.n_samples())
            });
        // Construction is pure and the injector is content-keyed on the
        // profile seed, so rebuilding it per epoch changes nothing.
        let injector = FaultInjector::new(self.profile);
        traceroute_epoch_impl(
            net, pairs, &self.cfg, opts_of, &injector, &self.retry, epoch, t, step,
        )
    }

    /// Runs a ping campaign, returning a dense timeline per
    /// (pair, protocol): one slot per scheduled instant, `NaN` for lost
    /// samples. With [`Campaign::checkpoint`] set, the run folds through
    /// the [`TimelineSink`] resumable executor: completed pairs are
    /// archived as serialized timeline state and replayed on rerun, with
    /// the same bit-identical-resume guarantee as traceroute campaigns.
    pub fn run_ping(
        &self,
        net: &Network,
        pairs: &[(ClusterId, ClusterId)],
    ) -> std::io::Result<(Vec<PingTimeline>, CampaignReport)> {
        if let Some(path) = &self.checkpoint {
            let sink = TimelineSink::for_config(&self.cfg);
            let result = ping_sink_resumable_impl(
                net, pairs, &self.cfg, &self.profile, &self.retry, path, &sink,
            );
            if let Ok((_, report)) = &result {
                self.publish(report);
            }
            return result;
        }
        let (timelines, report) = if self.reference {
            // The reference executor is single-threaded by definition.
            let mut cfg = self.cfg.clone();
            cfg.threads = 1;
            ping_faulty_impl(net, pairs, &cfg, &self.profile, &self.retry)
        } else {
            ping_faulty_impl(net, pairs, &self.cfg, &self.profile, &self.retry)
        };
        self.publish(&report);
        Ok((timelines, report))
    }

    /// Attaches a streaming sink: the returned [`SinkCampaign`] folds every
    /// sample into per-(pair, protocol) sink state as it is measured,
    /// instead of materializing timelines — campaign memory proportional
    /// to pairs, not samples (the §5 mesh at paper scale). All other
    /// builder settings (faults, retry, threads, checkpoint, observability,
    /// reference mode) carry over.
    pub fn sink<K: StreamSink>(self, sink: K) -> SinkCampaign<K> {
        SinkCampaign { campaign: self, sink }
    }

    /// The registry this run reports into: the explicit
    /// [`Campaign::observe`] one, else the globally installed one.
    fn effective_registry(&self) -> Option<Arc<s2s_obs::Registry>> {
        self.registry.clone().or_else(s2s_obs::installed)
    }

    /// Folds a finished run's report into the effective registry:
    /// `campaign.*` counters mirror the [`CampaignReport`] fields, and the
    /// rare outcomes (worker panics, retry-exhausted slots, checkpoint
    /// resume) land in the event log.
    fn publish(&self, report: &CampaignReport) {
        let Some(reg) = self.effective_registry() else { return };
        for (name, v) in [
            ("campaign.offered", report.offered),
            ("campaign.attempted", report.attempted),
            ("campaign.delivered", report.delivered),
            ("campaign.truncated", report.truncated),
            ("campaign.retried", report.retried),
            ("campaign.gave_up", report.gave_up),
            ("campaign.dropped_probes", report.dropped_probes),
            ("campaign.stuck_probes", report.stuck_probes),
            ("campaign.agent_down_slots", report.agent_down_slots),
            ("campaign.resumed_pairs", report.resumed_pairs),
            ("campaign.worker_panics", report.worker_panics),
            ("campaign.lost_slots", report.lost_slots),
        ] {
            if v > 0 {
                reg.counter(name).add(v as u64);
            }
        }
        reg.counter("campaign.runs").inc();
        if report.worker_panics > 0 {
            reg.event(
                "campaign.worker_panic",
                format!(
                    "{} worker(s) panicked; {} pair(s) poisoned",
                    report.worker_panics,
                    report.poisoned_pairs.len()
                ),
            );
        }
        if report.gave_up > 0 {
            reg.event(
                "campaign.retry_exhausted",
                format!("{} slot(s) abandoned after exhausting retries", report.gave_up),
            );
        }
        if let Some(path) = &self.checkpoint {
            reg.event(
                "campaign.checkpoint_write",
                format!(
                    "checkpoint {} complete ({} pair(s) replayed from it)",
                    path.display(),
                    report.resumed_pairs
                ),
            );
        }
    }
}

/// A [`Campaign`] with a [`StreamSink`] attached (built by
/// [`Campaign::sink`]): its runs return folded sink states instead of
/// materialized timelines.
#[derive(Clone, Debug)]
pub struct SinkCampaign<K: StreamSink> {
    campaign: Campaign,
    sink: K,
}

impl<K: StreamSink> SinkCampaign<K> {
    /// The attached sink.
    pub fn sink_ref(&self) -> &K {
        &self.sink
    }

    /// Runs the ping campaign through the sink, returning one folded state
    /// per (pair, protocol) — pair-major, protocol in `cfg.protocols`
    /// order, exactly like [`Campaign::run_ping`]'s timelines. Schedule,
    /// fault decisions, and report accounting are identical to the
    /// materializing path; only the fold differs. With
    /// [`Campaign::checkpoint`] set, completed pairs are archived as
    /// serialized sink state and replayed on rerun (bit-identical resume).
    pub fn run_ping(
        &self,
        net: &Network,
        pairs: &[(ClusterId, ClusterId)],
    ) -> std::io::Result<(Vec<K::State>, CampaignReport)> {
        let result = if let Some(path) = &self.campaign.checkpoint {
            ping_sink_resumable_impl(
                net,
                pairs,
                &self.campaign.cfg,
                &self.campaign.profile,
                &self.campaign.retry,
                path,
                &self.sink,
            )
        } else if self.campaign.reference {
            let mut cfg = self.campaign.cfg.clone();
            cfg.threads = 1;
            Ok(ping_sink_impl(
                net, pairs, &cfg, &self.campaign.profile, &self.campaign.retry, &self.sink,
            ))
        } else {
            Ok(ping_sink_impl(
                net,
                pairs,
                &self.campaign.cfg,
                &self.campaign.profile,
                &self.campaign.retry,
                &self.sink,
            ))
        };
        if let Ok((states, report)) = &result {
            self.campaign.publish(report);
            self.publish_sink(states, report);
        }
        result
    }

    /// Folds the sink-specific series into the effective registry:
    /// `sink.states` / `sink.samples` / `sink.lost` counters and the
    /// `sink.sketch_bytes` gauge (total resident sink-state bytes — the
    /// number that stays flat as sample counts grow).
    fn publish_sink(&self, states: &[K::State], report: &CampaignReport) {
        let Some(reg) = self.campaign.effective_registry() else { return };
        reg.counter("sink.states").add(states.len() as u64);
        reg.counter("sink.samples").add(report.offered as u64);
        reg.counter("sink.lost").add(report.offered.saturating_sub(report.delivered) as u64);
        let bytes: usize = states.iter().map(|s| self.sink.state_bytes(s)).sum();
        reg.gauge("sink.sketch_bytes").set(bytes as u64);
    }
}
