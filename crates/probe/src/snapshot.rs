//! Binary columnar snapshots: the on-disk twin of [`TraceStore`].
//!
//! The `|`-record archive ([`crate::dataset`]) is the *interchange* form —
//! human-greppable, line-oriented, re-parsed at microseconds per line. At
//! the paper's scale (~2.6 B traceroutes) that re-parse is the dominant
//! cost of every analysis, because the text form stores each hop sequence
//! once per trace and re-interns everything on import. A snapshot instead
//! persists the store's *arenas*: the interned address table and the
//! hash-consed sequence arena are written once per **distinct** value, and
//! the per-trace columns are written as raw little-endian arrays that load
//! back with bulk copies — so [`read`] runs in O(distinct-data + column
//! bytes), not O(lines × fields), and the reopened store is byte-identical
//! to the one that was saved ([`TraceStore::to_records`] agrees exactly,
//! proptest-pinned).
//!
//! ## Layout (version 1)
//!
//! ```text
//! magic  "S2SNAP01"                                  8 bytes
//! version u32                                        4 bytes
//! segment*                                           until END
//! ```
//!
//! Every segment is length-prefixed and independently checksummed:
//!
//! ```text
//! tag         u32    ADDR=1 SEQ=2 BLOCK=3 SINK=4 END=5
//! count       u64    records in this segment (traces for BLOCK)
//! len         u64    payload bytes
//! payload_fnv u64    FNV-1a over the payload
//! header_fnv  u64    FNV-1a over the 28 header bytes above
//! payload     len bytes
//! ```
//!
//! * `ADDR` — the interned address table, id order: one tag byte (4 or 6)
//!   plus the 4- or 16-byte address per entry.
//! * `SEQ` — the hop-sequence arena: the flat `u32` id array plus the
//!   per-sequence end offsets.
//! * `BLOCK` — a batch of `S2S_SNAPSHOT_BLOCK` traces (default
//!   [`DEFAULT_BLOCK_TRACES`]): every per-trace column as a raw array,
//!   presence/boolean bitsets packed per block, per-trace hop counts, and
//!   the block's flat hop-RTT slots. Blocks are the unit of loss: a torn
//!   or bit-flipped block degrades to `count` skipped traces, everything
//!   else still loads.
//! * `SINK` — serialized [`StreamSink`](crate::stream::StreamSink) state
//!   lines (bit-exact strings, PR 5), so a campaign's sketch/sink results
//!   ride in the same file and reopen without replay.
//! * `END` — the totals (traces, sinks). A snapshot without its `END`
//!   segment was torn mid-write.
//!
//! ## Opening: `Snapshot::options()`
//!
//! The one front door over the lossy/strict/streamed matrix:
//!
//! ```text
//! Snapshot::options()            strict, materialized (the default)
//!     .lossy(true)               damage degrades to counted skips
//!     .stream(true)              out-of-core: bounded batches
//!     .block_budget(n)           reuse-buffer cap (default S2S_SNAPSHOT_BUDGET)
//!     .open(path)                -> SnapshotReader
//! ```
//!
//! Every open returns a [`SnapshotReader`]. The arenas (`ADDR` + `SEQ`)
//! load once at open; [`SnapshotReader::next_batch`] then decodes `BLOCK`
//! segments into a reused buffer until the trace budget fills, so resident
//! bytes stay O(arena + one batch) no matter how many traces the file
//! holds. [`SnapshotReader::into_snapshot`] drains the stream into a
//! materialized [`Snapshot`] — what [`open_file`]/[`open_file_lossy`]
//! (thin shims over the builder) return. [`absorb_files`] streams N
//! per-shard files into one store while holding at most one shard's arena
//! plus one batch; [`SnapshotOptions::open_dir`] wraps a directory of
//! `shard-<k>.snap` files as a [`ShardDir`] analysis source.
//!
//! ## Corruption policy
//!
//! [`read`] is strict: the first bad byte is an error. [`read_lossy`]
//! mirrors [`crate::dataset::read_traceroutes_lossy`]: damage degrades to
//! *counted* skips, never a panic and never silent acceptance. A corrupt
//! `BLOCK` skips exactly `count` traces; a corrupt `SINK` segment skips
//! its `count` states; a corrupt `ADDR`/`SEQ` segment poisons every
//! subsequent block (their ids would dangle) so those blocks are counted
//! skipped too; a header that fails its own checksum ends the scan (framing
//! is lost) and the `END` totals — when they were seen — still bound how
//! much was lost. Every decoded id is range-checked before it enters the
//! store, so a checksum collision cannot plant an out-of-bounds index. A
//! file that ends before its first segment header — zero bytes, a magic
//! prefix, or a bare prologue — is a distinct *empty snapshot* condition
//! ([`SnapshotReport::empty`]), not a generic torn tail.

use crate::store::TraceStore;
use s2s_types::{ClusterId, Coverage, SimTime};
use std::io::{self, Read, Write};
use std::net::IpAddr;
use std::path::Path;

/// File magic: identifies a snapshot regardless of the version field.
pub const MAGIC: &[u8; 8] = b"S2SNAP01";
/// Current format version (bump on any layout change).
pub const VERSION: u32 = 1;
/// Default traces per `BLOCK` segment (the `S2S_SNAPSHOT_BLOCK` knob).
pub const DEFAULT_BLOCK_TRACES: usize = 4096;

const TAG_ADDR: u32 = 1;
const TAG_SEQ: u32 = 2;
const TAG_BLOCK: u32 = 3;
const TAG_SINK: u32 = 4;
const TAG_END: u32 = 5;

const HEADER_BYTES: usize = 36;

/// The segment checksum: FNV-1a folded eight bytes at a time (the tail
/// byte-wise), one multiply per word instead of per byte. Any change
/// confined to a single word is always detected — xor-then-multiply by
/// an odd prime is injective in the accumulator — and payload checksum
/// cost stays ~1/8th of canonical FNV on multi-megabyte snapshots.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = crate::fabric::FNV64_OFFSET;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let w = u64::from_le_bytes(c.try_into().unwrap());
        h = (h ^ w).wrapping_mul(0x100000001b3);
    }
    crate::fabric::fnv64_bytes(h, chunks.remainder())
}

/// A reopened snapshot: the columnar store plus any sink-state lines that
/// rode along. `s2s_core`'s `Analysis::new` accepts `&Snapshot` directly
/// (delegating to the store), so a campaign's output directory is an
/// analysis input without any line re-import.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// The reopened columnar store — byte-identical to the saved one.
    pub store: TraceStore,
    /// Serialized sink states ([`crate::stream::StreamSink::save`] lines),
    /// in saved order, bit-exact.
    pub sinks: Vec<String>,
}

/// What a lossy open did: how much loaded, how much was skipped, and the
/// first few reasons why — the snapshot counterpart of
/// [`crate::dataset::ImportReport`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SnapshotReport {
    /// Traces loaded into the store.
    pub traces: usize,
    /// Traces lost to corrupt, torn, or poisoned segments.
    pub skipped_traces: usize,
    /// Sink states loaded.
    pub sinks: usize,
    /// Sink states lost to corrupt or torn segments.
    pub skipped_sinks: usize,
    /// Segments that failed their checksum or validation.
    pub skipped_segments: usize,
    /// The stream ended before a valid `END` segment (torn write).
    pub torn: bool,
    /// The stream ended before its first segment header: a zero-length
    /// file, a bare magic/prologue, or a truncated prologue that is still
    /// a prefix of [`MAGIC`]. Distinct from a generic torn tail — an empty
    /// snapshot carries *no* data at all, which callers (e.g. `reproduce`)
    /// report separately. Always implies [`SnapshotReport::torn`].
    pub empty: bool,
    /// The first [`SnapshotReport::MAX_SAMPLED_ERRORS`] damage reasons.
    pub first_errors: Vec<String>,
}

impl SnapshotReport {
    /// How many damage reasons a report keeps verbatim.
    pub const MAX_SAMPLED_ERRORS: usize = 8;

    fn note(&mut self, msg: String) {
        if self.first_errors.len() < Self::MAX_SAMPLED_ERRORS {
            self.first_errors.push(msg);
        }
    }

    /// Trace coverage of the snapshot: loaded over (loaded + skipped).
    pub fn coverage(&self) -> Coverage {
        Coverage::new(self.traces, self.traces + self.skipped_traces)
    }

    /// Whether the open lost nothing.
    pub fn clean(&self) -> bool {
        self.skipped_traces == 0
            && self.skipped_sinks == 0
            && self.skipped_segments == 0
            && !self.torn
            && !self.empty
    }

    /// Folds another report into this one — what [`absorb_files`] does per
    /// shard. Counts add, flags OR, and the sampled errors keep the first
    /// [`SnapshotReport::MAX_SAMPLED_ERRORS`] across all shards.
    pub fn merge(&mut self, other: &SnapshotReport) {
        self.traces += other.traces;
        self.skipped_traces += other.skipped_traces;
        self.sinks += other.sinks;
        self.skipped_sinks += other.skipped_sinks;
        self.skipped_segments += other.skipped_segments;
        self.torn |= other.torn;
        self.empty |= other.empty;
        for e in &other.first_errors {
            self.note(e.clone());
        }
    }

    /// Publishes the open's outcome as `snapshot.*` gauges.
    pub fn publish(&self, registry: &s2s_obs::Registry) {
        registry.gauge("snapshot.traces").set(self.traces as u64);
        registry.gauge("snapshot.skipped_traces").set(self.skipped_traces as u64);
        registry.gauge("snapshot.sinks").set(self.sinks as u64);
        registry.gauge("snapshot.skipped_sinks").set(self.skipped_sinks as u64);
        registry.gauge("snapshot.skipped_segments").set(self.skipped_segments as u64);
        registry.gauge("snapshot.torn").set(u64::from(self.torn));
        registry.gauge("snapshot.empty").set(u64::from(self.empty));
    }
}

// ---------------------------------------------------------------------------
// Little-endian encode helpers (the format is LE on every platform)
// ---------------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// A bounds-checked little-endian cursor over a decoded payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(e) => {
                let s = &self.buf[self.pos..e];
                self.pos = e;
                Ok(s)
            }
            None => Err("payload truncated".into()),
        }
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Bulk-reads `n` u32s as one bounds check + a chunked copy — the
    /// column fast path (per-element `u32()` pays a checked take each).
    fn u32s(&mut self, n: usize) -> Result<Vec<u32>, String> {
        let bytes = self.take(n.checked_mul(4).ok_or("column length overflow")?)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Bulk-reads `n` bit-encoded f64s (same fast path as [`Self::u32s`]).
    fn f64s(&mut self, n: usize) -> Result<Vec<f64>, String> {
        let bytes = self.take(n.checked_mul(8).ok_or("column length overflow")?)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
            .collect())
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Packs `n` bits drawn from `bit(i)` into bytes, LSB-first.
fn pack_bits(buf: &mut Vec<u8>, n: usize, bit: impl Fn(usize) -> bool) {
    let mut byte = 0u8;
    for i in 0..n {
        if bit(i) {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            buf.push(byte);
            byte = 0;
        }
    }
    if !n.is_multiple_of(8) {
        buf.push(byte);
    }
}

/// Unpacks `n` LSB-first bits from a cursor.
fn unpack_bits(c: &mut Cursor<'_>, n: usize) -> Result<Vec<bool>, String> {
    let bytes = c.take(n.div_ceil(8))?;
    Ok((0..n).map(|i| bytes[i / 8] >> (i % 8) & 1 == 1).collect())
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_segment<W: Write>(
    w: &mut W,
    tag: u32,
    count: u64,
    payload: &[u8],
) -> io::Result<u64> {
    let mut header = Vec::with_capacity(HEADER_BYTES);
    put_u32(&mut header, tag);
    put_u64(&mut header, count);
    put_u64(&mut header, payload.len() as u64);
    put_u64(&mut header, fnv64(payload));
    let hfnv = fnv64(&header);
    put_u64(&mut header, hfnv);
    w.write_all(&header)?;
    w.write_all(payload)?;
    Ok((header.len() + payload.len()) as u64)
}

fn encode_addr(buf: &mut Vec<u8>, addr: IpAddr) {
    match addr {
        IpAddr::V4(a) => {
            buf.push(4);
            buf.extend_from_slice(&a.octets());
        }
        IpAddr::V6(a) => {
            buf.push(6);
            buf.extend_from_slice(&a.octets());
        }
    }
}

fn encode_block(store: &TraceStore, range: std::ops::Range<usize>) -> Vec<u8> {
    let n = range.len();
    let hop_base = store.rtt_offsets[range.start] as usize;
    let hop_end = store.rtt_offsets[range.end] as usize;
    let n_hops = hop_end - hop_base;
    let mut buf = Vec::with_capacity(n * 44 + n_hops * 9 + 32);
    for i in range.clone() {
        put_u32(&mut buf, store.srcs[i].0);
    }
    for i in range.clone() {
        put_u32(&mut buf, store.dsts[i].0);
    }
    for i in range.clone() {
        put_u32(&mut buf, store.times[i].0);
    }
    for i in range.clone() {
        put_u32(&mut buf, store.seqs[i]);
    }
    for i in range.clone() {
        put_u32(&mut buf, store.src_addrs[i]);
    }
    for i in range.clone() {
        put_u32(&mut buf, store.dst_addrs[i]);
    }
    for i in range.clone() {
        put_u64(&mut buf, store.e2e[i].to_bits());
    }
    pack_bits(&mut buf, n, |k| store.e2e_some.get(range.start + k));
    pack_bits(&mut buf, n, |k| store.reached.get(range.start + k));
    pack_bits(&mut buf, n, |k| store.proto_v6.get(range.start + k));
    for i in range.clone() {
        let hops = store.rtt_offsets[i + 1] - store.rtt_offsets[i];
        put_u32(&mut buf, hops);
    }
    put_u64(&mut buf, n_hops as u64);
    for k in hop_base..hop_end {
        put_u64(&mut buf, store.rtts[k].to_bits());
    }
    pack_bits(&mut buf, n_hops, |k| store.rtt_some.get(hop_base + k));
    buf
}

/// Writes a snapshot of `store` (plus optional serialized sink states) with
/// `block_traces` traces per `BLOCK` segment. Returns the bytes written.
pub fn write<W: Write>(
    w: &mut W,
    store: &TraceStore,
    sinks: &[String],
    block_traces: usize,
) -> io::Result<u64> {
    let block_traces = block_traces.max(1);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    let mut written = (MAGIC.len() + 4) as u64;

    let mut addr_buf = Vec::new();
    for &a in store.addrs() {
        encode_addr(&mut addr_buf, a);
    }
    written += write_segment(w, TAG_ADDR, store.addr_count() as u64, &addr_buf)?;

    let mut seq_buf = Vec::new();
    put_u64(&mut seq_buf, store.seq_data.len() as u64);
    for &d in &store.seq_data {
        put_u32(&mut seq_buf, d);
    }
    // End offsets only: offsets[0] is always 0.
    for &o in &store.seq_offsets[1..] {
        put_u32(&mut seq_buf, o);
    }
    written += write_segment(w, TAG_SEQ, store.seq_count() as u64, &seq_buf)?;

    let mut start = 0;
    while start < store.len() {
        let end = (start + block_traces).min(store.len());
        let payload = encode_block(store, start..end);
        written += write_segment(w, TAG_BLOCK, (end - start) as u64, &payload)?;
        start = end;
    }

    if !sinks.is_empty() {
        let mut sink_buf = Vec::new();
        for s in sinks {
            put_u32(&mut sink_buf, s.len() as u32);
            sink_buf.extend_from_slice(s.as_bytes());
        }
        written += write_segment(w, TAG_SINK, sinks.len() as u64, &sink_buf)?;
    }

    let mut end_buf = Vec::new();
    put_u64(&mut end_buf, store.len() as u64);
    put_u64(&mut end_buf, sinks.len() as u64);
    written += write_segment(w, TAG_END, store.len() as u64, &end_buf)?;
    w.flush()?;
    Ok(written)
}

/// [`write()`] to a file path, block size from the `S2S_SNAPSHOT_BLOCK` knob.
/// The file is written to a `.tmp` sibling and renamed into place, so a
/// crash mid-write leaves no half-snapshot under the final name.
pub fn write_file(path: &Path, store: &TraceStore, sinks: &[String]) -> io::Result<u64> {
    let tmp = path.with_extension("snap.tmp");
    let mut f = io::BufWriter::new(std::fs::File::create(&tmp)?);
    let bytes = write(&mut f, store, sinks, crate::env::snapshot_block())?;
    f.into_inner().map_err(|e| e.into_error())?.sync_all()?;
    std::fs::rename(&tmp, path)?;
    Ok(bytes)
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

struct SegmentHeader {
    tag: u32,
    count: u64,
    len: u64,
    payload_fnv: u64,
}

enum HeaderRead {
    Ok(SegmentHeader),
    /// Clean EOF exactly at a segment boundary.
    Eof,
    /// Damage: torn header bytes or a failed header checksum.
    Bad(String),
}

fn read_header<R: Read>(r: &mut R) -> io::Result<HeaderRead> {
    let mut buf = [0u8; HEADER_BYTES];
    let mut got = 0;
    while got < HEADER_BYTES {
        let n = r.read(&mut buf[got..])?;
        if n == 0 {
            return Ok(if got == 0 {
                HeaderRead::Eof
            } else {
                HeaderRead::Bad(format!("torn segment header ({got} of {HEADER_BYTES} bytes)"))
            });
        }
        got += n;
    }
    let stored_hfnv = u64::from_le_bytes(buf[28..36].try_into().unwrap());
    if fnv64(&buf[..28]) != stored_hfnv {
        return Ok(HeaderRead::Bad("segment header failed its checksum".into()));
    }
    Ok(HeaderRead::Ok(SegmentHeader {
        tag: u32::from_le_bytes(buf[0..4].try_into().unwrap()),
        count: u64::from_le_bytes(buf[4..12].try_into().unwrap()),
        len: u64::from_le_bytes(buf[12..20].try_into().unwrap()),
        payload_fnv: u64::from_le_bytes(buf[20..28].try_into().unwrap()),
    }))
}

/// Reads exactly `len` payload bytes; `Ok(None)` marks a torn tail.
fn read_payload<R: Read>(r: &mut R, len: u64) -> io::Result<Option<Vec<u8>>> {
    let len = len as usize;
    let mut buf = vec![0u8; len];
    let mut got = 0;
    while got < len {
        let n = r.read(&mut buf[got..])?;
        if n == 0 {
            return Ok(None);
        }
        got += n;
    }
    Ok(Some(buf))
}

fn decode_addrs(payload: &[u8], count: u64) -> Result<Vec<IpAddr>, String> {
    let mut c = Cursor::new(payload);
    let mut addrs = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let addr = match c.u8()? {
            4 => IpAddr::from(<[u8; 4]>::try_from(c.take(4)?).unwrap()),
            6 => IpAddr::from(<[u8; 16]>::try_from(c.take(16)?).unwrap()),
            t => return Err(format!("bad address family tag {t}")),
        };
        addrs.push(addr);
    }
    if !c.done() {
        return Err("trailing bytes after address table".into());
    }
    Ok(addrs)
}

fn decode_seqs(
    payload: &[u8],
    count: u64,
    addr_count: usize,
) -> Result<(Vec<u32>, Vec<u32>), String> {
    let mut c = Cursor::new(payload);
    let data_len = c.u64()? as usize;
    let mut data = Vec::with_capacity(data_len);
    for _ in 0..data_len {
        let id = c.u32()?;
        if id != crate::store::NO_ADDR && id as usize >= addr_count {
            return Err(format!("hop address id {id} out of range"));
        }
        data.push(id);
    }
    let mut offsets = Vec::with_capacity(count as usize + 1);
    offsets.push(0u32);
    for _ in 0..count {
        let end = c.u32()?;
        if (end as usize) < *offsets.last().unwrap() as usize || end as usize > data_len {
            return Err("sequence offsets not monotonic".into());
        }
        offsets.push(end);
    }
    if *offsets.last().unwrap() as usize != data_len {
        return Err("sequence arena length mismatch".into());
    }
    if !c.done() {
        return Err("trailing bytes after sequence arena".into());
    }
    Ok((data, offsets))
}

/// Decodes one trace block and appends it to `store`. Validates every id
/// against the already-loaded arenas before anything is pushed, so a
/// failed block leaves the store untouched.
fn decode_block(store: &mut TraceStore, payload: &[u8], count: u64) -> Result<(), String> {
    let n = count as usize;
    let mut c = Cursor::new(payload);
    let srcs = c.u32s(n)?;
    let dsts = c.u32s(n)?;
    let times = c.u32s(n)?;
    let seqs = c.u32s(n)?;
    let src_addrs = c.u32s(n)?;
    let dst_addrs = c.u32s(n)?;
    let e2e = c.f64s(n)?;
    let e2e_some = unpack_bits(&mut c, n)?;
    let reached = unpack_bits(&mut c, n)?;
    let proto_v6 = unpack_bits(&mut c, n)?;
    let hop_counts = c.u32s(n)?;
    let n_hops = c.u64()? as usize;
    if hop_counts.iter().map(|&h| h as usize).sum::<usize>() != n_hops {
        return Err("hop counts disagree with the block's hop total".into());
    }
    let rtts = c.f64s(n_hops)?;
    let rtt_some = unpack_bits(&mut c, n_hops)?;
    if !c.done() {
        return Err("trailing bytes after trace block".into());
    }
    let seq_count = store.seq_count() as u32;
    let addr_count = store.addr_count() as u32;
    let addr_ok =
        |id: u32| id == crate::store::NO_ADDR || id < addr_count;
    for i in 0..n {
        if seqs[i] >= seq_count {
            return Err(format!("sequence id {} out of range", seqs[i]));
        }
        if !addr_ok(src_addrs[i]) || !addr_ok(dst_addrs[i]) {
            return Err("endpoint address id out of range".into());
        }
    }
    store.srcs.extend(srcs.iter().map(|&v| ClusterId::new(v)));
    store.dsts.extend(dsts.iter().map(|&v| ClusterId::new(v)));
    store.times.extend(times.iter().map(|&v| SimTime(v)));
    store.seqs.extend_from_slice(&seqs);
    store.src_addrs.extend_from_slice(&src_addrs);
    store.dst_addrs.extend_from_slice(&dst_addrs);
    store.e2e.extend_from_slice(&e2e);
    for i in 0..n {
        store.e2e_some.push(e2e_some[i]);
        store.reached.push(reached[i]);
        store.proto_v6.push(proto_v6[i]);
    }
    let mut off = *store.rtt_offsets.last().unwrap();
    for &h in &hop_counts {
        off += h;
        store.rtt_offsets.push(off);
    }
    store.rtts.extend_from_slice(&rtts);
    for &b in rtt_some.iter().take(n_hops) {
        store.rtt_some.push(b);
    }
    Ok(())
}

fn decode_sinks(payload: &[u8], count: u64) -> Result<Vec<String>, String> {
    let mut c = Cursor::new(payload);
    let mut sinks = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let len = c.u32()? as usize;
        let bytes = c.take(len)?;
        sinks.push(
            String::from_utf8(bytes.to_vec()).map_err(|_| "sink state not UTF-8")?,
        );
    }
    if !c.done() {
        return Err("trailing bytes after sink states".into());
    }
    Ok(sinks)
}

/// What the 12-byte prologue said about the stream.
enum Prologue {
    /// Magic and version check out; segments follow.
    Ready,
    /// The stream ended inside (or right after) the prologue while still
    /// agreeing with it byte-for-byte: an *empty snapshot*, not a foreign
    /// file and not a generic torn tail.
    Empty,
}

fn read_prologue<R: Read>(r: &mut R) -> io::Result<Prologue> {
    let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    let mut magic = [0u8; 8];
    let mut got = 0;
    while got < magic.len() {
        let n = r.read(&mut magic[got..])?;
        if n == 0 {
            // A short read that is a prefix of the magic is an empty
            // snapshot (nothing was ever written past the prologue); any
            // other bytes make this a foreign file.
            return if magic[..got] == MAGIC[..got] {
                Ok(Prologue::Empty)
            } else {
                Err(bad("not a snapshot: bad magic"))
            };
        }
        got += n;
    }
    if &magic != MAGIC {
        return Err(bad("not a snapshot: bad magic"));
    }
    let mut ver = [0u8; 4];
    let mut got = 0;
    while got < ver.len() {
        let n = r.read(&mut ver[got..])?;
        if n == 0 {
            return Ok(Prologue::Empty); // magic-only file: empty snapshot
        }
        got += n;
    }
    let version = u32::from_le_bytes(ver);
    if version != VERSION {
        return Err(bad(&format!(
            "unsupported snapshot version {version} (expected {VERSION})"
        )));
    }
    Ok(Prologue::Ready)
}

// ---------------------------------------------------------------------------
// The front door: Snapshot::options()
// ---------------------------------------------------------------------------

impl Snapshot {
    /// The one way to open snapshots: configures the lossy/strict/streamed
    /// matrix, then [`SnapshotOptions::open`] (a file),
    /// [`SnapshotOptions::open_reader`] (any [`Read`]), or
    /// [`SnapshotOptions::open_dir`] (a shard directory).
    pub fn options() -> SnapshotOptions {
        SnapshotOptions::default()
    }
}

/// Builder for opening snapshots — see [`Snapshot::options`].
///
/// Defaults: strict (any damage is an error) and materialized (one batch
/// holds the whole file — [`SnapshotReader::into_snapshot`] is free).
/// `.lossy(true)` degrades damage to counted skips; `.stream(true)` caps
/// each [`SnapshotReader::next_batch`] at the block budget
/// (`.block_budget(n)`, default the `S2S_SNAPSHOT_BUDGET` knob) so
/// resident bytes stay O(arena + one batch).
#[derive(Clone, Debug, Default)]
pub struct SnapshotOptions {
    lossy: bool,
    stream: bool,
    block_budget: Option<usize>,
}

impl SnapshotOptions {
    /// Degrade damage to counted skips instead of erroring (default false).
    pub fn lossy(mut self, v: bool) -> SnapshotOptions {
        self.lossy = v;
        self
    }

    /// Yield bounded trace batches instead of materializing (default
    /// false). Without this, the reader's budget is unbounded and the
    /// first batch holds every trace.
    pub fn stream(mut self, v: bool) -> SnapshotOptions {
        self.stream = v;
        self
    }

    /// Cap (in traces) on the reader's reuse buffer when streaming; a
    /// batch ends at the first `BLOCK` boundary at or past the budget.
    /// Defaults to the `S2S_SNAPSHOT_BUDGET` knob. Clamped to ≥ 1.
    pub fn block_budget(mut self, n: usize) -> SnapshotOptions {
        self.block_budget = Some(n.max(1));
        self
    }

    fn budget(&self) -> usize {
        if self.stream {
            self.block_budget.unwrap_or_else(crate::env::snapshot_budget)
        } else {
            usize::MAX
        }
    }

    /// Opens a snapshot file as a [`SnapshotReader`].
    pub fn open(&self, path: &Path) -> io::Result<SnapshotReader> {
        self.open_reader(io::BufReader::new(std::fs::File::open(path)?))
    }

    /// Opens a snapshot from any byte stream as a [`SnapshotReader`].
    pub fn open_reader<R: Read>(&self, input: R) -> io::Result<SnapshotReader<R>> {
        SnapshotReader::new(input, self.lossy, self.budget())
    }

    /// Wraps a directory of per-shard `.snap` files (what the fabric
    /// writes under `S2S_SNAPSHOT_DIR`) as a [`ShardDir`]: shards sorted
    /// by trailing shard number (`shard-10` after `shard-2`), merged by
    /// streaming absorb. Errors `NotFound` if the directory holds no
    /// `.snap` files.
    pub fn open_dir(&self, dir: &Path) -> io::Result<ShardDir> {
        let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "snap"))
            .collect();
        if paths.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no .snap shards in {}", dir.display()),
            ));
        }
        paths.sort_by_key(|p| shard_sort_key(p));
        Ok(ShardDir { paths, options: self.clone() })
    }
}

/// Sort key for shard files: the trailing integer of the file stem (so
/// `shard-10` follows `shard-2`), then the stem itself for ties and
/// non-numbered names.
fn shard_sort_key(path: &Path) -> (u64, String) {
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
    let digits = stem.len() - stem.trim_end_matches(|c: char| c.is_ascii_digit()).len();
    let n = stem[stem.len() - digits..].parse().unwrap_or(u64::MAX);
    (n, stem.to_string())
}

/// A directory of per-shard snapshot files, opened via
/// [`SnapshotOptions::open_dir`]. `s2s_core::Analysis::new` accepts a
/// `ShardDir` directly and streams every shard through [`absorb_files`]'s
/// bounded-memory path.
#[derive(Clone, Debug)]
pub struct ShardDir {
    paths: Vec<std::path::PathBuf>,
    options: SnapshotOptions,
}

impl ShardDir {
    /// The shard files, in merge order.
    pub fn paths(&self) -> &[std::path::PathBuf] {
        &self.paths
    }

    /// The open options every shard is read with.
    pub fn options(&self) -> &SnapshotOptions {
        &self.options
    }

    /// Streams every shard into `store` — see [`absorb_files`].
    pub fn absorb_into(
        &self,
        store: &mut TraceStore,
    ) -> io::Result<(SnapshotReport, Vec<String>)> {
        absorb_files(store, &self.paths, &self.options)
    }
}

// ---------------------------------------------------------------------------
// SnapshotReader: the out-of-core segment walker
// ---------------------------------------------------------------------------

/// Walks a snapshot segment-by-segment: the interned address table and the
/// hop-sequence arena load once at open, then [`SnapshotReader::next_batch`]
/// decodes `BLOCK` segments into a bounded reuse buffer — resident bytes
/// are O(arena + one batch), never O(traces). Construct via
/// [`Snapshot::options`].
///
/// The batch buffer is itself a [`TraceStore`] sharing the shard's arenas,
/// so batch ids resolve exactly as the materialized store's would and
/// `TraceStore::absorb_maps`/`TraceStore::absorb_rows` merge batches
/// into another store byte-identically to a full-reopen `absorb`.
pub struct SnapshotReader<R: Read = io::BufReader<std::fs::File>> {
    input: R,
    lossy: bool,
    budget: usize,
    /// Arenas + the current batch's per-trace columns (cleared per batch,
    /// capacity retained).
    buf: TraceStore,
    /// A header read past the arena phase but not yet consumed (headers
    /// cannot be un-read).
    pending: Option<SegmentHeader>,
    sinks: Vec<String>,
    report: SnapshotReport,
    /// ADDR or SEQ was lost, so block ids cannot be trusted (validation
    /// would reject them anyway); count, don't load.
    poisoned: bool,
    done: bool,
    saw_end: bool,
    end_totals: Option<(u64, u64)>,
    peak_resident: usize,
}

impl<R: Read> SnapshotReader<R> {
    fn new(input: R, lossy: bool, budget: usize) -> io::Result<SnapshotReader<R>> {
        let mut reader = SnapshotReader {
            input,
            lossy,
            budget: budget.max(1),
            buf: TraceStore::new(),
            pending: None,
            sinks: Vec::new(),
            report: SnapshotReport::default(),
            poisoned: false,
            done: false,
            saw_end: false,
            end_totals: None,
            peak_resident: 0,
        };
        match read_prologue(&mut reader.input)? {
            Prologue::Ready => reader.load_arenas()?,
            Prologue::Empty => reader.mark_empty(),
        }
        reader.peak_resident = reader.buf.arena_bytes();
        reader.check_strict()?;
        Ok(reader)
    }

    fn mark_empty(&mut self) {
        self.report.empty = true;
        self.report.note("empty snapshot (no segments)".into());
        self.finish();
    }

    /// Seals the stream: no more segments will be consumed. Reconciles
    /// against the `END` totals (whole segments can vanish with a torn
    /// tail; the totals bound the loss exactly).
    fn finish(&mut self) {
        self.done = true;
        if !self.saw_end {
            self.report.torn = true;
        }
        if let Some((total_traces, total_sinks)) = self.end_totals {
            let seen = self.report.traces + self.report.skipped_traces;
            self.report.skipped_traces += (total_traces as usize).saturating_sub(seen);
            let seen_sinks = self.report.sinks + self.report.skipped_sinks;
            self.report.skipped_sinks += (total_sinks as usize).saturating_sub(seen_sinks);
        }
    }

    /// The arena phase: consumes leading `ADDR`/`SEQ` segments into the
    /// buffer's intern tables, then stashes the first trace-phase header.
    fn load_arenas(&mut self) -> io::Result<()> {
        let mut saw_any = false;
        loop {
            let header = match read_header(&mut self.input)? {
                HeaderRead::Ok(h) => h,
                HeaderRead::Eof => {
                    if saw_any {
                        self.finish();
                    } else {
                        // A bare prologue: nothing was ever written.
                        self.mark_empty();
                    }
                    return Ok(());
                }
                HeaderRead::Bad(msg) => {
                    // Framing is gone: without a trustworthy length there
                    // is no next boundary to resync to.
                    self.report.skipped_segments += 1;
                    self.report.note(msg);
                    self.finish();
                    return Ok(());
                }
            };
            saw_any = true;
            if header.tag != TAG_ADDR && header.tag != TAG_SEQ {
                self.pending = Some(header);
                return Ok(());
            }
            let payload = match read_payload(&mut self.input, header.len)? {
                Some(p) => p,
                None => {
                    self.report.skipped_segments += 1;
                    self.poisoned = true;
                    self.report
                        .note(format!("torn payload in segment tag {}", header.tag));
                    self.finish();
                    return Ok(());
                }
            };
            let outcome: Result<(), String> = if fnv64(&payload) != header.payload_fnv {
                Err("segment payload failed its checksum".into())
            } else if header.tag == TAG_ADDR {
                decode_addrs(&payload, header.count).map(|addrs| {
                    self.buf.addrs = addrs;
                })
            } else {
                decode_seqs(&payload, header.count, self.buf.addr_count()).map(
                    |(data, offsets)| {
                        self.buf.seq_data = data;
                        self.buf.seq_offsets = offsets;
                    },
                )
            };
            if let Err(msg) = outcome {
                self.report.skipped_segments += 1;
                self.poisoned = true;
                self.report.note(format!("segment tag {}: {msg}", header.tag));
            }
        }
    }

    /// Consumes exactly one segment (or seals the stream at EOF/damage).
    fn step(&mut self) -> io::Result<()> {
        let header = match self.pending.take() {
            Some(h) => h,
            None => match read_header(&mut self.input)? {
                HeaderRead::Ok(h) => h,
                HeaderRead::Eof => {
                    self.finish();
                    return Ok(());
                }
                HeaderRead::Bad(msg) => {
                    self.report.skipped_segments += 1;
                    self.report.note(msg);
                    self.finish();
                    return Ok(());
                }
            },
        };
        let payload = match read_payload(&mut self.input, header.len)? {
            Some(p) => p,
            None => {
                self.report.skipped_segments += 1;
                if header.tag == TAG_BLOCK {
                    self.report.skipped_traces += header.count as usize;
                } else if header.tag == TAG_SINK {
                    self.report.skipped_sinks += header.count as usize;
                }
                self.report.note(format!("torn payload in segment tag {}", header.tag));
                self.finish();
                return Ok(());
            }
        };
        let outcome: Result<(), String> = if fnv64(&payload) != header.payload_fnv {
            Err("segment payload failed its checksum".into())
        } else {
            match header.tag {
                TAG_BLOCK => {
                    if self.poisoned {
                        Err("block poisoned by an earlier arena loss".into())
                    } else {
                        decode_block(&mut self.buf, &payload, header.count)
                            .map(|()| self.report.traces += header.count as usize)
                    }
                }
                TAG_SINK => decode_sinks(&payload, header.count).map(|s| {
                    self.report.sinks += s.len();
                    self.sinks.extend(s);
                }),
                TAG_END => {
                    let mut c = Cursor::new(&payload);
                    match (c.u64(), c.u64()) {
                        (Ok(t), Ok(s)) => {
                            self.end_totals = Some((t, s));
                            self.saw_end = true;
                            Ok(())
                        }
                        _ => Err("malformed END segment".into()),
                    }
                }
                // The writer emits arenas before any block; an arena
                // segment showing up here means the framing lied, and the
                // ids already handed out cannot be retrofitted.
                TAG_ADDR | TAG_SEQ => Err("unexpected arena segment after trace blocks".into()),
                t => Err(format!("unknown segment tag {t}")),
            }
        };
        if let Err(msg) = outcome {
            self.report.skipped_segments += 1;
            match header.tag {
                TAG_BLOCK => self.report.skipped_traces += header.count as usize,
                TAG_SINK => self.report.skipped_sinks += header.count as usize,
                TAG_ADDR | TAG_SEQ => self.poisoned = true,
                _ => {}
            }
            self.report.note(format!("segment tag {}: {msg}", header.tag));
        }
        if self.saw_end {
            self.finish();
        }
        Ok(())
    }

    fn check_strict(&self) -> io::Result<()> {
        if self.lossy || self.report.clean() {
            return Ok(());
        }
        Err(self.damage_error())
    }

    fn damage_error(&self) -> io::Error {
        if self.report.empty {
            return io::Error::new(io::ErrorKind::InvalidData, "empty snapshot");
        }
        let detail = self
            .report
            .first_errors
            .first()
            .cloned()
            .unwrap_or_else(|| "torn snapshot".into());
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "corrupt snapshot: {} trace(s) and {} sink(s) lost ({detail})",
                self.report.skipped_traces, self.report.skipped_sinks
            ),
        )
    }

    /// The next batch of traces, or `None` when the stream is exhausted.
    ///
    /// The returned store shares the shard's arenas and holds this batch's
    /// rows only; it is valid until the next call (the buffer is reused).
    /// Batches cut at `BLOCK` boundaries: decoding stops at the first
    /// boundary at or past the budget, so a batch holds at most
    /// `budget + block − 1` traces. In strict mode the first damage is an
    /// error; in lossy mode it is counted in [`SnapshotReader::report`]
    /// (complete once this returns `None`).
    pub fn next_batch(&mut self) -> io::Result<Option<&TraceStore>> {
        self.buf.clear_traces();
        while !self.done && self.buf.len() < self.budget {
            self.step()?;
        }
        self.check_strict()?;
        if self.buf.is_empty() {
            return Ok(None);
        }
        self.peak_resident = self.peak_resident.max(self.buf.arena_bytes());
        Ok(Some(&self.buf))
    }

    /// Drains the remaining stream into a materialized [`Snapshot`] — the
    /// legacy whole-file open. On a fresh reader this is exactly what
    /// [`open_file`]/[`open_file_lossy`] return; intern indices are
    /// rebuilt, so the store keeps absorbing new records.
    pub fn into_snapshot(mut self) -> io::Result<(Snapshot, SnapshotReport)> {
        while !self.done {
            self.step()?;
        }
        self.check_strict()?;
        self.buf.rebuild_indices();
        Ok((Snapshot { store: self.buf, sinks: self.sinks }, self.report))
    }

    /// The arenas (plus the current batch): what annotation tables build
    /// against, and what `TraceStore::absorb_maps` interns from.
    pub fn arena(&self) -> &TraceStore {
        &self.buf
    }

    /// What the open has loaded/skipped so far. Totals are final once
    /// [`SnapshotReader::next_batch`] has returned `None`.
    pub fn report(&self) -> &SnapshotReport {
        &self.report
    }

    /// Sink-state lines seen so far (the writer puts `SINK` after every
    /// `BLOCK`, so these are complete once the stream is exhausted).
    pub fn sinks(&self) -> &[String] {
        &self.sinks
    }

    /// Takes ownership of the sink-state lines seen so far.
    pub fn take_sinks(&mut self) -> Vec<String> {
        std::mem::take(&mut self.sinks)
    }

    /// Resident bytes of the reuse buffer right now (arena + current
    /// batch).
    pub fn resident_bytes(&self) -> usize {
        self.buf.arena_bytes()
    }

    /// The high-water mark of [`SnapshotReader::resident_bytes`] across
    /// all batches — what the `persistence.out_of_core` bench asserts
    /// stays flat while file size grows.
    pub fn peak_resident_bytes(&self) -> usize {
        self.peak_resident
    }
}

/// Streams N per-shard snapshot files into `store`, holding at most one
/// shard's arena plus one batch in memory. Per shard: the arenas are
/// interned into `store` once (`TraceStore::absorb_maps` — id order,
/// exactly as a full-reopen `absorb` would), then every batch's rows are
/// appended through `TraceStore::absorb_rows`. The merged store is
/// byte-identical to reopening each shard fully and absorbing it, in the
/// same shard order. Returns the merged [`SnapshotReport`] and the
/// concatenated sink states (shard order preserved).
pub fn absorb_files<P: AsRef<Path>>(
    store: &mut TraceStore,
    paths: &[P],
    options: &SnapshotOptions,
) -> io::Result<(SnapshotReport, Vec<String>)> {
    let mut merged = SnapshotReport::default();
    let mut sinks = Vec::new();
    for p in paths {
        let mut reader = options.open(p.as_ref())?;
        let (addr_map, seq_map) = store.absorb_maps(reader.arena());
        while let Some(batch) = reader.next_batch()? {
            store.absorb_rows(batch, &addr_map, &seq_map);
        }
        merged.merge(reader.report());
        sinks.append(&mut reader.take_sinks());
    }
    Ok((merged, sinks))
}

/// Opens a snapshot from a reader, tolerating damage: torn or corrupt
/// segments degrade to counted skips in the [`SnapshotReport`]. Thin shim
/// over [`Snapshot::options`].
pub fn read_lossy<R: Read>(r: &mut R) -> io::Result<(Snapshot, SnapshotReport)> {
    Snapshot::options().lossy(true).open_reader(r)?.into_snapshot()
}

/// Opens a snapshot strictly: any damage — torn write, failed checksum,
/// invalid id — is an `InvalidData` error. The inverse of [`write()`].
/// Thin shim over [`Snapshot::options`].
pub fn read<R: Read>(r: &mut R) -> io::Result<Snapshot> {
    Ok(Snapshot::options().open_reader(r)?.into_snapshot()?.0)
}

/// Strictly opens a snapshot file. Shim over [`Snapshot::options`].
pub fn open_file(path: &Path) -> io::Result<Snapshot> {
    Ok(Snapshot::options().open(path)?.into_snapshot()?.0)
}

/// Lossily opens a snapshot file (damage degrades to counted skips).
/// Shim over [`Snapshot::options`].
pub fn open_file_lossy(path: &Path) -> io::Result<(Snapshot, SnapshotReport)> {
    Snapshot::options().lossy(true).open(path)?.into_snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{HopObs, TracerouteRecord};
    use proptest::prelude::*;
    use s2s_types::Protocol;
    use std::net::{Ipv4Addr, Ipv6Addr};

    fn rec(src: u32, t: u32, hops: &[(Option<&str>, Option<f64>)], reached: bool) -> TracerouteRecord {
        TracerouteRecord {
            src: ClusterId::new(src),
            dst: ClusterId::new(src + 1),
            proto: Protocol::V4,
            t: SimTime::from_minutes(t),
            hops: hops
                .iter()
                .map(|(a, r)| HopObs { addr: a.map(|s| s.parse().unwrap()), rtt_ms: *r })
                .collect(),
            reached,
            e2e_rtt_ms: reached.then_some(42.5),
            src_addr: Some("10.0.0.1".parse().unwrap()),
            dst_addr: reached.then(|| "10.9.0.1".parse().unwrap()),
        }
    }

    fn sample_store() -> TraceStore {
        let recs = vec![
            rec(0, 0, &[(Some("10.1.0.1"), Some(1.5)), (Some("10.2.0.1"), Some(2.5))], true),
            rec(0, 180, &[(Some("10.1.0.1"), Some(1.7)), (Some("10.2.0.1"), Some(2.2))], true),
            rec(1, 0, &[(Some("10.1.0.1"), Some(1.0)), (None, None)], false),
            rec(2, 0, &[], true),
            rec(3, 0, &[(Some("2600::9"), Some(8.0))], true),
        ];
        TraceStore::from_records(&recs)
    }

    fn snapshot_bytes(store: &TraceStore, sinks: &[String], block: usize) -> Vec<u8> {
        let mut buf = Vec::new();
        let n = write(&mut buf, store, sinks, block).unwrap();
        assert_eq!(n as usize, buf.len(), "write must report the bytes it wrote");
        buf
    }

    #[test]
    fn round_trips_records_sinks_and_interning() {
        let store = sample_store();
        let sinks = vec!["S|1|2|state".to_string(), "S|3|4|other".to_string()];
        for block in [1, 2, 4096] {
            let buf = snapshot_bytes(&store, &sinks, block);
            let snap = read(&mut buf.as_slice()).unwrap();
            assert_eq!(snap.store.to_records(), store.to_records());
            assert_eq!(snap.sinks, sinks);
            // The reopened arenas intern identically (stats compare equal).
            assert_eq!(snap.store.stats(), store.stats());
        }
    }

    #[test]
    fn reopened_store_keeps_interning_live() {
        // A reopened store is not read-only: pushing and absorbing must
        // keep consing against the rebuilt indices.
        let store = sample_store();
        let buf = snapshot_bytes(&store, &[], 2);
        let mut snap = read(&mut buf.as_slice()).unwrap();
        let extra = rec(0, 360, &[(Some("10.1.0.1"), Some(1.9)), (Some("10.2.0.1"), Some(2.0))], true);
        snap.store.push(&extra);
        let mut direct_recs = store.to_records();
        direct_recs.push(extra);
        let direct = TraceStore::from_records(&direct_recs);
        assert_eq!(snap.store.to_records(), direct.to_records());
        assert_eq!(snap.store.stats(), direct.stats(), "rebuilt indices must cons");
    }

    #[test]
    fn empty_store_round_trips() {
        let store = TraceStore::new();
        let buf = snapshot_bytes(&store, &[], 64);
        let snap = read(&mut buf.as_slice()).unwrap();
        assert!(snap.store.is_empty());
        assert!(snap.sinks.is_empty());
    }

    #[test]
    fn foreign_file_is_an_error_not_a_skip() {
        let mut garbage: &[u8] = b"T|1|2|4|0|1|*|*|*|\n";
        assert!(read_lossy(&mut garbage).is_err(), "bad magic loses everything");
        // A short file whose bytes DIVERGE from the magic is foreign too.
        let mut diverges: &[u8] = b"S2SX";
        assert!(read_lossy(&mut diverges).is_err());
    }

    #[test]
    fn empty_snapshot_is_a_distinct_counted_condition() {
        // Zero bytes, magic prefixes, a magic-only file, a truncated
        // version, and a bare prologue are all *empty snapshots*: lossy
        // opens succeed with `report.empty` (still unclean, so reproduce
        // degrades), strict opens fail with a distinct message.
        let cases: &[&[u8]] = &[
            b"",
            b"S2SN",
            b"S2SNAP01",
            b"S2SNAP01\x01",
            b"S2SNAP01\x01\x00\x00\x00",
        ];
        for &case in cases {
            let (snap, report) = read_lossy(&mut &case[..]).unwrap();
            assert!(report.empty, "{case:?} is an empty snapshot");
            assert!(report.torn, "empty implies torn");
            assert!(!report.clean());
            assert_eq!(report.traces, 0);
            assert!(snap.store.is_empty());
            let err = read(&mut &case[..]).unwrap_err();
            assert!(
                err.to_string().contains("empty snapshot"),
                "strict message for {case:?}: {err}"
            );
        }
        // A non-empty snapshot never reports empty.
        let buf = snapshot_bytes(&sample_store(), &[], 2);
        let (_, report) = read_lossy(&mut buf.as_slice()).unwrap();
        assert!(!report.empty);
    }

    #[test]
    fn future_version_is_refused() {
        let store = sample_store();
        let mut buf = snapshot_bytes(&store, &[], 64);
        buf[8] = 99; // version field
        let err = read(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn truncation_degrades_to_counted_skips() {
        let store = sample_store();
        let total = store.len();
        let buf = snapshot_bytes(&store, &["S|sink".to_string()], 2);
        // Cutting anywhere must never panic, and the books must balance:
        // loaded + skipped == total whenever the END totals were readable
        // (they live at the tail, so truncated files undercount instead).
        // Cuts at or before the 12-byte prologue leave a valid prefix of
        // the magic, which is the distinct empty-snapshot condition.
        for cut in 0..buf.len() {
            let (snap, report) = read_lossy(&mut &buf[..cut]).unwrap();
            assert!(report.torn, "a cut at {cut} is a torn snapshot");
            assert_eq!(report.empty, cut <= 12, "empty iff cut inside the prologue ({cut})");
            assert_eq!(snap.store.len(), report.traces);
            assert!(report.traces + report.skipped_traces <= total);
            let _ = snap.store.to_records(); // loaded prefix stays readable
        }
        let (_, clean) = read_lossy(&mut buf.as_slice()).unwrap();
        assert!(clean.clean());
        assert_eq!(clean.traces, total);
    }

    #[test]
    fn bit_flips_never_panic_and_never_silently_accept() {
        let store = sample_store();
        let records = store.to_records();
        let sinks = vec!["S|sink-state-line".to_string()];
        let buf = snapshot_bytes(&store, &sinks, 2);
        for pos in 12..buf.len() {
            let mut mangled = buf.clone();
            mangled[pos] ^= 0x41;
            match read_lossy(&mut mangled.as_slice()) {
                Ok((snap, report)) => {
                    // Every loaded trace must be one the writer wrote —
                    // a flipped byte may lose data but never invent it.
                    for v in snap.store.iter() {
                        let r = v.to_record();
                        assert!(
                            records.contains(&r),
                            "flip at {pos} invented a record: {r:?}"
                        );
                    }
                    assert!(
                        report.clean() || report.traces <= records.len(),
                        "flip at {pos}: implausible report {report:?}"
                    );
                }
                // A flip inside the magic/version prologue is a foreign
                // file, which is an error by policy.
                Err(_) => assert!(pos < 12 + HEADER_BYTES + buf.len()),
            }
        }
    }

    #[test]
    fn corrupt_block_skips_exactly_its_traces() {
        let store = sample_store();
        let buf = snapshot_bytes(&store, &[], 2);
        // Find the first BLOCK segment and flip one payload byte. Segments:
        // prologue(12) + ADDR + SEQ + BLOCK...; walk headers to locate it.
        let mut pos = 12usize;
        let mut block_payload_at = None;
        while pos + HEADER_BYTES <= buf.len() {
            let tag = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap());
            let count = u64::from_le_bytes(buf[pos + 4..pos + 12].try_into().unwrap());
            let len =
                u64::from_le_bytes(buf[pos + 12..pos + 20].try_into().unwrap()) as usize;
            if tag == TAG_BLOCK {
                block_payload_at = Some((pos + HEADER_BYTES, count as usize));
                break;
            }
            pos += HEADER_BYTES + len;
        }
        let (payload_at, block_count) = block_payload_at.expect("snapshot has blocks");
        let mut mangled = buf.clone();
        mangled[payload_at] ^= 0xFF;
        let (snap, report) = read_lossy(&mut mangled.as_slice()).unwrap();
        assert_eq!(report.skipped_traces, block_count);
        assert_eq!(report.traces, store.len() - block_count);
        assert_eq!(snap.store.len(), report.traces);
        assert!(!report.clean());
        assert_eq!(report.coverage().to_string(), format!(
            "{}/{} ({:.1}%)",
            report.traces,
            store.len(),
            100.0 * report.traces as f64 / store.len() as f64
        ));
    }

    #[test]
    fn streamed_batches_reassemble_the_store_at_every_budget() {
        let store = sample_store();
        let sinks = vec!["S|1|2|state".to_string()];
        let buf = snapshot_bytes(&store, &sinks, 2);
        for budget in [1usize, 2, 3, 4, 5, 4096] {
            let mut reader = Snapshot::options()
                .stream(true)
                .block_budget(budget)
                .open_reader(buf.as_slice())
                .unwrap();
            let floor = reader.resident_bytes();
            let mut records = Vec::new();
            let mut batches = 0;
            while let Some(batch) = reader.next_batch().unwrap() {
                // A batch ends at the first BLOCK boundary at or past the
                // budget (block size 2 here).
                assert!(batch.len() <= budget + 1, "budget {budget}: {}", batch.len());
                records.extend(batch.iter().map(|v| v.to_record()));
                batches += 1;
            }
            assert_eq!(records, store.to_records(), "budget {budget}");
            assert_eq!(reader.sinks(), &sinks[..], "budget {budget}");
            assert!(reader.report().clean(), "budget {budget}");
            assert_eq!(reader.report().traces, store.len());
            assert!(batches >= store.len().div_ceil(budget.next_multiple_of(2)));
            assert!(reader.peak_resident_bytes() >= floor);
        }
    }

    #[test]
    fn unstreamed_open_is_one_batch() {
        let store = sample_store();
        let buf = snapshot_bytes(&store, &[], 2);
        let mut reader = Snapshot::options().open_reader(buf.as_slice()).unwrap();
        let first = reader.next_batch().unwrap().expect("everything in one batch");
        assert_eq!(first.len(), store.len());
        assert!(reader.next_batch().unwrap().is_none());
    }

    #[test]
    fn into_snapshot_matches_the_legacy_read() {
        let store = sample_store();
        let sinks = vec!["S|a".to_string(), "S|b".to_string()];
        let buf = snapshot_bytes(&store, &sinks, 2);
        let (snap, report) = Snapshot::options()
            .lossy(true)
            .open_reader(buf.as_slice())
            .unwrap()
            .into_snapshot()
            .unwrap();
        assert!(report.clean());
        assert_eq!(snap.store.to_records(), store.to_records());
        assert_eq!(snap.store.stats(), store.stats());
        assert_eq!(snap.sinks, sinks);
    }

    #[test]
    fn streamed_lossy_damage_still_degrades_to_counted_skips() {
        // Flip a byte in the first BLOCK payload and stream with a tiny
        // budget: the damaged block's traces are skipped, the rest load.
        let store = sample_store();
        let buf = snapshot_bytes(&store, &[], 2);
        let mut pos = 12usize;
        let payload_at = loop {
            let tag = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap());
            let len =
                u64::from_le_bytes(buf[pos + 12..pos + 20].try_into().unwrap()) as usize;
            if tag == TAG_BLOCK {
                break pos + HEADER_BYTES;
            }
            pos += HEADER_BYTES + len;
        };
        let mut mangled = buf.clone();
        mangled[payload_at] ^= 0xFF;
        let mut reader = Snapshot::options()
            .lossy(true)
            .stream(true)
            .block_budget(1)
            .open_reader(mangled.as_slice())
            .unwrap();
        let mut loaded = 0;
        while let Some(batch) = reader.next_batch().unwrap() {
            loaded += batch.len();
        }
        assert_eq!(reader.report().skipped_traces, 2);
        assert_eq!(reader.report().traces, store.len() - 2);
        assert_eq!(loaded, store.len() - 2);
        // Strict streaming errors on the same input.
        let mut strict = Snapshot::options()
            .stream(true)
            .block_budget(1)
            .open_reader(mangled.as_slice())
            .unwrap();
        let err = loop {
            match strict.next_batch() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("strict stream accepted a corrupt block"),
                Err(e) => break e,
            }
        };
        assert!(err.to_string().contains("corrupt snapshot"));
    }

    fn shard_tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "s2s-snap-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn absorb_files_matches_full_reopen_absorb() {
        let dir = shard_tmp_dir("absorb");
        let shards: Vec<TraceStore> = (0..3)
            .map(|k| {
                let recs: Vec<_> = (0..4)
                    .map(|i| {
                        rec(k * 2 + i, i, &[(Some("10.1.0.1"), Some(1.0 + f64::from(i)))], true)
                    })
                    .collect();
                TraceStore::from_records(&recs)
            })
            .collect();
        let mut paths = Vec::new();
        for (k, shard) in shards.iter().enumerate() {
            let path = dir.join(format!("shard-{k}.snap"));
            write_file(&path, shard, &[format!("S|shard{k}")]).unwrap();
            paths.push(path);
        }
        // Reference: full reopen + absorb, in shard order.
        let mut full = TraceStore::new();
        for path in &paths {
            let snap = open_file(path).unwrap();
            full.absorb(&snap.store);
        }
        // Streaming absorb with a deliberately tiny budget.
        let mut streamed = TraceStore::new();
        let options = Snapshot::options().lossy(true).stream(true).block_budget(1);
        let (report, sinks) = absorb_files(&mut streamed, &paths, &options).unwrap();
        assert!(report.clean());
        assert_eq!(report.traces, full.len());
        assert_eq!(sinks, vec!["S|shard0", "S|shard1", "S|shard2"]);
        assert_eq!(streamed.to_records(), full.to_records());
        assert_eq!(streamed.stats(), full.stats());
        // The ShardDir front door resolves and orders the same files.
        let shard_dir = options.open_dir(&dir).unwrap();
        assert_eq!(shard_dir.paths(), &paths[..]);
        let mut via_dir = TraceStore::new();
        let (dir_report, dir_sinks) = shard_dir.absorb_into(&mut via_dir).unwrap();
        assert!(dir_report.clean());
        assert_eq!(dir_sinks.len(), 3);
        assert_eq!(via_dir.to_records(), full.to_records());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_dirs_sort_numerically_and_reject_empties() {
        let dir = shard_tmp_dir("sort");
        let store = sample_store();
        for k in [0usize, 2, 10] {
            write_file(&dir.join(format!("shard-{k}.snap")), &store, &[]).unwrap();
        }
        std::fs::write(dir.join("notes.txt"), b"ignored").unwrap();
        let shard_dir = Snapshot::options().open_dir(&dir).unwrap();
        let names: Vec<_> = shard_dir
            .paths()
            .iter()
            .map(|p| p.file_name().unwrap().to_str().unwrap().to_string())
            .collect();
        assert_eq!(names, ["shard-0.snap", "shard-2.snap", "shard-10.snap"]);
        let empty = shard_tmp_dir("sort-empty");
        let err = Snapshot::options().open_dir(&empty).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&empty);
    }

    /// Raw material for one arbitrary record, mirroring the store's
    /// proptest corpus (the offline shim has no `prop_map`).
    type RawRecord = (u32, u32, u32, Vec<(u8, u32, f64)>, u8, f64);

    fn arb_records() -> impl Strategy<Value = Vec<RawRecord>> {
        let hop = (0u8..4, any::<u32>(), 0.0f64..1e4);
        let record = (
            0u32..8,
            0u32..8,
            0u32..100_000,
            proptest::collection::vec(hop, 0..8),
            0u8..32,
            0.0f64..1e4,
        );
        proptest::collection::vec(record, 0..24)
    }

    fn build_records(raw: &[RawRecord]) -> Vec<TracerouteRecord> {
        raw.iter()
            .map(|&(src, dst, t, ref hops, flags, e2e)| TracerouteRecord {
                src: ClusterId::new(src),
                dst: ClusterId::new(dst),
                proto: if flags & 2 != 0 { Protocol::V6 } else { Protocol::V4 },
                t: SimTime::from_minutes(t),
                hops: hops
                    .iter()
                    .map(|&(tag, a, rtt)| match tag {
                        0 => HopObs { addr: None, rtt_ms: None },
                        1 => HopObs {
                            addr: Some(IpAddr::V4(Ipv4Addr::from(a))),
                            rtt_ms: Some(rtt),
                        },
                        2 => HopObs {
                            addr: Some(IpAddr::V6(Ipv6Addr::from(
                                u128::from(a) << 64 | 0x2600,
                            ))),
                            rtt_ms: Some(rtt),
                        },
                        _ => HopObs {
                            addr: Some(IpAddr::V4(Ipv4Addr::from(a % 16))),
                            rtt_ms: None,
                        },
                    })
                    .collect(),
                reached: flags & 1 != 0,
                e2e_rtt_ms: (flags & 4 != 0).then_some(e2e),
                src_addr: (flags & 8 != 0).then(|| IpAddr::V4(Ipv4Addr::from(src << 8 | 1))),
                dst_addr: (flags & 16 != 0).then(|| IpAddr::V4(Ipv4Addr::from(dst << 8 | 2))),
            })
            .collect()
    }

    proptest! {
        /// `from_records → write → read → to_records` is the identity,
        /// None hops/RTTs, NaN-free presence bitsets, both families and
        /// absent endpoints included — at several block sizes.
        #[test]
        fn prop_snapshot_round_trip(raw in arb_records(), block in 1usize..8) {
            let recs = build_records(&raw);
            let store = TraceStore::from_records(&recs);
            let buf = snapshot_bytes(&store, &[], block);
            let snap = read(&mut buf.as_slice()).unwrap();
            prop_assert_eq!(snap.store.to_records(), recs);
            prop_assert_eq!(snap.store.stats(), store.stats());
        }

        /// Truncating at an arbitrary point degrades to counted skips:
        /// never a panic, loaded is a prefix, and the accounting is sane.
        #[test]
        fn prop_truncation_is_counted(raw in arb_records(), frac in 0.0f64..1.0) {
            let recs = build_records(&raw);
            let store = TraceStore::from_records(&recs);
            let buf = snapshot_bytes(&store, &[], 3);
            let cut = 12 + ((buf.len() - 12) as f64 * frac) as usize;
            let (snap, report) = read_lossy(&mut &buf[..cut]).unwrap();
            prop_assert_eq!(snap.store.len(), report.traces);
            prop_assert!(report.traces + report.skipped_traces <= recs.len());
            let loaded = snap.store.to_records();
            prop_assert_eq!(&loaded[..], &recs[..loaded.len()], "loaded must be a prefix");
        }

        /// Arbitrary byte flips: the lossy reader must never panic, and
        /// whatever loads must be records the writer actually wrote.
        #[test]
        fn prop_bit_flips_degrade(
            raw in arb_records(),
            flips in proptest::collection::vec((12usize..65536, 1u8..255), 1..6),
        ) {
            let recs = build_records(&raw);
            let store = TraceStore::from_records(&recs);
            let buf = snapshot_bytes(&store, &[], 2);
            let mut mangled = buf.clone();
            for &(pos, x) in &flips {
                let pos = 12 + (pos - 12) % (buf.len() - 12).max(1);
                mangled[pos.min(buf.len() - 1)] ^= x;
            }
            if let Ok((snap, report)) = read_lossy(&mut mangled.as_slice()) {
                prop_assert_eq!(snap.store.len(), report.traces);
                for v in snap.store.iter() {
                    prop_assert!(recs.contains(&v.to_record()));
                }
            }
        }
    }
}
