//! Binary columnar snapshots: the on-disk twin of [`TraceStore`].
//!
//! The `|`-record archive ([`crate::dataset`]) is the *interchange* form —
//! human-greppable, line-oriented, re-parsed at microseconds per line. At
//! the paper's scale (~2.6 B traceroutes) that re-parse is the dominant
//! cost of every analysis, because the text form stores each hop sequence
//! once per trace and re-interns everything on import. A snapshot instead
//! persists the store's *arenas*: the interned address table and the
//! hash-consed sequence arena are written once per **distinct** value, and
//! the per-trace columns are written as raw little-endian arrays that load
//! back with bulk copies — so [`read`] runs in O(distinct-data + column
//! bytes), not O(lines × fields), and the reopened store is byte-identical
//! to the one that was saved ([`TraceStore::to_records`] agrees exactly,
//! proptest-pinned).
//!
//! ## Layout (version 1)
//!
//! ```text
//! magic  "S2SNAP01"                                  8 bytes
//! version u32                                        4 bytes
//! segment*                                           until END
//! ```
//!
//! Every segment is length-prefixed and independently checksummed:
//!
//! ```text
//! tag         u32    ADDR=1 SEQ=2 BLOCK=3 SINK=4 END=5
//! count       u64    records in this segment (traces for BLOCK)
//! len         u64    payload bytes
//! payload_fnv u64    FNV-1a over the payload
//! header_fnv  u64    FNV-1a over the 28 header bytes above
//! payload     len bytes
//! ```
//!
//! * `ADDR` — the interned address table, id order: one tag byte (4 or 6)
//!   plus the 4- or 16-byte address per entry.
//! * `SEQ` — the hop-sequence arena: the flat `u32` id array plus the
//!   per-sequence end offsets.
//! * `BLOCK` — a batch of `S2S_SNAPSHOT_BLOCK` traces (default
//!   [`DEFAULT_BLOCK_TRACES`]): every per-trace column as a raw array,
//!   presence/boolean bitsets packed per block, per-trace hop counts, and
//!   the block's flat hop-RTT slots. Blocks are the unit of loss: a torn
//!   or bit-flipped block degrades to `count` skipped traces, everything
//!   else still loads.
//! * `SINK` — serialized [`StreamSink`](crate::stream::StreamSink) state
//!   lines (bit-exact strings, PR 5), so a campaign's sketch/sink results
//!   ride in the same file and reopen without replay.
//! * `END` — the totals (traces, sinks). A snapshot without its `END`
//!   segment was torn mid-write.
//!
//! ## Corruption policy
//!
//! [`read`] is strict: the first bad byte is an error. [`read_lossy`]
//! mirrors [`crate::dataset::read_traceroutes_lossy`]: damage degrades to
//! *counted* skips, never a panic and never silent acceptance. A corrupt
//! `BLOCK` skips exactly `count` traces; a corrupt `SINK` segment skips
//! its `count` states; a corrupt `ADDR`/`SEQ` segment poisons every
//! subsequent block (their ids would dangle) so those blocks are counted
//! skipped too; a header that fails its own checksum ends the scan (framing
//! is lost) and the `END` totals — when they were seen — still bound how
//! much was lost. Every decoded id is range-checked before it enters the
//! store, so a checksum collision cannot plant an out-of-bounds index.

use crate::store::TraceStore;
use s2s_types::{ClusterId, Coverage, SimTime};
use std::io::{self, Read, Write};
use std::net::IpAddr;
use std::path::Path;

/// File magic: identifies a snapshot regardless of the version field.
pub const MAGIC: &[u8; 8] = b"S2SNAP01";
/// Current format version (bump on any layout change).
pub const VERSION: u32 = 1;
/// Default traces per `BLOCK` segment (the `S2S_SNAPSHOT_BLOCK` knob).
pub const DEFAULT_BLOCK_TRACES: usize = 4096;

const TAG_ADDR: u32 = 1;
const TAG_SEQ: u32 = 2;
const TAG_BLOCK: u32 = 3;
const TAG_SINK: u32 = 4;
const TAG_END: u32 = 5;

const HEADER_BYTES: usize = 36;

/// The segment checksum: FNV-1a folded eight bytes at a time (the tail
/// byte-wise), one multiply per word instead of per byte. Any change
/// confined to a single word is always detected — xor-then-multiply by
/// an odd prime is injective in the accumulator — and payload checksum
/// cost stays ~1/8th of canonical FNV on multi-megabyte snapshots.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = crate::fabric::FNV64_OFFSET;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let w = u64::from_le_bytes(c.try_into().unwrap());
        h = (h ^ w).wrapping_mul(0x100000001b3);
    }
    crate::fabric::fnv64_bytes(h, chunks.remainder())
}

/// A reopened snapshot: the columnar store plus any sink-state lines that
/// rode along. `s2s_core`'s `Analysis::new` accepts `&Snapshot` directly
/// (delegating to the store), so a campaign's output directory is an
/// analysis input without any line re-import.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// The reopened columnar store — byte-identical to the saved one.
    pub store: TraceStore,
    /// Serialized sink states ([`crate::stream::StreamSink::save`] lines),
    /// in saved order, bit-exact.
    pub sinks: Vec<String>,
}

/// What a lossy open did: how much loaded, how much was skipped, and the
/// first few reasons why — the snapshot counterpart of
/// [`crate::dataset::ImportReport`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SnapshotReport {
    /// Traces loaded into the store.
    pub traces: usize,
    /// Traces lost to corrupt, torn, or poisoned segments.
    pub skipped_traces: usize,
    /// Sink states loaded.
    pub sinks: usize,
    /// Sink states lost to corrupt or torn segments.
    pub skipped_sinks: usize,
    /// Segments that failed their checksum or validation.
    pub skipped_segments: usize,
    /// The stream ended before a valid `END` segment (torn write).
    pub torn: bool,
    /// The first [`SnapshotReport::MAX_SAMPLED_ERRORS`] damage reasons.
    pub first_errors: Vec<String>,
}

impl SnapshotReport {
    /// How many damage reasons a report keeps verbatim.
    pub const MAX_SAMPLED_ERRORS: usize = 8;

    fn note(&mut self, msg: String) {
        if self.first_errors.len() < Self::MAX_SAMPLED_ERRORS {
            self.first_errors.push(msg);
        }
    }

    /// Trace coverage of the snapshot: loaded over (loaded + skipped).
    pub fn coverage(&self) -> Coverage {
        Coverage::new(self.traces, self.traces + self.skipped_traces)
    }

    /// Whether the open lost nothing.
    pub fn clean(&self) -> bool {
        self.skipped_traces == 0
            && self.skipped_sinks == 0
            && self.skipped_segments == 0
            && !self.torn
    }

    /// Publishes the open's outcome as `snapshot.*` gauges.
    pub fn publish(&self, registry: &s2s_obs::Registry) {
        registry.gauge("snapshot.traces").set(self.traces as u64);
        registry.gauge("snapshot.skipped_traces").set(self.skipped_traces as u64);
        registry.gauge("snapshot.sinks").set(self.sinks as u64);
        registry.gauge("snapshot.skipped_sinks").set(self.skipped_sinks as u64);
        registry.gauge("snapshot.skipped_segments").set(self.skipped_segments as u64);
        registry.gauge("snapshot.torn").set(u64::from(self.torn));
    }
}

// ---------------------------------------------------------------------------
// Little-endian encode helpers (the format is LE on every platform)
// ---------------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// A bounds-checked little-endian cursor over a decoded payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(e) => {
                let s = &self.buf[self.pos..e];
                self.pos = e;
                Ok(s)
            }
            None => Err("payload truncated".into()),
        }
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Bulk-reads `n` u32s as one bounds check + a chunked copy — the
    /// column fast path (per-element `u32()` pays a checked take each).
    fn u32s(&mut self, n: usize) -> Result<Vec<u32>, String> {
        let bytes = self.take(n.checked_mul(4).ok_or("column length overflow")?)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Bulk-reads `n` bit-encoded f64s (same fast path as [`Self::u32s`]).
    fn f64s(&mut self, n: usize) -> Result<Vec<f64>, String> {
        let bytes = self.take(n.checked_mul(8).ok_or("column length overflow")?)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
            .collect())
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Packs `n` bits drawn from `bit(i)` into bytes, LSB-first.
fn pack_bits(buf: &mut Vec<u8>, n: usize, bit: impl Fn(usize) -> bool) {
    let mut byte = 0u8;
    for i in 0..n {
        if bit(i) {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            buf.push(byte);
            byte = 0;
        }
    }
    if !n.is_multiple_of(8) {
        buf.push(byte);
    }
}

/// Unpacks `n` LSB-first bits from a cursor.
fn unpack_bits(c: &mut Cursor<'_>, n: usize) -> Result<Vec<bool>, String> {
    let bytes = c.take(n.div_ceil(8))?;
    Ok((0..n).map(|i| bytes[i / 8] >> (i % 8) & 1 == 1).collect())
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_segment<W: Write>(
    w: &mut W,
    tag: u32,
    count: u64,
    payload: &[u8],
) -> io::Result<u64> {
    let mut header = Vec::with_capacity(HEADER_BYTES);
    put_u32(&mut header, tag);
    put_u64(&mut header, count);
    put_u64(&mut header, payload.len() as u64);
    put_u64(&mut header, fnv64(payload));
    let hfnv = fnv64(&header);
    put_u64(&mut header, hfnv);
    w.write_all(&header)?;
    w.write_all(payload)?;
    Ok((header.len() + payload.len()) as u64)
}

fn encode_addr(buf: &mut Vec<u8>, addr: IpAddr) {
    match addr {
        IpAddr::V4(a) => {
            buf.push(4);
            buf.extend_from_slice(&a.octets());
        }
        IpAddr::V6(a) => {
            buf.push(6);
            buf.extend_from_slice(&a.octets());
        }
    }
}

fn encode_block(store: &TraceStore, range: std::ops::Range<usize>) -> Vec<u8> {
    let n = range.len();
    let hop_base = store.rtt_offsets[range.start] as usize;
    let hop_end = store.rtt_offsets[range.end] as usize;
    let n_hops = hop_end - hop_base;
    let mut buf = Vec::with_capacity(n * 44 + n_hops * 9 + 32);
    for i in range.clone() {
        put_u32(&mut buf, store.srcs[i].0);
    }
    for i in range.clone() {
        put_u32(&mut buf, store.dsts[i].0);
    }
    for i in range.clone() {
        put_u32(&mut buf, store.times[i].0);
    }
    for i in range.clone() {
        put_u32(&mut buf, store.seqs[i]);
    }
    for i in range.clone() {
        put_u32(&mut buf, store.src_addrs[i]);
    }
    for i in range.clone() {
        put_u32(&mut buf, store.dst_addrs[i]);
    }
    for i in range.clone() {
        put_u64(&mut buf, store.e2e[i].to_bits());
    }
    pack_bits(&mut buf, n, |k| store.e2e_some.get(range.start + k));
    pack_bits(&mut buf, n, |k| store.reached.get(range.start + k));
    pack_bits(&mut buf, n, |k| store.proto_v6.get(range.start + k));
    for i in range.clone() {
        let hops = store.rtt_offsets[i + 1] - store.rtt_offsets[i];
        put_u32(&mut buf, hops);
    }
    put_u64(&mut buf, n_hops as u64);
    for k in hop_base..hop_end {
        put_u64(&mut buf, store.rtts[k].to_bits());
    }
    pack_bits(&mut buf, n_hops, |k| store.rtt_some.get(hop_base + k));
    buf
}

/// Writes a snapshot of `store` (plus optional serialized sink states) with
/// `block_traces` traces per `BLOCK` segment. Returns the bytes written.
pub fn write<W: Write>(
    w: &mut W,
    store: &TraceStore,
    sinks: &[String],
    block_traces: usize,
) -> io::Result<u64> {
    let block_traces = block_traces.max(1);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    let mut written = (MAGIC.len() + 4) as u64;

    let mut addr_buf = Vec::new();
    for &a in store.addrs() {
        encode_addr(&mut addr_buf, a);
    }
    written += write_segment(w, TAG_ADDR, store.addr_count() as u64, &addr_buf)?;

    let mut seq_buf = Vec::new();
    put_u64(&mut seq_buf, store.seq_data.len() as u64);
    for &d in &store.seq_data {
        put_u32(&mut seq_buf, d);
    }
    // End offsets only: offsets[0] is always 0.
    for &o in &store.seq_offsets[1..] {
        put_u32(&mut seq_buf, o);
    }
    written += write_segment(w, TAG_SEQ, store.seq_count() as u64, &seq_buf)?;

    let mut start = 0;
    while start < store.len() {
        let end = (start + block_traces).min(store.len());
        let payload = encode_block(store, start..end);
        written += write_segment(w, TAG_BLOCK, (end - start) as u64, &payload)?;
        start = end;
    }

    if !sinks.is_empty() {
        let mut sink_buf = Vec::new();
        for s in sinks {
            put_u32(&mut sink_buf, s.len() as u32);
            sink_buf.extend_from_slice(s.as_bytes());
        }
        written += write_segment(w, TAG_SINK, sinks.len() as u64, &sink_buf)?;
    }

    let mut end_buf = Vec::new();
    put_u64(&mut end_buf, store.len() as u64);
    put_u64(&mut end_buf, sinks.len() as u64);
    written += write_segment(w, TAG_END, store.len() as u64, &end_buf)?;
    w.flush()?;
    Ok(written)
}

/// [`write()`] to a file path, block size from the `S2S_SNAPSHOT_BLOCK` knob.
/// The file is written to a `.tmp` sibling and renamed into place, so a
/// crash mid-write leaves no half-snapshot under the final name.
pub fn write_file(path: &Path, store: &TraceStore, sinks: &[String]) -> io::Result<u64> {
    let tmp = path.with_extension("snap.tmp");
    let mut f = io::BufWriter::new(std::fs::File::create(&tmp)?);
    let bytes = write(&mut f, store, sinks, crate::env::snapshot_block())?;
    f.into_inner().map_err(|e| e.into_error())?.sync_all()?;
    std::fs::rename(&tmp, path)?;
    Ok(bytes)
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

struct SegmentHeader {
    tag: u32,
    count: u64,
    len: u64,
    payload_fnv: u64,
}

enum HeaderRead {
    Ok(SegmentHeader),
    /// Clean EOF exactly at a segment boundary.
    Eof,
    /// Damage: torn header bytes or a failed header checksum.
    Bad(String),
}

fn read_header<R: Read>(r: &mut R) -> io::Result<HeaderRead> {
    let mut buf = [0u8; HEADER_BYTES];
    let mut got = 0;
    while got < HEADER_BYTES {
        let n = r.read(&mut buf[got..])?;
        if n == 0 {
            return Ok(if got == 0 {
                HeaderRead::Eof
            } else {
                HeaderRead::Bad(format!("torn segment header ({got} of {HEADER_BYTES} bytes)"))
            });
        }
        got += n;
    }
    let stored_hfnv = u64::from_le_bytes(buf[28..36].try_into().unwrap());
    if fnv64(&buf[..28]) != stored_hfnv {
        return Ok(HeaderRead::Bad("segment header failed its checksum".into()));
    }
    Ok(HeaderRead::Ok(SegmentHeader {
        tag: u32::from_le_bytes(buf[0..4].try_into().unwrap()),
        count: u64::from_le_bytes(buf[4..12].try_into().unwrap()),
        len: u64::from_le_bytes(buf[12..20].try_into().unwrap()),
        payload_fnv: u64::from_le_bytes(buf[20..28].try_into().unwrap()),
    }))
}

/// Reads exactly `len` payload bytes; `Ok(None)` marks a torn tail.
fn read_payload<R: Read>(r: &mut R, len: u64) -> io::Result<Option<Vec<u8>>> {
    let len = len as usize;
    let mut buf = vec![0u8; len];
    let mut got = 0;
    while got < len {
        let n = r.read(&mut buf[got..])?;
        if n == 0 {
            return Ok(None);
        }
        got += n;
    }
    Ok(Some(buf))
}

fn decode_addrs(payload: &[u8], count: u64) -> Result<Vec<IpAddr>, String> {
    let mut c = Cursor::new(payload);
    let mut addrs = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let addr = match c.u8()? {
            4 => IpAddr::from(<[u8; 4]>::try_from(c.take(4)?).unwrap()),
            6 => IpAddr::from(<[u8; 16]>::try_from(c.take(16)?).unwrap()),
            t => return Err(format!("bad address family tag {t}")),
        };
        addrs.push(addr);
    }
    if !c.done() {
        return Err("trailing bytes after address table".into());
    }
    Ok(addrs)
}

fn decode_seqs(
    payload: &[u8],
    count: u64,
    addr_count: usize,
) -> Result<(Vec<u32>, Vec<u32>), String> {
    let mut c = Cursor::new(payload);
    let data_len = c.u64()? as usize;
    let mut data = Vec::with_capacity(data_len);
    for _ in 0..data_len {
        let id = c.u32()?;
        if id != crate::store::NO_ADDR && id as usize >= addr_count {
            return Err(format!("hop address id {id} out of range"));
        }
        data.push(id);
    }
    let mut offsets = Vec::with_capacity(count as usize + 1);
    offsets.push(0u32);
    for _ in 0..count {
        let end = c.u32()?;
        if (end as usize) < *offsets.last().unwrap() as usize || end as usize > data_len {
            return Err("sequence offsets not monotonic".into());
        }
        offsets.push(end);
    }
    if *offsets.last().unwrap() as usize != data_len {
        return Err("sequence arena length mismatch".into());
    }
    if !c.done() {
        return Err("trailing bytes after sequence arena".into());
    }
    Ok((data, offsets))
}

/// Decodes one trace block and appends it to `store`. Validates every id
/// against the already-loaded arenas before anything is pushed, so a
/// failed block leaves the store untouched.
fn decode_block(store: &mut TraceStore, payload: &[u8], count: u64) -> Result<(), String> {
    let n = count as usize;
    let mut c = Cursor::new(payload);
    let srcs = c.u32s(n)?;
    let dsts = c.u32s(n)?;
    let times = c.u32s(n)?;
    let seqs = c.u32s(n)?;
    let src_addrs = c.u32s(n)?;
    let dst_addrs = c.u32s(n)?;
    let e2e = c.f64s(n)?;
    let e2e_some = unpack_bits(&mut c, n)?;
    let reached = unpack_bits(&mut c, n)?;
    let proto_v6 = unpack_bits(&mut c, n)?;
    let hop_counts = c.u32s(n)?;
    let n_hops = c.u64()? as usize;
    if hop_counts.iter().map(|&h| h as usize).sum::<usize>() != n_hops {
        return Err("hop counts disagree with the block's hop total".into());
    }
    let rtts = c.f64s(n_hops)?;
    let rtt_some = unpack_bits(&mut c, n_hops)?;
    if !c.done() {
        return Err("trailing bytes after trace block".into());
    }
    let seq_count = store.seq_count() as u32;
    let addr_count = store.addr_count() as u32;
    let addr_ok =
        |id: u32| id == crate::store::NO_ADDR || id < addr_count;
    for i in 0..n {
        if seqs[i] >= seq_count {
            return Err(format!("sequence id {} out of range", seqs[i]));
        }
        if !addr_ok(src_addrs[i]) || !addr_ok(dst_addrs[i]) {
            return Err("endpoint address id out of range".into());
        }
    }
    store.srcs.extend(srcs.iter().map(|&v| ClusterId::new(v)));
    store.dsts.extend(dsts.iter().map(|&v| ClusterId::new(v)));
    store.times.extend(times.iter().map(|&v| SimTime(v)));
    store.seqs.extend_from_slice(&seqs);
    store.src_addrs.extend_from_slice(&src_addrs);
    store.dst_addrs.extend_from_slice(&dst_addrs);
    store.e2e.extend_from_slice(&e2e);
    for i in 0..n {
        store.e2e_some.push(e2e_some[i]);
        store.reached.push(reached[i]);
        store.proto_v6.push(proto_v6[i]);
    }
    let mut off = *store.rtt_offsets.last().unwrap();
    for &h in &hop_counts {
        off += h;
        store.rtt_offsets.push(off);
    }
    store.rtts.extend_from_slice(&rtts);
    for &b in rtt_some.iter().take(n_hops) {
        store.rtt_some.push(b);
    }
    Ok(())
}

fn decode_sinks(payload: &[u8], count: u64) -> Result<Vec<String>, String> {
    let mut c = Cursor::new(payload);
    let mut sinks = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let len = c.u32()? as usize;
        let bytes = c.take(len)?;
        sinks.push(
            String::from_utf8(bytes.to_vec()).map_err(|_| "sink state not UTF-8")?,
        );
    }
    if !c.done() {
        return Err("trailing bytes after sink states".into());
    }
    Ok(sinks)
}

fn read_prologue<R: Read>(r: &mut R) -> io::Result<()> {
    let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic).map_err(|_| bad("not a snapshot: short magic"))?;
    if &magic != MAGIC {
        return Err(bad("not a snapshot: bad magic"));
    }
    let mut ver = [0u8; 4];
    r.read_exact(&mut ver).map_err(|_| bad("not a snapshot: short version"))?;
    let version = u32::from_le_bytes(ver);
    if version != VERSION {
        return Err(bad(&format!(
            "unsupported snapshot version {version} (expected {VERSION})"
        )));
    }
    Ok(())
}

/// Opens a snapshot from a reader, tolerating damage: torn or corrupt
/// segments degrade to counted skips in the [`SnapshotReport`], exactly as
/// [`crate::dataset::read_traceroutes_lossy`] treats mangled lines. Only a
/// stream-level I/O failure, a foreign file (bad magic), or an unsupported
/// version is an error — those lose *everything*, not a countable part.
pub fn read_lossy<R: Read>(r: &mut R) -> io::Result<(Snapshot, SnapshotReport)> {
    read_prologue(r)?;
    let mut snap = Snapshot { store: TraceStore::new(), ..Snapshot::default() };
    let mut report = SnapshotReport::default();
    // Arenas poisoned: ADDR or SEQ was lost, so block ids cannot be
    // trusted (validation would reject them anyway); count, don't load.
    let mut poisoned = false;
    let mut saw_end = false;
    let mut end_totals: Option<(u64, u64)> = None;
    loop {
        let header = match read_header(r)? {
            HeaderRead::Ok(h) => h,
            HeaderRead::Eof => break,
            HeaderRead::Bad(msg) => {
                // Framing is gone: without a trustworthy length there is
                // no next boundary to resync to.
                report.skipped_segments += 1;
                report.torn = true;
                report.note(msg);
                break;
            }
        };
        let payload = match read_payload(r, header.len)? {
            Some(p) => p,
            None => {
                report.skipped_segments += 1;
                report.torn = true;
                if header.tag == TAG_BLOCK {
                    report.skipped_traces += header.count as usize;
                } else if header.tag == TAG_SINK {
                    report.skipped_sinks += header.count as usize;
                }
                report.note(format!("torn payload in segment tag {}", header.tag));
                break;
            }
        };
        let checksum_ok = fnv64(&payload) == header.payload_fnv;
        let outcome: Result<(), String> = if !checksum_ok {
            Err("segment payload failed its checksum".into())
        } else {
            match header.tag {
                TAG_ADDR => decode_addrs(&payload, header.count).map(|addrs| {
                    snap.store.addrs = addrs;
                }),
                TAG_SEQ => {
                    decode_seqs(&payload, header.count, snap.store.addr_count()).map(
                        |(data, offsets)| {
                            snap.store.seq_data = data;
                            snap.store.seq_offsets = offsets;
                        },
                    )
                }
                TAG_BLOCK => {
                    if poisoned {
                        Err("block poisoned by an earlier arena loss".into())
                    } else {
                        decode_block(&mut snap.store, &payload, header.count)
                            .map(|()| report.traces += header.count as usize)
                    }
                }
                TAG_SINK => decode_sinks(&payload, header.count).map(|s| {
                    report.sinks += s.len();
                    snap.sinks.extend(s);
                }),
                TAG_END => {
                    let mut c = Cursor::new(&payload);
                    match (c.u64(), c.u64()) {
                        (Ok(t), Ok(s)) => {
                            end_totals = Some((t, s));
                            saw_end = true;
                            Ok(())
                        }
                        _ => Err("malformed END segment".into()),
                    }
                }
                t => Err(format!("unknown segment tag {t}")),
            }
        };
        if let Err(msg) = outcome {
            report.skipped_segments += 1;
            match header.tag {
                TAG_BLOCK => report.skipped_traces += header.count as usize,
                TAG_SINK => report.skipped_sinks += header.count as usize,
                TAG_ADDR | TAG_SEQ => poisoned = true,
                _ => {}
            }
            report.note(format!("segment tag {}: {msg}", header.tag));
        }
        if saw_end {
            break;
        }
    }
    if !saw_end {
        report.torn = true;
    }
    if let Some((total_traces, total_sinks)) = end_totals {
        // Whole segments can vanish with a torn tail; the END totals bound
        // the loss exactly.
        let seen = report.traces + report.skipped_traces;
        report.skipped_traces += (total_traces as usize).saturating_sub(seen);
        let seen_sinks = report.sinks + report.skipped_sinks;
        report.skipped_sinks += (total_sinks as usize).saturating_sub(seen_sinks);
    }
    snap.store.rebuild_indices();
    Ok((snap, report))
}

/// Opens a snapshot strictly: any damage — torn write, failed checksum,
/// invalid id — is an `InvalidData` error. The inverse of [`write()`].
pub fn read<R: Read>(r: &mut R) -> io::Result<Snapshot> {
    let (snap, report) = read_lossy(r)?;
    if !report.clean() {
        let detail = report
            .first_errors
            .first()
            .cloned()
            .unwrap_or_else(|| "torn snapshot".into());
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "corrupt snapshot: {} trace(s) and {} sink(s) lost ({detail})",
                report.skipped_traces, report.skipped_sinks
            ),
        ));
    }
    Ok(snap)
}

/// Strictly opens a snapshot file.
pub fn open_file(path: &Path) -> io::Result<Snapshot> {
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    read(&mut f)
}

/// Lossily opens a snapshot file (damage degrades to counted skips).
pub fn open_file_lossy(path: &Path) -> io::Result<(Snapshot, SnapshotReport)> {
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    read_lossy(&mut f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{HopObs, TracerouteRecord};
    use proptest::prelude::*;
    use s2s_types::Protocol;
    use std::net::{Ipv4Addr, Ipv6Addr};

    fn rec(src: u32, t: u32, hops: &[(Option<&str>, Option<f64>)], reached: bool) -> TracerouteRecord {
        TracerouteRecord {
            src: ClusterId::new(src),
            dst: ClusterId::new(src + 1),
            proto: Protocol::V4,
            t: SimTime::from_minutes(t),
            hops: hops
                .iter()
                .map(|(a, r)| HopObs { addr: a.map(|s| s.parse().unwrap()), rtt_ms: *r })
                .collect(),
            reached,
            e2e_rtt_ms: reached.then_some(42.5),
            src_addr: Some("10.0.0.1".parse().unwrap()),
            dst_addr: reached.then(|| "10.9.0.1".parse().unwrap()),
        }
    }

    fn sample_store() -> TraceStore {
        let recs = vec![
            rec(0, 0, &[(Some("10.1.0.1"), Some(1.5)), (Some("10.2.0.1"), Some(2.5))], true),
            rec(0, 180, &[(Some("10.1.0.1"), Some(1.7)), (Some("10.2.0.1"), Some(2.2))], true),
            rec(1, 0, &[(Some("10.1.0.1"), Some(1.0)), (None, None)], false),
            rec(2, 0, &[], true),
            rec(3, 0, &[(Some("2600::9"), Some(8.0))], true),
        ];
        TraceStore::from_records(&recs)
    }

    fn snapshot_bytes(store: &TraceStore, sinks: &[String], block: usize) -> Vec<u8> {
        let mut buf = Vec::new();
        let n = write(&mut buf, store, sinks, block).unwrap();
        assert_eq!(n as usize, buf.len(), "write must report the bytes it wrote");
        buf
    }

    #[test]
    fn round_trips_records_sinks_and_interning() {
        let store = sample_store();
        let sinks = vec!["S|1|2|state".to_string(), "S|3|4|other".to_string()];
        for block in [1, 2, 4096] {
            let buf = snapshot_bytes(&store, &sinks, block);
            let snap = read(&mut buf.as_slice()).unwrap();
            assert_eq!(snap.store.to_records(), store.to_records());
            assert_eq!(snap.sinks, sinks);
            // The reopened arenas intern identically (stats compare equal).
            assert_eq!(snap.store.stats(), store.stats());
        }
    }

    #[test]
    fn reopened_store_keeps_interning_live() {
        // A reopened store is not read-only: pushing and absorbing must
        // keep consing against the rebuilt indices.
        let store = sample_store();
        let buf = snapshot_bytes(&store, &[], 2);
        let mut snap = read(&mut buf.as_slice()).unwrap();
        let extra = rec(0, 360, &[(Some("10.1.0.1"), Some(1.9)), (Some("10.2.0.1"), Some(2.0))], true);
        snap.store.push(&extra);
        let mut direct_recs = store.to_records();
        direct_recs.push(extra);
        let direct = TraceStore::from_records(&direct_recs);
        assert_eq!(snap.store.to_records(), direct.to_records());
        assert_eq!(snap.store.stats(), direct.stats(), "rebuilt indices must cons");
    }

    #[test]
    fn empty_store_round_trips() {
        let store = TraceStore::new();
        let buf = snapshot_bytes(&store, &[], 64);
        let snap = read(&mut buf.as_slice()).unwrap();
        assert!(snap.store.is_empty());
        assert!(snap.sinks.is_empty());
    }

    #[test]
    fn foreign_file_is_an_error_not_a_skip() {
        let mut garbage: &[u8] = b"T|1|2|4|0|1|*|*|*|\n";
        assert!(read_lossy(&mut garbage).is_err(), "bad magic loses everything");
        let mut short: &[u8] = b"S2SN";
        assert!(read_lossy(&mut short).is_err());
    }

    #[test]
    fn future_version_is_refused() {
        let store = sample_store();
        let mut buf = snapshot_bytes(&store, &[], 64);
        buf[8] = 99; // version field
        let err = read(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn truncation_degrades_to_counted_skips() {
        let store = sample_store();
        let total = store.len();
        let buf = snapshot_bytes(&store, &["S|sink".to_string()], 2);
        // Cutting anywhere must never panic, and the books must balance:
        // loaded + skipped == total whenever the END totals were readable
        // (they live at the tail, so truncated files undercount instead).
        for cut in 12..buf.len() {
            let (snap, report) = read_lossy(&mut &buf[..cut]).unwrap();
            assert!(report.torn, "a cut at {cut} is a torn snapshot");
            assert_eq!(snap.store.len(), report.traces);
            assert!(report.traces + report.skipped_traces <= total);
            let _ = snap.store.to_records(); // loaded prefix stays readable
        }
        let (_, clean) = read_lossy(&mut buf.as_slice()).unwrap();
        assert!(clean.clean());
        assert_eq!(clean.traces, total);
    }

    #[test]
    fn bit_flips_never_panic_and_never_silently_accept() {
        let store = sample_store();
        let records = store.to_records();
        let sinks = vec!["S|sink-state-line".to_string()];
        let buf = snapshot_bytes(&store, &sinks, 2);
        for pos in 12..buf.len() {
            let mut mangled = buf.clone();
            mangled[pos] ^= 0x41;
            match read_lossy(&mut mangled.as_slice()) {
                Ok((snap, report)) => {
                    // Every loaded trace must be one the writer wrote —
                    // a flipped byte may lose data but never invent it.
                    for v in snap.store.iter() {
                        let r = v.to_record();
                        assert!(
                            records.contains(&r),
                            "flip at {pos} invented a record: {r:?}"
                        );
                    }
                    assert!(
                        report.clean() || report.traces <= records.len(),
                        "flip at {pos}: implausible report {report:?}"
                    );
                }
                // A flip inside the magic/version prologue is a foreign
                // file, which is an error by policy.
                Err(_) => assert!(pos < 12 + HEADER_BYTES + buf.len()),
            }
        }
    }

    #[test]
    fn corrupt_block_skips_exactly_its_traces() {
        let store = sample_store();
        let buf = snapshot_bytes(&store, &[], 2);
        // Find the first BLOCK segment and flip one payload byte. Segments:
        // prologue(12) + ADDR + SEQ + BLOCK...; walk headers to locate it.
        let mut pos = 12usize;
        let mut block_payload_at = None;
        while pos + HEADER_BYTES <= buf.len() {
            let tag = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap());
            let count = u64::from_le_bytes(buf[pos + 4..pos + 12].try_into().unwrap());
            let len =
                u64::from_le_bytes(buf[pos + 12..pos + 20].try_into().unwrap()) as usize;
            if tag == TAG_BLOCK {
                block_payload_at = Some((pos + HEADER_BYTES, count as usize));
                break;
            }
            pos += HEADER_BYTES + len;
        }
        let (payload_at, block_count) = block_payload_at.expect("snapshot has blocks");
        let mut mangled = buf.clone();
        mangled[payload_at] ^= 0xFF;
        let (snap, report) = read_lossy(&mut mangled.as_slice()).unwrap();
        assert_eq!(report.skipped_traces, block_count);
        assert_eq!(report.traces, store.len() - block_count);
        assert_eq!(snap.store.len(), report.traces);
        assert!(!report.clean());
        assert_eq!(report.coverage().to_string(), format!(
            "{}/{} ({:.1}%)",
            report.traces,
            store.len(),
            100.0 * report.traces as f64 / store.len() as f64
        ));
    }

    /// Raw material for one arbitrary record, mirroring the store's
    /// proptest corpus (the offline shim has no `prop_map`).
    type RawRecord = (u32, u32, u32, Vec<(u8, u32, f64)>, u8, f64);

    fn arb_records() -> impl Strategy<Value = Vec<RawRecord>> {
        let hop = (0u8..4, any::<u32>(), 0.0f64..1e4);
        let record = (
            0u32..8,
            0u32..8,
            0u32..100_000,
            proptest::collection::vec(hop, 0..8),
            0u8..32,
            0.0f64..1e4,
        );
        proptest::collection::vec(record, 0..24)
    }

    fn build_records(raw: &[RawRecord]) -> Vec<TracerouteRecord> {
        raw.iter()
            .map(|&(src, dst, t, ref hops, flags, e2e)| TracerouteRecord {
                src: ClusterId::new(src),
                dst: ClusterId::new(dst),
                proto: if flags & 2 != 0 { Protocol::V6 } else { Protocol::V4 },
                t: SimTime::from_minutes(t),
                hops: hops
                    .iter()
                    .map(|&(tag, a, rtt)| match tag {
                        0 => HopObs { addr: None, rtt_ms: None },
                        1 => HopObs {
                            addr: Some(IpAddr::V4(Ipv4Addr::from(a))),
                            rtt_ms: Some(rtt),
                        },
                        2 => HopObs {
                            addr: Some(IpAddr::V6(Ipv6Addr::from(
                                u128::from(a) << 64 | 0x2600,
                            ))),
                            rtt_ms: Some(rtt),
                        },
                        _ => HopObs {
                            addr: Some(IpAddr::V4(Ipv4Addr::from(a % 16))),
                            rtt_ms: None,
                        },
                    })
                    .collect(),
                reached: flags & 1 != 0,
                e2e_rtt_ms: (flags & 4 != 0).then_some(e2e),
                src_addr: (flags & 8 != 0).then(|| IpAddr::V4(Ipv4Addr::from(src << 8 | 1))),
                dst_addr: (flags & 16 != 0).then(|| IpAddr::V4(Ipv4Addr::from(dst << 8 | 2))),
            })
            .collect()
    }

    proptest! {
        /// `from_records → write → read → to_records` is the identity,
        /// None hops/RTTs, NaN-free presence bitsets, both families and
        /// absent endpoints included — at several block sizes.
        #[test]
        fn prop_snapshot_round_trip(raw in arb_records(), block in 1usize..8) {
            let recs = build_records(&raw);
            let store = TraceStore::from_records(&recs);
            let buf = snapshot_bytes(&store, &[], block);
            let snap = read(&mut buf.as_slice()).unwrap();
            prop_assert_eq!(snap.store.to_records(), recs);
            prop_assert_eq!(snap.store.stats(), store.stats());
        }

        /// Truncating at an arbitrary point degrades to counted skips:
        /// never a panic, loaded is a prefix, and the accounting is sane.
        #[test]
        fn prop_truncation_is_counted(raw in arb_records(), frac in 0.0f64..1.0) {
            let recs = build_records(&raw);
            let store = TraceStore::from_records(&recs);
            let buf = snapshot_bytes(&store, &[], 3);
            let cut = 12 + ((buf.len() - 12) as f64 * frac) as usize;
            let (snap, report) = read_lossy(&mut &buf[..cut]).unwrap();
            prop_assert_eq!(snap.store.len(), report.traces);
            prop_assert!(report.traces + report.skipped_traces <= recs.len());
            let loaded = snap.store.to_records();
            prop_assert_eq!(&loaded[..], &recs[..loaded.len()], "loaded must be a prefix");
        }

        /// Arbitrary byte flips: the lossy reader must never panic, and
        /// whatever loads must be records the writer actually wrote.
        #[test]
        fn prop_bit_flips_degrade(
            raw in arb_records(),
            flips in proptest::collection::vec((12usize..65536, 1u8..255), 1..6),
        ) {
            let recs = build_records(&raw);
            let store = TraceStore::from_records(&recs);
            let buf = snapshot_bytes(&store, &[], 2);
            let mut mangled = buf.clone();
            for &(pos, x) in &flips {
                let pos = 12 + (pos - 12) % (buf.len() - 12).max(1);
                mangled[pos.min(buf.len() - 1)] ^= x;
            }
            if let Ok((snap, report)) = read_lossy(&mut mangled.as_slice()) {
                prop_assert_eq!(snap.store.len(), report.traces);
                for v in snap.store.iter() {
                    prop_assert!(recs.contains(&v.to_record()));
                }
            }
        }
    }
}
