//! Columnar trace storage: the arena the analysis plane runs on.
//!
//! The paper's key structural observation (§4) — each server pair sees only
//! a handful of distinct router paths, with one dominant — makes per-record
//! `Vec<HopObs>` rows massively redundant: the same hop sequence is stored
//! once per traceroute, i.e. thousands of times per pair. [`TraceStore`]
//! stores a campaign as structure-of-arrays columns instead:
//!
//! * every distinct address is interned to a `u32` id (once per corpus, not
//!   once per observation),
//! * every distinct hop sequence is hash-consed into one flat arena
//!   (`seq_data` + offsets), so a trace's path costs one `u32`,
//! * per-trace scalars (endpoints, time, reached, e2e RTT) are flat columns
//!   with one-bit presence sets for the optional ones,
//! * per-hop RTTs — the only per-observation payload that does not dedup —
//!   live in one flat `f64` array with per-trace offsets.
//!
//! Conversion is lossless both ways ([`TraceStore::from_records`] /
//! [`TraceStore::to_records`], proptest-pinned), and [`TraceView`] exposes
//! the row view without materializing a record. The columnar analysis
//! driver in `s2s-core` consumes views and memoizes per *interned* id, so
//! ip2asn lookups run once per distinct address and path annotation once
//! per distinct (hop sequence, endpoints) — not once per trace.

use crate::records::{HopObs, TracerouteRecord};
use s2s_types::{ClusterId, Protocol, SimTime};
use std::net::IpAddr;

/// Sentinel address id for "no address" (an unresponsive hop, or an unset
/// endpoint address). Never a valid index into the intern table.
pub const NO_ADDR: u32 = u32::MAX;

/// Open-addressed index from an element's hash to its interned id. Equality
/// probes read the arena itself through a caller-supplied closure, so the
/// index stores 4 bytes per slot and never a second copy of the keys (a
/// `HashMap<Box<[u32]>, u32>` would duplicate every interned hop sequence —
/// a measurable share of the arena at campaign scale).
#[derive(Clone, Debug)]
pub(crate) struct IdIndex {
    /// `id + 1` per occupied slot; 0 marks empty. Power-of-two sized,
    /// linear probing, grown at 2/3 load.
    slots: Vec<u32>,
    len: usize,
}

impl Default for IdIndex {
    fn default() -> Self {
        IdIndex { slots: vec![0; 16], len: 0 }
    }
}

impl IdIndex {
    fn get(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        let mask = self.slots.len() - 1;
        let mut i = hash as usize & mask;
        loop {
            match self.slots[i] {
                0 => return None,
                s if eq(s - 1) => return Some(s - 1),
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Inserts a new id (the caller has already checked it is absent).
    /// `hash_of` recomputes a stored id's hash when the table grows.
    fn insert(&mut self, hash: u64, id: u32, mut hash_of: impl FnMut(u32) -> u64) {
        if (self.len + 1) * 3 >= self.slots.len() * 2 {
            let cap = (self.len + 1).next_power_of_two() * 2;
            let old = std::mem::replace(&mut self.slots, vec![0; cap]);
            for s in old {
                if s != 0 {
                    let h = hash_of(s - 1);
                    self.place(h, s);
                }
            }
        }
        self.place(hash, id + 1);
        self.len += 1;
    }

    fn place(&mut self, hash: u64, slot: u32) {
        let mask = self.slots.len() - 1;
        let mut i = hash as usize & mask;
        while self.slots[i] != 0 {
            i = (i + 1) & mask;
        }
        self.slots[i] = slot;
    }

    fn bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<u32>()
    }
}

pub(crate) fn hash_of<T: std::hash::Hash + ?Sized>(v: &T) -> u64 {
    use std::hash::Hasher;
    let mut h = std::collections::hash_map::DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

/// A packed bit vector (1 bit per entry) for the optional/boolean columns.
#[derive(Clone, Debug, Default)]
pub(crate) struct Bits {
    words: Vec<u64>,
    len: usize,
}

impl Bits {
    pub(crate) fn push(&mut self, v: bool) {
        let (w, b) = (self.len / 64, self.len % 64);
        if w == self.words.len() {
            self.words.push(0);
        }
        if v {
            self.words[w] |= 1 << b;
        }
        self.len += 1;
    }

    pub(crate) fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    fn bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Empties the vector, keeping the word buffer's capacity.
    pub(crate) fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }
}

/// Size/dedup statistics of a store, for observability and benches.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StoreStats {
    /// Traces stored.
    pub traces: usize,
    /// Distinct interned addresses.
    pub distinct_addrs: usize,
    /// Distinct hash-consed hop sequences.
    pub distinct_seqs: usize,
    /// Total hop observations folded in (what row storage would hold).
    pub hop_slots: usize,
    /// Hop slots actually stored in the shared sequence arena.
    pub seq_slots: usize,
    /// Resident bytes of the arena (all columns + intern tables).
    pub arena_bytes: usize,
    /// `hop_slots / seq_slots` — how many times the average stored hop is
    /// shared. The paper's few-distinct-paths property makes this large.
    pub dedup_ratio: f64,
}

/// Columnar, interned storage for traceroute records.
///
/// Rows are append-only ([`TraceStore::push`]); every accessor goes through
/// [`TraceView`]. Two stores collected independently merge with
/// [`TraceStore::absorb`] (ids are remapped, so per-shard stores from a
/// parallel campaign concatenate deterministically).
#[derive(Clone, Debug, Default)]
pub struct TraceStore {
    // Address intern table: the arena itself plus a keyless hash index
    // (equality probes read `addrs`, so no address is stored twice).
    // Fields are `pub(crate)` so the binary snapshot codec in
    // [`crate::snapshot`] can serialize the columns directly.
    pub(crate) addrs: Vec<IpAddr>,
    pub(crate) addr_index: IdIndex,
    // Hash-consed hop sequences: flat arena + offsets, plus a keyless hash
    // index probing `seq_data` directly — consing without duplicating any
    // interned sequence.
    pub(crate) seq_data: Vec<u32>,
    pub(crate) seq_offsets: Vec<u32>,
    pub(crate) seq_index: IdIndex,
    // Per-trace columns.
    pub(crate) srcs: Vec<ClusterId>,
    pub(crate) dsts: Vec<ClusterId>,
    pub(crate) times: Vec<SimTime>,
    pub(crate) seqs: Vec<u32>,
    pub(crate) src_addrs: Vec<u32>,
    pub(crate) dst_addrs: Vec<u32>,
    pub(crate) e2e: Vec<f64>,
    pub(crate) e2e_some: Bits,
    pub(crate) reached: Bits,
    pub(crate) proto_v6: Bits,
    // Per-hop RTTs: flat, one slot per hop observation, with presence bits.
    pub(crate) rtts: Vec<f64>,
    pub(crate) rtt_some: Bits,
    pub(crate) rtt_offsets: Vec<u32>,
    // Scratch buffer reused across pushes (no per-record allocation).
    scratch: Vec<u32>,
}

impl TraceStore {
    /// An empty store.
    pub fn new() -> TraceStore {
        TraceStore { seq_offsets: vec![0], rtt_offsets: vec![0], ..TraceStore::default() }
    }

    /// Number of traces stored.
    pub fn len(&self) -> usize {
        self.srcs.len()
    }

    /// Whether the store holds no traces.
    pub fn is_empty(&self) -> bool {
        self.srcs.is_empty()
    }

    /// The interned address table, in id order. The columnar annotator runs
    /// its batch ip2asn lookup over exactly this slice — once per distinct
    /// address in the corpus.
    pub fn addrs(&self) -> &[IpAddr] {
        &self.addrs
    }

    /// Resolves an interned address id.
    pub fn addr(&self, id: u32) -> IpAddr {
        self.addrs[id as usize]
    }

    /// Number of distinct addresses interned.
    pub fn addr_count(&self) -> usize {
        self.addrs.len()
    }

    /// Number of distinct hop sequences hash-consed.
    pub fn seq_count(&self) -> usize {
        self.seq_offsets.len() - 1
    }

    /// The address ids of one interned hop sequence ([`NO_ADDR`] marks an
    /// unresponsive hop).
    pub fn seq_hops(&self, seq: u32) -> &[u32] {
        let (a, b) =
            (self.seq_offsets[seq as usize] as usize, self.seq_offsets[seq as usize + 1] as usize);
        &self.seq_data[a..b]
    }

    /// Total hop observations folded in (the un-deduplicated count).
    pub fn hop_slots(&self) -> usize {
        self.rtts.len()
    }

    fn intern_addr(&mut self, addr: IpAddr) -> u32 {
        let h = hash_of(&addr);
        let addrs = &self.addrs;
        if let Some(id) = self.addr_index.get(h, |id| addrs[id as usize] == addr) {
            return id;
        }
        let id = self.addrs.len() as u32;
        assert!(id != NO_ADDR, "address intern table overflow");
        self.addrs.push(addr);
        let addrs = &self.addrs;
        self.addr_index.insert(h, id, |i| hash_of(&addrs[i as usize]));
        id
    }

    fn intern_opt(&mut self, addr: Option<IpAddr>) -> u32 {
        match addr {
            Some(a) => self.intern_addr(a),
            None => NO_ADDR,
        }
    }

    fn intern_seq(&mut self, seq: &[u32]) -> u32 {
        let h = hash_of(seq);
        let data = &self.seq_data;
        let offs = &self.seq_offsets;
        let at = |id: u32| &data[offs[id as usize] as usize..offs[id as usize + 1] as usize];
        if let Some(id) = self.seq_index.get(h, |id| at(id) == seq) {
            return id;
        }
        let id = self.seq_count() as u32;
        assert!(id != u32::MAX, "hop-sequence intern table overflow");
        self.seq_data.extend_from_slice(seq);
        self.seq_offsets.push(self.seq_data.len() as u32);
        let data = &self.seq_data;
        let offs = &self.seq_offsets;
        self.seq_index.insert(h, id, |i| {
            hash_of(&data[offs[i as usize] as usize..offs[i as usize + 1] as usize])
        });
        id
    }

    /// Appends one record (losslessly — [`TraceStore::to_records`] returns
    /// it bit-for-bit).
    pub fn push(&mut self, rec: &TracerouteRecord) {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        for h in &rec.hops {
            scratch.push(self.intern_opt(h.addr));
        }
        let seq = self.intern_seq(&scratch);
        self.scratch = scratch;
        self.srcs.push(rec.src);
        self.dsts.push(rec.dst);
        self.times.push(rec.t);
        self.seqs.push(seq);
        let src_addr = self.intern_opt(rec.src_addr);
        let dst_addr = self.intern_opt(rec.dst_addr);
        self.src_addrs.push(src_addr);
        self.dst_addrs.push(dst_addr);
        self.e2e.push(rec.e2e_rtt_ms.unwrap_or(0.0));
        self.e2e_some.push(rec.e2e_rtt_ms.is_some());
        self.reached.push(rec.reached);
        self.proto_v6.push(rec.proto == Protocol::V6);
        for h in &rec.hops {
            self.rtts.push(h.rtt_ms.unwrap_or(0.0));
            self.rtt_some.push(h.rtt_ms.is_some());
        }
        self.rtt_offsets.push(self.rtts.len() as u32);
    }

    /// Builds a store from a record slice.
    pub fn from_records(records: &[TracerouteRecord]) -> TraceStore {
        let mut s = TraceStore::new();
        for r in records {
            s.push(r);
        }
        s
    }

    /// Materializes every trace back into records, in insertion order.
    /// Inverse of [`TraceStore::from_records`].
    pub fn to_records(&self) -> Vec<TracerouteRecord> {
        self.iter().map(|v| v.to_record()).collect()
    }

    /// A zero-copy view of trace `i`.
    pub fn view(&self, i: usize) -> TraceView<'_> {
        debug_assert!(i < self.len());
        TraceView { store: self, i }
    }

    /// Views of every trace, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = TraceView<'_>> {
        (0..self.len()).map(move |i| self.view(i))
    }

    /// Appends every trace of `other`, remapping its interned ids into this
    /// store's tables. Absorbing per-shard stores in a fixed order yields a
    /// store identical to pushing all records sequentially in that order.
    pub fn absorb(&mut self, other: &TraceStore) {
        let (addr_map, seq_map) = self.absorb_maps(other);
        self.absorb_rows(other, &addr_map, &seq_map);
    }

    /// First half of [`TraceStore::absorb`]: interns `other`'s full address
    /// table and hop-sequence arena (in id order, so interning order matches
    /// a sequential push of the same records) and returns the id remaps.
    /// Split out so the streaming snapshot reader can intern a shard's
    /// arenas once and then feed trace batches through
    /// [`TraceStore::absorb_rows`] without ever materializing the shard.
    pub(crate) fn absorb_maps(&mut self, other: &TraceStore) -> (Vec<u32>, Vec<u32>) {
        let addr_map: Vec<u32> =
            other.addrs.iter().map(|&a| self.intern_addr(a)).collect();
        let remap = |id: u32| if id == NO_ADDR { NO_ADDR } else { addr_map[id as usize] };
        let mut seq_map = Vec::with_capacity(other.seq_count());
        let mut scratch = std::mem::take(&mut self.scratch);
        for s in 0..other.seq_count() {
            scratch.clear();
            scratch.extend(other.seq_hops(s as u32).iter().map(|&id| remap(id)));
            seq_map.push(self.intern_seq(&scratch));
        }
        self.scratch = scratch;
        (addr_map, seq_map)
    }

    /// Second half of [`TraceStore::absorb`]: appends `other`'s per-trace
    /// rows, remapping ids through maps built by [`TraceStore::absorb_maps`]
    /// against `other`'s arenas (or a superset — a batch buffer sharing a
    /// shard's arenas qualifies).
    pub(crate) fn absorb_rows(
        &mut self,
        other: &TraceStore,
        addr_map: &[u32],
        seq_map: &[u32],
    ) {
        let remap = |id: u32| if id == NO_ADDR { NO_ADDR } else { addr_map[id as usize] };
        for i in 0..other.len() {
            self.srcs.push(other.srcs[i]);
            self.dsts.push(other.dsts[i]);
            self.times.push(other.times[i]);
            self.seqs.push(seq_map[other.seqs[i] as usize]);
            self.src_addrs.push(remap(other.src_addrs[i]));
            self.dst_addrs.push(remap(other.dst_addrs[i]));
            self.e2e.push(other.e2e[i]);
            self.e2e_some.push(other.e2e_some.get(i));
            self.reached.push(other.reached.get(i));
            self.proto_v6.push(other.proto_v6.get(i));
            let (a, b) =
                (other.rtt_offsets[i] as usize, other.rtt_offsets[i + 1] as usize);
            self.rtts.extend_from_slice(&other.rtts[a..b]);
            for k in a..b {
                self.rtt_some.push(other.rtt_some.get(k));
            }
            self.rtt_offsets.push(self.rtts.len() as u32);
        }
    }

    /// Drops every per-trace column while keeping the interned address
    /// table, the hop-sequence arena, the intern indices, and all column
    /// capacity. This is the snapshot reader's batch reset: after a clear,
    /// decoded BLOCK rows land in already-allocated columns whose ids keep
    /// resolving against the shared arenas.
    pub(crate) fn clear_traces(&mut self) {
        self.srcs.clear();
        self.dsts.clear();
        self.times.clear();
        self.seqs.clear();
        self.src_addrs.clear();
        self.dst_addrs.clear();
        self.e2e.clear();
        self.e2e_some.clear();
        self.reached.clear();
        self.proto_v6.clear();
        self.rtts.clear();
        self.rtt_some.clear();
        self.rtt_offsets.clear();
        self.rtt_offsets.push(0);
    }

    /// Rebuilds the keyless intern indices from the arenas — what a
    /// snapshot open does after bulk-loading the address table and the
    /// sequence arena. O(distinct addresses + distinct sequences); the
    /// rebuilt indices probe identically to ones grown by interning.
    pub(crate) fn rebuild_indices(&mut self) {
        self.addr_index = IdIndex::default();
        for id in 0..self.addrs.len() {
            let h = hash_of(&self.addrs[id]);
            let addrs = &self.addrs;
            self.addr_index.insert(h, id as u32, |i| hash_of(&addrs[i as usize]));
        }
        self.seq_index = IdIndex::default();
        for id in 0..self.seq_count() {
            let (a, b) =
                (self.seq_offsets[id] as usize, self.seq_offsets[id + 1] as usize);
            let h = hash_of(&self.seq_data[a..b]);
            let (data, offs) = (&self.seq_data, &self.seq_offsets);
            self.seq_index.insert(h, id as u32, |i| {
                hash_of(&data[offs[i as usize] as usize..offs[i as usize + 1] as usize])
            });
        }
    }

    /// Resident bytes of the arena: every column, the flat sequence arena,
    /// and the keyless intern indices (4 bytes per hash slot — the indices
    /// hold no keys, they probe the arena). Used lengths, not capacities —
    /// this is the dataset's size, not the allocator's.
    pub fn arena_bytes(&self) -> usize {
        use std::mem::size_of;
        let per_trace = self.srcs.len()
            * (size_of::<ClusterId>() * 2
                + size_of::<SimTime>()
                + size_of::<u32>() * 4 // seq id, src/dst addr ids, rtt offset
                + size_of::<f64>()) // e2e
            + self.e2e_some.bytes()
            + self.reached.bytes()
            + self.proto_v6.bytes();
        let hops = self.rtts.len() * size_of::<f64>() + self.rtt_some.bytes();
        let seq_arena =
            self.seq_data.len() * size_of::<u32>() + self.seq_offsets.len() * size_of::<u32>();
        let addr_table =
            self.addrs.len() * size_of::<IpAddr>() + self.addr_index.bytes();
        per_trace + hops + seq_arena + addr_table + self.seq_index.bytes()
    }

    /// The `hop_slots / seq_slots` sharing factor (1.0 when nothing dedups,
    /// large when the few-distinct-paths property holds).
    pub fn dedup_ratio(&self) -> f64 {
        self.rtts.len() as f64 / (self.seq_data.len().max(1)) as f64
    }

    /// Snapshot of the store's size/dedup statistics.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            traces: self.len(),
            distinct_addrs: self.addr_count(),
            distinct_seqs: self.seq_count(),
            hop_slots: self.hop_slots(),
            seq_slots: self.seq_data.len(),
            arena_bytes: self.arena_bytes(),
            dedup_ratio: self.dedup_ratio(),
        }
    }

    /// Publishes the store's statistics as gauges on a metrics registry
    /// (`trace_store.*`; the dedup ratio is scaled ×1000 since gauges are
    /// integral).
    pub fn publish(&self, registry: &s2s_obs::Registry) {
        let s = self.stats();
        registry.gauge("trace_store.traces").set(s.traces as u64);
        registry.gauge("trace_store.distinct_addrs").set(s.distinct_addrs as u64);
        registry.gauge("trace_store.distinct_hopseqs").set(s.distinct_seqs as u64);
        registry.gauge("trace_store.hop_slots").set(s.hop_slots as u64);
        registry.gauge("trace_store.arena_bytes").set(s.arena_bytes as u64);
        registry.gauge("trace_store.dedup_ratio_milli").set((s.dedup_ratio * 1000.0) as u64);
    }
}

/// Zero-copy accessor for one trace in a [`TraceStore`].
#[derive(Clone, Copy)]
pub struct TraceView<'a> {
    store: &'a TraceStore,
    i: usize,
}

impl<'a> TraceView<'a> {
    /// Row index within the store.
    pub fn index(&self) -> usize {
        self.i
    }

    /// Source vantage point.
    pub fn src(&self) -> ClusterId {
        self.store.srcs[self.i]
    }

    /// Destination vantage point.
    pub fn dst(&self) -> ClusterId {
        self.store.dsts[self.i]
    }

    /// Protocol probed.
    pub fn proto(&self) -> Protocol {
        if self.store.proto_v6.get(self.i) {
            Protocol::V6
        } else {
            Protocol::V4
        }
    }

    /// When the traceroute ran.
    pub fn t(&self) -> SimTime {
        self.store.times[self.i]
    }

    /// Whether the destination answered.
    pub fn reached(&self) -> bool {
        self.store.reached.get(self.i)
    }

    /// End-to-end RTT, ms.
    pub fn e2e_rtt_ms(&self) -> Option<f64> {
        self.store.e2e_some.get(self.i).then(|| self.store.e2e[self.i])
    }

    /// Interned id of the source address ([`NO_ADDR`] when unset).
    pub fn src_addr_id(&self) -> u32 {
        self.store.src_addrs[self.i]
    }

    /// Interned id of the destination address ([`NO_ADDR`] when unset).
    pub fn dst_addr_id(&self) -> u32 {
        self.store.dst_addrs[self.i]
    }

    /// The vantage point's own address.
    pub fn src_addr(&self) -> Option<IpAddr> {
        self.resolve(self.src_addr_id())
    }

    /// The destination address probed.
    pub fn dst_addr(&self) -> Option<IpAddr> {
        self.resolve(self.dst_addr_id())
    }

    /// Interned id of this trace's hop sequence.
    pub fn seq_id(&self) -> u32 {
        self.store.seqs[self.i]
    }

    /// The hop sequence as interned address ids (zero-copy; [`NO_ADDR`]
    /// marks unresponsive hops).
    pub fn hop_ids(&self) -> &'a [u32] {
        self.store.seq_hops(self.seq_id())
    }

    /// Number of hops.
    pub fn hop_len(&self) -> usize {
        self.hop_ids().len()
    }

    /// Address of hop `k`.
    pub fn hop_addr(&self, k: usize) -> Option<IpAddr> {
        self.resolve(self.hop_ids()[k])
    }

    /// RTT of hop `k`, ms.
    pub fn hop_rtt_ms(&self, k: usize) -> Option<f64> {
        let base = self.store.rtt_offsets[self.i] as usize;
        self.store.rtt_some.get(base + k).then(|| self.store.rtts[base + k])
    }

    /// Materializes the row back into a [`TracerouteRecord`].
    pub fn to_record(&self) -> TracerouteRecord {
        let hops = (0..self.hop_len())
            .map(|k| HopObs { addr: self.hop_addr(k), rtt_ms: self.hop_rtt_ms(k) })
            .collect();
        TracerouteRecord {
            src: self.src(),
            dst: self.dst(),
            proto: self.proto(),
            t: self.t(),
            hops,
            reached: self.reached(),
            e2e_rtt_ms: self.e2e_rtt_ms(),
            src_addr: self.src_addr(),
            dst_addr: self.dst_addr(),
        }
    }

    fn resolve(&self, id: u32) -> Option<IpAddr> {
        (id != NO_ADDR).then(|| self.store.addr(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::net::{Ipv4Addr, Ipv6Addr};

    fn rec(
        src: u32,
        t: u32,
        hops: &[(Option<&str>, Option<f64>)],
        reached: bool,
    ) -> TracerouteRecord {
        TracerouteRecord {
            src: ClusterId::new(src),
            dst: ClusterId::new(src + 1),
            proto: Protocol::V4,
            t: SimTime::from_minutes(t),
            hops: hops
                .iter()
                .map(|(a, r)| HopObs { addr: a.map(|s| s.parse().unwrap()), rtt_ms: *r })
                .collect(),
            reached,
            e2e_rtt_ms: reached.then_some(42.5),
            src_addr: Some("10.0.0.1".parse().unwrap()),
            dst_addr: reached.then(|| "10.9.0.1".parse().unwrap()),
        }
    }

    #[test]
    fn round_trips_and_interns() {
        let recs = vec![
            rec(0, 0, &[(Some("10.1.0.1"), Some(1.5)), (Some("10.2.0.1"), Some(2.5))], true),
            // Same hop sequence, different RTTs: the sequence must cons.
            rec(0, 180, &[(Some("10.1.0.1"), Some(1.7)), (Some("10.2.0.1"), Some(2.2))], true),
            // Unresponsive hop, unreached trace.
            rec(1, 0, &[(Some("10.1.0.1"), Some(1.0)), (None, None)], false),
            // Empty hops.
            rec(2, 0, &[], true),
        ];
        let store = TraceStore::from_records(&recs);
        assert_eq!(store.to_records(), recs);
        assert_eq!(store.len(), 4);
        assert_eq!(store.seq_count(), 3, "two identical sequences must cons");
        assert_eq!(store.view(0).seq_id(), store.view(1).seq_id());
        // Distinct addresses: 10.1.0.1, 10.2.0.1, 10.0.0.1 (src), 10.9.0.1.
        assert_eq!(store.addr_count(), 4);
        assert_eq!(store.hop_slots(), 6);
        let stats = store.stats();
        assert_eq!(stats.traces, 4);
        assert!(stats.arena_bytes > 0);
        assert!(stats.dedup_ratio > 1.0);
    }

    #[test]
    fn view_accessors_match_record_fields() {
        let r = rec(3, 77, &[(Some("10.1.0.1"), Some(1.5)), (None, None)], true);
        let store = TraceStore::from_records(std::slice::from_ref(&r));
        let v = store.view(0);
        assert_eq!(v.src(), r.src);
        assert_eq!(v.dst(), r.dst);
        assert_eq!(v.proto(), r.proto);
        assert_eq!(v.t(), r.t);
        assert_eq!(v.reached(), r.reached);
        assert_eq!(v.e2e_rtt_ms(), r.e2e_rtt_ms);
        assert_eq!(v.src_addr(), r.src_addr);
        assert_eq!(v.dst_addr(), r.dst_addr);
        assert_eq!(v.hop_len(), 2);
        assert_eq!(v.hop_addr(0), r.hops[0].addr);
        assert_eq!(v.hop_rtt_ms(0), r.hops[0].rtt_ms);
        assert_eq!(v.hop_ids()[1], NO_ADDR);
        assert_eq!(v.hop_rtt_ms(1), None);
    }

    #[test]
    fn absorb_equals_sequential_push() {
        let a = vec![
            rec(0, 0, &[(Some("10.1.0.1"), Some(1.0))], true),
            rec(0, 60, &[(Some("10.1.0.1"), Some(1.1))], true),
        ];
        let b = vec![
            rec(1, 0, &[(Some("10.1.0.1"), Some(2.0)), (Some("10.2.0.1"), Some(3.0))], true),
            rec(1, 60, &[(None, None)], false),
        ];
        let mut merged = TraceStore::new();
        merged.absorb(&TraceStore::from_records(&a));
        merged.absorb(&TraceStore::from_records(&b));
        let all: Vec<_> = a.iter().chain(&b).cloned().collect();
        let direct = TraceStore::from_records(&all);
        assert_eq!(merged.to_records(), all);
        assert_eq!(merged.to_records(), direct.to_records());
        assert_eq!(merged.stats(), direct.stats(), "absorb must not change interning");
    }

    #[test]
    fn empty_store() {
        let s = TraceStore::new();
        assert!(s.is_empty());
        assert_eq!(s.seq_count(), 0);
        assert!(s.to_records().is_empty());
        assert_eq!(s.dedup_ratio(), 0.0);
    }

    /// Raw material for one arbitrary record (the offline proptest shim has
    /// no `prop_map`, so the mapping happens in [`build_records`]):
    /// `(src, dst, t, hops, flags, e2e)` where each hop is
    /// `(tag, addr_bits, rtt)` and `flags` packs reached / V6 / e2e-some /
    /// src-addr-some / dst-addr-some bits.
    type RawRecord = (u32, u32, u32, Vec<(u8, u32, f64)>, u8, f64);

    fn arb_records() -> impl Strategy<Value = Vec<RawRecord>> {
        let hop = (0u8..4, any::<u32>(), 0.0f64..1e4);
        let record = (
            0u32..8,
            0u32..8,
            0u32..100_000,
            proptest::collection::vec(hop, 0..8),
            0u8..32,
            0.0f64..1e4,
        );
        proptest::collection::vec(record, 0..24)
    }

    /// Maps raw material into records, covering `None` hops/RTTs, unreached
    /// traces, both address families, and missing endpoint addresses.
    fn build_records(raw: &[RawRecord]) -> Vec<TracerouteRecord> {
        raw.iter()
            .map(|&(src, dst, t, ref hops, flags, e2e)| TracerouteRecord {
                src: ClusterId::new(src),
                dst: ClusterId::new(dst),
                proto: if flags & 2 != 0 { Protocol::V6 } else { Protocol::V4 },
                t: SimTime::from_minutes(t),
                hops: hops
                    .iter()
                    .map(|&(tag, a, rtt)| match tag {
                        0 => HopObs { addr: None, rtt_ms: None },
                        1 => HopObs {
                            addr: Some(IpAddr::V4(Ipv4Addr::from(a))),
                            rtt_ms: Some(rtt),
                        },
                        2 => HopObs {
                            addr: Some(IpAddr::V6(Ipv6Addr::from(
                                u128::from(a) << 64 | 0x2600,
                            ))),
                            rtt_ms: Some(rtt),
                        },
                        // A small pool, so sequences collide and interning
                        // actually triggers; RTT missing despite a reply.
                        _ => HopObs {
                            addr: Some(IpAddr::V4(Ipv4Addr::from(a % 16))),
                            rtt_ms: None,
                        },
                    })
                    .collect(),
                reached: flags & 1 != 0,
                e2e_rtt_ms: (flags & 4 != 0).then_some(e2e),
                src_addr: (flags & 8 != 0).then(|| IpAddr::V4(Ipv4Addr::from(src << 8 | 1))),
                dst_addr: (flags & 16 != 0).then(|| IpAddr::V4(Ipv4Addr::from(dst << 8 | 2))),
            })
            .collect()
    }

    proptest! {
        /// `records ⇄ TraceStore` is lossless, including `None` hops/RTTs,
        /// unreached traces, and absent endpoint addresses.
        #[test]
        fn prop_record_store_round_trip(raw in arb_records()) {
            let recs = build_records(&raw);
            let store = TraceStore::from_records(&recs);
            prop_assert_eq!(store.to_records(), recs);
        }

        /// Absorbing split halves equals building from the concatenation —
        /// records, interning, and statistics alike.
        #[test]
        fn prop_absorb_matches_sequential(raw in arb_records(), cut in 0usize..25) {
            let recs = build_records(&raw);
            let cut = cut.min(recs.len());
            let mut merged = TraceStore::from_records(&recs[..cut]);
            merged.absorb(&TraceStore::from_records(&recs[cut..]));
            let direct = TraceStore::from_records(&recs);
            prop_assert_eq!(merged.to_records(), direct.to_records());
            prop_assert_eq!(merged.stats(), direct.stats());
        }

        /// The dedup accounting identities: hop slots equal the sum of hop
        /// counts, and the sequence arena never exceeds the slot count.
        #[test]
        fn prop_stats_identities(raw in arb_records()) {
            let recs = build_records(&raw);
            let store = TraceStore::from_records(&recs);
            let s = store.stats();
            prop_assert_eq!(s.hop_slots, recs.iter().map(|r| r.hops.len()).sum::<usize>());
            prop_assert!(s.seq_slots <= s.hop_slots);
            prop_assert_eq!(s.traces, recs.len());
        }
    }
}
