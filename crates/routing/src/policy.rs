//! Gao–Rexford valley-free route computation.
//!
//! For one destination AS, computes every other AS's selected route under
//! the standard policy model:
//!
//! 1. routes learned from customers are preferred over routes learned from
//!    peers, which beat routes learned from providers;
//! 2. among same-class routes, shorter AS paths win;
//! 3. remaining ties break deterministically by a salted hash of
//!    (destination, chooser, candidate next hop) — the stand-in for opaque
//!    local-preference policy, salted per protocol so IPv4 and IPv6 can
//!    diverge.
//!
//! Export rules are enforced by construction: customer routes propagate
//!    everywhere; peer/provider routes propagate only to customers. The
//! resulting per-AS next-hop tables are guaranteed valley-free.

use s2s_types::rel::AsRel;

/// One AS's selected route toward the destination.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouteEntry {
    /// Next-hop AS (index).
    pub next: u32,
    /// Preference class of the route: 0 = learned from customer, 1 = from
    /// peer, 2 = from provider. The destination itself has rank 0.
    pub rank: u8,
    /// AS-path length (hops to the destination; 0 at the destination).
    pub len: u8,
}

/// Predicate deciding whether the AS-level edge between two adjacent ASes is
/// usable (at least one live interconnect link carrying the protocol).
pub trait EdgeAvailability {
    /// True when traffic can cross directly between ASes `a` and `b`.
    fn edge_up(&self, a: usize, b: usize) -> bool;
}

/// Availability that never fails (the base configuration).
pub struct AllUp;

impl EdgeAvailability for AllUp {
    fn edge_up(&self, _: usize, _: usize) -> bool {
        true
    }
}

impl<F: Fn(usize, usize) -> bool> EdgeAvailability for F {
    fn edge_up(&self, a: usize, b: usize) -> bool {
        self(a, b)
    }
}

/// Deterministic tie-break score; lower wins. Mixes destination, chooser,
/// candidate and a salt (protocol) so preferences look arbitrary-but-fixed,
/// like real local-pref policy.
fn tiebreak(dst: usize, chooser: usize, candidate: usize, salt: u64) -> u64 {
    let mut h = 0xcbf29ce484222325u64 ^ salt;
    for v in [dst as u64, chooser as u64, candidate as u64] {
        h ^= v.wrapping_add(0x9e3779b97f4a7c15);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Computes every AS's selected route toward destination `dst`.
///
/// * `adj[i]` lists `(neighbor, rel)` with `rel` = AS `i`'s relationship
///   toward the neighbor.
/// * `avail` filters AS edges (down links, v4-only links).
/// * `salt` feeds the tie-break (use the protocol).
///
/// Returns a vector indexed by AS: `None` for unreachable ASes, and the
/// destination itself holds `RouteEntry { next: dst, rank: 0, len: 0 }`.
pub fn compute_routes(
    adj: &[Vec<(usize, AsRel)>],
    dst: usize,
    avail: &impl EdgeAvailability,
    salt: u64,
) -> Vec<Option<RouteEntry>> {
    let n = adj.len();
    assert!(dst < n, "destination {dst} out of range");
    let mut routes: Vec<Option<RouteEntry>> = vec![None; n];
    routes[dst] = Some(RouteEntry { next: dst as u32, rank: 0, len: 0 });

    // Phase 1 — customer routes: BFS from dst climbing provider edges.
    // An AS x reached via its customer c selects next-hop c with rank 0.
    let mut frontier = vec![dst];
    let mut depth: u8 = 0;
    while !frontier.is_empty() && depth < u8::MAX {
        depth += 1;
        let mut next_frontier = Vec::new();
        // Collect candidates at this depth first so equal-length choices
        // tie-break fairly rather than first-come-first-served.
        let mut candidates: Vec<(usize, usize)> = Vec::new(); // (x, via customer c)
        for &c in &frontier {
            for &(x, rel_c_to_x) in &adj[c] {
                // x learns from c when c exports upward: c regards x as its
                // Provider, i.e. x regards c as Customer.
                if rel_c_to_x == AsRel::Provider
                    && routes[x].is_none()
                    && avail.edge_up(c, x)
                {
                    candidates.push((x, c));
                }
            }
        }
        candidates.sort_by_key(|&(x, c)| (x, tiebreak(dst, x, c, salt)));
        let mut last_x = usize::MAX;
        for (x, c) in candidates {
            if x != last_x {
                routes[x] = Some(RouteEntry { next: c as u32, rank: 0, len: depth });
                next_frontier.push(x);
                last_x = x;
            }
        }
        frontier = next_frontier;
    }

    // Phase 2 — peer routes: one hop across a peering edge from any AS with
    // a customer route (or the destination).
    let mut peer_candidates: Vec<(usize, usize, u8)> = Vec::new(); // (x, via n, len)
    for x in 0..n {
        if routes[x].is_some() {
            continue;
        }
        for &(p, rel_x_to_p) in &adj[x] {
            if rel_x_to_p != AsRel::Peer || !avail.edge_up(x, p) {
                continue;
            }
            if let Some(r) = routes[p] {
                if r.rank == 0 {
                    peer_candidates.push((x, p, r.len + 1));
                }
            }
        }
    }
    peer_candidates.sort_by_key(|&(x, p, len)| (x, len, tiebreak(dst, x, p, salt)));
    let mut last_x = usize::MAX;
    for (x, p, len) in peer_candidates {
        if x != last_x {
            routes[x] = Some(RouteEntry { next: p as u32, rank: 1, len });
            last_x = x;
        }
    }

    // Phase 3 — provider routes: Dijkstra (unit weights → BFS by length)
    // from every routed AS down provider→customer edges. Provider routes
    // can chain through other provider routes.
    use std::collections::BinaryHeap;
    #[derive(PartialEq, Eq)]
    struct Item {
        len: u8,
        tb: u64,
        x: usize,
        via: usize,
    }
    impl Ord for Item {
        fn cmp(&self, o: &Self) -> std::cmp::Ordering {
            // Min-heap on (len, tiebreak).
            (o.len, o.tb).cmp(&(self.len, self.tb))
        }
    }
    impl PartialOrd for Item {
        fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(o))
        }
    }
    let mut heap = BinaryHeap::new();
    for x in 0..n {
        if let Some(r) = routes[x] {
            // x exports its selected route to its customers.
            for &(c, rel_x_to_c) in &adj[x] {
                if rel_x_to_c == AsRel::Customer
                    && routes[c].is_none()
                    && avail.edge_up(x, c)
                {
                    heap.push(Item {
                        len: r.len + 1,
                        tb: tiebreak(dst, c, x, salt),
                        x: c,
                        via: x,
                    });
                }
            }
        }
    }
    while let Some(Item { len, x, via, .. }) = heap.pop() {
        if routes[x].is_some() {
            continue;
        }
        routes[x] = Some(RouteEntry { next: via as u32, rank: 2, len });
        for &(c, rel_x_to_c) in &adj[x] {
            if rel_x_to_c == AsRel::Customer && routes[c].is_none() && avail.edge_up(x, c)
            {
                heap.push(Item {
                    len: len + 1,
                    tb: tiebreak(dst, c, x, salt),
                    x: c,
                    via: x,
                });
            }
        }
    }

    routes
}

/// Reconstructs the AS-index path from `src` to `dst` by following selected
/// next hops. `None` when `src` has no route.
pub fn reconstruct_path(
    routes: &[Option<RouteEntry>],
    src: usize,
    dst: usize,
) -> Option<Vec<usize>> {
    let mut path = vec![src];
    let mut cur = src;
    while cur != dst {
        let r = routes[cur]?;
        let next = r.next as usize;
        debug_assert!(
            !path.contains(&next),
            "next-hop chain loops: {path:?} -> {next}"
        );
        path.push(next);
        cur = next;
        if path.len() > routes.len() {
            return None; // defensive: corrupt table
        }
    }
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2s_types::rel::AsRel::*;

    /// Builds adjacency from (a, b, a's rel toward b) triples.
    fn graph(n: usize, edges: &[(usize, usize, AsRel)]) -> Vec<Vec<(usize, AsRel)>> {
        let mut adj = vec![Vec::new(); n];
        for &(a, b, rel) in edges {
            adj[a].push((b, rel));
            adj[b].push((a, rel.inverse()));
        }
        adj
    }

    /// A classic two-tier-1 diamond:
    ///   0 -- 1 are tier-1 peers; 2 is customer of 0; 3 is customer of 1;
    ///   4 is customer of both 2 and 3.
    fn diamond() -> Vec<Vec<(usize, AsRel)>> {
        graph(
            5,
            &[
                (0, 1, Peer),
                (2, 0, Provider), // 2's provider is 0
                (3, 1, Provider),
                (4, 2, Provider),
                (4, 3, Provider),
            ],
        )
    }

    #[test]
    fn customer_routes_preferred() {
        let adj = diamond();
        // Routes toward 4: AS 2 and AS 3 both have customer routes.
        let r = compute_routes(&adj, 4, &AllUp, 0);
        assert_eq!(r[2].unwrap().rank, 0);
        assert_eq!(r[2].unwrap().len, 1);
        assert_eq!(r[3].unwrap().rank, 0);
        // Tier-1 0 reaches 4 via its customer 2 (customer route, len 2).
        assert_eq!(r[0].unwrap().rank, 0);
        assert_eq!(r[0].unwrap().next, 2);
        assert_eq!(r[0].unwrap().len, 2);
    }

    #[test]
    fn peer_routes_cross_the_top() {
        let adj = diamond();
        // Routes toward 2 (customer of 0 only): AS 1 must cross the peering.
        let r = compute_routes(&adj, 2, &AllUp, 0);
        assert_eq!(r[1].unwrap().rank, 1, "tier-1 1 uses the peer route");
        assert_eq!(r[1].unwrap().next, 0);
        // AS 3 has no customer/peer route to 2; it goes up to provider 1.
        assert_eq!(r[3].unwrap().rank, 2);
        let path = reconstruct_path(&r, 3, 2).unwrap();
        assert_eq!(path, vec![3, 1, 0, 2]);
    }

    #[test]
    fn valley_free_invariant_holds() {
        let adj = diamond();
        for dst in 0..5 {
            let r = compute_routes(&adj, dst, &AllUp, 0);
            for src in 0..5 {
                let path = reconstruct_path(&r, src, dst).expect("connected");
                assert_valley_free(&adj, &path);
            }
        }
    }

    /// Once a path goes down (provider→customer) or sideways (peer), it may
    /// never go up (customer→provider) or sideways again.
    fn assert_valley_free(adj: &[Vec<(usize, AsRel)>], path: &[usize]) {
        let mut descending = false;
        for w in path.windows(2) {
            let rel = adj[w[0]]
                .iter()
                .find(|(n, _)| *n == w[1])
                .map(|(_, r)| *r)
                .expect("adjacent");
            match rel {
                Provider => {
                    assert!(!descending, "valley in path {path:?}");
                }
                Peer => {
                    assert!(!descending, "peer after descent in {path:?}");
                    descending = true;
                }
                Customer => descending = true,
            }
        }
    }

    #[test]
    fn unreachable_when_edges_down() {
        let adj = diamond();
        // Take down both of 4's transit edges.
        let avail =
            |a: usize, b: usize| !matches!((a.min(b), a.max(b)), (2, 4) | (3, 4));
        let r = compute_routes(&adj, 4, &avail, 0);
        assert!(r[0].is_none());
        assert!(r[2].is_none());
        assert_eq!(r[4].unwrap().len, 0, "destination always routes to itself");
    }

    #[test]
    fn failover_lengthens_path() {
        let adj = diamond();
        // 4 -> 2 -> 0: base route for 0 toward 4 has len 2 via customer 2.
        let avail = |a: usize, b: usize| (a.min(b), a.max(b)) != (2, 4);
        let r = compute_routes(&adj, 4, &avail, 0);
        // Now 0 must go 0 -> 1 -> 3 -> 4? 0's options: customer 2 has no
        // route; peer 1 has customer route (1->3->4, len 2). So 0 via peer.
        assert_eq!(r[0].unwrap().rank, 1);
        let p = reconstruct_path(&r, 0, 4).unwrap();
        assert_eq!(p, vec![0, 1, 3, 4]);
    }

    #[test]
    fn salt_changes_tiebreaks_somewhere() {
        // A graph with genuine ties: 4 has two providers, both reaching dst
        // with equal rank/len.
        let adj = diamond();
        // Route from 4 toward 0: via 2 (customer route of 2? no - 2's route
        // to 0 is provider route). 4's options: provider 2 (len 2) and
        // provider 3 (len 3 via 1..0). Here lens differ; make symmetric dst.
        // Instead check: over many destinations and salts, selected tables
        // differ for at least one (graph ties exist between 2/3 for some).
        let mut differs = false;
        for dst in 0..5 {
            let a = compute_routes(&adj, dst, &AllUp, 1);
            let b = compute_routes(&adj, dst, &AllUp, 2);
            if a != b {
                differs = true;
            }
        }
        // The diamond is small; ties may resolve identically. Build a graph
        // with a guaranteed tie: dst 0 with two equal providers 1 and 2 both
        // customers of 3... then 3 -> 0 has two equal-rank equal-len options.
        let adj2 = graph(
            4,
            &[
                (0, 1, Provider),
                (0, 2, Provider),
                (1, 3, Provider),
                (2, 3, Provider),
            ],
        );
        for salt in 0..64u64 {
            let r = compute_routes(&adj2, 0, &AllUp, salt);
            let n = r[3].unwrap().next;
            if n == 2 {
                differs = true;
            }
        }
        assert!(differs, "tie-break never flipped across salts");
    }

    #[test]
    fn reconstruct_none_when_unrouted() {
        let adj = graph(3, &[(0, 1, Peer)]);
        let r = compute_routes(&adj, 0, &AllUp, 0);
        assert_eq!(reconstruct_path(&r, 2, 0), None);
        // Peer 1 reaches 0 directly.
        assert_eq!(reconstruct_path(&r, 1, 0), Some(vec![1, 0]));
    }

    #[test]
    fn topology_scale_routes_everyone() {
        use s2s_topology::{build_topology, TopologyParams};
        let t = build_topology(&TopologyParams::tiny(3));
        // Every non-fabric AS should reach every other.
        let dst = 0; // a tier-1
        let r = compute_routes(&t.as_adj, dst, &AllUp, 0);
        for (i, a) in t.ases.iter().enumerate() {
            if a.kind == s2s_topology::AsKind::IxpFabric {
                continue;
            }
            assert!(r[i].is_some(), "{} has no route to tier-1", a.asn);
            let p = reconstruct_path(&r, i, dst).unwrap();
            assert!(p.len() <= 8, "suspiciously long path {p:?}");
        }
    }

    #[test]
    fn paths_are_loop_free_at_scale() {
        use s2s_topology::{build_topology, TopologyParams};
        let t = build_topology(&TopologyParams::tiny(8));
        for dst in (0..t.ases.len()).step_by(7) {
            let r = compute_routes(&t.as_adj, dst, &AllUp, 1);
            for src in (0..t.ases.len()).step_by(5) {
                if let Some(p) = reconstruct_path(&r, src, dst) {
                    let mut sorted = p.clone();
                    sorted.sort_unstable();
                    sorted.dedup();
                    assert_eq!(sorted.len(), p.len(), "loop in {p:?}");
                }
            }
        }
    }
}
