//! The routing oracle: snapshot queries over policy routing + dynamics.
//!
//! `s2s-netsim` and `s2s-probe` ask one question: *what router-level path
//! does a packet take between these two clusters, over this protocol, at
//! this time, for this flow?* The oracle answers by:
//!
//! 1. deriving the AS-level availability configuration at `t` from the
//!    failure dynamics (an AS edge is down when every interconnect link
//!    carrying the protocol between the two ASes is down),
//! 2. computing (and caching) the valley-free route table for the
//!    destination AS under that configuration,
//! 3. expanding the AS path to routers: per AS-edge crossing, an ECMP
//!    choice among live parallel links keyed on the flow hash; inside each
//!    AS, the delay-shortest backbone path.
//!
//! Caching exploits the fact that routing is **piecewise-constant over
//! availability epochs**: the down-link set only changes at episode
//! breakpoints, so the whole horizon decomposes into epochs (see
//! `Dynamics::epochs`) inside which every routing outcome is fixed. The
//! oracle memoizes, per (epoch, protocol), the availability configuration
//! (down AS-edge set + hash) — computed once per epoch instead of once per
//! probe — and keeps per-configuration route tables and AS paths in a
//! bounded true-LRU cache shared via `Arc` (distinct epochs frequently map
//! to the same configuration, so the config layer stays small while the
//! epoch layer stays O(1) per query).

use crate::dynamics::Dynamics;
use crate::intra::IntraAsPaths;
use crate::policy::{compute_routes, reconstruct_path, RouteEntry};
use parking_lot::RwLock;
use s2s_topology::Topology;
use s2s_types::{ClusterId, LinkId, Protocol, RouterId, SimTime};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One hop of an expanded router-level path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hop {
    /// The router the packet reaches.
    pub router: RouterId,
    /// The link it arrived on (its ingress interface identifies the hop in
    /// traceroute output).
    pub ingress_link: LinkId,
    /// Hidden from traceroute: an interior hop of an MPLS network with TTL
    /// propagation disabled.
    pub hidden: bool,
}

/// A fully expanded path between two cluster servers.
#[derive(Clone, Debug, PartialEq)]
pub struct RouterPath {
    /// Every router hop from the source cluster's attachment router to the
    /// destination cluster's attachment router, inclusive.
    pub hops: Vec<Hop>,
    /// The ground-truth AS-level path (AS indices, source first).
    pub as_path_idx: Vec<usize>,
    /// One-way propagation + forwarding delay in ms (no congestion/noise —
    /// `s2s-netsim` layers those on top).
    pub one_way_delay_ms: f64,
}

/// How many recent availability configurations to keep cached.
const CONFIG_CACHE_CAP: usize = 24;

/// Above this many (epoch, protocol) slots the per-epoch memo vector is
/// not allocated and configurations are derived per query (the LRU config
/// cache still bounds the expensive route-table work).
const MAX_EPOCH_SLOTS: usize = 1 << 23;

type Table = Arc<Vec<Option<RouteEntry>>>;
/// A shared AS-index path (source first).
pub type AsPath = Arc<Vec<usize>>;

/// The availability configuration of one (epoch, protocol): which AS edges
/// are down, plus the FNV hash identifying the config cache entry.
struct EpochCfg {
    hash: u64,
    down: BTreeSet<(u32, u32)>,
}

/// One cached configuration: lazily filled per-destination route tables and
/// per-(src, dst) AS paths, with an LRU recency stamp (atomic so hits can
/// refresh it under the shared read lock).
struct ConfigEntry {
    tables: HashMap<usize, Table>,
    paths: HashMap<(usize, usize), Option<AsPath>>,
    stamp: AtomicU64,
}

#[derive(Default)]
struct ConfigCache {
    /// (config hash, protocol) → cached tables/paths for that config.
    configs: HashMap<(u64, Protocol), ConfigEntry>,
    tick: AtomicU64,
}

impl ConfigCache {
    fn touch(&self, entry: &ConfigEntry) {
        entry
            .stamp
            .store(self.tick.fetch_add(1, Ordering::Relaxed) + 1, Ordering::Relaxed);
    }

    /// Get-or-insert a config entry, evicting the least recently used one
    /// beyond capacity. The returned entry's stamp is refreshed.
    fn entry_mut(
        &mut self,
        key: (u64, Protocol),
        evictions: &s2s_obs::Counter,
    ) -> &mut ConfigEntry {
        if !self.configs.contains_key(&key) {
            while self.configs.len() >= CONFIG_CACHE_CAP {
                let victim = self
                    .configs
                    .iter()
                    .min_by_key(|(_, e)| e.stamp.load(Ordering::Relaxed))
                    .map(|(k, _)| *k);
                match victim {
                    Some(v) => {
                        self.configs.remove(&v);
                        evictions.inc();
                        s2s_obs::event("oracle.cache.eviction", || {
                            format!(
                                "config (hash {:#018x}, {:?}) evicted at capacity {CONFIG_CACHE_CAP}",
                                v.0, v.1
                            )
                        });
                    }
                    None => break,
                }
            }
            self.configs.insert(
                key,
                ConfigEntry {
                    tables: HashMap::new(),
                    paths: HashMap::new(),
                    stamp: AtomicU64::new(0),
                },
            );
        }
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let entry = self.configs.get_mut(&key).expect("just ensured");
        entry.stamp.store(stamp, Ordering::Relaxed);
        entry
    }
}

/// Cache effectiveness counters (see `RouteOracle::cache_stats`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Table/path lookups answered from the config cache.
    pub hits: u64,
    /// Route-table computations (config cache misses).
    pub misses: u64,
    /// Configurations evicted from the LRU cache.
    pub evictions: u64,
    /// (epoch, protocol) configurations derived from dynamics.
    pub epoch_configs: u64,
}

/// Snapshot routing queries with caching.
pub struct RouteOracle {
    topo: Arc<Topology>,
    dynamics: Arc<Dynamics>,
    intra: IntraAsPaths,
    /// Per protocol: AS edges with at least one protocol-capable link.
    base_edges: [BTreeSet<(u32, u32)>; 2],
    cache: RwLock<ConfigCache>,
    /// Per-(epoch, protocol) availability configuration, filled lazily:
    /// slot `2 * epoch + proto`. Empty when the epoch timeline is too
    /// large (`MAX_EPOCH_SLOTS`) — then configs are derived per query.
    epoch_cfgs: RwLock<Vec<Option<Arc<EpochCfg>>>>,
    // Shared `s2s_obs` counters rather than bespoke atomics, so
    // [`RouteOracle::observe`] can expose the live cells in a registry
    // (`oracle.cache.*`) while `cache_stats()` keeps reading them directly.
    hits: Arc<s2s_obs::Counter>,
    misses: Arc<s2s_obs::Counter>,
    evictions: Arc<s2s_obs::Counter>,
    epoch_builds: Arc<s2s_obs::Counter>,
}

fn edge_key(a: usize, b: usize) -> (u32, u32) {
    ((a.min(b)) as u32, (a.max(b)) as u32)
}

fn proto_slot(p: Protocol) -> usize {
    match p {
        Protocol::V4 => 0,
        Protocol::V6 => 1,
    }
}

/// FNV-1a over a set of edges.
fn hash_edges(edges: &BTreeSet<(u32, u32)>) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &(a, b) in edges {
        for v in [a, b] {
            h ^= u64::from(v);
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Splitmix64-style finalizer: the xor-shift-right passes propagate every
/// input bit down to the low bits, so `hash % n_links` is sensitive to the
/// whole flow identifier (classic traceroute varies only a few mid bits).
fn flow_hash(flow: u64, a: usize, b: usize) -> u64 {
    let mut x = flow ^ 0x517c_c1b7_2722_0a95 ^ ((a as u64) << 32) ^ (b as u64);
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

impl RouteOracle {
    /// Creates an oracle over a topology and its failure dynamics.
    pub fn new(topo: Arc<Topology>, dynamics: Arc<Dynamics>) -> Self {
        let mut base_edges = [BTreeSet::new(), BTreeSet::new()];
        for (&(a, b), links) in &topo.interconnects {
            if !links.is_empty() {
                base_edges[0].insert(edge_key(a, b));
            }
            if links.iter().any(|&l| topo.links[l.index()].v6_enabled) {
                base_edges[1].insert(edge_key(a, b));
            }
        }
        let intra = IntraAsPaths::new(Arc::clone(&topo));
        let slots = dynamics.epoch_count().saturating_mul(2);
        let epoch_cfgs = if slots <= MAX_EPOCH_SLOTS {
            vec![None; slots]
        } else {
            Vec::new()
        };
        RouteOracle {
            topo,
            dynamics,
            intra,
            base_edges,
            cache: RwLock::new(ConfigCache::default()),
            epoch_cfgs: RwLock::new(epoch_cfgs),
            hits: Arc::new(s2s_obs::Counter::new()),
            misses: Arc::new(s2s_obs::Counter::new()),
            evictions: Arc::new(s2s_obs::Counter::new()),
            epoch_builds: Arc::new(s2s_obs::Counter::new()),
        }
    }

    /// Registers the oracle's live cache counters in `registry` under
    /// `oracle.cache.{hits,misses,evictions,epoch_configs}`. The registry
    /// shares the oracle's own cells — no sampling, no copying — so a
    /// snapshot taken at any point reflects the counts
    /// [`cache_stats`](Self::cache_stats) would report.
    pub fn observe(&self, registry: &s2s_obs::Registry) {
        registry.register_counter("oracle.cache.hits", Arc::clone(&self.hits));
        registry.register_counter("oracle.cache.misses", Arc::clone(&self.misses));
        registry.register_counter("oracle.cache.evictions", Arc::clone(&self.evictions));
        registry.register_counter("oracle.cache.epoch_configs", Arc::clone(&self.epoch_builds));
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    /// The underlying dynamics.
    pub fn dynamics(&self) -> &Dynamics {
        &self.dynamics
    }

    /// Live interconnect links between two ASes for a protocol at `t`.
    pub fn live_links(
        &self,
        a: usize,
        b: usize,
        proto: Protocol,
        t: SimTime,
    ) -> Vec<LinkId> {
        self.topo
            .interconnects_between(a, b)
            .iter()
            .copied()
            .filter(|&l| {
                let link = &self.topo.links[l.index()];
                (proto == Protocol::V4 || link.v6_enabled) && self.dynamics.link_up(l, t)
            })
            .collect()
    }

    /// The AS edges (normally present for `proto`) that are unavailable at
    /// `t` because every carrying link is down.
    fn down_edges(&self, proto: Protocol, t: SimTime) -> BTreeSet<(u32, u32)> {
        let mut affected: BTreeSet<(u32, u32)> = BTreeSet::new();
        for &l in self.dynamics.down_links(t).iter() {
            let link = &self.topo.links[l.index()];
            if !link.kind.is_interconnect() {
                continue;
            }
            let a = self.topo.routers[link.a.index()].as_idx;
            let b = self.topo.routers[link.b.index()].as_idx;
            let key = edge_key(a, b);
            if !self.base_edges[proto_slot(proto)].contains(&key) {
                continue;
            }
            if self.live_links(a, b, proto, t).is_empty() {
                affected.insert(key);
            }
        }
        affected
    }

    /// The availability configuration of the epoch containing `t`,
    /// memoized per (epoch, protocol). This is the tentpole fast path: the
    /// down-edge derivation (an O(links) scan) runs once per epoch instead
    /// of once per probe.
    fn epoch_config(&self, proto: Protocol, t: SimTime) -> Arc<EpochCfg> {
        let slot = 2 * self.dynamics.epoch_of(t) + proto_slot(proto);
        {
            let cfgs = self.epoch_cfgs.read();
            match cfgs.get(slot) {
                Some(Some(cfg)) => return Arc::clone(cfg),
                Some(None) => {}
                // Memo disabled (epoch timeline too large): derive fresh.
                None => drop(cfgs),
            }
        }
        let down = s2s_obs::timed("oracle.epoch_config", || self.down_edges(proto, t));
        let cfg = Arc::new(EpochCfg { hash: hash_edges(&down), down });
        self.epoch_builds.inc();
        let mut cfgs = self.epoch_cfgs.write();
        if let Some(entry) = cfgs.get_mut(slot) {
            // Another thread may have raced us here; share its result so
            // every query in the epoch sees one Arc.
            if let Some(existing) = entry {
                return Arc::clone(existing);
            }
            *entry = Some(Arc::clone(&cfg));
        }
        cfg
    }

    /// The route table toward `dst_as` under configuration `cfg`.
    fn table_for(&self, cfg: &EpochCfg, dst_as: usize, proto: Protocol) -> Table {
        let key = (cfg.hash, proto);
        {
            let cache = self.cache.read();
            if let Some(entry) = cache.configs.get(&key) {
                if let Some(tbl) = entry.tables.get(&dst_as) {
                    cache.touch(entry);
                    self.hits.inc();
                    return Arc::clone(tbl);
                }
            }
        }
        // Compute outside the lock.
        let slot = proto_slot(proto);
        let base = &self.base_edges[slot];
        let down = &cfg.down;
        let avail = |a: usize, b: usize| {
            let k = edge_key(a, b);
            base.contains(&k) && !down.contains(&k)
        };
        let salt = 0xA5A5_0000 + slot as u64;
        let tbl: Table = s2s_obs::timed("oracle.route_compute", || {
            Arc::new(compute_routes(&self.topo.as_adj, dst_as, &avail, salt))
        });
        self.misses.inc();
        let mut cache = self.cache.write();
        let entry = cache.entry_mut(key, &self.evictions);
        // Keep the first computed table if another thread raced us, so all
        // holders share one allocation.
        Arc::clone(entry.tables.entry(dst_as).or_insert(tbl))
    }

    /// The AS-index path from `src_as` to `dst_as` at `t`, or `None` when
    /// unreachable (or, for IPv6, when either end is not dual-stack).
    pub fn as_path_idx(
        &self,
        src_as: usize,
        dst_as: usize,
        proto: Protocol,
        t: SimTime,
    ) -> Option<Vec<usize>> {
        self.as_path_shared(src_as, dst_as, proto, t)
            .map(|p| (*p).clone())
    }

    /// Shared-allocation variant of [`as_path_idx`](Self::as_path_idx):
    /// the path is memoized per (configuration, src, dst) so repeated
    /// queries within an epoch return the same `Arc`.
    pub fn as_path_shared(
        &self,
        src_as: usize,
        dst_as: usize,
        proto: Protocol,
        t: SimTime,
    ) -> Option<AsPath> {
        if proto == Protocol::V6
            && !(self.topo.ases[src_as].dual_stack && self.topo.ases[dst_as].dual_stack)
        {
            return None;
        }
        let cfg = self.epoch_config(proto, t);
        let key = (cfg.hash, proto);
        {
            let cache = self.cache.read();
            if let Some(entry) = cache.configs.get(&key) {
                if let Some(p) = entry.paths.get(&(src_as, dst_as)) {
                    cache.touch(entry);
                    self.hits.inc();
                    return p.clone();
                }
            }
        }
        let path = if src_as == dst_as {
            Some(Arc::new(vec![src_as]))
        } else {
            let tbl = self.table_for(&cfg, dst_as, proto);
            reconstruct_path(&tbl, src_as, dst_as).map(Arc::new)
        };
        let mut cache = self.cache.write();
        let entry = cache.entry_mut(key, &self.evictions);
        entry
            .paths
            .entry((src_as, dst_as))
            .or_insert(path)
            .clone()
    }

    /// Cache effectiveness counters since construction.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            epoch_configs: self.epoch_builds.get(),
        }
    }

    /// Expands the full router-level path between two cluster servers.
    ///
    /// `flow` keys the ECMP hash: keep it constant per (src, dst, proto) to
    /// model Paris traceroute / real TCP flows; vary it per probe to model
    /// classic traceroute.
    pub fn router_path(
        &self,
        src: ClusterId,
        dst: ClusterId,
        proto: Protocol,
        t: SimTime,
        flow: u64,
    ) -> Option<RouterPath> {
        let topo = &self.topo;
        let cs = &topo.clusters[src.index()];
        let cd = &topo.clusters[dst.index()];
        let as_path = self.as_path_shared(cs.host_as, cd.host_as, proto, t)?;

        let mut hops: Vec<(RouterId, LinkId)> = Vec::with_capacity(16);
        // The source server's first hop: its attachment router, identified
        // by the access link toward the PoP core.
        let access_src = *topo.router_links[cs.router.index()].first()?;
        hops.push((cs.router, access_src));
        let mut cur = cs.router;

        // Walk the AS path, crossing one interconnect per adjacent AS pair.
        for win in as_path.windows(2) {
            let (x, y) = (win[0], win[1]);
            let mut live = self.live_links(x, y, proto, t);
            if live.is_empty() {
                return None; // inconsistent only if dynamics changed mid-walk
            }
            // Hot-potato egress: prefer the interconnects whose AS-x-side
            // router is nearest to where the packet currently is; ECMP
            // load-balances only among the two closest candidates.
            if live.len() > 2 {
                let here = topo.router_city(cur).point();
                live.sort_by(|&la, &lb| {
                    let ra = self.egress_router(la, x);
                    let rb = self.egress_router(lb, x);
                    let da = topo.router_city(ra).point().distance_km(&here);
                    let db = topo.router_city(rb).point().distance_km(&here);
                    da.partial_cmp(&db).unwrap().then(la.cmp(&lb))
                });
                live.truncate(2);
            }
            let pick = live[(flow_hash(flow, x, y) % live.len() as u64) as usize];
            let link = &topo.links[pick.index()];
            let (egress, ingress) = if topo.routers[link.a.index()].as_idx == x {
                (link.a, link.b)
            } else {
                (link.b, link.a)
            };
            // Inside AS x: from wherever we are to the egress router.
            for &(r, l) in self.intra.path_shared(cur, egress)?.iter() {
                hops.push((r, l));
            }
            hops.push((ingress, pick));
            cur = ingress;
        }
        // Inside the destination AS: to the destination cluster router.
        for &(r, l) in self.intra.path_shared(cur, cd.router)?.iter() {
            hops.push((r, l));
        }

        // Delay and MPLS-hiding pass.
        let mut delay = 0.0;
        let n = hops.len();
        let mut out = Vec::with_capacity(n);
        for (i, &(r, l)) in hops.iter().enumerate() {
            delay += topo.links[l.index()].delay_ms + 0.05;
            let as_r = topo.routers[r.index()].as_idx;
            let hidden = topo.ases[as_r].mpls
                && i > 0
                && i + 1 < n
                && topo.routers[hops[i - 1].0.index()].as_idx == as_r
                && topo.routers[hops[i + 1].0.index()].as_idx == as_r;
            out.push(Hop { router: r, ingress_link: l, hidden });
        }

        Some(RouterPath { hops: out, as_path_idx: (*as_path).clone(), one_way_delay_ms: delay })
    }

    /// Intra-AS path helper exposed for colocated-cluster campaigns.
    pub fn intra_paths(&self) -> &IntraAsPaths {
        &self.intra
    }

    /// The endpoint of `link` that sits inside AS `x`.
    fn egress_router(&self, link: LinkId, x: usize) -> RouterId {
        let l = &self.topo.links[link.index()];
        if self.topo.routers[l.a.index()].as_idx == x {
            l.a
        } else {
            l.b
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::DynamicsParams;
    use s2s_topology::{build_topology, TopologyParams};

    fn setup() -> RouteOracle {
        let topo = Arc::new(build_topology(&TopologyParams::tiny(77)));
        let dynamics =
            Arc::new(Dynamics::all_up(&topo, SimTime::from_days(30)));
        RouteOracle::new(topo, dynamics)
    }

    fn setup_dynamic(seed: u64) -> RouteOracle {
        let topo = Arc::new(build_topology(&TopologyParams::tiny(seed)));
        let dynamics = Arc::new(Dynamics::generate(
            &topo,
            &DynamicsParams {
                seed,
                horizon: SimTime::from_days(60),
                stable_fraction: 0.2,
                mean_episodes: 8.0,
                ..DynamicsParams::default()
            },
        ));
        RouteOracle::new(topo, dynamics)
    }

    #[test]
    fn config_cache_is_lru_not_fifo() {
        // Regression: the old eviction was insertion-order FIFO — a hit
        // never refreshed recency, so two configs that stay hot forever
        // (e.g. a link flapping between two availability states) were
        // evicted as soon as CONFIG_CACHE_CAP other configs had been seen,
        // and then recomputed on every alternation.
        let mut c = ConfigCache::default();
        let ev = s2s_obs::Counter::new();
        let key_a = (0xAu64, Protocol::V4);
        let key_b = (0xBu64, Protocol::V4);
        c.entry_mut(key_a, &ev);
        c.entry_mut(key_b, &ev);
        for i in 0..(3 * CONFIG_CACHE_CAP as u64) {
            c.entry_mut((0x1000 + i, Protocol::V4), &ev);
            // The alternating hot configs keep hitting, which under true
            // LRU refreshes their recency.
            c.touch(&c.configs[&key_a]);
            c.touch(&c.configs[&key_b]);
        }
        assert!(c.configs.len() <= CONFIG_CACHE_CAP);
        assert!(
            c.configs.contains_key(&key_a) && c.configs.contains_key(&key_b),
            "hot alternating configs were evicted: FIFO thrash is back"
        );
        assert!(ev.get() > 0, "cold configs should evict");
    }

    #[test]
    fn observe_exposes_the_live_cache_counters() {
        let o = setup_dynamic(11);
        let reg = s2s_obs::Registry::new();
        o.observe(&reg);
        let hits = reg.counter("oracle.cache.hits");
        let misses = reg.counter("oracle.cache.misses");
        assert_eq!((hits.get(), misses.get()), (0, 0));
        for _ in 0..3 {
            o.as_path_idx(0, 1, Protocol::V4, SimTime::T0);
        }
        let stats = o.cache_stats();
        assert!(stats.hits > 0 && stats.misses > 0);
        // Same cells, not copies: the registry view tracks cache_stats().
        assert_eq!(hits.get(), stats.hits);
        assert_eq!(misses.get(), stats.misses);
        assert_eq!(reg.counter("oracle.cache.epoch_configs").get(), stats.epoch_configs);
    }

    #[test]
    fn epoch_memo_matches_direct_derivation() {
        // Every query must see the exact configuration the old per-probe
        // derivation would have produced, at breakpoints included.
        let o = setup_dynamic(11);
        let idx = o.dynamics().epochs().clone();
        for e in (0..idx.len()).step_by(idx.len() / 24 + 1) {
            let t = idx.start_of(e);
            for proto in [Protocol::V4, Protocol::V6] {
                let cfg = o.epoch_config(proto, t);
                let direct = o.down_edges(proto, t);
                assert_eq!(cfg.down, direct, "epoch {e} {proto:?}");
                assert_eq!(cfg.hash, hash_edges(&direct));
                // Second query shares the memoized Arc.
                assert!(Arc::ptr_eq(&cfg, &o.epoch_config(proto, t)));
            }
        }
        let stats = o.cache_stats();
        assert!(stats.epoch_configs > 0);
    }

    #[test]
    fn as_paths_are_shared_within_an_epoch() {
        let o = setup();
        let t0 = SimTime::from_days(1);
        let topo = o.topology();
        let (a, b) = (topo.clusters[0].host_as, topo.clusters[5].host_as);
        let p1 = o.as_path_shared(a, b, Protocol::V4, t0).unwrap();
        let p2 = o.as_path_shared(a, b, Protocol::V4, t0).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2), "repeated query reallocated the path");
        assert_eq!(o.as_path_idx(a, b, Protocol::V4, t0).unwrap(), *p1);
    }

    #[test]
    fn campaign_style_sweep_has_near_perfect_hit_rate() {
        let o = setup_dynamic(23);
        let n = o.topology().clusters.len();
        for day in 0..30 {
            let t = SimTime::from_days(day);
            for a in 0..n {
                for b in 0..n {
                    if a != b {
                        o.router_path(
                            ClusterId::from(a),
                            ClusterId::from(b),
                            Protocol::V4,
                            t,
                            1,
                        );
                    }
                }
            }
        }
        let s = o.cache_stats();
        assert!(
            s.hits > 10 * s.misses,
            "cache ineffective: {s:?}"
        );
        // One config derivation per (touched epoch, protocol), not per probe.
        assert!(s.epoch_configs <= 2 * o.dynamics().epoch_count() as u64);
    }

    #[test]
    fn all_cluster_pairs_have_v4_paths() {
        let o = setup();
        let t0 = SimTime::from_days(1);
        let n = o.topology().clusters.len();
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let p = o.router_path(
                    ClusterId::from(a),
                    ClusterId::from(b),
                    Protocol::V4,
                    t0,
                    1,
                );
                assert!(p.is_some(), "no v4 path {a} -> {b}");
            }
        }
    }

    #[test]
    fn paths_start_and_end_at_cluster_routers() {
        let o = setup();
        let t0 = SimTime::from_days(1);
        let p = o
            .router_path(ClusterId::new(0), ClusterId::new(5), Protocol::V4, t0, 1)
            .unwrap();
        let topo = o.topology();
        assert_eq!(p.hops.first().unwrap().router, topo.clusters[0].router);
        assert_eq!(p.hops.last().unwrap().router, topo.clusters[5].router);
        assert!(p.one_way_delay_ms > 0.0);
    }

    #[test]
    fn as_path_matches_hop_ases() {
        let o = setup();
        let topo = o.topology();
        let t0 = SimTime::from_days(2);
        let p = o
            .router_path(ClusterId::new(1), ClusterId::new(9), Protocol::V4, t0, 3)
            .unwrap();
        // The sequence of hop ASes, deduplicated, must equal as_path_idx.
        let mut seen = Vec::new();
        for h in &p.hops {
            let a = topo.routers[h.router.index()].as_idx;
            if seen.last() != Some(&a) {
                seen.push(a);
            }
        }
        assert_eq!(seen, p.as_path_idx);
    }

    #[test]
    fn hop_ingress_links_chain() {
        let o = setup();
        let topo = o.topology();
        let t0 = SimTime::T0;
        let p = o
            .router_path(ClusterId::new(2), ClusterId::new(7), Protocol::V4, t0, 9)
            .unwrap();
        for w in p.hops.windows(2) {
            let link = &topo.links[w[1].ingress_link.index()];
            assert_eq!(link.other_end(w[1].router), w[0].router);
        }
    }

    #[test]
    fn v6_paths_exist_between_dual_stack_clusters() {
        let o = setup();
        let t0 = SimTime::from_days(1);
        let mut found = 0;
        let n = o.topology().clusters.len();
        for a in 0..n.min(8) {
            for b in 0..n.min(8) {
                if a != b
                    && o.router_path(
                        ClusterId::from(a),
                        ClusterId::from(b),
                        Protocol::V6,
                        t0,
                        1,
                    )
                    .is_some()
                {
                    found += 1;
                }
            }
        }
        assert!(found > 20, "only {found} v6 paths");
    }

    #[test]
    fn queries_are_deterministic() {
        let o = setup();
        let t0 = SimTime::from_days(3);
        let a = o.router_path(ClusterId::new(0), ClusterId::new(3), Protocol::V4, t0, 7);
        let b = o.router_path(ClusterId::new(0), ClusterId::new(3), Protocol::V4, t0, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn ecmp_flow_changes_path_somewhere() {
        let o = setup();
        let t0 = SimTime::from_days(1);
        let n = o.topology().clusters.len();
        let mut diverged = false;
        'outer: for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let p1 = o.router_path(
                    ClusterId::from(a),
                    ClusterId::from(b),
                    Protocol::V4,
                    t0,
                    1,
                );
                let p2 = o.router_path(
                    ClusterId::from(a),
                    ClusterId::from(b),
                    Protocol::V4,
                    t0,
                    999_999,
                );
                if p1 != p2 {
                    diverged = true;
                    break 'outer;
                }
            }
        }
        assert!(diverged, "ECMP never picked a different parallel link");
    }

    #[test]
    fn routing_changes_over_time_with_dynamics() {
        let o = setup_dynamic(5);
        let n = o.topology().clusters.len();
        let mut changed = false;
        'outer: for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let mut last: Option<Vec<usize>> = None;
                for day in 0..60 {
                    let t = SimTime::from_days(day);
                    let p = o.as_path_idx(
                        o.topology().clusters[a].host_as,
                        o.topology().clusters[b].host_as,
                        Protocol::V4,
                        t,
                    );
                    if let Some(p) = p {
                        if let Some(prev) = &last {
                            if *prev != p {
                                changed = true;
                                break 'outer;
                            }
                        }
                        last = Some(p);
                    }
                }
            }
        }
        assert!(changed, "no AS path ever changed despite heavy dynamics");
    }

    #[test]
    fn down_edge_reroutes_or_disconnects() {
        // Take down every link of one specific AS edge and verify the path
        // avoids it.
        let topo = Arc::new(build_topology(&TopologyParams::tiny(77)));
        let t_check = SimTime::from_minutes(500);
        // Pick the AS edge used by some base path.
        let base_oracle = RouteOracle::new(
            Arc::clone(&topo),
            Arc::new(Dynamics::all_up(&topo, SimTime::from_days(3))),
        );
        let base = base_oracle
            .as_path_idx(
                topo.clusters[0].host_as,
                topo.clusters[4].host_as,
                Protocol::V4,
                t_check,
            )
            .expect("base path");
        if base.len() < 2 {
            return; // same-AS pair; nothing to fail over
        }
        let (x, y) = (base[0], base[1]);
        let links = topo.interconnects_between(x, y).to_vec();
        let eps: Vec<(LinkId, u32, u32)> =
            links.iter().map(|&l| (l, 0, 2 * 24 * 60)).collect();
        let dynamics = Arc::new(Dynamics::from_episodes(
            topo.links.len(),
            eps,
            SimTime::from_days(3),
        ));
        let o = RouteOracle::new(Arc::clone(&topo), dynamics);
        // None (disconnection) is acceptable for stub-only edges.
        if let Some(p) = o.as_path_idx(
            topo.clusters[0].host_as,
            topo.clusters[4].host_as,
            Protocol::V4,
            t_check,
        ) {
            assert!(
                !(p.len() >= 2 && p[0] == x && p[1] == y),
                "path still uses the dead edge: {p:?}"
            );
        }
        // After the episode ends, the base path returns.
        let after = o
            .as_path_idx(
                topo.clusters[0].host_as,
                topo.clusters[4].host_as,
                Protocol::V4,
                SimTime::from_days(2) + s2s_types::SimDuration::from_minutes(1),
            )
            .expect("restored");
        assert_eq!(after, base);
    }

    #[test]
    fn mpls_hides_only_interior_hops() {
        let topo = Arc::new(build_topology(&TopologyParams {
            mpls_as_prob: 1.0, // every transit AS hides interior hops
            ..TopologyParams::tiny(13)
        }));
        let o = RouteOracle::new(
            Arc::clone(&topo),
            Arc::new(Dynamics::all_up(&topo, SimTime::from_days(2))),
        );
        let n = topo.clusters.len();
        let mut saw_hidden = false;
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                if let Some(p) = o.router_path(
                    ClusterId::from(a),
                    ClusterId::from(b),
                    Protocol::V4,
                    SimTime::T0,
                    1,
                ) {
                    for (i, h) in p.hops.iter().enumerate() {
                        if h.hidden {
                            saw_hidden = true;
                            // Interior: neighbors are same-AS.
                            let as_h = topo.routers[h.router.index()].as_idx;
                            let prev =
                                topo.routers[p.hops[i - 1].router.index()].as_idx;
                            let next =
                                topo.routers[p.hops[i + 1].router.index()].as_idx;
                            assert_eq!(as_h, prev);
                            assert_eq!(as_h, next);
                        }
                    }
                    // First and last hops are never hidden.
                    assert!(!p.hops.first().unwrap().hidden);
                    assert!(!p.hops.last().unwrap().hidden);
                }
            }
        }
        assert!(saw_hidden, "full-MPLS topology produced no hidden hops");
    }

    #[test]
    fn forward_and_reverse_can_differ() {
        let o = setup();
        let topo = o.topology();
        let t0 = SimTime::from_days(1);
        let mut asymmetric = false;
        let n = topo.clusters.len();
        for a in 0..n {
            for b in (a + 1)..n {
                let f = o.as_path_idx(
                    topo.clusters[a].host_as,
                    topo.clusters[b].host_as,
                    Protocol::V4,
                    t0,
                );
                let r = o.as_path_idx(
                    topo.clusters[b].host_as,
                    topo.clusters[a].host_as,
                    Protocol::V4,
                    t0,
                );
                if let (Some(mut f), Some(r)) = (f, r) {
                    f.reverse();
                    if f != r {
                        asymmetric = true;
                    }
                }
            }
        }
        assert!(asymmetric, "every pair was perfectly symmetric");
    }

    #[test]
    fn v4_and_v6_paths_can_differ() {
        let o = setup();
        let topo = o.topology();
        let t0 = SimTime::from_days(1);
        let mut differs = false;
        let n = topo.clusters.len();
        'outer: for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let p4 = o.as_path_idx(
                    topo.clusters[a].host_as,
                    topo.clusters[b].host_as,
                    Protocol::V4,
                    t0,
                );
                let p6 = o.as_path_idx(
                    topo.clusters[a].host_as,
                    topo.clusters[b].host_as,
                    Protocol::V6,
                    t0,
                );
                if let (Some(p4), Some(p6)) = (p4, p6) {
                    if p4 != p6 {
                        differs = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(differs, "v4 and v6 never diverged");
    }
}
