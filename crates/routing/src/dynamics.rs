//! Routing dynamics: seeded link-failure episodes.
//!
//! Real BGP paths change for many reasons — maintenance, failures, policy
//! shifts, traffic engineering. The paper observes only their *effects*: AS
//! paths that flip between a small set of alternatives, mostly briefly,
//! sometimes for months (Fig. 1a's multi-month level shifts; Fig. 3b's
//! heavy-tailed change counts; Fig. 4's short-lived expensive detours).
//!
//! We model all of it as interconnect-link down episodes:
//!
//! * most links are stable (no episodes over 16 months) — giving the ~18%
//!   of timelines with zero AS-path changes,
//! * failure-prone links draw a heavy-tailed (Pareto) episode rate — a few
//!   links flap dozens of times, matching the long tail of Fig. 3b,
//! * episode durations are log-normal with a wide sigma — minutes to
//!   months, so a detour can persist long enough to dominate a timeline's
//!   prevalence (Fig. 6).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use s2s_types::{LinkId, SimTime};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};

/// Parameters of the failure process.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DynamicsParams {
    /// Seed (independent of the topology seed).
    pub seed: u64,
    /// End of the modeled horizon.
    pub horizon: SimTime,
    /// Fraction of interconnect links that never fail.
    pub stable_fraction: f64,
    /// Mean episodes per failure-prone link over the horizon (the Pareto
    /// scale; the tail adds flappy links far above it).
    pub mean_episodes: f64,
    /// Pareto tail exponent for per-link episode counts (smaller = heavier).
    pub pareto_alpha: f64,
    /// Median episode duration in minutes (log-normal location).
    pub median_duration_min: f64,
    /// Log-normal sigma for durations (2.0+ spreads minutes..months).
    pub duration_sigma: f64,
    /// Fraction of AS-pair edges subject to *correlated* outages — BGP
    /// session resets, maintenance, or disputes that take every parallel
    /// link between two ASes down at once. These are what actually change
    /// AS paths (a single parallel link failing usually doesn't).
    pub edge_outage_fraction: f64,
    /// Mean correlated outages per affected edge over the horizon
    /// (Pareto-tailed like the per-link process).
    pub edge_outage_mean: f64,
}

impl Default for DynamicsParams {
    fn default() -> Self {
        DynamicsParams {
            seed: 0x5eed_d15e,
            horizon: SimTime::from_days(485),
            stable_fraction: 0.55,
            mean_episodes: 1.5,
            pareto_alpha: 2.2,
            median_duration_min: 200.0,
            duration_sigma: 2.1,
            edge_outage_fraction: 0.55,
            edge_outage_mean: 10.0,
        }
    }
}

impl DynamicsParams {
    /// A horizon-scaled copy (tests use short horizons).
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = horizon;
        self
    }
}

/// Per-link down episodes, queryable by time.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dynamics {
    /// `episodes[link] = [(down_start_min, up_again_min), ...]`, sorted,
    /// non-overlapping. Empty for stable links and all internal links.
    episodes: Vec<Vec<(u32, u32)>>,
    horizon: SimTime,
    /// Lazily built availability-epoch index. Episodes are immutable after
    /// construction, so the index never invalidates once built.
    epochs: OnceLock<Arc<EpochIndex>>,
}

/// The global availability-epoch timeline.
///
/// The set of down links only changes at episode boundaries, so the whole
/// horizon decomposes into epochs inside which every link's up/down state —
/// and therefore every routing outcome — is constant. Epoch `i` spans
/// `[starts[i], starts[i+1])` in minutes; the last epoch extends past the
/// horizon (where no episode is active, so its down set is empty whenever
/// all episodes end at or before the horizon).
#[derive(Debug)]
pub struct EpochIndex {
    /// Epoch start minutes; `starts[0] == 0`, strictly increasing.
    starts: Vec<u32>,
    /// Links down during each epoch, ascending by link id, shared so
    /// queries never copy.
    down: Vec<Arc<[LinkId]>>,
}

impl EpochIndex {
    fn build(episodes: &[Vec<(u32, u32)>]) -> EpochIndex {
        let mut starts: Vec<u32> = Vec::with_capacity(
            1 + 2 * episodes.iter().map(Vec::len).sum::<usize>(),
        );
        starts.push(0);
        for eps in episodes {
            for &(s, e) in eps {
                starts.push(s);
                starts.push(e);
            }
        }
        starts.sort_unstable();
        starts.dedup();
        // Sweep: an episode [s, e) covers exactly the epochs whose start
        // lies in [s, e). Links are visited in ascending order and each
        // link's episodes are disjoint, so every per-epoch list comes out
        // sorted without a final sort.
        let mut down: Vec<Vec<LinkId>> = vec![Vec::new(); starts.len()];
        for (li, eps) in episodes.iter().enumerate() {
            for &(s, e) in eps {
                let i0 = starts.partition_point(|&b| b < s);
                let i1 = starts.partition_point(|&b| b < e);
                for slot in &mut down[i0..i1] {
                    slot.push(LinkId::from(li));
                }
            }
        }
        EpochIndex {
            starts,
            down: down.into_iter().map(Into::into).collect(),
        }
    }

    /// Number of epochs (always ≥ 1).
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// True when the timeline is a single all-up epoch.
    pub fn is_empty(&self) -> bool {
        self.starts.len() == 1 && self.down[0].is_empty()
    }

    /// The epoch containing `t`.
    pub fn epoch_of(&self, t: SimTime) -> usize {
        // starts[0] == 0, so partition_point is ≥ 1.
        self.starts.partition_point(|&s| s <= t.minutes()) - 1
    }

    /// Start minute of epoch `e`.
    pub fn start_of(&self, e: usize) -> SimTime {
        SimTime::from_minutes(self.starts[e])
    }

    /// Links down throughout epoch `e`, ascending by id.
    pub fn down_in(&self, e: usize) -> &Arc<[LinkId]> {
        &self.down[e]
    }
}

impl Dynamics {
    /// Generates the failure process for a topology. Only interconnect
    /// links fail; the intra-AS backbone is treated as always up (interior
    /// *congestion* is modeled separately in `s2s-netsim`).
    pub fn generate(topo: &s2s_topology::Topology, params: &DynamicsParams) -> Self {
        let mut rng = StdRng::seed_from_u64(params.seed);
        let horizon_min = params.horizon.minutes();
        let mut episodes = vec![Vec::new(); topo.links.len()];

        for (li, link) in topo.links.iter().enumerate() {
            if !link.kind.is_interconnect() {
                continue;
            }
            if rng.random_bool(params.stable_fraction) {
                continue;
            }
            // Heavy-tailed expected episode count: Pareto(alpha) scaled so
            // the mean lands near `mean_episodes`.
            let u: f64 = rng.random::<f64>().max(1e-12);
            let scale = params.mean_episodes * (params.pareto_alpha - 1.0)
                / params.pareto_alpha;
            let expected = (scale * u.powf(-1.0 / params.pareto_alpha)).min(40.0);
            // Poisson-ish scheduling: exponential inter-arrivals with mean
            // horizon / expected.
            if expected <= 0.0 {
                continue;
            }
            let mean_gap = horizon_min as f64 / expected;
            let mut t = 0.0f64;
            let eps = &mut episodes[li];
            loop {
                let gap = -mean_gap * (1.0 - rng.random::<f64>()).ln();
                t += gap.max(1.0);
                if t >= horizon_min as f64 {
                    break;
                }
                // Log-normal duration.
                let z = normal_sample(&mut rng);
                let dur = params.median_duration_min
                    * (params.duration_sigma * z).exp();
                let start = t as u32;
                let end = ((t + dur.max(5.0)) as u32).min(horizon_min);
                if let Some(&(_, prev_end)) = eps.last() {
                    if start <= prev_end {
                        // Merge overlapping episodes.
                        let merged_end = end.max(prev_end);
                        eps.last_mut().unwrap().1 = merged_end;
                        t = f64::from(merged_end);
                        continue;
                    }
                }
                eps.push((start, end));
                t = f64::from(end);
            }
        }
        // Correlated edge outages: one episode hits every parallel link of
        // an AS pair. Durations are shorter (minutes to days) — session
        // resets and maintenance windows rather than dark fiber.
        let mut edge_keys: Vec<(usize, usize)> = topo.interconnects.keys().copied().collect();
        edge_keys.sort_unstable();
        for key in edge_keys {
            if !rng.random_bool(params.edge_outage_fraction) {
                continue;
            }
            let u: f64 = rng.random::<f64>().max(1e-12);
            let scale = params.edge_outage_mean * (params.pareto_alpha - 1.0)
                / params.pareto_alpha;
            let expected = (scale * u.powf(-1.0 / params.pareto_alpha)).min(80.0);
            if expected <= 0.0 {
                continue;
            }
            let mean_gap = horizon_min as f64 / expected;
            let mut t = 0.0f64;
            loop {
                let gap = -mean_gap * (1.0 - rng.random::<f64>()).ln();
                t += gap.max(1.0);
                if t >= horizon_min as f64 {
                    break;
                }
                let z = normal_sample(&mut rng);
                // Median ~3 hours, sigma 2.0: most outages are minutes to a
                // day, but ~1% run multi-week — the month-long level shifts
                // of Fig. 1a (e.g. a peering dispute sending traffic via
                // another continent until settled, §7).
                let dur = 180.0 * (2.0 * z).exp();
                let start = t as u32;
                let end = ((t + dur.max(5.0)) as u32).min(horizon_min);
                for &l in &topo.interconnects[&key] {
                    episodes[l.index()].push((start, end));
                }
                t = f64::from(end);
            }
        }
        // Merge overlapping intervals per link (the two processes can
        // overlap each other).
        for eps in &mut episodes {
            if eps.len() < 2 {
                continue;
            }
            eps.sort_unstable();
            let mut merged: Vec<(u32, u32)> = Vec::with_capacity(eps.len());
            for &(s, e) in eps.iter() {
                match merged.last_mut() {
                    Some(last) if s <= last.1 => last.1 = last.1.max(e),
                    _ => merged.push((s, e)),
                }
            }
            *eps = merged;
        }
        Dynamics { episodes, horizon: params.horizon, epochs: OnceLock::new() }
    }

    /// A dynamics object with no failures at all (for tests and baselines).
    pub fn all_up(topo: &s2s_topology::Topology, horizon: SimTime) -> Self {
        Dynamics {
            episodes: vec![Vec::new(); topo.links.len()],
            horizon,
            epochs: OnceLock::new(),
        }
    }

    /// A dynamics object with explicit episodes (tests).
    pub fn from_episodes(
        n_links: usize,
        eps: Vec<(LinkId, u32, u32)>,
        horizon: SimTime,
    ) -> Self {
        let mut episodes = vec![Vec::new(); n_links];
        for (l, s, e) in eps {
            episodes[l.index()].push((s, e));
        }
        for v in &mut episodes {
            v.sort_unstable();
        }
        Dynamics { episodes, horizon, epochs: OnceLock::new() }
    }

    /// The modeled horizon.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Whether a link is up at `t`.
    pub fn link_up(&self, link: LinkId, t: SimTime) -> bool {
        let eps = &self.episodes[link.index()];
        if eps.is_empty() {
            return true;
        }
        let m = t.minutes();
        // Find the last episode starting at or before m.
        match eps.partition_point(|&(s, _)| s <= m).checked_sub(1) {
            Some(i) => m >= eps[i].1, // up again once the episode ended
            None => true,
        }
    }

    /// The availability-epoch timeline, built on first use and cached.
    pub fn epochs(&self) -> &Arc<EpochIndex> {
        self.epochs
            .get_or_init(|| Arc::new(EpochIndex::build(&self.episodes)))
    }

    /// The epoch containing `t`.
    pub fn epoch_of(&self, t: SimTime) -> usize {
        self.epochs().epoch_of(t)
    }

    /// Number of availability epochs.
    pub fn epoch_count(&self) -> usize {
        self.epochs().len()
    }

    /// All links down at `t`, ascending by id. Returns the cached epoch
    /// view — constant between episode breakpoints, never reallocated.
    pub fn down_links(&self, t: SimTime) -> Arc<[LinkId]> {
        let idx = self.epochs();
        Arc::clone(idx.down_in(idx.epoch_of(t)))
    }

    /// Total number of episodes across all links.
    pub fn episode_count(&self) -> usize {
        self.episodes.iter().map(Vec::len).sum()
    }

    /// Number of links with at least one episode.
    pub fn failing_link_count(&self) -> usize {
        self.episodes.iter().filter(|e| !e.is_empty()).count()
    }

    /// Episodes of one link.
    pub fn episodes_of(&self, link: LinkId) -> &[(u32, u32)] {
        &self.episodes[link.index()]
    }
}

/// One standard-normal sample via Box–Muller.
fn normal_sample(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2s_topology::{build_topology, TopologyParams};

    fn topo() -> s2s_topology::Topology {
        build_topology(&TopologyParams::tiny(21))
    }

    #[test]
    fn generation_is_deterministic() {
        let t = topo();
        let p = DynamicsParams::default();
        let a = Dynamics::generate(&t, &p);
        let b = Dynamics::generate(&t, &p);
        assert_eq!(a.episode_count(), b.episode_count());
        for l in 0..t.links.len() {
            assert_eq!(a.episodes_of(LinkId::from(l)), b.episodes_of(LinkId::from(l)));
        }
    }

    #[test]
    fn internal_links_never_fail() {
        let t = topo();
        let d = Dynamics::generate(&t, &DynamicsParams::default());
        for (li, l) in t.links.iter().enumerate() {
            if l.kind == s2s_topology::LinkKind::Internal {
                assert!(d.episodes_of(LinkId::from(li)).is_empty());
            }
        }
    }

    #[test]
    fn many_links_are_stable() {
        let t = topo();
        let d = Dynamics::generate(&t, &DynamicsParams::default());
        let interconnects =
            t.links.iter().filter(|l| l.kind.is_interconnect()).count();
        let failing = d.failing_link_count();
        assert!(failing > 0, "no failures generated at all");
        assert!(
            failing < interconnects,
            "every interconnect fails ({failing}/{interconnects})"
        );
    }

    #[test]
    fn episode_rates_are_heavy_tailed() {
        let t = build_topology(&TopologyParams::default());
        let d = Dynamics::generate(&t, &DynamicsParams::default());
        let counts: Vec<usize> = (0..t.links.len())
            .map(|l| d.episodes_of(LinkId::from(l)).len())
            .filter(|&c| c > 0)
            .collect();
        assert!(counts.len() > 20);
        let max = *counts.iter().max().unwrap();
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        assert!(
            max as f64 > mean * 4.0,
            "tail not heavy: max {max}, mean {mean:.1}"
        );
    }

    #[test]
    fn link_up_respects_episodes() {
        let d = Dynamics::from_episodes(
            3,
            vec![(LinkId::new(1), 100, 200), (LinkId::new(1), 300, 400)],
            SimTime::from_days(1),
        );
        let l = LinkId::new(1);
        assert!(d.link_up(l, SimTime::from_minutes(99)));
        assert!(!d.link_up(l, SimTime::from_minutes(100)));
        assert!(!d.link_up(l, SimTime::from_minutes(199)));
        assert!(d.link_up(l, SimTime::from_minutes(200)));
        assert!(d.link_up(l, SimTime::from_minutes(250)));
        assert!(!d.link_up(l, SimTime::from_minutes(350)));
        assert!(d.link_up(l, SimTime::from_minutes(400)));
        // Other links unaffected.
        assert!(d.link_up(LinkId::new(0), SimTime::from_minutes(150)));
    }

    #[test]
    fn down_links_lists_exactly_the_down_ones() {
        let d = Dynamics::from_episodes(
            4,
            vec![(LinkId::new(0), 10, 20), (LinkId::new(2), 15, 30)],
            SimTime::from_days(1),
        );
        assert_eq!(
            &*d.down_links(SimTime::from_minutes(17)),
            &[LinkId::new(0), LinkId::new(2)][..]
        );
        assert_eq!(
            &*d.down_links(SimTime::from_minutes(25)),
            &[LinkId::new(2)][..]
        );
        assert!(d.down_links(SimTime::from_minutes(5)).is_empty());
    }

    #[test]
    fn epoch_views_match_per_link_queries() {
        let t = build_topology(&TopologyParams::default());
        let d = Dynamics::generate(&t, &DynamicsParams::default());
        let idx = d.epochs();
        assert!(idx.len() > 1, "default dynamics should have many epochs");
        // Probe a spread of instants (including exact breakpoints): the
        // epoch view must equal a brute-force per-link scan.
        let horizon = d.horizon().minutes();
        let mut probes: Vec<u32> =
            (0..40).map(|i| i * horizon / 40).collect();
        probes.extend((0..idx.len()).step_by(idx.len() / 16 + 1).map(|e| {
            idx.start_of(e).minutes()
        }));
        for m in probes {
            let t = SimTime::from_minutes(m);
            let brute: Vec<LinkId> = (0..d.episodes.len())
                .map(LinkId::from)
                .filter(|&l| !d.link_up(l, t))
                .collect();
            assert_eq!(&*d.down_links(t), &brute[..], "mismatch at minute {m}");
        }
    }

    #[test]
    fn epoch_of_respects_breakpoints() {
        let d = Dynamics::from_episodes(
            3,
            vec![(LinkId::new(1), 100, 200)],
            SimTime::from_days(1),
        );
        let idx = d.epochs();
        assert_eq!(idx.len(), 3); // [0,100), [100,200), [200,∞)
        assert_eq!(d.epoch_of(SimTime::from_minutes(0)), 0);
        assert_eq!(d.epoch_of(SimTime::from_minutes(99)), 0);
        assert_eq!(d.epoch_of(SimTime::from_minutes(100)), 1);
        assert_eq!(d.epoch_of(SimTime::from_minutes(199)), 1);
        assert_eq!(d.epoch_of(SimTime::from_minutes(200)), 2);
        // Beyond the horizon every episode has ended: empty down set.
        assert!(idx.down_in(2).is_empty());
        // Same Arc returned for queries inside one epoch — no realloc.
        let a = d.down_links(SimTime::from_minutes(120));
        let b = d.down_links(SimTime::from_minutes(180));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(&*a, &[LinkId::new(1)][..]);
    }

    #[test]
    fn episodes_sorted_and_disjoint() {
        let t = build_topology(&TopologyParams::default());
        let d = Dynamics::generate(&t, &DynamicsParams::default());
        for l in 0..t.links.len() {
            let eps = d.episodes_of(LinkId::from(l));
            for w in eps.windows(2) {
                assert!(w[0].1 <= w[1].0, "overlap: {:?}", w);
            }
            for &(s, e) in eps {
                assert!(s < e, "empty episode ({s},{e})");
                assert!(e <= d.horizon().minutes());
            }
        }
    }

    #[test]
    fn durations_span_orders_of_magnitude() {
        let t = build_topology(&TopologyParams::default());
        let d = Dynamics::generate(&t, &DynamicsParams::default());
        let durs: Vec<u32> = (0..t.links.len())
            .flat_map(|l| d.episodes_of(LinkId::from(l)).iter().map(|&(s, e)| e - s))
            .collect();
        assert!(durs.len() > 50);
        let min = *durs.iter().min().unwrap();
        let max = *durs.iter().max().unwrap();
        assert!(min < 120, "shortest episode {min} min should be sub-2h");
        assert!(
            max > 7 * 24 * 60,
            "longest episode {max} min should exceed a week"
        );
    }

    #[test]
    fn all_up_never_fails() {
        let t = topo();
        let d = Dynamics::all_up(&t, SimTime::from_days(10));
        assert_eq!(d.episode_count(), 0);
        assert!(d.down_links(SimTime::from_days(5)).is_empty());
    }
}
