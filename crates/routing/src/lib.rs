//! Policy routing and routing dynamics.
//!
//! Three layers:
//!
//! * [`policy`] — Gao–Rexford valley-free route computation over the AS
//!   graph: prefer customer routes over peer routes over provider routes,
//!   then shortest AS path, then a deterministic per-destination tie-break
//!   (salted per protocol, so IPv4 and IPv6 can prefer different equally
//!   good routes — feeding the Fig. 10a comparison).
//! * [`dynamics`] — a seeded event process that takes interconnect links
//!   down and back up. Failure rates are heavy-tailed across links and
//!   episode durations are log-normal, spanning minutes to months: the raw
//!   material for both the frequent small routing changes and the rare
//!   long-lived level shifts of Fig. 1/Fig. 4.
//! * [`oracle`] — the query layer the simulator uses: AS paths and fully
//!   expanded router-level paths for (cluster pair, protocol, time, flow),
//!   with caching keyed on the AS-level availability configuration.
//!
//! The oracle answers *snapshots*, mirroring how the paper's pipeline sees
//! routing: a traceroute every 3 hours, not a BGP message stream.

pub mod dynamics;
pub mod intra;
pub mod oracle;
pub mod policy;

pub use dynamics::{Dynamics, DynamicsParams, EpochIndex};
pub use oracle::{AsPath, CacheStats, Hop, RouteOracle, RouterPath};
pub use policy::{compute_routes, EdgeAvailability, RouteEntry};
