//! Intra-AS shortest paths.
//!
//! Inside one AS, traffic between an ingress and an egress router follows
//! the delay-shortest path over the AS's internal backbone links. Paths are
//! computed with Dijkstra and cached per source router (the backbone is
//! static; only interconnects have failure dynamics).

use parking_lot::RwLock;
use s2s_topology::{LinkKind, Topology};
use s2s_types::{LinkId, RouterId};
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// Per-destination entry of a shortest-path tree: total delay from the
/// source and the final link on the path.
type SpTree = HashMap<RouterId, (f64, Option<LinkId>)>;

/// A shared intra-AS hop sequence (see [`IntraAsPaths::path_shared`]).
pub type IntraPath = Arc<[(RouterId, LinkId)]>;

/// Cached intra-AS shortest paths over internal links.
pub struct IntraAsPaths {
    topo: Arc<Topology>,
    /// Shortest-path tree per source router, computed lazily.
    trees: RwLock<HashMap<RouterId, Arc<SpTree>>>,
    /// Reconstructed hop sequences per (from, to), so the hot path never
    /// re-walks a tree or reallocates (the backbone is static, so entries
    /// never invalidate).
    paths: RwLock<HashMap<(RouterId, RouterId), Option<IntraPath>>>,
}

impl IntraAsPaths {
    /// Creates the cache for a topology.
    pub fn new(topo: Arc<Topology>) -> Self {
        IntraAsPaths {
            topo,
            trees: RwLock::new(HashMap::new()),
            paths: RwLock::new(HashMap::new()),
        }
    }

    /// The hops from `from` to `to` inside one AS, as `(router, ingress
    /// link)` pairs for every router *after* `from`. Empty when
    /// `from == to`. `None` when the two routers are in different ASes or
    /// disconnected.
    pub fn path(&self, from: RouterId, to: RouterId) -> Option<Vec<(RouterId, LinkId)>> {
        self.path_shared(from, to).map(|p| p.to_vec())
    }

    /// Shared-allocation variant of [`path`](Self::path): repeated queries
    /// return the same memoized `Arc` slice.
    pub fn path_shared(&self, from: RouterId, to: RouterId) -> Option<IntraPath> {
        if let Some(p) = self.paths.read().get(&(from, to)) {
            return p.clone();
        }
        let p = self.reconstruct(from, to);
        self.paths.write().insert((from, to), p.clone());
        p
    }

    fn reconstruct(&self, from: RouterId, to: RouterId) -> Option<IntraPath> {
        let topo = &self.topo;
        if topo.routers[from.index()].as_idx != topo.routers[to.index()].as_idx {
            return None;
        }
        if from == to {
            return Some(Arc::from(&[][..]));
        }
        let tree = self.tree(from);
        tree.get(&to)?;
        // Walk backwards from `to` along arrival links.
        let mut rev: Vec<(RouterId, LinkId)> = Vec::new();
        let mut cur = to;
        while cur != from {
            let (_, link) = tree.get(&cur)?;
            let link = (*link)?;
            rev.push((cur, link));
            cur = topo.links[link.index()].other_end(cur);
        }
        rev.reverse();
        Some(rev.into())
    }

    /// Total one-way internal delay from `from` to `to`, in ms.
    pub fn delay_ms(&self, from: RouterId, to: RouterId) -> Option<f64> {
        if from == to {
            return Some(0.0);
        }
        self.tree(from).get(&to).map(|&(d, _)| d)
    }

    fn tree(&self, src: RouterId) -> Arc<SpTree> {
        if let Some(t) = self.trees.read().get(&src) {
            return Arc::clone(t);
        }
        let t = Arc::new(self.dijkstra(src));
        self.trees.write().insert(src, Arc::clone(&t));
        t
    }

    fn dijkstra(&self, src: RouterId) -> SpTree {
        let topo = &self.topo;
        let as_idx = topo.routers[src.index()].as_idx;
        let mut tree: SpTree = HashMap::new();
        tree.insert(src, (0.0, None));
        // Min-heap on delay; f64 wrapped in sortable bits.
        #[derive(PartialEq)]
        struct Item(f64, RouterId);
        impl Eq for Item {}
        impl Ord for Item {
            fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                o.0.partial_cmp(&self.0).unwrap().then(o.1.cmp(&self.1))
            }
        }
        impl PartialOrd for Item {
            fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(o))
            }
        }
        let mut heap = BinaryHeap::new();
        heap.push(Item(0.0, src));
        let mut done: HashMap<RouterId, bool> = HashMap::new();
        while let Some(Item(d, r)) = heap.pop() {
            if done.insert(r, true).is_some() {
                continue;
            }
            for &l in &topo.router_links[r.index()] {
                let link = &topo.links[l.index()];
                if link.kind != LinkKind::Internal {
                    continue;
                }
                let other = link.other_end(r);
                if topo.routers[other.index()].as_idx != as_idx {
                    continue;
                }
                let nd = d + link.delay_ms + 0.05; // small per-hop forwarding cost
                let better = tree.get(&other).map(|&(od, _)| nd < od).unwrap_or(true);
                if better {
                    tree.insert(other, (nd, Some(l)));
                    heap.push(Item(nd, other));
                }
            }
        }
        tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2s_topology::{build_topology, TopologyParams};

    fn setup() -> (Arc<Topology>, IntraAsPaths) {
        let topo = Arc::new(build_topology(&TopologyParams::tiny(31)));
        let paths = IntraAsPaths::new(Arc::clone(&topo));
        (topo, paths)
    }

    #[test]
    fn same_router_is_empty_path() {
        let (topo, paths) = setup();
        let r = topo.pops[0].core_router;
        assert_eq!(paths.path(r, r), Some(Vec::new()));
        assert_eq!(paths.delay_ms(r, r), Some(0.0));
    }

    #[test]
    fn cross_as_is_none() {
        let (topo, paths) = setup();
        // Find two routers in different ASes.
        let r0 = topo.pops[0].core_router;
        let other = topo
            .routers
            .iter()
            .position(|r| r.as_idx != topo.routers[r0.index()].as_idx)
            .unwrap();
        assert_eq!(paths.path(r0, RouterId::from(other)), None);
    }

    #[test]
    fn multi_pop_as_paths_connect_and_reconstruct() {
        let (topo, paths) = setup();
        let multi = topo
            .ases
            .iter()
            .find(|a| a.pops.len() >= 3)
            .expect("tiny topo has a multi-pop AS");
        let r_from = topo.pops[multi.pops[0].index()].core_router;
        let r_to = topo.pops[multi.pops[2].index()].core_router;
        let p = paths.path(r_from, r_to).expect("backbone connected");
        assert!(!p.is_empty());
        // The walk is link-consistent: each hop's ingress link connects the
        // previous router to this one.
        let mut prev = r_from;
        for &(r, l) in &p {
            let link = &topo.links[l.index()];
            assert_eq!(link.other_end(r), prev);
            assert_eq!(link.kind, LinkKind::Internal);
            prev = r;
        }
        assert_eq!(prev, r_to);
    }

    #[test]
    fn delays_satisfy_triangle_via_hub() {
        let (topo, paths) = setup();
        let multi = topo.ases.iter().find(|a| a.pops.len() >= 3).unwrap();
        let a = topo.pops[multi.pops[0].index()].core_router;
        let b = topo.pops[multi.pops[1].index()].core_router;
        let c = topo.pops[multi.pops[2].index()].core_router;
        let ab = paths.delay_ms(a, b).unwrap();
        let bc = paths.delay_ms(b, c).unwrap();
        let ac = paths.delay_ms(a, c).unwrap();
        assert!(ac <= ab + bc + 1e-9);
        assert!(ab > 0.0);
    }

    #[test]
    fn cluster_router_reaches_core() {
        let (topo, paths) = setup();
        let c = &topo.clusters[0];
        let core = topo.pops[topo.routers[c.router.index()].pop.index()].core_router;
        let p = paths.path(c.router, core).expect("access link exists");
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].0, core);
    }

    #[test]
    fn cache_is_consistent_across_calls() {
        let (topo, paths) = setup();
        let multi = topo.ases.iter().find(|a| a.pops.len() >= 2).unwrap();
        let a = topo.pops[multi.pops[0].index()].core_router;
        let b = topo.pops[multi.pops[1].index()].core_router;
        let p1 = paths.path(a, b);
        let p2 = paths.path(a, b);
        assert_eq!(p1, p2);
    }

    #[test]
    fn shared_paths_reuse_one_allocation() {
        let (topo, paths) = setup();
        let multi = topo.ases.iter().find(|a| a.pops.len() >= 2).unwrap();
        let a = topo.pops[multi.pops[0].index()].core_router;
        let b = topo.pops[multi.pops[1].index()].core_router;
        let p1 = paths.path_shared(a, b).expect("connected");
        let p2 = paths.path_shared(a, b).expect("connected");
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(paths.path(a, b).unwrap(), p1.to_vec());
    }
}
