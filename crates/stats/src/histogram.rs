//! Fixed-width histograms.
//!
//! A small utility used by report output (e.g. the Fig. 9 overhead
//! distribution before KDE smoothing) and by tests that want to assert on
//! distribution shapes.

/// A histogram over `[lo, hi)` with equal-width bins; values outside the
/// range are counted separately.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    below: u64,
    above: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    ///
    /// # Panics
    /// Panics when `hi <= lo` or `nbins == 0`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(hi > lo, "invalid histogram range [{lo}, {hi})");
        assert!(nbins > 0, "histogram needs at least one bin");
        Histogram { lo, hi, bins: vec![0; nbins], below: 0, above: 0 }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.below += 1;
        } else if x >= self.hi {
            self.above += 1;
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            let idx = ((frac * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Adds many observations.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, xs: I) {
        for x in xs {
            self.add(x);
        }
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Count of observations below the range.
    pub fn below(&self) -> u64 {
        self.below
    }

    /// Count of observations at or above the upper bound.
    pub fn above(&self) -> u64 {
        self.above
    }

    /// Total observations, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.below + self.above
    }

    /// The center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }

    /// The fraction of in-range observations in bins whose centers lie in
    /// `[lo, hi]`.
    pub fn fraction_between(&self, lo: f64, hi: f64) -> f64 {
        let in_range: u64 = self.bins.iter().sum();
        if in_range == 0 {
            return 0.0;
        }
        let mut n = 0u64;
        for (i, &c) in self.bins.iter().enumerate() {
            let center = self.bin_center(i);
            if center >= lo && center <= hi {
                n += c;
            }
        }
        n as f64 / in_range as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bins_observations() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.extend([0.0, 0.5, 1.5, 9.99]);
        assert_eq!(h.bins()[0], 2);
        assert_eq!(h.bins()[1], 1);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn out_of_range_counted_separately() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.extend([-1.0, 10.0, 11.0, 5.0]);
        assert_eq!(h.below(), 1);
        assert_eq!(h.above(), 2);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn bin_centers() {
        let h = Histogram::new(0.0, 100.0, 10);
        assert_eq!(h.bin_center(0), 5.0);
        assert_eq!(h.bin_center(9), 95.0);
    }

    #[test]
    fn fraction_between_window() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        h.extend((0..100).map(f64::from));
        let f = h.fraction_between(20.0, 29.9);
        assert!((f - 0.10).abs() < 0.011, "fraction = {f}");
    }

    #[test]
    #[should_panic(expected = "invalid histogram range")]
    fn invalid_range_panics() {
        Histogram::new(5.0, 5.0, 10);
    }

    proptest! {
        #[test]
        fn prop_total_counts_everything(
            xs in proptest::collection::vec(-50.0f64..150.0, 0..200),
        ) {
            let mut h = Histogram::new(0.0, 100.0, 20);
            h.extend(xs.iter().copied());
            prop_assert_eq!(h.total(), xs.len() as u64);
        }

        #[test]
        fn prop_in_range_values_hit_a_bin(x in 0.0f64..100.0) {
            let mut h = Histogram::new(0.0, 100.0, 7);
            h.add(x);
            prop_assert_eq!(h.bins().iter().sum::<u64>(), 1);
            prop_assert_eq!(h.below() + h.above(), 0);
        }
    }
}
