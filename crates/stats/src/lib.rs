//! Statistics toolkit for the s2s analysis pipeline.
//!
//! Self-contained (no external dependencies) implementations of every
//! statistical primitive the paper's methodology needs:
//!
//! * [`ecdf`] — empirical CDFs (Figs. 2, 3, 6, 7, 10a, 10b),
//! * [`percentile`] — order statistics and summary stats (§4.2 baselines),
//! * [`fft`] — radix-2 FFT and the diurnal power-spectral-density ratio used
//!   to detect consistent congestion (§5.1, after Luckie et al.),
//! * [`mod@pearson`] — Pearson correlation for congestion localization (§5.2),
//! * [`kde`] — Gaussian kernel density estimation (Fig. 9),
//! * [`editdist`] — Levenshtein distance over AS-path symbols (§4.1),
//! * [`appendable`] — epoch-appendable fold state ([`ChangeLog`],
//!   [`PrevalenceTally`]) behind the incremental §4 analyses: exact,
//!   replay-equals-batch accumulators for change detection and prevalence,
//! * [`heatmap`] — decile-edge 2-D binning (Figs. 4 and 5),
//! * [`histogram`] — simple fixed-width histograms,
//! * [`sketch`] — constant-memory streaming aggregation (mergeable quantile
//!   sketches, Welford moments, diurnal ring bins, streamed filled-series
//!   PSD) for the §5 short-term plane.

pub mod appendable;
pub mod ecdf;
pub mod editdist;
pub mod fft;
pub mod heatmap;
pub mod histogram;
pub mod kde;
pub mod pearson;
pub mod percentile;
pub mod sketch;

pub use appendable::{ChangeLog, PrevalenceTally};
pub use ecdf::Ecdf;
pub use editdist::edit_distance;
pub use fft::{diurnal_psd_ratio, fft_power, Complex};
pub use heatmap::{decile_edges, HeatMap};
pub use histogram::Histogram;
pub use kde::GaussianKde;
pub use pearson::pearson;
pub use percentile::{mean, percentile_sorted, quantiles, stddev, Summary};
pub use sketch::{DiurnalProfile, FilledSpectrum, QuantileSketch, StreamingMoments};
