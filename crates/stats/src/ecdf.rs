//! Empirical cumulative distribution functions.
//!
//! Half the paper's figures are ECDFs. [`Ecdf`] stores the sorted sample and
//! answers both directions: `F(x)` (fraction ≤ x) and the quantile function
//! `F⁻¹(q)`. It can also emit the step-plot series the `reproduce` binary
//! prints.

/// An empirical CDF over a sample of `f64` values.
#[derive(Clone, Debug)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample. NaN samples (lost measurement slots)
    /// are dropped; [`len`](Self::len) reports the usable samples only.
    pub fn new(data: Vec<f64>) -> Self {
        let mut data: Vec<f64> = data.into_iter().filter(|x| !x.is_nan()).collect();
        data.sort_by(f64::total_cmp);
        Ecdf { sorted: data }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)`: the fraction of samples ≤ `x`. Zero for an empty sample.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The fraction of samples ≥ `x` (for "at least X ms" style statements).
    pub fn fraction_at_or_above(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v < x);
        (self.sorted.len() - idx) as f64 / self.sorted.len() as f64
    }

    /// `F⁻¹(q)` for `q` in `[0, 1]`: the smallest sample `x` with
    /// `F(x) ≥ q`. `None` on empty input.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.sorted.is_empty() {
            return None;
        }
        if q == 0.0 {
            return Some(self.sorted[0]);
        }
        let n = self.sorted.len();
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        Some(self.sorted[idx])
    }

    /// The sorted underlying sample.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }

    /// Samples the ECDF at `n` evenly spaced quantiles (inclusive of 0 and
    /// 1), yielding `(x, F(x))` points suitable for a step plot.
    pub fn curve(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2, "need at least two curve points");
        if self.sorted.is_empty() {
            return Vec::new();
        }
        (0..n)
            .map(|i| {
                let q = i as f64 / (n - 1) as f64;
                let x = self.quantile(q).unwrap();
                (x, self.fraction_at_or_below(x))
            })
            .collect()
    }
}

impl FromIterator<f64> for Ecdf {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Ecdf::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fractions_of_small_sample() {
        let e = Ecdf::new(vec![1.0, 2.0, 2.0, 3.0]);
        assert_eq!(e.fraction_at_or_below(0.5), 0.0);
        assert_eq!(e.fraction_at_or_below(1.0), 0.25);
        assert_eq!(e.fraction_at_or_below(2.0), 0.75);
        assert_eq!(e.fraction_at_or_below(10.0), 1.0);
        assert_eq!(e.fraction_at_or_above(2.0), 0.75);
        assert_eq!(e.fraction_at_or_above(2.5), 0.25);
        assert_eq!(e.fraction_at_or_above(100.0), 0.0);
    }

    #[test]
    fn quantile_inverse() {
        let e = Ecdf::new(vec![10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(e.quantile(0.0), Some(10.0));
        assert_eq!(e.quantile(0.2), Some(10.0));
        assert_eq!(e.quantile(0.21), Some(20.0));
        assert_eq!(e.quantile(1.0), Some(50.0));
        assert_eq!(e.quantile(0.5), Some(30.0));
    }

    #[test]
    fn empty_sample() {
        let e = Ecdf::new(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.fraction_at_or_below(1.0), 0.0);
        assert_eq!(e.quantile(0.5), None);
        assert!(e.curve(5).is_empty());
    }

    #[test]
    fn nan_samples_are_dropped() {
        let e = Ecdf::new(vec![1.0, f64::NAN, 3.0, f64::NAN]);
        assert_eq!(e.len(), 2, "len counts usable samples only");
        assert_eq!(e.fraction_at_or_below(2.0), 0.5);
        assert_eq!(e.quantile(1.0), Some(3.0));
        assert!(Ecdf::new(vec![f64::NAN]).is_empty(), "all-NaN behaves like empty");
    }

    #[test]
    fn curve_is_monotone() {
        let e: Ecdf = (0..100).map(|i| (i * 7 % 50) as f64).collect();
        let c = e.curve(11);
        assert_eq!(c.len(), 11);
        for w in c.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(c.last().unwrap().1, 1.0);
    }

    proptest! {
        #[test]
        fn prop_fraction_monotone(
            data in proptest::collection::vec(-1e6f64..1e6, 0..100),
            x1 in -1e6f64..1e6, x2 in -1e6f64..1e6,
        ) {
            let e = Ecdf::new(data);
            let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
            prop_assert!(e.fraction_at_or_below(lo) <= e.fraction_at_or_below(hi));
        }

        #[test]
        fn prop_below_above_complement(
            data in proptest::collection::vec(-1e3f64..1e3, 1..100),
            x in -1e3f64..1e3,
        ) {
            let e = Ecdf::new(data);
            // fraction(<= x) + fraction(> x) = 1, and fraction_at_or_above
            // counts ties on the other side, so the sum is >= 1.
            let below = e.fraction_at_or_below(x);
            let above = e.fraction_at_or_above(x);
            prop_assert!(below + above >= 1.0 - 1e-12);
        }

        #[test]
        fn prop_quantile_roundtrip(
            data in proptest::collection::vec(-1e6f64..1e6, 1..100),
            q in 0.0f64..=1.0,
        ) {
            let e = Ecdf::new(data);
            let x = e.quantile(q).unwrap();
            prop_assert!(e.fraction_at_or_below(x) >= q - 1e-12);
        }
    }
}
