//! Pearson correlation.
//!
//! Used by the congestion-localization step (§5.2): the time series of RTTs
//! to each traceroute segment is correlated against the end-to-end series,
//! and the first segment with ρ ≥ 0.5 is marked as the congested link.

/// Pearson correlation coefficient between two equal-length series.
///
/// Returns `None` when the series are shorter than 2 samples, have different
/// lengths, or either has zero variance (correlation undefined).
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let da = a - mx;
        let db = b - my;
        cov += da * db;
        vx += da * da;
        vy += db * db;
    }
    if vx <= 0.0 || vy <= 0.0 {
        return None;
    }
    Some(cov / (vx.sqrt() * vy.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [10.0, 20.0, 30.0, 40.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_anticorrelation() {
        let x = [1.0, 2.0, 3.0];
        let y = [3.0, 2.0, 1.0];
        assert!((pearson(&x, &y).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_orthogonal_series() {
        let x = [1.0, -1.0, 1.0, -1.0];
        let y = [1.0, 1.0, -1.0, -1.0];
        assert!(pearson(&x, &y).unwrap().abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[2.0]), None);
        assert_eq!(pearson(&[5.0, 5.0, 5.0], &[1.0, 2.0, 3.0]), None);
        assert_eq!(pearson(&[], &[]), None);
    }

    #[test]
    fn shifted_and_scaled_series_still_correlate() {
        // ρ is invariant to affine transforms with positive scale.
        let x: Vec<f64> = (0..50).map(|i| (i as f64 * 0.3).sin()).collect();
        let y: Vec<f64> = x.iter().map(|v| 7.0 + 3.5 * v).collect();
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_rho_in_unit_interval(
            x in proptest::collection::vec(-1e3f64..1e3, 2..100),
            seed in 0u64..1000,
        ) {
            // Build y from x plus deterministic noise so lengths match.
            let y: Vec<f64> = x.iter().enumerate().map(|(i, v)| {
                let h = (i as u64 ^ seed).wrapping_mul(0x9E3779B97F4A7C15);
                v * 0.5 + (h >> 40) as f64 / 1e5
            }).collect();
            if let Some(r) = pearson(&x, &y) {
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            }
        }

        #[test]
        fn prop_symmetric(
            x in proptest::collection::vec(-1e3f64..1e3, 2..50),
            y in proptest::collection::vec(-1e3f64..1e3, 2..50),
        ) {
            let n = x.len().min(y.len());
            let (a, b) = (&x[..n], &y[..n]);
            prop_assert_eq!(pearson(a, b), pearson(b, a));
        }
    }
}
