//! Gaussian kernel density estimation.
//!
//! Fig. 9 of the paper plots the *density* of congestion overheads for
//! internal vs. interconnection links. [`GaussianKde`] reproduces that:
//! a standard Gaussian-kernel KDE with Silverman's rule-of-thumb bandwidth.

use std::f64::consts::PI;

/// A Gaussian-kernel density estimator over a 1-D sample.
#[derive(Clone, Debug)]
pub struct GaussianKde {
    data: Vec<f64>,
    bandwidth: f64,
}

impl GaussianKde {
    /// Builds a KDE with Silverman's rule-of-thumb bandwidth:
    /// `0.9 * min(σ, IQR/1.34) * n^(-1/5)`.
    ///
    /// NaN samples are dropped first. Returns `None` when fewer than 2
    /// usable samples remain, or the usable sample has zero spread.
    pub fn new(data: Vec<f64>) -> Option<Self> {
        let data: Vec<f64> = data.into_iter().filter(|x| !x.is_nan()).collect();
        if data.len() < 2 {
            return None;
        }
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let sigma =
            (data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n).sqrt();
        let mut sorted = data.clone();
        sorted.sort_by(f64::total_cmp);
        let iqr = crate::percentile::percentile_sorted(&sorted, 75.0).unwrap()
            - crate::percentile::percentile_sorted(&sorted, 25.0).unwrap();
        let spread = if iqr > 0.0 { sigma.min(iqr / 1.34) } else { sigma };
        if spread <= 0.0 {
            return None;
        }
        let bandwidth = 0.9 * spread * n.powf(-0.2);
        Some(GaussianKde { data, bandwidth })
    }

    /// Builds a KDE with an explicit bandwidth.
    ///
    /// # Panics
    /// Panics if `bandwidth` is not strictly positive or data is empty.
    pub fn with_bandwidth(data: Vec<f64>, bandwidth: f64) -> Self {
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        assert!(!data.is_empty(), "KDE needs data");
        GaussianKde { data, bandwidth }
    }

    /// The bandwidth in use.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Density estimate at `x`.
    pub fn density(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        let norm = 1.0 / (self.data.len() as f64 * h * (2.0 * PI).sqrt());
        self.data
            .iter()
            .map(|&xi| {
                let u = (x - xi) / h;
                (-0.5 * u * u).exp()
            })
            .sum::<f64>()
            * norm
    }

    /// Evaluates the density on `n` evenly spaced points over `[lo, hi]`.
    pub fn grid(&self, lo: f64, hi: f64, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2 && hi > lo, "invalid grid");
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.density(x))
            })
            .collect()
    }

    /// The x position of the highest density on a grid — the distribution's
    /// mode, used to report "typical overhead is 20–30 ms".
    pub fn mode(&self, lo: f64, hi: f64, n: usize) -> f64 {
        self.grid(lo, hi, n)
            .into_iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .map(|(x, _)| x)
            .unwrap()
    }

    /// Approximate probability mass in `[lo, hi]` by trapezoidal integration
    /// on a 512-point grid (used for "values 20–30 ms contribute X% of the
    /// density" statements).
    pub fn mass_between(&self, lo: f64, hi: f64) -> f64 {
        assert!(hi > lo);
        let pts = self.grid(lo, hi, 512);
        let dx = (hi - lo) / 511.0;
        let mut mass = 0.0;
        for w in pts.windows(2) {
            mass += 0.5 * (w[0].1 + w[1].1) * dx;
        }
        mass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn density_peaks_at_cluster() {
        let data = vec![24.0, 25.0, 26.0, 25.5, 24.5, 25.2, 90.0];
        let kde = GaussianKde::new(data).unwrap();
        assert!(kde.density(25.0) > kde.density(60.0));
        assert!(kde.density(25.0) > kde.density(90.0), "one outlier < six clustered");
        let mode = kde.mode(0.0, 100.0, 500);
        assert!((24.0..27.0).contains(&mode), "mode = {mode}");
    }

    #[test]
    fn degenerate_samples_rejected() {
        assert!(GaussianKde::new(vec![1.0]).is_none());
        assert!(GaussianKde::new(vec![5.0, 5.0, 5.0]).is_none());
        assert!(GaussianKde::new(vec![]).is_none());
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn explicit_zero_bandwidth_panics() {
        GaussianKde::with_bandwidth(vec![1.0], 0.0);
    }

    #[test]
    fn total_mass_is_about_one() {
        let data: Vec<f64> = (0..50).map(|i| 20.0 + (i % 10) as f64).collect();
        let kde = GaussianKde::new(data).unwrap();
        let mass = kde.mass_between(-50.0, 120.0);
        assert!((mass - 1.0).abs() < 0.02, "mass = {mass}");
    }

    #[test]
    fn bimodal_mass_splits() {
        let mut data: Vec<f64> = (0..30).map(|i| 20.0 + (i % 5) as f64 * 0.5).collect();
        data.extend((0..30).map(|i| 60.0 + (i % 5) as f64 * 0.5));
        let kde = GaussianKde::new(data).unwrap();
        // Split at the midpoint between the modes: each side holds ~half the
        // mass (Silverman's bandwidth over-smooths bimodal data, so allow
        // generous tolerance).
        let low = kde.mass_between(-40.0, 41.0);
        let high = kde.mass_between(41.0, 120.0);
        assert!((low - 0.5).abs() < 0.06, "low mass = {low}");
        assert!((high - 0.5).abs() < 0.06, "high mass = {high}");
    }

    proptest! {
        #[test]
        fn prop_density_nonnegative(
            data in proptest::collection::vec(0.0f64..100.0, 2..100),
            x in -50.0f64..150.0,
        ) {
            if let Some(kde) = GaussianKde::new(data) {
                prop_assert!(kde.density(x) >= 0.0);
            }
        }

        #[test]
        fn prop_bandwidth_positive(
            data in proptest::collection::vec(0.0f64..100.0, 2..100),
        ) {
            if let Some(kde) = GaussianKde::new(data) {
                prop_assert!(kde.bandwidth() > 0.0);
            }
        }
    }
}
