//! Streaming, mergeable aggregation state — the §5 short-term plane.
//!
//! The paper's short-term campaign pings ~3 M server pairs every 15 minutes
//! for a week (~2 B samples). Materializing that before computing per-pair
//! percentiles and diurnal signals is what this module removes: each type
//! here folds samples one at a time into *fixed-size* state and merges
//! deterministically, so a campaign's memory is proportional to the number
//! of pairs, never to the number of samples.
//!
//! * [`QuantileSketch`] — a mergeable centroid sketch (t-digest-style, with
//!   a uniform weight cap instead of a scale function) with an exact
//!   small-N mode; quantile estimates carry a provable rank-error bound,
//! * [`StreamingMoments`] — Welford mean/variance with the parallel
//!   (Chan et al.) merge,
//! * [`DiurnalProfile`] — fixed time-of-day ring bins (§5.2 busy/quiet
//!   structure),
//! * [`FilledSpectrum`] — a streamed single-band DFT reproducing
//!   [`crate::fft::diurnal_psd_ratio`] over the last-value-hold filled
//!   series, without ever holding the series.
//!
//! Everything is NaN-filtering (a NaN sample is a lost slot, consistent
//! with the rest of `s2s-stats`), deterministic for a fixed fold/merge
//! order, and bit-exactly serializable through `encode`/`decode` (the
//! campaign checkpoint format).

use crate::percentile::percentile_sorted;

/// Default centroid capacity of a [`QuantileSketch`] (the `S2S_SKETCH_CENTROIDS`
/// knob resolves to this when unset).
pub const DEFAULT_SKETCH_CAPACITY: usize = 256;

/// Default exact-mode cap of a [`QuantileSketch`] (the `S2S_SKETCH_EXACT`
/// knob resolves to this when unset).
pub const DEFAULT_SKETCH_EXACT: usize = 128;

// ---------------------------------------------------------------------------
// Bit-exact f64 tokens (the encode/decode wire format)
// ---------------------------------------------------------------------------

fn f64_token(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_f64_token(tok: &str) -> Result<f64, String> {
    u64::from_str_radix(tok, 16)
        .map(f64::from_bits)
        .map_err(|e| format!("bad f64 token {tok:?}: {e}"))
}

fn parse_usize_token(tok: &str) -> Result<usize, String> {
    tok.parse::<usize>().map_err(|e| format!("bad integer token {tok:?}: {e}"))
}

fn parse_u64_token(tok: &str) -> Result<u64, String> {
    tok.parse::<u64>().map_err(|e| format!("bad integer token {tok:?}: {e}"))
}

fn next_token<'a>(
    it: &mut impl Iterator<Item = &'a str>,
    what: &str,
) -> Result<&'a str, String> {
    it.next().ok_or_else(|| format!("truncated sketch encoding: missing {what}"))
}

// ---------------------------------------------------------------------------
// QuantileSketch
// ---------------------------------------------------------------------------

/// A mergeable quantile sketch with an exact small-N mode.
///
/// Up to `exact_cap` samples are kept verbatim and quantiles are *exact*
/// (identical to [`crate::percentile::percentile_sorted`] on the sorted
/// survivors). Past that the sketch compresses into weighted centroids,
/// never holding more than `~2 × capacity` of them: at every compression
/// adjacent centroids are greedily combined under a uniform weight cap of
/// `ceil(count / capacity)`.
///
/// **Rank-error bound.** Every centroid's weight is at most
/// `cap = ceil(count / capacity)` (caps only grow, so earlier compressions
/// obey later bounds). The quantile estimator interpolates linearly through
/// the centroid means placed at their mid-ranks, so an estimate for rank
/// `r` lies between the true order statistics at ranks `r ± (2·cap + 1)`.
/// The property tests pin exactly this bound.
///
/// Operations are deterministic: folding the same values in the same order
/// (and merging in the same order) reproduces the sketch bit for bit,
/// regardless of thread count — shards own disjoint pairs and merge in
/// fixed pair order.
#[derive(Clone, Debug, PartialEq)]
pub struct QuantileSketch {
    capacity: usize,
    exact_cap: usize,
    count: u64,
    min: f64,
    max: f64,
    /// Exact-mode storage, insertion order (sorted on demand).
    exact: Vec<f64>,
    /// Compressed-mode centroids `(mean, weight)`, sorted by mean.
    centroids: Vec<(f64, u64)>,
    /// Compressed-mode insert buffer, flushed at `capacity` points.
    buffer: Vec<f64>,
    compressed: bool,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new()
    }
}

impl QuantileSketch {
    /// A sketch with the default shape
    /// ([`DEFAULT_SKETCH_CAPACITY`] centroids, [`DEFAULT_SKETCH_EXACT`]
    /// exact samples).
    pub fn new() -> QuantileSketch {
        QuantileSketch::with_shape(DEFAULT_SKETCH_CAPACITY, DEFAULT_SKETCH_EXACT)
    }

    /// A sketch with an explicit shape. `capacity` is clamped to ≥ 8 (the
    /// error bound `ceil(n / capacity)` is useless below that).
    pub fn with_shape(capacity: usize, exact_cap: usize) -> QuantileSketch {
        QuantileSketch {
            capacity: capacity.max(8),
            exact_cap,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            exact: Vec::new(),
            centroids: Vec::new(),
            buffer: Vec::new(),
            compressed: false,
        }
    }

    /// Number of non-NaN samples folded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether quantiles are still exact (small-N mode).
    pub fn is_exact(&self) -> bool {
        !self.compressed
    }

    /// Smallest sample folded (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample folded (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// The uniform per-centroid weight cap at the current count.
    fn weight_cap(&self) -> u64 {
        (self.count.max(1)).div_ceil(self.capacity as u64).max(1)
    }

    /// Folds one sample; NaN is ignored (a lost slot, not a value).
    pub fn push(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        self.count += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        if !self.compressed {
            self.exact.push(x);
            if self.exact.len() > self.exact_cap {
                self.switch_to_compressed();
            }
            return;
        }
        self.buffer.push(x);
        if self.buffer.len() >= self.capacity {
            self.compress();
        }
    }

    fn switch_to_compressed(&mut self) {
        self.compressed = true;
        self.buffer = std::mem::take(&mut self.exact);
        self.compress();
    }

    /// Merges the sorted insert buffer into the centroid list and greedily
    /// recombines adjacent centroids under the current weight cap.
    fn compress(&mut self) {
        let mut items: Vec<(f64, u64)> = self
            .centroids
            .drain(..)
            .chain(self.buffer.drain(..).map(|x| (x, 1)))
            .collect();
        items.sort_by(|a, b| f64::total_cmp(&a.0, &b.0));
        let cap = self.weight_cap();
        // Greedy merging yields at most 2·capacity + 1 centroids (adjacent
        // output pairs sum past the weight cap); allocating the bound up
        // front keeps every compression realloc-free and makes the resident
        // footprint deterministic — independent of how many samples have
        // streamed through.
        let mut out: Vec<(f64, u64)> = Vec::with_capacity(2 * self.capacity + 2);
        for (m, w) in items {
            match out.last_mut() {
                Some((lm, lw)) if *lw + w <= cap => {
                    // Weighted mean keeps the combined centroid inside the
                    // span of its members.
                    let tw = *lw + w;
                    *lm = (*lm * (*lw as f64) + m * (w as f64)) / tw as f64;
                    *lw = tw;
                }
                _ => out.push((m, w)),
            }
        }
        self.centroids = out;
    }

    /// Folds another sketch in. The result depends only on the two states
    /// and their order (deterministic for a fixed merge order).
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        let other_items = other.items();
        if !self.compressed && !other.compressed && self.exact.len() + other.exact.len() <= self.exact_cap
        {
            self.exact.extend(other_items.into_iter().map(|(m, _)| m));
            return;
        }
        if !self.compressed {
            self.switch_to_compressed();
        }
        for (m, w) in other_items {
            if w == 1 {
                self.buffer.push(m);
            } else {
                self.centroids.push((m, w));
            }
        }
        self.compress();
    }

    /// Everything held, as `(mean, weight)` items (weight-1 for raw points).
    fn items(&self) -> Vec<(f64, u64)> {
        if self.compressed {
            self.centroids
                .iter()
                .copied()
                .chain(self.buffer.iter().map(|&x| (x, 1)))
                .collect()
        } else {
            self.exact.iter().map(|&x| (x, 1)).collect()
        }
    }

    /// The quantile estimate for `q ∈ [0, 1]`; `None` when empty.
    ///
    /// In exact mode this is identical to
    /// `percentile_sorted(sorted_samples, q * 100)`; in compressed mode it
    /// interpolates through the centroid mid-ranks (see the type docs for
    /// the rank-error bound).
    ///
    /// # Panics
    /// Panics when `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.count == 0 {
            return None;
        }
        if !self.compressed {
            let mut sorted = self.exact.clone();
            sorted.sort_by(f64::total_cmp);
            return percentile_sorted(&sorted, q * 100.0);
        }
        let mut items = self.items();
        items.sort_by(|a, b| f64::total_cmp(&a.0, &b.0));
        // Piecewise-linear through (rank 0, min), every centroid at its
        // mid-rank, and (count-1, max).
        let target = q * (self.count - 1) as f64;
        let mut prev_rank = 0.0;
        let mut prev_val = self.min;
        let mut cum = 0u64;
        for &(m, w) in &items {
            let mid = cum as f64 + (w as f64 - 1.0) / 2.0;
            if target <= mid {
                let span = mid - prev_rank;
                if span <= 0.0 {
                    return Some(m);
                }
                let frac = (target - prev_rank) / span;
                return Some(prev_val + (m - prev_val) * frac);
            }
            prev_rank = mid;
            prev_val = m;
            cum += w;
        }
        let last_rank = (self.count - 1) as f64;
        let span = last_rank - prev_rank;
        if span <= 0.0 {
            return Some(self.max);
        }
        let frac = ((target - prev_rank) / span).min(1.0);
        Some(prev_val + (self.max - prev_val) * frac)
    }

    /// `quantile(hi) − quantile(lo)` — e.g. the §5.1 95th−5th spread.
    pub fn spread(&self, lo: f64, hi: f64) -> Option<f64> {
        Some(self.quantile(hi)? - self.quantile(lo)?)
    }

    /// Bytes resident in this sketch (capacities, not lengths — what the
    /// allocator actually holds).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.exact.capacity() * 8
            + self.buffer.capacity() * 8
            + self.centroids.capacity() * 16
    }

    /// Serializes to space-separated tokens; bit-exact round trip through
    /// [`QuantileSketch::decode`].
    pub fn encode(&self) -> String {
        let mut s = format!(
            "{} {} {} {} {} {}",
            self.capacity,
            self.exact_cap,
            self.count,
            f64_token(self.min),
            f64_token(self.max),
            u8::from(self.compressed),
        );
        let items = self.items();
        s.push_str(&format!(" {}", items.len()));
        for (m, w) in items {
            s.push_str(&format!(" {}:{}", f64_token(m), w));
        }
        s
    }

    /// Parses an [`QuantileSketch::encode`] string.
    pub fn decode(text: &str) -> Result<QuantileSketch, String> {
        let mut it = text.split_whitespace();
        let capacity = parse_usize_token(next_token(&mut it, "capacity")?)?;
        let exact_cap = parse_usize_token(next_token(&mut it, "exact_cap")?)?;
        let count = parse_u64_token(next_token(&mut it, "count")?)?;
        let min = parse_f64_token(next_token(&mut it, "min")?)?;
        let max = parse_f64_token(next_token(&mut it, "max")?)?;
        let compressed = next_token(&mut it, "mode")? == "1";
        let n = parse_usize_token(next_token(&mut it, "item count")?)?;
        let mut sk = QuantileSketch::with_shape(capacity, exact_cap);
        sk.count = count;
        sk.min = min;
        sk.max = max;
        sk.compressed = compressed;
        for _ in 0..n {
            let tok = next_token(&mut it, "item")?;
            let (m, w) = tok
                .split_once(':')
                .ok_or_else(|| format!("bad centroid token {tok:?}"))?;
            let m = parse_f64_token(m)?;
            let w = parse_u64_token(w)?;
            if compressed {
                if w == 1 {
                    sk.buffer.push(m);
                } else {
                    sk.centroids.push((m, w));
                }
            } else {
                sk.exact.push(m);
            }
        }
        Ok(sk)
    }
}

// ---------------------------------------------------------------------------
// StreamingMoments
// ---------------------------------------------------------------------------

/// Streaming mean/variance (Welford), mergeable with the parallel combine
/// of Chan et al. Population variance, matching [`crate::percentile::stddev`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StreamingMoments {
    count: u64,
    mean: f64,
    m2: f64,
}

impl StreamingMoments {
    /// A fresh accumulator.
    pub fn new() -> StreamingMoments {
        StreamingMoments::default()
    }

    /// Folds one sample; NaN is ignored.
    pub fn push(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Folds another accumulator in.
    pub fn merge(&mut self, other: &StreamingMoments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 += other.m2
            + delta * delta * (self.count as f64) * (other.count as f64) / total as f64;
        self.count = total;
    }

    /// Number of non-NaN samples folded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Population variance; `None` when empty.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 0).then_some((self.m2 / self.count as f64).max(0.0))
    }

    /// Population standard deviation; `None` when empty.
    pub fn stddev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Serializes to space-separated tokens (bit-exact round trip).
    pub fn encode(&self) -> String {
        format!("{} {} {}", self.count, f64_token(self.mean), f64_token(self.m2))
    }

    /// Parses an [`StreamingMoments::encode`] string.
    pub fn decode(text: &str) -> Result<StreamingMoments, String> {
        let mut it = text.split_whitespace();
        Ok(StreamingMoments {
            count: parse_u64_token(next_token(&mut it, "count")?)?,
            mean: parse_f64_token(next_token(&mut it, "mean")?)?,
            m2: parse_f64_token(next_token(&mut it, "m2")?)?,
        })
    }
}

// ---------------------------------------------------------------------------
// DiurnalProfile
// ---------------------------------------------------------------------------

/// Fixed time-of-day ring bins: per bin, the count and sum of the samples
/// that landed there. The §5.2 busy/quiet structure of a pair, in
/// `O(bins)` memory regardless of campaign length.
#[derive(Clone, Debug, PartialEq)]
pub struct DiurnalProfile {
    counts: Vec<u64>,
    sums: Vec<f64>,
}

impl DiurnalProfile {
    /// A profile with `bins` time-of-day bins (e.g. 24 for hourly).
    ///
    /// # Panics
    /// Panics when `bins` is zero.
    pub fn new(bins: usize) -> DiurnalProfile {
        assert!(bins > 0, "a diurnal profile needs at least one bin");
        DiurnalProfile { counts: vec![0; bins], sums: vec![0.0; bins] }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Folds one sample into the bin of day-slot `slot` (`slot % bins`
    /// wraps whole days); NaN is ignored.
    pub fn fold_slot(&mut self, slot: u64, x: f64) {
        if x.is_nan() {
            return;
        }
        let b = (slot % self.counts.len() as u64) as usize;
        self.counts[b] += 1;
        self.sums[b] += x;
    }

    /// Folds another profile in.
    ///
    /// # Panics
    /// Panics when the bin counts differ.
    pub fn merge(&mut self, other: &DiurnalProfile) {
        assert_eq!(self.bins(), other.bins(), "merging profiles with different bins");
        for (c, oc) in self.counts.iter_mut().zip(&other.counts) {
            *c += oc;
        }
        for (s, os) in self.sums.iter_mut().zip(&other.sums) {
            *s += os;
        }
    }

    /// The mean of bin `i`; `None` when the bin saw no samples.
    pub fn bin_mean(&self, i: usize) -> Option<f64> {
        (self.counts[i] > 0).then(|| self.sums[i] / self.counts[i] as f64)
    }

    /// Every bin's mean, in bin order.
    pub fn means(&self) -> Vec<Option<f64>> {
        (0..self.bins()).map(|i| self.bin_mean(i)).collect()
    }

    /// The bin with the highest mean (first such bin on ties); `None`
    /// when no bin has data.
    pub fn peak_bin(&self) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..self.bins() {
            if let Some(m) = self.bin_mean(i) {
                if best.map(|(_, bm)| m > bm).unwrap_or(true) {
                    best = Some((i, m));
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// Peak bin mean minus quietest bin mean (over bins with data);
    /// `None` when no bin has data.
    pub fn amplitude(&self) -> Option<f64> {
        let means: Vec<f64> = (0..self.bins()).filter_map(|i| self.bin_mean(i)).collect();
        if means.is_empty() {
            return None;
        }
        let hi = means.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let lo = means.iter().copied().fold(f64::INFINITY, f64::min);
        Some(hi - lo)
    }

    /// Total samples across all bins.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Bytes resident in this profile.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.counts.capacity() * 8 + self.sums.capacity() * 8
    }

    /// Serializes to space-separated tokens (bit-exact round trip).
    pub fn encode(&self) -> String {
        let mut s = format!("{}", self.bins());
        for (&c, &v) in self.counts.iter().zip(&self.sums) {
            s.push_str(&format!(" {}:{}", c, f64_token(v)));
        }
        s
    }

    /// Parses a [`DiurnalProfile::encode`] string.
    pub fn decode(text: &str) -> Result<DiurnalProfile, String> {
        let mut it = text.split_whitespace();
        let bins = parse_usize_token(next_token(&mut it, "bins")?)?;
        if bins == 0 {
            return Err("a diurnal profile needs at least one bin".to_string());
        }
        let mut p = DiurnalProfile::new(bins);
        for i in 0..bins {
            let tok = next_token(&mut it, "bin")?;
            let (c, s) =
                tok.split_once(':').ok_or_else(|| format!("bad bin token {tok:?}"))?;
            p.counts[i] = parse_u64_token(c)?;
            p.sums[i] = parse_f64_token(s)?;
        }
        Ok(p)
    }
}

// ---------------------------------------------------------------------------
// FilledSpectrum
// ---------------------------------------------------------------------------

/// One tracked DFT bin: a phase rotor plus value-weighted and unweighted
/// (for mean removal) accumulated sums.
#[derive(Clone, Debug, PartialEq)]
struct TrackedBin {
    k: usize,
    step_re: f64,
    step_im: f64,
    cur_re: f64,
    cur_im: f64,
    sum_re: f64,
    sum_im: f64,
    c_re: f64,
    c_im: f64,
}

impl TrackedBin {
    fn new(k: usize, padded_len: usize) -> TrackedBin {
        let ang = -2.0 * std::f64::consts::PI * k as f64 / padded_len as f64;
        TrackedBin {
            k,
            step_re: ang.cos(),
            step_im: ang.sin(),
            cur_re: 1.0,
            cur_im: 0.0,
            sum_re: 0.0,
            sum_im: 0.0,
            c_re: 0.0,
            c_im: 0.0,
        }
    }

    fn fold(&mut self, x: f64) {
        self.sum_re += x * self.cur_re;
        self.sum_im += x * self.cur_im;
        self.c_re += self.cur_re;
        self.c_im += self.cur_im;
        let re = self.cur_re * self.step_re - self.cur_im * self.step_im;
        let im = self.cur_re * self.step_im + self.cur_im * self.step_re;
        self.cur_re = re;
        self.cur_im = im;
    }

    /// `|X[k]|²` after mean removal: `X[k] = S_k − mean·C_k`.
    fn power(&self, mean: f64) -> f64 {
        let re = self.sum_re - mean * self.c_re;
        let im = self.sum_im - mean * self.c_im;
        re * re + im * im
    }
}

/// Streams the §5.1 diurnal-PSD-ratio computation.
///
/// [`crate::fft::diurnal_psd_ratio`] runs an FFT over the *filled* RTT
/// series (lost slots replaced by the last valid value, leading losses by
/// the first valid value — `PingTimeline::filled_rtts` in `s2s-probe`),
/// then compares the power in the bins around f = 1/day against the total
/// non-DC power. All of that is expressible without holding the series:
///
/// * the daily band is at most three DFT bins plus possibly Nyquist — each
///   a phase rotor and a complex sum,
/// * the total non-DC half-spectrum power follows from Parseval:
///   `Σ_{k=1..n/2} |X[k]|² = (n·Σ(xᵢ−mean)² + |X[n/2]|²) / 2`
///   (the DC bin is zero by construction), with `Σ(xᵢ−mean)²` kept by a
///   Welford accumulator and the Nyquist bin by an alternating sum,
/// * last-value-hold filling needs one remembered value; leading losses
///   are counted and back-filled the moment the first valid sample lands.
///
/// Feed every schedule slot in time order ([`FilledSpectrum::fold`], `None`
/// for a lost slot) — exactly `expected_len` of them — then read
/// [`FilledSpectrum::ratio`]. The result matches the FFT path up to
/// floating-point summation order.
#[derive(Clone, Debug, PartialEq)]
pub struct FilledSpectrum {
    expected_len: usize,
    samples_per_day: usize,
    padded_len: usize,
    /// Daily-band bins `k < n/2` (Nyquist handled by the alternating sum).
    tracked: Vec<TrackedBin>,
    /// Whether the daily band includes the Nyquist bin `n/2`.
    band_has_nyquist: bool,
    /// `Σ xᵢ·(−1)ⁱ` — the Nyquist bin before mean removal.
    nyq_sum: f64,
    idx: usize,
    leading_gap: usize,
    last: f64,
    any_valid: bool,
    /// Welford over the filled values (mean + Σ(x−mean)²).
    fmean: f64,
    fm2: f64,
}

impl FilledSpectrum {
    /// A spectrum accumulator for a schedule of `expected_len` slots at
    /// `samples_per_day` samples per day.
    ///
    /// # Panics
    /// Panics when `samples_per_day` is zero (mirrors
    /// [`crate::fft::diurnal_psd_ratio`]).
    pub fn new(expected_len: usize, samples_per_day: usize) -> FilledSpectrum {
        assert!(samples_per_day > 0, "samples_per_day must be positive");
        let padded_len = expected_len.next_power_of_two().max(1);
        let half = padded_len / 2;
        let day_bin = (padded_len as f64 / samples_per_day as f64).round() as usize;
        let mut tracked = Vec::new();
        let mut band_has_nyquist = false;
        // Mirrors diurnal_psd_ratio's band selection; when the band is
        // invalid (day_bin out of range) no bins are tracked and ratio()
        // yields None.
        if day_bin > 0 && day_bin <= half && expected_len >= 4 {
            let lo = day_bin.saturating_sub(1).max(1);
            let hi = (day_bin + 1).min(half);
            for k in lo..=hi {
                if k == half {
                    band_has_nyquist = true;
                } else {
                    tracked.push(TrackedBin::new(k, padded_len));
                }
            }
        }
        FilledSpectrum {
            expected_len,
            samples_per_day,
            padded_len,
            tracked,
            band_has_nyquist,
            nyq_sum: 0.0,
            idx: 0,
            leading_gap: 0,
            last: 0.0,
            any_valid: false,
            fmean: 0.0,
            fm2: 0.0,
        }
    }

    /// Slots folded so far (valid or lost).
    pub fn len(&self) -> usize {
        self.idx + self.leading_gap
    }

    /// Whether no slot has been folded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Folds the next schedule slot, in time order; `None` is a lost slot.
    pub fn fold(&mut self, sample: Option<f64>) {
        match sample {
            Some(v) if !v.is_nan() => {
                if !self.any_valid {
                    // Leading losses take the first valid value.
                    for _ in 0..self.leading_gap {
                        self.fold_value(v);
                    }
                    self.leading_gap = 0;
                    self.any_valid = true;
                }
                self.last = v;
                self.fold_value(v);
            }
            _ => {
                if self.any_valid {
                    self.fold_value(self.last);
                } else {
                    self.leading_gap += 1;
                }
            }
        }
    }

    fn fold_value(&mut self, x: f64) {
        for bin in &mut self.tracked {
            bin.fold(x);
        }
        self.nyq_sum += if self.idx.is_multiple_of(2) { x } else { -x };
        self.idx += 1;
        let delta = x - self.fmean;
        self.fmean += delta / self.idx as f64;
        self.fm2 += delta * (x - self.fmean);
    }

    /// The diurnal PSD ratio, mirroring [`crate::fft::diurnal_psd_ratio`]
    /// over the filled series: `None` when no slot was valid, the series
    /// is shorter than two days, the daily bin is out of range, or there
    /// is no variance.
    pub fn ratio(&self) -> Option<f64> {
        if !self.any_valid {
            return None; // filled_rtts() is None
        }
        let len = self.len();
        if len < 2 * self.samples_per_day || len < 4 {
            return None;
        }
        debug_assert_eq!(
            len, self.expected_len,
            "FilledSpectrum folded {len} slots for an {}-slot schedule",
            self.expected_len
        );
        let half = self.padded_len / 2;
        let day_bin =
            (self.padded_len as f64 / self.samples_per_day as f64).round() as usize;
        if day_bin == 0 || day_bin > half {
            return None;
        }
        // Nyquist after mean removal: Σ(xᵢ−mean)(−1)ⁱ. The phase sum of
        // (−1)ⁱ over i < len is 1 for odd lengths, 0 for even.
        let c_nyq = if len % 2 == 1 { 1.0 } else { 0.0 };
        let x_nyq = self.nyq_sum - self.fmean * c_nyq;
        let nyq_power = x_nyq * x_nyq;
        // Parseval over the padded series (DC bin is zero): the half
        // spectrum 1..=n/2 carries half the energy plus half the Nyquist
        // bin again (Nyquist has no mirror).
        let total = (self.padded_len as f64 * self.fm2 + nyq_power) / 2.0;
        if total <= 0.0 {
            return None;
        }
        let mut diurnal: f64 =
            self.tracked.iter().map(|b| b.power(self.fmean)).sum();
        if self.band_has_nyquist {
            diurnal += nyq_power;
        }
        Some(diurnal / total)
    }

    /// Bytes resident in this accumulator.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.tracked.capacity() * std::mem::size_of::<TrackedBin>()
    }

    /// Serializes to space-separated tokens (bit-exact round trip).
    pub fn encode(&self) -> String {
        let mut s = format!(
            "{} {} {} {} {} {} {} {} {}",
            self.expected_len,
            self.samples_per_day,
            self.idx,
            self.leading_gap,
            u8::from(self.any_valid),
            f64_token(self.last),
            f64_token(self.nyq_sum),
            f64_token(self.fmean),
            f64_token(self.fm2),
        );
        for b in &self.tracked {
            s.push_str(&format!(
                " {}:{}:{}:{}:{}:{}:{}",
                b.k,
                f64_token(b.cur_re),
                f64_token(b.cur_im),
                f64_token(b.sum_re),
                f64_token(b.sum_im),
                f64_token(b.c_re),
                f64_token(b.c_im),
            ));
        }
        s
    }

    /// Parses a [`FilledSpectrum::encode`] string.
    pub fn decode(text: &str) -> Result<FilledSpectrum, String> {
        let mut it = text.split_whitespace();
        let expected_len = parse_usize_token(next_token(&mut it, "expected_len")?)?;
        let samples_per_day = parse_usize_token(next_token(&mut it, "samples_per_day")?)?;
        if samples_per_day == 0 {
            return Err("samples_per_day must be positive".to_string());
        }
        let mut sp = FilledSpectrum::new(expected_len, samples_per_day);
        sp.idx = parse_usize_token(next_token(&mut it, "idx")?)?;
        sp.leading_gap = parse_usize_token(next_token(&mut it, "leading_gap")?)?;
        sp.any_valid = next_token(&mut it, "any_valid")? == "1";
        sp.last = parse_f64_token(next_token(&mut it, "last")?)?;
        sp.nyq_sum = parse_f64_token(next_token(&mut it, "nyq_sum")?)?;
        sp.fmean = parse_f64_token(next_token(&mut it, "fmean")?)?;
        sp.fm2 = parse_f64_token(next_token(&mut it, "fm2")?)?;
        for b in &mut sp.tracked {
            let tok = next_token(&mut it, "tracked bin")?;
            let parts: Vec<&str> = tok.split(':').collect();
            if parts.len() != 7 {
                return Err(format!("bad tracked-bin token {tok:?}"));
            }
            let k = parse_usize_token(parts[0])?;
            if k != b.k {
                return Err(format!("tracked bin {k} does not match schedule bin {}", b.k));
            }
            b.cur_re = parse_f64_token(parts[1])?;
            b.cur_im = parse_f64_token(parts[2])?;
            b.sum_re = parse_f64_token(parts[3])?;
            b.sum_im = parse_f64_token(parts[4])?;
            b.c_re = parse_f64_token(parts[5])?;
            b.c_im = parse_f64_token(parts[6])?;
        }
        Ok(sp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::diurnal_psd_ratio;
    use crate::percentile::{mean as exact_mean, stddev as exact_stddev};
    use proptest::prelude::*;

    fn sorted_clean(data: &[f64]) -> Vec<f64> {
        let mut v: Vec<f64> = data.iter().copied().filter(|x| !x.is_nan()).collect();
        v.sort_by(f64::total_cmp);
        v
    }

    fn sketch_of(data: &[f64], capacity: usize, exact_cap: usize) -> QuantileSketch {
        let mut sk = QuantileSketch::with_shape(capacity, exact_cap);
        for &x in data {
            sk.push(x);
        }
        sk
    }

    /// The provable rank-error envelope: the estimate at `q` must lie
    /// between the exact order statistics at ranks `r ± (2·cap + 1)`.
    fn assert_within_rank_bound(sk: &QuantileSketch, sorted: &[f64], q: f64) {
        let est = sk.quantile(q).unwrap();
        let n = sorted.len();
        let cap = (n as u64).div_ceil(sk.capacity as u64).max(1) as f64;
        let slack = 2.0 * cap + 1.0;
        let r = q * (n - 1) as f64;
        let lo = ((r - slack).floor().max(0.0)) as usize;
        let hi = ((r + slack).ceil() as usize).min(n - 1);
        let eps = 1e-9 * (1.0 + est.abs());
        assert!(
            est >= sorted[lo] - eps && est <= sorted[hi] + eps,
            "q={q}: estimate {est} outside [{}, {}] (ranks {lo}..={hi} of {n})",
            sorted[lo],
            sorted[hi]
        );
    }

    #[test]
    fn exact_mode_matches_percentile_sorted() {
        let data: Vec<f64> = (0..100).map(|i| ((i * 37) % 100) as f64).collect();
        let sk = sketch_of(&data, 256, 128);
        assert!(sk.is_exact());
        let sorted = sorted_clean(&data);
        for q in [0.0, 0.05, 0.5, 0.95, 1.0] {
            assert_eq!(sk.quantile(q), percentile_sorted(&sorted, q * 100.0));
        }
    }

    #[test]
    fn compressed_mode_bounds_memory_and_rank_error() {
        let n = 50_000;
        let data: Vec<f64> = (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
                (h >> 11) as f64 / (1u64 << 53) as f64 * 100.0
            })
            .collect();
        let sk = sketch_of(&data, 128, 64);
        assert!(!sk.is_exact());
        assert!(
            sk.centroids.len() <= 2 * sk.capacity + 1,
            "{} centroids for capacity {}",
            sk.centroids.len(),
            sk.capacity
        );
        // Resident bytes stay bounded regardless of n.
        assert!(sk.memory_bytes() < 64 * 1024, "{} bytes", sk.memory_bytes());
        let sorted = sorted_clean(&data);
        for q in [0.0, 0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0] {
            assert_within_rank_bound(&sk, &sorted, q);
        }
    }

    #[test]
    fn sketch_nan_is_filtered_like_the_exact_toolkit() {
        let data = [1.0, f64::NAN, 3.0, 2.0, f64::NAN];
        let sk = sketch_of(&data, 64, 8);
        assert_eq!(sk.count(), 3);
        assert_eq!(sk.quantile(0.5), Some(2.0));
        let all_nan = sketch_of(&[f64::NAN, f64::NAN], 64, 8);
        assert_eq!(all_nan.quantile(0.5), None);
        assert_eq!(all_nan.min(), None);
    }

    #[test]
    fn merge_equals_merging_counts_and_respects_bounds() {
        let a: Vec<f64> = (0..700).map(|i| (i % 97) as f64).collect();
        let b: Vec<f64> = (0..900).map(|i| 50.0 + (i % 53) as f64).collect();
        let mut sa = sketch_of(&a, 64, 32);
        let sb = sketch_of(&b, 64, 32);
        sa.merge(&sb);
        assert_eq!(sa.count(), 1600);
        let mut all = a.clone();
        all.extend_from_slice(&b);
        let sorted = sorted_clean(&all);
        assert_eq!(sa.min(), Some(sorted[0]));
        assert_eq!(sa.max(), Some(*sorted.last().unwrap()));
        for q in [0.05, 0.5, 0.95] {
            assert_within_rank_bound(&sa, &sorted, q);
        }
    }

    #[test]
    fn merge_of_small_exact_sketches_stays_exact() {
        let mut a = sketch_of(&[1.0, 2.0], 256, 128);
        let b = sketch_of(&[3.0, 4.0], 256, 128);
        a.merge(&b);
        assert!(a.is_exact());
        assert_eq!(a.quantile(0.5), Some(2.5));
    }

    #[test]
    fn merge_order_is_deterministic() {
        let chunks: Vec<Vec<f64>> = (0..4)
            .map(|c| {
                (0..500)
                    .map(|i| {
                        let h = ((c * 1000 + i) as u64).wrapping_mul(0x9E3779B97F4A7C15);
                        (h >> 11) as f64 / (1u64 << 53) as f64 * 40.0
                    })
                    .collect()
            })
            .collect();
        let fold = || {
            let mut acc = QuantileSketch::with_shape(64, 32);
            for c in &chunks {
                let sk = sketch_of(c, 64, 32);
                acc.merge(&sk);
            }
            acc
        };
        let one = fold();
        let two = fold();
        assert_eq!(one, two, "same merge order must be bit-identical");
        assert_eq!(one.encode(), two.encode());
    }

    #[test]
    fn sketch_encode_round_trips() {
        for data in [
            Vec::new(),
            vec![5.0, 1.0, f64::NAN, 3.0],
            (0..2000).map(|i| (i % 211) as f64).collect::<Vec<_>>(),
        ] {
            let sk = sketch_of(&data, 32, 16);
            let rt = QuantileSketch::decode(&sk.encode()).unwrap();
            assert_eq!(sk, rt);
        }
        assert!(QuantileSketch::decode("3 2 1").is_err());
        assert!(QuantileSketch::decode("").is_err());
    }

    #[test]
    fn moments_match_exact_mean_and_stddev() {
        let data: Vec<f64> = (0..1000)
            .map(|i| 50.0 + ((i * 13) % 29) as f64 - 14.0)
            .chain([f64::NAN])
            .collect();
        let mut m = StreamingMoments::new();
        for &x in &data {
            m.push(x);
        }
        assert_eq!(m.count(), 1000);
        assert!((m.mean().unwrap() - exact_mean(&data).unwrap()).abs() < 1e-9);
        assert!((m.stddev().unwrap() - exact_stddev(&data).unwrap()).abs() < 1e-9);
        assert_eq!(StreamingMoments::new().mean(), None);
    }

    #[test]
    fn moments_merge_matches_single_pass() {
        let data: Vec<f64> = (0..801).map(|i| ((i * 31) % 157) as f64).collect();
        let mut whole = StreamingMoments::new();
        for &x in &data {
            whole.push(x);
        }
        let mut merged = StreamingMoments::new();
        for chunk in data.chunks(97) {
            let mut part = StreamingMoments::new();
            for &x in chunk {
                part.push(x);
            }
            merged.merge(&part);
        }
        assert_eq!(merged.count(), whole.count());
        assert!((merged.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-9);
        assert!((merged.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-9);
        let rt = StreamingMoments::decode(&merged.encode()).unwrap();
        assert_eq!(merged, rt);
    }

    #[test]
    fn diurnal_profile_bins_and_merges() {
        let mut p = DiurnalProfile::new(24);
        // Two days of hourly samples: hour h gets value h, twice.
        for day in 0..2u64 {
            for h in 0..24u64 {
                p.fold_slot(day * 24 + h, h as f64);
            }
        }
        p.fold_slot(3, f64::NAN); // ignored
        assert_eq!(p.count(), 48);
        assert_eq!(p.bin_mean(5), Some(5.0));
        assert_eq!(p.peak_bin(), Some(23));
        assert_eq!(p.amplitude(), Some(23.0));
        let mut q = DiurnalProfile::new(24);
        q.fold_slot(0, 100.0);
        p.merge(&q);
        assert_eq!(p.peak_bin(), Some(0));
        let rt = DiurnalProfile::decode(&p.encode()).unwrap();
        assert_eq!(p, rt);
        assert_eq!(DiurnalProfile::new(4).peak_bin(), None);
        assert_eq!(DiurnalProfile::new(4).amplitude(), None);
    }

    /// The streamed spectrum must agree with the FFT reference on the
    /// exact same filled series.
    fn filled_reference(rtts: &[Option<f64>]) -> Option<Vec<f64>> {
        let first = rtts.iter().copied().flatten().next()?;
        let mut last = first;
        Some(
            rtts.iter()
                .map(|r| {
                    if let Some(v) = r {
                        last = *v;
                    }
                    last
                })
                .collect(),
        )
    }

    fn spectrum_agrees(rtts: &[Option<f64>], spd: usize) {
        let mut sp = FilledSpectrum::new(rtts.len(), spd);
        for &r in rtts {
            sp.fold(r);
        }
        let streamed = sp.ratio();
        let exact = filled_reference(rtts).and_then(|f| diurnal_psd_ratio(&f, spd));
        match (streamed, exact) {
            (None, None) => {}
            (Some(s), Some(e)) => {
                assert!(
                    (s - e).abs() < 1e-6,
                    "streamed {s} vs exact {e} over {} slots",
                    rtts.len()
                );
            }
            other => panic!("streamed/exact disagree on presence: {other:?}"),
        }
    }

    fn diurnal_slots(n: usize, spd: usize, amp: f64, noise: f64) -> Vec<Option<f64>> {
        (0..n)
            .map(|i| {
                let phase = 2.0 * std::f64::consts::PI * i as f64 / spd as f64;
                let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
                let u = (h >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                Some(50.0 + amp * phase.sin() + noise * u)
            })
            .collect()
    }

    #[test]
    fn spectrum_matches_fft_on_clean_and_gappy_series() {
        // 672 slots of 15-minute pings — the §5.1 shape (not a power of
        // two, so padding is exercised).
        let clean = diurnal_slots(672, 96, 15.0, 1.0);
        spectrum_agrees(&clean, 96);

        let mut gappy = clean.clone();
        for (i, slot) in gappy.iter_mut().enumerate() {
            if i % 7 == 3 || (100..130).contains(&i) {
                *slot = None;
            }
        }
        spectrum_agrees(&gappy, 96);

        // Leading losses take the first valid value.
        let mut leading = clean;
        for slot in leading.iter_mut().take(50) {
            *slot = None;
        }
        spectrum_agrees(&leading, 96);

        // Flat noise, weekly-period signal, and a power-of-two length.
        spectrum_agrees(&diurnal_slots(672, 96, 0.0, 5.0), 96);
        spectrum_agrees(&diurnal_slots(512, 96, 10.0, 2.0), 96);
        let weekly: Vec<Option<f64>> = (0..672)
            .map(|i| {
                Some(50.0 + 20.0 * (2.0 * std::f64::consts::PI * i as f64 / 672.0).sin())
            })
            .collect();
        spectrum_agrees(&weekly, 96);
    }

    #[test]
    fn spectrum_none_cases_mirror_the_fft_path() {
        // All lost: filled_rtts is None.
        let lost: Vec<Option<f64>> = vec![None; 672];
        spectrum_agrees(&lost, 96);
        // Shorter than two days.
        spectrum_agrees(&diurnal_slots(96, 96, 15.0, 1.0), 96);
        // Constant signal: no variance.
        let flat: Vec<Option<f64>> = vec![Some(42.0); 672];
        spectrum_agrees(&flat, 96);
    }

    #[test]
    fn spectrum_detects_at_trace_cadence_too() {
        // 3-hour samples: 8 per day, 40 days.
        spectrum_agrees(&diurnal_slots(320, 8, 12.0, 1.0), 8);
        spectrum_agrees(&diurnal_slots(320, 8, 0.0, 4.0), 8);
    }

    #[test]
    fn spectrum_encode_round_trips_mid_stream() {
        let slots = diurnal_slots(672, 96, 15.0, 2.0);
        let mut whole = FilledSpectrum::new(672, 96);
        let mut front = FilledSpectrum::new(672, 96);
        for &s in &slots[..300] {
            whole.fold(s);
            front.fold(s);
        }
        let mut resumed = FilledSpectrum::decode(&front.encode()).unwrap();
        assert_eq!(front, resumed);
        for &s in &slots[300..] {
            whole.fold(s);
            resumed.fold(s);
        }
        assert_eq!(whole, resumed, "resume must be bit-identical");
        assert_eq!(whole.ratio(), resumed.ratio());
        assert!(FilledSpectrum::decode("672 0 0").is_err());
        assert!(FilledSpectrum::decode("672").is_err());
    }

    #[test]
    fn spectrum_memory_is_independent_of_length() {
        let small = FilledSpectrum::new(672, 96);
        let big = FilledSpectrum::new(672 * 64, 96);
        // Same number of tracked bins regardless of schedule length.
        assert!(big.memory_bytes() <= small.memory_bytes() + 64);
    }

    proptest! {
        /// Sketch quantiles stay within the rank-error envelope of the
        /// exact percentile, under NaN injection, across shapes.
        #[test]
        fn prop_sketch_within_rank_error_of_percentile(
            values in proptest::collection::vec(-1e3f64..1e3, 1..600),
            nan_every in 2usize..17,
            capacity in 8usize..96,
            q in 0.0f64..1.0,
        ) {
            let data: Vec<f64> = values
                .iter()
                .enumerate()
                .map(|(i, &v)| if i % nan_every == 0 { f64::NAN } else { v })
                .collect();
            let sorted = sorted_clean(&data);
            let sk = sketch_of(&data, capacity, 16);
            prop_assert_eq!(sk.count() as usize, sorted.len());
            if sorted.is_empty() {
                prop_assert_eq!(sk.quantile(q), None);
            } else {
                let est = sk.quantile(q).unwrap();
                let cap = (sorted.len() as u64)
                    .div_ceil(sk.capacity as u64)
                    .max(1) as f64;
                let slack = 2.0 * cap + 1.0;
                let r = q * (sorted.len() - 1) as f64;
                let lo = ((r - slack).floor().max(0.0)) as usize;
                let hi = ((r + slack).ceil() as usize).min(sorted.len() - 1);
                let eps = 1e-9 * (1.0 + est.abs());
                prop_assert!(
                    est >= sorted[lo] - eps && est <= sorted[hi] + eps,
                    "q={} est={} bounds=[{}, {}]", q, est, sorted[lo], sorted[hi]
                );
            }
        }

        /// NaN injection never changes what the survivors produce.
        #[test]
        fn prop_sketch_nan_injection_equals_filtering(
            values in proptest::collection::vec(-50f64..50.0, 0..300),
            nan_every in 2usize..9,
        ) {
            let with_nan: Vec<f64> = values
                .iter()
                .enumerate()
                .flat_map(|(i, &v)| {
                    if i % nan_every == 0 { vec![f64::NAN, v] } else { vec![v] }
                })
                .collect();
            let a = sketch_of(&values, 32, 16);
            let b = sketch_of(&with_nan, 32, 16);
            prop_assert_eq!(a, b);
        }

        /// Chunked merge stays within the rank-error envelope too (the
        /// sharded-campaign shape).
        #[test]
        fn prop_merged_sketch_within_rank_error(
            values in proptest::collection::vec(0f64..100.0, 10..500),
            chunk in 7usize..50,
            q in 0.0f64..1.0,
        ) {
            let mut acc = QuantileSketch::with_shape(48, 16);
            for c in values.chunks(chunk) {
                acc.merge(&sketch_of(c, 48, 16));
            }
            let sorted = sorted_clean(&values);
            let est = acc.quantile(q).unwrap();
            let cap = (sorted.len() as u64).div_ceil(48).max(1) as f64;
            let slack = 2.0 * cap + 1.0;
            let r = q * (sorted.len() - 1) as f64;
            let lo = ((r - slack).floor().max(0.0)) as usize;
            let hi = ((r + slack).ceil() as usize).min(sorted.len() - 1);
            let eps = 1e-9 * (1.0 + est.abs());
            prop_assert!(est >= sorted[lo] - eps && est <= sorted[hi] + eps);
        }

        /// Welford merge == single pass, to float tolerance.
        #[test]
        fn prop_moments_merge_matches_single_pass(
            values in proptest::collection::vec(-1e3f64..1e3, 1..400),
            chunk in 3usize..40,
        ) {
            let mut whole = StreamingMoments::new();
            for &x in &values { whole.push(x); }
            let mut merged = StreamingMoments::new();
            for c in values.chunks(chunk) {
                let mut part = StreamingMoments::new();
                for &x in c { part.push(x); }
                merged.merge(&part);
            }
            prop_assert_eq!(merged.count(), whole.count());
            let tol = 1e-6 * (1.0 + whole.variance().unwrap().abs());
            prop_assert!((merged.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-7);
            prop_assert!((merged.variance().unwrap() - whole.variance().unwrap()).abs() < tol);
        }

        /// Streamed PSD ratio tracks the FFT reference on random gappy
        /// diurnal series.
        #[test]
        fn prop_spectrum_matches_fft(
            amp in 0.0f64..30.0,
            noise in 0.1f64..10.0,
            loss_every in 2usize..40,
        ) {
            let slots: Vec<Option<f64>> = diurnal_slots(672, 96, amp, noise)
                .into_iter()
                .enumerate()
                .map(|(i, s)| if i % loss_every == 1 { None } else { s })
                .collect();
            let mut sp = FilledSpectrum::new(672, 96);
            for &s in &slots { sp.fold(s); }
            let exact = filled_reference(&slots).and_then(|f| diurnal_psd_ratio(&f, 96));
            match (sp.ratio(), exact) {
                (None, None) => {}
                (Some(s), Some(e)) => prop_assert!((s - e).abs() < 1e-6, "{} vs {}", s, e),
                other => prop_assert!(false, "presence mismatch: {:?}", other),
            }
        }
    }
}
