//! Levenshtein edit distance over symbol sequences.
//!
//! The paper (§4.1) treats AS paths as delimited strings and uses the edit
//! distance between two paths as the measure of routing change: zero means
//! the same AS-level route, non-zero means a change. The distance is over
//! whole AS hops, not characters.

/// Levenshtein distance between two symbol sequences (insert/delete/
/// substitute, unit costs). Runs in O(|a|·|b|) time and O(min) space.
pub fn edit_distance<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    // Ensure the column dimension is the shorter side for less memory.
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut curr = vec![0usize; short.len() + 1];
    for (i, lv) in long.iter().enumerate() {
        curr[0] = i + 1;
        for (j, sv) in short.iter().enumerate() {
            let sub_cost = if lv == sv { 0 } else { 1 };
            curr[j + 1] = (prev[j] + sub_cost) // substitute / match
                .min(prev[j + 1] + 1) // delete from long
                .min(curr[j] + 1); // insert into long
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[short.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_sequences_are_zero() {
        assert_eq!(edit_distance(&[1, 2, 3], &[1, 2, 3]), 0);
        assert_eq!(edit_distance::<u32>(&[], &[]), 0);
    }

    #[test]
    fn paper_example() {
        // p1: a -> b -> c -> d, p2: a -> b -> d. One removal (ASNc).
        let p1 = ["a", "b", "c", "d"];
        let p2 = ["a", "b", "d"];
        assert_eq!(edit_distance(&p1, &p2), 1);
    }

    #[test]
    fn insert_delete_substitute() {
        assert_eq!(edit_distance(&[1, 2, 3], &[1, 3]), 1); // delete
        assert_eq!(edit_distance(&[1, 3], &[1, 2, 3]), 1); // insert
        assert_eq!(edit_distance(&[1, 2, 3], &[1, 9, 3]), 1); // substitute
        assert_eq!(edit_distance(&[1, 2], &[3, 4]), 2);
    }

    #[test]
    fn empty_vs_nonempty() {
        assert_eq!(edit_distance(&[], &[1, 2, 3]), 3);
        assert_eq!(edit_distance(&[1, 2, 3], &[]), 3);
    }

    #[test]
    fn classic_string_cases() {
        let a: Vec<char> = "kitten".chars().collect();
        let b: Vec<char> = "sitting".chars().collect();
        assert_eq!(edit_distance(&a, &b), 3);
        let a: Vec<char> = "flaw".chars().collect();
        let b: Vec<char> = "lawn".chars().collect();
        assert_eq!(edit_distance(&a, &b), 2);
    }

    proptest! {
        #[test]
        fn prop_symmetric(
            a in proptest::collection::vec(0u8..5, 0..20),
            b in proptest::collection::vec(0u8..5, 0..20),
        ) {
            prop_assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
        }

        #[test]
        fn prop_identity(a in proptest::collection::vec(0u8..5, 0..30)) {
            prop_assert_eq!(edit_distance(&a, &a), 0);
        }

        #[test]
        fn prop_bounded_by_longer_length(
            a in proptest::collection::vec(0u8..5, 0..20),
            b in proptest::collection::vec(0u8..5, 0..20),
        ) {
            let d = edit_distance(&a, &b);
            prop_assert!(d <= a.len().max(b.len()));
            prop_assert!(d >= a.len().abs_diff(b.len()));
        }

        #[test]
        fn prop_triangle_inequality(
            a in proptest::collection::vec(0u8..4, 0..12),
            b in proptest::collection::vec(0u8..4, 0..12),
            c in proptest::collection::vec(0u8..4, 0..12),
        ) {
            let ab = edit_distance(&a, &b);
            let bc = edit_distance(&b, &c);
            let ac = edit_distance(&a, &c);
            prop_assert!(ac <= ab + bc);
        }

        #[test]
        fn prop_single_edit_is_distance_one(
            mut a in proptest::collection::vec(0u8..5, 1..20),
            idx in 0usize..20,
        ) {
            let orig = a.clone();
            let i = idx % a.len();
            a[i] = a[i].wrapping_add(1) % 5;
            let d = edit_distance(&orig, &a);
            prop_assert!(d <= 1);
        }
    }
}
