//! Radix-2 FFT and the diurnal power-spectral-density ratio.
//!
//! The paper detects "consistent congestion" (§5.1) by applying an FFT at
//! frequency f = 1/day to the RTT time series of a server pair and testing
//! whether the power concentrated around the 24-hour period is at least 0.3
//! of the total (non-DC) power. [`diurnal_psd_ratio`] implements exactly
//! that test; [`fft_power`] is the general power spectrum it builds on.

use std::f64::consts::PI;

/// A complex number, minimal: just what the FFT needs.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// A purely real value.
    pub fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Squared magnitude.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    fn mul(self, o: Complex) -> Complex {
        Complex {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }

    fn add(self, o: Complex) -> Complex {
        Complex { re: self.re + o.re, im: self.im + o.im }
    }

    fn sub(self, o: Complex) -> Complex {
        Complex { re: self.re - o.re, im: self.im - o.im }
    }
}

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// # Panics
/// Panics unless `buf.len()` is a power of two.
pub fn fft_in_place(buf: &mut [Complex]) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "FFT length {n} is not a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if i < j {
            buf.swap(i, j);
        }
    }
    // Butterfly passes.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * PI / len as f64;
        let wlen = Complex { re: ang.cos(), im: ang.sin() };
        for chunk in buf.chunks_mut(len) {
            let mut w = Complex::real(1.0);
            let half = len / 2;
            for k in 0..half {
                let u = chunk[k];
                let v = chunk[k + half].mul(w);
                chunk[k] = u.add(v);
                chunk[k + half] = u.sub(v);
                w = w.mul(wlen);
            }
        }
        len <<= 1;
    }
}

/// Power spectrum of a real signal: pads to the next power of two with the
/// signal mean (so padding adds no spurious high-frequency energy), removes
/// the mean (DC), and returns `|X[k]|^2` for `k = 0 .. n/2` along with the
/// padded length.
///
/// Returns `None` for signals shorter than 4 samples.
pub fn fft_power(signal: &[f64]) -> Option<(Vec<f64>, usize)> {
    if signal.len() < 4 {
        return None;
    }
    let mean = signal.iter().sum::<f64>() / signal.len() as f64;
    let n = signal.len().next_power_of_two();
    let mut buf: Vec<Complex> = signal
        .iter()
        .map(|&x| Complex::real(x - mean))
        .chain(std::iter::repeat(Complex::real(0.0)))
        .take(n)
        .collect();
    fft_in_place(&mut buf);
    let power: Vec<f64> = buf[..=n / 2].iter().map(|c| c.norm_sq()).collect();
    Some((power, n))
}

/// The paper's §5.1 congestion signal: the fraction of total (non-DC)
/// spectral power concentrated around the 1/day frequency.
///
/// * `signal` — the RTT time series, regularly sampled,
/// * `samples_per_day` — sampling rate (96 for 15-minute pings).
///
/// The spectral peak of a windowed daily oscillation leaks into neighboring
/// bins, so power within ±1 bin of the daily frequency counts toward the
/// diurnal component (consistent with the automated processing in Luckie et
/// al., which this simplifies).
///
/// Returns `None` for signals shorter than two days or with no variance.
pub fn diurnal_psd_ratio(signal: &[f64], samples_per_day: usize) -> Option<f64> {
    assert!(samples_per_day > 0, "samples_per_day must be positive");
    if signal.len() < 2 * samples_per_day {
        return None;
    }
    let (power, n) = fft_power(signal)?;
    // Signal occupies the first `signal.len()` of `n` padded samples; the
    // bin spacing in cycles/sample is 1/n, and one day is samples_per_day
    // samples, so the daily frequency lands at bin n / samples_per_day.
    let day_bin = (n as f64 / samples_per_day as f64).round() as usize;
    if day_bin == 0 || day_bin >= power.len() {
        return None;
    }
    let total: f64 = power[1..].iter().sum();
    if total <= 0.0 {
        return None;
    }
    let lo = day_bin.saturating_sub(1).max(1);
    let hi = (day_bin + 1).min(power.len() - 1);
    let diurnal: f64 = power[lo..=hi].iter().sum();
    Some(diurnal / total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sine_series(n: usize, samples_per_day: usize, amp: f64, noise: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let phase = 2.0 * PI * i as f64 / samples_per_day as f64;
                // Deterministic pseudo-noise from a hash of the index.
                let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
                let u = (h >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                50.0 + amp * phase.sin() + noise * u
            })
            .collect()
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut buf = vec![Complex::real(0.0); 8];
        buf[0] = Complex::real(1.0);
        fft_in_place(&mut buf);
        for c in &buf {
            assert!((c.norm_sq() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_pure_tone_peaks_at_bin() {
        let n = 64;
        let k = 5;
        let mut buf: Vec<Complex> = (0..n)
            .map(|i| Complex::real((2.0 * PI * k as f64 * i as f64 / n as f64).cos()))
            .collect();
        fft_in_place(&mut buf);
        let powers: Vec<f64> = buf.iter().map(|c| c.norm_sq()).collect();
        let max_bin = powers
            .iter()
            .enumerate()
            .take(n / 2)
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(max_bin, k);
    }

    #[test]
    fn fft_parseval() {
        // Energy in time domain equals energy in frequency domain / n.
        let n = 32;
        let signal: Vec<f64> = (0..n).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        let mut buf: Vec<Complex> = signal.iter().map(|&x| Complex::real(x)).collect();
        fft_in_place(&mut buf);
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let freq_energy: f64 = buf.iter().map(|c| c.norm_sq()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        fft_in_place(&mut [Complex::real(0.0); 6]);
    }

    #[test]
    fn diurnal_signal_detected() {
        // A clean 7-day series of 15-minute samples with a daily sinusoid,
        // like the §5.1 ping data.
        let s = sine_series(672, 96, 15.0, 1.0);
        let ratio = diurnal_psd_ratio(&s, 96).unwrap();
        assert!(ratio > 0.5, "ratio = {ratio}");
    }

    #[test]
    fn flat_noise_not_detected() {
        let s = sine_series(672, 96, 0.0, 5.0);
        let ratio = diurnal_psd_ratio(&s, 96).unwrap();
        assert!(ratio < 0.3, "ratio = {ratio}");
    }

    #[test]
    fn constant_signal_yields_none() {
        let s = vec![42.0; 672];
        assert_eq!(diurnal_psd_ratio(&s, 96), None);
    }

    #[test]
    fn short_signal_yields_none() {
        assert_eq!(diurnal_psd_ratio(&[1.0, 2.0, 3.0], 96), None);
        // One day of data isn't enough to establish a daily period.
        let s = sine_series(96, 96, 15.0, 0.1);
        assert_eq!(diurnal_psd_ratio(&s, 96), None);
    }

    #[test]
    fn weekly_period_not_flagged_as_diurnal() {
        // Oscillation with a 7-day period should not trip the 1-day detector.
        let s: Vec<f64> = (0..672)
            .map(|i| 50.0 + 20.0 * (2.0 * PI * i as f64 / 672.0).sin())
            .collect();
        let ratio = diurnal_psd_ratio(&s, 96).unwrap();
        assert!(ratio < 0.3, "ratio = {ratio}");
    }

    #[test]
    fn fft_power_requires_min_len() {
        assert!(fft_power(&[1.0, 2.0]).is_none());
        assert!(fft_power(&[1.0, 2.0, 3.0, 4.0]).is_some());
    }

    proptest! {
        #[test]
        fn prop_psd_ratio_in_unit_interval(
            amp in 0.0f64..30.0,
            noise in 0.1f64..20.0,
        ) {
            let s = sine_series(672, 96, amp, noise);
            if let Some(r) = diurnal_psd_ratio(&s, 96) {
                prop_assert!((0.0..=1.0 + 1e-9).contains(&r));
            }
        }

        #[test]
        fn prop_stronger_diurnal_scores_higher(noise in 0.5f64..5.0) {
            let weak = diurnal_psd_ratio(&sine_series(672, 96, 2.0, noise), 96).unwrap();
            let strong = diurnal_psd_ratio(&sine_series(672, 96, 25.0, noise), 96).unwrap();
            prop_assert!(strong > weak);
        }
    }
}
