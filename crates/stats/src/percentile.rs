//! Order statistics and basic summaries.
//!
//! The paper's best-path analysis (§4.2) keys on the 10th and 90th
//! percentiles of per-AS-path RTT distributions; the congestion filter
//! (§5.1) uses the 95th−5th percentile spread. All percentile math funnels
//! through [`percentile_sorted`] so there is exactly one interpolation rule
//! in the workspace (linear interpolation between closest ranks, the same
//! rule NumPy's default uses).
//!
//! The fault-injected measurement plane encodes lost slots as NaN, so NaN
//! samples can reach any of these entry points. They are handled with
//! *filter-and-count* semantics: NaN samples are dropped before computing,
//! results describe the remaining samples only, and all-NaN input behaves
//! like empty input (`None`). No entry point panics on NaN.

/// Linear-interpolated percentile of pre-sorted data. `p` is in `[0, 100]`.
///
/// Returns `None` on empty input.
///
/// # Panics
/// Panics if `p` is outside `[0, 100]` or the data contains NaN ordering
/// violations (data must be sorted ascending).
pub fn percentile_sorted(sorted: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    if sorted.is_empty() {
        return None;
    }
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input to percentile_sorted must be sorted"
    );
    let n = sorted.len();
    if n == 1 {
        return Some(sorted[0]);
    }
    let rank = p / 100.0 * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Convenience: several percentiles of unsorted data in one sort.
///
/// NaN samples are ignored; returns `None` when the input is empty or
/// all-NaN.
pub fn quantiles(data: &[f64], ps: &[f64]) -> Option<Vec<f64>> {
    let mut sorted: Vec<f64> = data.iter().copied().filter(|x| !x.is_nan()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(f64::total_cmp);
    Some(ps.iter().map(|&p| percentile_sorted(&sorted, p).unwrap()).collect())
}

/// Arithmetic mean of the non-NaN samples; `None` when the input is empty
/// or all-NaN.
pub fn mean(data: &[f64]) -> Option<f64> {
    let (mut sum, mut n) = (0.0, 0usize);
    for &x in data {
        if !x.is_nan() {
            sum += x;
            n += 1;
        }
    }
    (n > 0).then(|| sum / n as f64)
}

/// Population standard deviation of the non-NaN samples; `None` when the
/// input is empty or all-NaN.
pub fn stddev(data: &[f64]) -> Option<f64> {
    let m = mean(data)?;
    let (mut var, mut n) = (0.0, 0usize);
    for &x in data {
        if !x.is_nan() {
            var += (x - m) * (x - m);
            n += 1;
        }
    }
    Some((var / n as f64).sqrt())
}

/// A one-pass summary of a sample: count, min/max, mean, stddev, and the
/// percentiles the paper's analyses key on.
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// 5th percentile.
    pub p5: f64,
    /// 10th percentile (the paper's "baseline RTT").
    pub p10: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile (the paper's "with spikes" statistic).
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
}

impl Summary {
    /// Builds a summary of the non-NaN samples, with `count` reporting how
    /// many survived the filter; `None` when the input is empty or all-NaN.
    pub fn of(data: &[f64]) -> Option<Summary> {
        let mut sorted: Vec<f64> = data.iter().copied().filter(|x| !x.is_nan()).collect();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_by(f64::total_cmp);
        let pct = |p| percentile_sorted(&sorted, p).unwrap();
        Some(Summary {
            count: sorted.len(),
            min: sorted[0],
            max: *sorted.last().unwrap(),
            mean: mean(&sorted).unwrap(),
            stddev: stddev(&sorted).unwrap(),
            p5: pct(5.0),
            p10: pct(10.0),
            p50: pct(50.0),
            p90: pct(90.0),
            p95: pct(95.0),
        })
    }

    /// The 95th−5th percentile spread — the paper's §5.1 variation metric.
    pub fn spread_95_5(&self) -> f64 {
        self.p95 - self.p5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn percentile_of_known_data() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile_sorted(&v, 0.0), Some(1.0));
        assert_eq!(percentile_sorted(&v, 100.0), Some(5.0));
        assert_eq!(percentile_sorted(&v, 50.0), Some(3.0));
        assert_eq!(percentile_sorted(&v, 25.0), Some(2.0));
        // Interpolation between ranks.
        assert_eq!(percentile_sorted(&v, 10.0), Some(1.4));
        assert_eq!(percentile_sorted(&v, 90.0), Some(4.6));
    }

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(percentile_sorted(&[], 50.0), None);
        assert_eq!(percentile_sorted(&[7.0], 10.0), Some(7.0));
        assert_eq!(percentile_sorted(&[7.0], 90.0), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_validates_p() {
        percentile_sorted(&[1.0], 101.0);
    }

    #[test]
    fn quantiles_sorts_input() {
        let q = quantiles(&[3.0, 1.0, 2.0], &[0.0, 50.0, 100.0]).unwrap();
        assert_eq!(q, vec![1.0, 2.0, 3.0]);
        assert_eq!(quantiles(&[], &[50.0]), None);
    }

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
        let s = stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s - 2.0).abs() < 1e-12);
        assert_eq!(stddev(&[]), None);
    }

    #[test]
    fn summary_of_uniform_ramp() {
        let data: Vec<f64> = (0..=100).map(f64::from).collect();
        let s = Summary::of(&data).unwrap();
        assert_eq!(s.count, 101);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p10, 10.0);
        assert_eq!(s.p90, 90.0);
        assert_eq!(s.spread_95_5(), 90.0);
        assert_eq!(s.mean, 50.0);
    }

    #[test]
    fn summary_empty_is_none() {
        assert_eq!(Summary::of(&[]), None);
    }

    #[test]
    fn nan_samples_are_filtered_not_fatal() {
        // Lost slots from the fault-injected plane arrive as NaN; every
        // entry point must drop them instead of panicking (regression: the
        // sort comparator used to `expect("NaN in quantiles input")`).
        let nan = f64::NAN;
        let dirty = [3.0, nan, 1.0, nan, 2.0];
        assert_eq!(quantiles(&dirty, &[0.0, 50.0, 100.0]), Some(vec![1.0, 2.0, 3.0]));
        assert_eq!(mean(&dirty), Some(2.0));
        assert_eq!(stddev(&dirty), stddev(&[1.0, 2.0, 3.0]));
        let s = Summary::of(&dirty).unwrap();
        assert_eq!(s.count, 3, "count reports surviving samples only");
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.p50, 2.0);
        assert!(s.spread_95_5().is_finite());
        // Clean input is untouched by the filter.
        assert_eq!(Summary::of(&[1.0, 2.0, 3.0]), Some(s));
    }

    #[test]
    fn all_nan_behaves_like_empty() {
        let all = [f64::NAN, f64::NAN];
        assert_eq!(quantiles(&all, &[50.0]), None);
        assert_eq!(mean(&all), None);
        assert_eq!(stddev(&all), None);
        assert_eq!(Summary::of(&all), None);
    }

    proptest! {
        #[test]
        fn prop_percentile_monotone_in_p(
            mut data in proptest::collection::vec(-1e6f64..1e6, 1..200),
            p1 in 0.0f64..100.0, p2 in 0.0f64..100.0,
        ) {
            data.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            let a = percentile_sorted(&data, lo).unwrap();
            let b = percentile_sorted(&data, hi).unwrap();
            prop_assert!(a <= b + 1e-9);
        }

        #[test]
        fn prop_percentile_within_range(
            mut data in proptest::collection::vec(-1e6f64..1e6, 1..200),
            p in 0.0f64..100.0,
        ) {
            data.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let v = percentile_sorted(&data, p).unwrap();
            prop_assert!(v >= data[0] - 1e-9);
            prop_assert!(v <= data[data.len() - 1] + 1e-9);
        }

        #[test]
        fn prop_summary_orders_percentiles(
            data in proptest::collection::vec(0.0f64..1e5, 1..300),
        ) {
            let s = Summary::of(&data).unwrap();
            prop_assert!(s.min <= s.p5 && s.p5 <= s.p10);
            prop_assert!(s.p10 <= s.p50 && s.p50 <= s.p90);
            prop_assert!(s.p90 <= s.p95 && s.p95 <= s.max);
            prop_assert!(s.stddev >= 0.0);
        }

        #[test]
        fn prop_nan_injection_equals_filtering(
            data in proptest::collection::vec(0.0f64..1e5, 1..100),
            positions in proptest::collection::vec(0usize..100, 0..30),
        ) {
            // Splicing NaNs anywhere in the sample must be exactly
            // equivalent to never having measured those slots.
            let mut dirty = data.clone();
            for &p in &positions {
                dirty.insert(p.min(dirty.len()), f64::NAN);
            }
            prop_assert_eq!(Summary::of(&dirty), Summary::of(&data));
            prop_assert_eq!(mean(&dirty), mean(&data));
            prop_assert_eq!(stddev(&dirty), stddev(&data));
            prop_assert_eq!(
                quantiles(&dirty, &[5.0, 50.0, 95.0]),
                quantiles(&data, &[5.0, 50.0, 95.0])
            );
        }
    }
}
