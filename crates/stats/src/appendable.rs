//! Appendable per-series analysis state (§4.1–4.2, incrementalized).
//!
//! The batch analyses recompute routing changes and path prevalence from a
//! full materialized timeline. The always-on service instead *folds*: each
//! new sample appends into constant-per-path state, so answering "how many
//! route changes has this pair seen" costs O(pair state), never O(corpus).
//!
//! * [`ChangeLog`] — the fold form of edit-distance change detection:
//!   remembers only the previous observed symbol sequence; on a differing
//!   observation it records one change and its Levenshtein magnitude,
//! * [`PrevalenceTally`] — the fold form of path lifetime/prevalence:
//!   per-path observation counts plus the total, from which lifetimes,
//!   prevalence fractions, and the popular path derive in O(paths).
//!
//! Both are *exact*, not approximate: replaying a sample sequence through
//! the fold yields byte-identical results to the batch recompute over the
//! materialized sequence, at any split of the sequence into deltas. That
//! equivalence is what `s2s-core`'s incremental `Analysis` pins.

use crate::editdist::edit_distance;

/// Appendable edit-distance change detection over a symbol sequence
/// stream.
///
/// Feed it each usable observation's symbol sequence in time order
/// (skipping unusable slots, exactly as the batch path skips pathless
/// samples); it accumulates the change count and per-change magnitudes
/// while retaining only the previous sequence.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChangeLog<T> {
    prev: Option<Vec<T>>,
    changes: usize,
    magnitudes: Vec<usize>,
}

impl<T: PartialEq + Clone> ChangeLog<T> {
    /// An empty log: no observations yet.
    pub fn new() -> ChangeLog<T> {
        ChangeLog { prev: None, changes: 0, magnitudes: Vec::new() }
    }

    /// Folds one usable observation in. A non-zero edit distance from the
    /// previous observation counts as one change of that magnitude.
    pub fn observe(&mut self, symbols: &[T]) {
        if let Some(prev) = &self.prev {
            if prev.as_slice() != symbols {
                let d = edit_distance(prev, symbols);
                // Distinct sequences always differ, but guard anyway —
                // mirroring the batch detector exactly.
                if d > 0 {
                    self.changes += 1;
                    self.magnitudes.push(d);
                }
            }
        }
        self.prev = Some(symbols.to_vec());
    }

    /// Number of changes observed so far.
    pub fn changes(&self) -> usize {
        self.changes
    }

    /// Edit distance of each change, in observation order.
    pub fn magnitudes(&self) -> &[usize] {
        &self.magnitudes
    }

    /// The most recent observation, if any.
    pub fn last(&self) -> Option<&[T]> {
        self.prev.as_deref()
    }
}

/// Appendable per-id observation tally: the fold form of path
/// lifetime/prevalence.
///
/// Ids are small dense indices (interned path ids); the tally grows its
/// count vector on demand, so its length after a replay equals one plus
/// the largest id observed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PrevalenceTally {
    counts: Vec<usize>,
    total: usize,
}

impl PrevalenceTally {
    /// An empty tally.
    pub fn new() -> PrevalenceTally {
        PrevalenceTally { counts: Vec::new(), total: 0 }
    }

    /// Folds one observation of `id` in.
    pub fn observe(&mut self, id: usize) {
        if id >= self.counts.len() {
            self.counts.resize(id + 1, 0);
        }
        self.counts[id] += 1;
        self.total += 1;
    }

    /// Per-id observation counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Total observations folded.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of distinct ids tracked.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Prevalence (0–1) of each id: count over total, 0.0 for an empty
    /// tally — the batch convention.
    pub fn prevalence(&self) -> Vec<f64> {
        self.counts
            .iter()
            .map(|&c| if self.total == 0 { 0.0 } else { c as f64 / self.total as f64 })
            .collect()
    }

    /// The most observed id, ties resolved to the *last* maximal id —
    /// the exact tie-break of `max_by_key` over an index range, which the
    /// batch path-stats computation uses.
    pub fn popular(&self) -> Option<usize> {
        (0..self.counts.len()).max_by_key(|&i| self.counts[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Batch reference: recompute changes/magnitudes from the full
    /// sequence, mirroring the batch detector's loop shape.
    fn batch_changes(seqs: &[Vec<u64>]) -> (usize, Vec<usize>) {
        let mut changes = 0;
        let mut magnitudes = Vec::new();
        for w in seqs.windows(2) {
            if w[0] != w[1] {
                let d = edit_distance(&w[0], &w[1]);
                if d > 0 {
                    changes += 1;
                    magnitudes.push(d);
                }
            }
        }
        (changes, magnitudes)
    }

    #[test]
    fn change_log_counts_transitions_with_magnitudes() {
        let mut log = ChangeLog::new();
        log.observe(&[1u64, 2, 3]);
        log.observe(&[1, 2, 3]); // stable: no change
        log.observe(&[1, 3]); // one deletion
        log.observe(&[1, 2, 3]); // back: one insertion
        assert_eq!(log.changes(), 2);
        assert_eq!(log.magnitudes(), &[1, 1]);
        assert_eq!(log.last(), Some(&[1u64, 2, 3][..]));
    }

    #[test]
    fn empty_log_has_no_changes() {
        let log: ChangeLog<u64> = ChangeLog::new();
        assert_eq!(log.changes(), 0);
        assert!(log.magnitudes().is_empty());
        assert_eq!(log.last(), None);
    }

    #[test]
    fn tally_counts_lifetimes_and_popularity() {
        let mut tally = PrevalenceTally::new();
        for id in [0usize, 0, 0, 1] {
            tally.observe(id);
        }
        assert_eq!(tally.counts(), &[3, 1]);
        assert_eq!(tally.total(), 4);
        assert_eq!(tally.distinct(), 2);
        assert_eq!(tally.prevalence(), vec![0.75, 0.25]);
        assert_eq!(tally.popular(), Some(0));
    }

    #[test]
    fn tally_ties_resolve_to_the_last_maximal_id() {
        let mut tally = PrevalenceTally::new();
        for id in [0usize, 1, 1, 0] {
            tally.observe(id);
        }
        // Same tie-break as `(0..n).max_by_key(...)`: the LAST max wins.
        assert_eq!(tally.popular(), Some(1));
        assert_eq!((0..2usize).max_by_key(|&i| [2, 2][i]), Some(1));
    }

    #[test]
    fn empty_tally_is_well_defined() {
        let tally = PrevalenceTally::new();
        assert_eq!(tally.popular(), None);
        assert!(tally.prevalence().is_empty());
        assert_eq!(tally.total(), 0);
    }

    proptest! {
        /// The fold equals the batch recompute for any observation stream.
        #[test]
        fn prop_change_log_matches_batch(
            seqs in proptest::collection::vec(
                proptest::collection::vec(0u64..4, 0..5), 0..30)
        ) {
            let mut log = ChangeLog::new();
            for s in &seqs {
                log.observe(s);
            }
            let (changes, magnitudes) = batch_changes(&seqs);
            prop_assert_eq!(log.changes(), changes);
            prop_assert_eq!(log.magnitudes(), &magnitudes[..]);
        }

        /// Folding a stream in any split order (it is one stream — splits
        /// are just where you pause) equals folding it whole.
        #[test]
        fn prop_tally_matches_batch_counts(
            ids in proptest::collection::vec(0usize..6, 0..50)
        ) {
            let mut tally = PrevalenceTally::new();
            for &id in &ids {
                tally.observe(id);
            }
            let n = ids.iter().map(|&i| i + 1).max().unwrap_or(0);
            let mut counts = vec![0usize; n];
            for &id in &ids {
                counts[id] += 1;
            }
            prop_assert_eq!(tally.counts(), &counts[..]);
            prop_assert_eq!(tally.total(), ids.len());
            prop_assert_eq!(
                tally.popular(),
                (0..counts.len()).max_by_key(|&i| counts[i])
            );
        }
    }
}
