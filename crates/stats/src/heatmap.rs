//! Decile-edge 2-D heat maps.
//!
//! Figures 4 and 5 of the paper are heat maps whose axes are *deciles of the
//! data itself*: the X axis bins AS-path lifetimes by the deciles of the
//! lifetime distribution, the Y axis bins RTT differences by their deciles,
//! and each cell holds the percentage of all points falling in it. This
//! module reproduces that construction, including the paper's quirk that
//! duplicate decile edges (e.g. the minimum 3-hour lifetime spanning the
//! first two deciles) collapse into a single wider bin.

/// Computes decile edges of a sample: the 0th, 10th, ..., 100th percentiles
/// with *consecutive duplicates removed*, yielding the half-open bin edges
/// the paper's axes use.
///
/// NaN samples are ignored; returns `None` when the input is empty or
/// all-NaN.
pub fn decile_edges(data: &[f64]) -> Option<Vec<f64>> {
    let mut sorted: Vec<f64> = data.iter().copied().filter(|x| !x.is_nan()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(f64::total_cmp);
    let mut edges = Vec::with_capacity(11);
    for i in 0..=10 {
        let p = crate::percentile::percentile_sorted(&sorted, i as f64 * 10.0).unwrap();
        if edges.last() != Some(&p) {
            edges.push(p);
        }
    }
    // A single distinct value yields one edge; callers need at least a
    // degenerate [v, v] interval to bin into.
    if edges.len() == 1 {
        edges.push(edges[0]);
    }
    Some(edges)
}

/// Finds the bin index for `x` among half-open intervals `[e0,e1), [e1,e2),
/// ..., [e(n-2), e(n-1)]` — the last interval is closed so the maximum is
/// binnable.
fn bin_index(edges: &[f64], x: f64) -> Option<usize> {
    if edges.len() < 2 || x < edges[0] || x > *edges.last().unwrap() {
        return None;
    }
    let last = edges.len() - 2;
    for i in 0..=last {
        if x < edges[i + 1] || i == last {
            return Some(i);
        }
    }
    unreachable!("x is within the outer edges")
}

/// A 2-D heat map over decile-derived bins. Cell values are percentages of
/// all points (summing to ~100).
#[derive(Clone, Debug)]
pub struct HeatMap {
    /// X-axis bin edges (lifetimes, in the paper).
    pub x_edges: Vec<f64>,
    /// Y-axis bin edges (RTT differences, in the paper).
    pub y_edges: Vec<f64>,
    /// `cells[y][x]` = percentage of points in that cell; row 0 is the
    /// lowest Y bin.
    pub cells: Vec<Vec<f64>>,
    /// Total number of points binned.
    pub count: usize,
}

impl HeatMap {
    /// Builds the heat map from `(x, y)` points, deriving decile edges from
    /// the points themselves (exactly how Figs. 4/5 are constructed).
    ///
    /// Returns `None` when there are no points.
    pub fn from_points(points: &[(f64, f64)]) -> Option<HeatMap> {
        if points.is_empty() {
            return None;
        }
        let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
        let x_edges = decile_edges(&xs)?;
        let y_edges = decile_edges(&ys)?;
        let nx = x_edges.len() - 1;
        let ny = y_edges.len() - 1;
        let mut counts = vec![vec![0usize; nx]; ny];
        let mut total = 0usize;
        for &(x, y) in points {
            if let (Some(ix), Some(iy)) = (bin_index(&x_edges, x), bin_index(&y_edges, y)) {
                counts[iy][ix] += 1;
                total += 1;
            }
        }
        let cells = counts
            .into_iter()
            .map(|row| {
                row.into_iter().map(|c| 100.0 * c as f64 / total as f64).collect()
            })
            .collect();
        Some(HeatMap { x_edges, y_edges, cells, count: total })
    }

    /// Sum of one Y row — "the percentage of AS paths with increase in
    /// baseline RTTs corresponding to the Y-axis value of that row".
    pub fn row_sum(&self, y_bin: usize) -> f64 {
        self.cells[y_bin].iter().sum()
    }

    /// Sum of one X column.
    pub fn col_sum(&self, x_bin: usize) -> f64 {
        self.cells.iter().map(|row| row[x_bin]).sum()
    }

    /// The percentage of points whose Y value falls in the top `k` Y bins
    /// (used for "10% of AS paths suffer at least …" statements).
    pub fn top_rows_sum(&self, k: usize) -> f64 {
        let n = self.cells.len();
        (n.saturating_sub(k)..n).map(|i| self.row_sum(i)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn decile_edges_of_uniform_ramp() {
        let data: Vec<f64> = (0..=100).map(f64::from).collect();
        let e = decile_edges(&data).unwrap();
        assert_eq!(e.len(), 11);
        assert_eq!(e[0], 0.0);
        assert_eq!(e[10], 100.0);
        assert_eq!(e[5], 50.0);
    }

    #[test]
    fn duplicate_edges_collapse() {
        // 30% of the data shares the minimum, so the 0th..20th percentiles
        // coincide (like the 3-hour minimum lifetime in Fig. 4).
        let mut data = vec![3.0; 30];
        data.extend((1..=70).map(|i| 3.0 + i as f64));
        let e = decile_edges(&data).unwrap();
        assert_eq!(e[0], 3.0);
        assert!(e.windows(2).all(|w| w[0] < w[1]), "edges strictly increasing: {e:?}");
        assert!(e.len() < 11);
    }

    #[test]
    fn degenerate_single_value() {
        let e = decile_edges(&[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(e, vec![5.0, 5.0]);
        assert_eq!(decile_edges(&[]), None);
    }

    #[test]
    fn bin_index_half_open() {
        let edges = [0.0, 10.0, 20.0];
        assert_eq!(bin_index(&edges, 0.0), Some(0));
        assert_eq!(bin_index(&edges, 9.999), Some(0));
        assert_eq!(bin_index(&edges, 10.0), Some(1));
        assert_eq!(bin_index(&edges, 20.0), Some(1), "max is included");
        assert_eq!(bin_index(&edges, 20.001), None);
        assert_eq!(bin_index(&edges, -0.1), None);
    }

    #[test]
    fn heatmap_percentages_sum_to_100() {
        let points: Vec<(f64, f64)> = (0..1000)
            .map(|i| ((i % 97) as f64, ((i * 7) % 89) as f64))
            .collect();
        let hm = HeatMap::from_points(&points).unwrap();
        let total: f64 = (0..hm.cells.len()).map(|y| hm.row_sum(y)).sum();
        assert!((total - 100.0).abs() < 1e-9, "total = {total}");
        assert_eq!(hm.count, 1000);
        // Column sums also total 100.
        let ctotal: f64 = (0..hm.cells[0].len()).map(|x| hm.col_sum(x)).sum();
        assert!((ctotal - 100.0).abs() < 1e-9);
    }

    #[test]
    fn heatmap_rows_hold_about_ten_percent_each() {
        // With all-distinct values each decile row holds ~10% of points.
        let points: Vec<(f64, f64)> =
            (0..1000).map(|i| (i as f64, (i as f64 * 1.7) % 1000.0)).collect();
        let hm = HeatMap::from_points(&points).unwrap();
        for y in 0..hm.cells.len() {
            let s = hm.row_sum(y);
            assert!((5.0..15.1).contains(&s), "row {y} sum = {s}");
        }
        assert!((hm.top_rows_sum(1) - 10.0).abs() < 5.1);
    }

    #[test]
    fn empty_heatmap_is_none() {
        assert!(HeatMap::from_points(&[]).is_none());
    }

    proptest! {
        #[test]
        fn prop_edges_are_nondecreasing(
            data in proptest::collection::vec(0.0f64..1e4, 1..200),
        ) {
            let e = decile_edges(&data).unwrap();
            prop_assert!(e.windows(2).all(|w| w[0] <= w[1]));
            prop_assert!(e.len() >= 2);
        }

        #[test]
        fn prop_every_point_is_binned(
            points in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..300),
        ) {
            let hm = HeatMap::from_points(&points).unwrap();
            // Edges derive from the data, so every point must land in a bin.
            prop_assert_eq!(hm.count, points.len());
        }
    }
}
