//! Strongly-typed identifiers.
//!
//! Every entity in the simulated topology gets its own newtype so that a
//! router index can never be confused with a link index at a call site.
//! All ids are dense, zero-based indices into the owning arena.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! index_id {
    ($(#[$meta:meta])* $name:ident, $tag:expr) => {
        $(#[$meta])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Wraps a raw index.
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw index value.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<usize> for $name {
            fn from(raw: usize) -> Self {
                Self(raw as u32)
            }
        }
    };
}

index_id!(
    /// A point of presence: one (AS, city) pairing that hosts routers.
    PopId, "pop"
);
index_id!(
    /// A router in the simulated topology.
    RouterId, "r"
);
index_id!(
    /// A unidirectional pair of router interfaces, i.e. one physical link.
    LinkId, "l"
);
index_id!(
    /// One addressable router interface.
    IfaceId, "if"
);
index_id!(
    /// A CDN server cluster (the measurement vantage points).
    ClusterId, "c"
);
index_id!(
    /// A single measurement server inside a cluster.
    ServerId, "s"
);
index_id!(
    /// An Internet exchange point with a shared switching fabric.
    IxpId, "ixp"
);

/// An autonomous system number.
///
/// Unlike the arena ids above, ASNs are drawn from a sparse, realistic-looking
/// numbering space (the generator assigns them), so this is a value type, not
/// an index. Use [`crate::rel::AsRel`] to describe the business relationship
/// between two ASNs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct Asn(pub u32);

impl Asn {
    /// Wraps a raw AS number.
    pub const fn new(raw: u32) -> Self {
        Self(raw)
    }

    /// Returns the raw AS number.
    pub const fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl From<u32> for Asn {
    fn from(raw: u32) -> Self {
        Self(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_raw_values() {
        let r = RouterId::new(42);
        assert_eq!(r.index(), 42);
        assert_eq!(RouterId::from(42u32), r);
        assert_eq!(RouterId::from(42usize), r);
    }

    #[test]
    fn ids_format_with_tag() {
        assert_eq!(format!("{}", RouterId::new(7)), "r7");
        assert_eq!(format!("{:?}", LinkId::new(3)), "l3");
        assert_eq!(format!("{}", Asn::new(65000)), "AS65000");
    }

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(ClusterId::new(1) < ClusterId::new(2));
        assert!(Asn::new(100) < Asn::new(200));
    }

    #[test]
    fn distinct_id_types_do_not_compare() {
        // This is a compile-time property; the test documents it.
        let a = RouterId::new(1);
        let b = LinkId::new(1);
        assert_eq!(a.index(), b.index());
    }

    #[test]
    fn serde_round_trip() {
        let asn = Asn::new(3356);
        let json = serde_json_like(&asn);
        assert_eq!(json, "3356");
    }

    /// Minimal serialization check without pulling in serde_json: the ids are
    /// transparent u32 wrappers, so serde's derived impl serializes the inner
    /// value as a newtype struct.
    fn serde_json_like(asn: &Asn) -> String {
        // Use serde's fmt through Debug of the raw value.
        format!("{}", asn.0)
    }
}
