//! Process exit codes shared by every s2s binary.
//!
//! `reproduce`, the fabric worker subprocesses, and the measurement
//! service all exit through this one table instead of scattering integer
//! literals — a coordinator reaping a worker, a CI script grepping a
//! smoke run, and a human reading `$?` all decode the same vocabulary.
//! The numeric values are frozen (they are an on-the-wire contract with
//! `ci.sh` and the fabric's worker reaper); new conditions append new
//! codes rather than reusing old ones. Code 1 is deliberately unassigned:
//! it is what a Rust panic or an `abort` produces, and keeping it out of
//! the table means "1" always reads as *crashed*, never as a deliberate
//! verdict.

use std::fmt;

/// The exit-code vocabulary of the s2s binaries.
///
/// | code | variant | meaning |
/// |-----:|---------|---------|
/// | 0 | [`Ok`](ExitCode::Ok) | completed cleanly |
/// | 2 | [`Config`](ExitCode::Config) | bad configuration: unknown flag, malformed value, unusable environment |
/// | 3 | [`Campaign`](ExitCode::Campaign) | the measurement campaign itself failed (worker crash budget exhausted, unrecoverable shard) |
/// | 4 | [`Degraded`](ExitCode::Degraded) | completed, but under a degraded measurement plane (lost slots; results carry gaps) |
/// | 5 | [`Service`](ExitCode::Service) | the always-on service failed at runtime: snapshot flush or resume error, broken query transport |
/// | 6 | [`Query`](ExitCode::Query) | the scripted query batch could not be honored (query budget exhausted) |
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(i32)]
pub enum ExitCode {
    /// Completed cleanly.
    Ok = 0,
    /// Bad configuration: unknown flag, malformed value, unusable
    /// environment.
    Config = 2,
    /// The measurement campaign failed (crash budget exhausted,
    /// unrecoverable shard).
    Campaign = 3,
    /// Completed, but under a degraded measurement plane — results carry
    /// gaps the caller should account for.
    Degraded = 4,
    /// The always-on service failed at runtime (snapshot flush or resume
    /// error, broken query transport).
    Service = 5,
    /// A scripted query batch could not be honored: the per-run query
    /// budget (`S2S_SERVICE_QUERY_BUDGET`) ran out before the script did.
    Query = 6,
}

impl ExitCode {
    /// The numeric process exit code.
    pub const fn code(self) -> i32 {
        self as i32
    }

    /// Decodes a raw process exit code back into the table. `None` for
    /// codes outside the vocabulary (including 1, the panic code).
    pub fn from_code(code: i32) -> Option<ExitCode> {
        match code {
            0 => Some(ExitCode::Ok),
            2 => Some(ExitCode::Config),
            3 => Some(ExitCode::Campaign),
            4 => Some(ExitCode::Degraded),
            5 => Some(ExitCode::Service),
            6 => Some(ExitCode::Query),
            _ => None,
        }
    }

    /// One-line human description (what `--help` and error paths print).
    pub const fn describe(self) -> &'static str {
        match self {
            ExitCode::Ok => "completed cleanly",
            ExitCode::Config => "bad configuration",
            ExitCode::Campaign => "measurement campaign failed",
            ExitCode::Degraded => "completed under a degraded measurement plane",
            ExitCode::Service => "measurement service failed at runtime",
            ExitCode::Query => "query budget exhausted",
        }
    }

    /// Terminates the process with this code.
    pub fn exit(self) -> ! {
        std::process::exit(self.code())
    }
}

impl fmt::Display for ExitCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.code(), self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: &[ExitCode] = &[
        ExitCode::Ok,
        ExitCode::Config,
        ExitCode::Campaign,
        ExitCode::Degraded,
        ExitCode::Service,
        ExitCode::Query,
    ];

    #[test]
    fn codes_are_frozen() {
        assert_eq!(ExitCode::Ok.code(), 0);
        assert_eq!(ExitCode::Config.code(), 2);
        assert_eq!(ExitCode::Campaign.code(), 3);
        assert_eq!(ExitCode::Degraded.code(), 4);
        assert_eq!(ExitCode::Service.code(), 5);
        assert_eq!(ExitCode::Query.code(), 6);
    }

    #[test]
    fn round_trips_through_from_code() {
        for &c in ALL {
            assert_eq!(ExitCode::from_code(c.code()), Some(c));
        }
    }

    #[test]
    fn panic_code_and_strays_decode_to_none() {
        // 1 is reserved for panics/aborts; never a deliberate verdict.
        assert_eq!(ExitCode::from_code(1), None);
        assert_eq!(ExitCode::from_code(7), None);
        assert_eq!(ExitCode::from_code(-1), None);
        assert_eq!(ExitCode::from_code(255), None);
    }

    #[test]
    fn display_carries_code_and_description() {
        let s = ExitCode::Degraded.to_string();
        assert!(s.starts_with("4 ("), "{s}");
        assert!(s.contains("degraded"), "{s}");
        for &c in ALL {
            assert!(!c.describe().is_empty());
        }
    }
}
