//! Typed, warn-and-default parsing for `S2S_*` environment knobs.
//!
//! Every knob in the workspace goes through these helpers so malformed
//! values behave uniformly: an *unset* variable silently takes its
//! default, but a set-and-unusable value (`S2S_THREADS=abc`,
//! `S2S_EPOCH_BATCH=0`) prints one warning to stderr and then takes the
//! default — it never panics, and it never silently does something other
//! than what the operator asked without saying so.
//!
//! The parsing cores are pure functions of `Option<&str>` so tests can
//! exercise every malformed shape without mutating the process
//! environment (tests run in parallel). The `var_*` wrappers read the
//! environment and print the warning.
//!
//! The consolidated knob table lives in `s2s_probe::env` (and README);
//! this module is just the shared mechanism, kept in `s2s-types` because
//! it is the one crate everything else already depends on.

use std::fmt::Display;
use std::str::FromStr;

/// Pure core: parses `raw` as a `T`, requiring `check` to pass.
///
/// * `None` (unset) → `(default, None)`: silent.
/// * parse failure or failed `check` → `(default, Some(warning))`.
/// * otherwise → `(value, None)`.
///
/// `requirement` describes what a valid value looks like, for the warning
/// text (e.g. `"a positive integer"`).
pub fn parse_checked<T: FromStr + Display + Copy>(
    name: &str,
    raw: Option<&str>,
    default: T,
    check: impl Fn(&T) -> bool,
    requirement: &str,
) -> (T, Option<String>) {
    let desc = format!("{default}");
    parse_checked_desc(name, raw, default, &desc, check, requirement)
}

/// [`parse_checked`] with an explicit description of the default for the
/// warning text — for knobs whose default value prints badly (e.g. a
/// `usize::MAX` meaning "unlimited").
pub fn parse_checked_desc<T: FromStr + Copy>(
    name: &str,
    raw: Option<&str>,
    default: T,
    default_desc: &str,
    check: impl Fn(&T) -> bool,
    requirement: &str,
) -> (T, Option<String>) {
    let Some(raw) = raw else { return (default, None) };
    match raw.trim().parse::<T>() {
        Ok(v) if check(&v) => (v, None),
        _ => (
            default,
            Some(format!(
                "warning: {name}={raw:?} is not {requirement}; using default {default_desc}"
            )),
        ),
    }
}

/// [`parse_checked`] with no constraint beyond parsing.
pub fn parse_or_default<T: FromStr + Display + Copy>(
    name: &str,
    raw: Option<&str>,
    default: T,
    requirement: &str,
) -> (T, Option<String>) {
    parse_checked(name, raw, default, |_| true, requirement)
}

/// Pure core for probability knobs: parses an `f64` and requires it to
/// land in `[0, 1]`.
pub fn parse_rate(name: &str, raw: Option<&str>, default: f64) -> (f64, Option<String>) {
    parse_checked(name, raw, default, |v| (0.0..=1.0).contains(v), "a probability in [0, 1]")
}

/// Pure core for boolean knobs: unset, empty, and `"0"` are false;
/// anything else is true. Never warns — every string is a valid flag.
pub fn parse_flag(raw: Option<&str>) -> bool {
    raw.map(|v| !v.trim().is_empty() && v.trim() != "0").unwrap_or(false)
}

fn emit(warning: Option<String>) {
    if let Some(w) = warning {
        eprintln!("{w}");
    }
}

/// Reads `name` from the environment as a `usize` (any value parses).
pub fn var_usize(name: &str, default: usize) -> usize {
    let raw = std::env::var(name).ok();
    let (v, w) = parse_or_default(name, raw.as_deref(), default, "an unsigned integer");
    emit(w);
    v
}

/// Reads `name` as a `usize` that must be at least `min` (so `=0` on a
/// knob where zero is meaningless warns instead of surprising).
pub fn var_usize_at_least(name: &str, default: usize, min: usize) -> usize {
    let raw = std::env::var(name).ok();
    let (v, w) = parse_checked(
        name,
        raw.as_deref(),
        default,
        |&v| v >= min,
        &format!("an integer >= {min}"),
    );
    emit(w);
    v
}

/// Reads `name` as a `u64`.
pub fn var_u64(name: &str, default: u64) -> u64 {
    let raw = std::env::var(name).ok();
    let (v, w) = parse_or_default(name, raw.as_deref(), default, "an unsigned integer");
    emit(w);
    v
}

/// Reads `name` as an `f64`.
pub fn var_f64(name: &str, default: f64) -> f64 {
    let raw = std::env::var(name).ok();
    let (v, w) = parse_or_default(name, raw.as_deref(), default, "a number");
    emit(w);
    v
}

/// Reads `name` as a probability in `[0, 1]`.
pub fn var_rate(name: &str, default: f64) -> f64 {
    let raw = std::env::var(name).ok();
    let (v, w) = parse_rate(name, raw.as_deref(), default);
    emit(w);
    v
}

/// Reads `name` as a boolean flag (unset / empty / `"0"` → false).
pub fn var_flag(name: &str) -> bool {
    parse_flag(std::env::var(name).ok().as_deref())
}

/// The raw string an operator set for `name`, if any — for `--print-config`
/// style dumps that want to show both the raw and the resolved value.
pub fn var_raw(name: &str) -> Option<String> {
    std::env::var(name).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_is_silent_default() {
        let (v, w) = parse_or_default("S2S_X", None, 7usize, "an unsigned integer");
        assert_eq!(v, 7);
        assert!(w.is_none());
    }

    #[test]
    fn valid_value_is_silent() {
        let (v, w) = parse_or_default("S2S_X", Some(" 42 "), 7usize, "an unsigned integer");
        assert_eq!(v, 42);
        assert!(w.is_none());
    }

    #[test]
    fn garbage_warns_and_defaults() {
        for bad in ["abc", "", "1.5", "-3", "0x10"] {
            let (v, w) = parse_or_default("S2S_THREADS", Some(bad), 4usize, "an unsigned integer");
            assert_eq!(v, 4, "{bad:?} must fall back");
            let w = w.expect("malformed value must warn");
            assert!(w.contains("S2S_THREADS"), "{w}");
            assert!(w.contains("using default 4"), "{w}");
        }
    }

    #[test]
    fn minimum_is_enforced_with_warning() {
        let (v, w) =
            parse_checked("S2S_EPOCH_BATCH", Some("0"), 9usize, |&v| v >= 1, "an integer >= 1");
        assert_eq!(v, 9);
        assert!(w.unwrap().contains("S2S_EPOCH_BATCH=\"0\""));
        let (v, w) =
            parse_checked("S2S_EPOCH_BATCH", Some("3"), 9usize, |&v| v >= 1, "an integer >= 1");
        assert_eq!(v, 3);
        assert!(w.is_none());
    }

    #[test]
    fn rates_reject_out_of_range() {
        assert_eq!(parse_rate("S2S_FAULT_DROP", Some("0.25"), 0.0), (0.25, None));
        let (v, w) = parse_rate("S2S_FAULT_DROP", Some("1.5"), 0.0);
        assert_eq!(v, 0.0);
        assert!(w.unwrap().contains("probability"));
        let (v, w) = parse_rate("S2S_FAULT_DROP", Some("nope"), 0.125);
        assert_eq!(v, 0.125);
        assert!(w.is_some());
    }

    #[test]
    fn flags_treat_zero_and_empty_as_false() {
        assert!(!parse_flag(None));
        assert!(!parse_flag(Some("")));
        assert!(!parse_flag(Some(" 0 ")));
        assert!(parse_flag(Some("1")));
        assert!(parse_flag(Some("yes")));
    }
}
