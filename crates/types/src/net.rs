//! Network prefixes and the IPv4/IPv6 protocol discriminator.
//!
//! The prefix types are minimal: enough to allocate synthetic address space
//! in the topology generator and to answer longest-prefix-match queries in
//! the BGP substrate. They are not general-purpose CIDR libraries.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// Which IP protocol a path, probe, or record refers to.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Protocol {
    /// IPv4.
    V4,
    /// IPv6.
    V6,
}

impl Protocol {
    /// Both protocols, in the order the paper reports them.
    pub const BOTH: [Protocol; 2] = [Protocol::V4, Protocol::V6];

    /// Short label used in report output ("IPv4" / "IPv6").
    pub fn label(self) -> &'static str {
        match self {
            Protocol::V4 => "IPv4",
            Protocol::V6 => "IPv6",
        }
    }

    /// The other protocol.
    pub fn other(self) -> Protocol {
        match self {
            Protocol::V4 => Protocol::V6,
            Protocol::V6 => Protocol::V4,
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// An IPv4 prefix in CIDR form.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ipv4Net {
    addr: Ipv4Addr,
    len: u8,
}

impl Ipv4Net {
    /// Creates a prefix, masking the address down to its network bits.
    ///
    /// # Panics
    /// Panics if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Self {
        assert!(len <= 32, "IPv4 prefix length {len} > 32");
        let bits = u32::from(addr) & mask_v4(len);
        Self { addr: Ipv4Addr::from(bits), len }
    }

    /// The (masked) network address.
    pub fn addr(&self) -> Ipv4Addr {
        self.addr
    }

    /// The prefix length.
    #[allow(clippy::len_without_is_empty)] // a prefix length, not a container
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True for the degenerate `/0` prefix.
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// Whether `ip` falls inside this prefix.
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        (u32::from(ip) & mask_v4(self.len)) == u32::from(self.addr)
    }

    /// The `i`-th host address inside the prefix (no broadcast handling —
    /// this is synthetic space).
    ///
    /// # Panics
    /// Panics if `i` does not fit in the host bits.
    pub fn host(&self, i: u32) -> Ipv4Addr {
        let host_bits = 32 - self.len;
        assert!(
            host_bits == 32 || u64::from(i) < (1u64 << host_bits),
            "host index {i} out of range for /{}",
            self.len
        );
        Ipv4Addr::from(u32::from(self.addr) | i)
    }

    /// Splits the prefix into consecutive subnets of length `new_len`,
    /// returning the `i`-th one.
    ///
    /// # Panics
    /// Panics if `new_len < self.len` or `i` exceeds the subnet count.
    pub fn subnet(&self, new_len: u8, i: u32) -> Ipv4Net {
        assert!(new_len >= self.len && new_len <= 32);
        let span = new_len - self.len;
        assert!(span == 32 || u64::from(i) < (1u64 << span), "subnet index out of range");
        let shifted = if new_len == 32 { 0 } else { u64::from(i) << (32 - new_len) };
        Ipv4Net::new(Ipv4Addr::from(u32::from(self.addr) | shifted as u32), new_len)
    }
}

impl fmt::Debug for Ipv4Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl fmt::Display for Ipv4Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

/// An IPv6 prefix in CIDR form.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ipv6Net {
    addr: Ipv6Addr,
    len: u8,
}

impl Ipv6Net {
    /// Creates a prefix, masking the address down to its network bits.
    ///
    /// # Panics
    /// Panics if `len > 128`.
    pub fn new(addr: Ipv6Addr, len: u8) -> Self {
        assert!(len <= 128, "IPv6 prefix length {len} > 128");
        let bits = u128::from(addr) & mask_v6(len);
        Self { addr: Ipv6Addr::from(bits), len }
    }

    /// The (masked) network address.
    pub fn addr(&self) -> Ipv6Addr {
        self.addr
    }

    /// The prefix length.
    #[allow(clippy::len_without_is_empty)] // a prefix length, not a container
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True for the degenerate `/0` prefix.
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// Whether `ip` falls inside this prefix.
    pub fn contains(&self, ip: Ipv6Addr) -> bool {
        (u128::from(ip) & mask_v6(self.len)) == u128::from(self.addr)
    }

    /// The `i`-th host address inside the prefix.
    pub fn host(&self, i: u128) -> Ipv6Addr {
        let host_bits = 128 - self.len;
        assert!(
            host_bits >= 128 || i < (1u128 << host_bits),
            "host index out of range for /{}",
            self.len
        );
        Ipv6Addr::from(u128::from(self.addr) | i)
    }

    /// Splits the prefix into consecutive subnets of length `new_len`,
    /// returning the `i`-th one.
    pub fn subnet(&self, new_len: u8, i: u128) -> Ipv6Net {
        assert!(new_len >= self.len && new_len <= 128);
        let span = new_len - self.len;
        assert!(span >= 128 || i < (1u128 << span), "subnet index out of range");
        let shifted = if new_len == 128 { 0 } else { i << (128 - new_len) };
        Ipv6Net::new(Ipv6Addr::from(u128::from(self.addr) | shifted), new_len)
    }
}

impl fmt::Debug for Ipv6Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl fmt::Display for Ipv6Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

/// Either kind of prefix.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum IpNet {
    /// An IPv4 prefix.
    V4(Ipv4Net),
    /// An IPv6 prefix.
    V6(Ipv6Net),
}

impl IpNet {
    /// The protocol of this prefix.
    pub fn protocol(&self) -> Protocol {
        match self {
            IpNet::V4(_) => Protocol::V4,
            IpNet::V6(_) => Protocol::V6,
        }
    }

    /// Prefix length in bits.
    #[allow(clippy::len_without_is_empty)] // a prefix length, not a container
    pub fn len(&self) -> u8 {
        match self {
            IpNet::V4(n) => n.len(),
            IpNet::V6(n) => n.len(),
        }
    }

    /// True for the degenerate `/0` prefix of either family.
    pub fn is_default(&self) -> bool {
        self.len() == 0
    }

    /// Whether `ip` falls in this prefix (always false across families).
    pub fn contains(&self, ip: IpAddr) -> bool {
        match (self, ip) {
            (IpNet::V4(n), IpAddr::V4(a)) => n.contains(a),
            (IpNet::V6(n), IpAddr::V6(a)) => n.contains(a),
            _ => false,
        }
    }

    /// The prefix bits left-aligned in a u128, plus the length — the canonical
    /// key form used by the longest-prefix-match trie.
    pub fn key_bits(&self) -> (u128, u8) {
        match self {
            IpNet::V4(n) => ((u32::from(n.addr()) as u128) << 96, n.len()),
            IpNet::V6(n) => (u128::from(n.addr()), n.len()),
        }
    }
}

impl fmt::Display for IpNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpNet::V4(n) => n.fmt(f),
            IpNet::V6(n) => n.fmt(f),
        }
    }
}

impl From<Ipv4Net> for IpNet {
    fn from(n: Ipv4Net) -> Self {
        IpNet::V4(n)
    }
}

impl From<Ipv6Net> for IpNet {
    fn from(n: Ipv6Net) -> Self {
        IpNet::V6(n)
    }
}

/// Left-aligns an address in a u128 for trie keys: IPv4 occupies the top 32
/// bits, IPv6 the full width. Addresses of different families never share a
/// trie (the caller keeps one per protocol), so overlap is harmless.
pub fn addr_key_bits(ip: IpAddr) -> u128 {
    match ip {
        IpAddr::V4(a) => (u32::from(a) as u128) << 96,
        IpAddr::V6(a) => u128::from(a),
    }
}

fn mask_v4(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len)
    }
}

fn mask_v6(len: u8) -> u128 {
    if len == 0 {
        0
    } else {
        u128::MAX << (128 - len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn v4_masks_host_bits() {
        let n = Ipv4Net::new(Ipv4Addr::new(10, 1, 2, 3), 16);
        assert_eq!(n.addr(), Ipv4Addr::new(10, 1, 0, 0));
        assert_eq!(format!("{n}"), "10.1.0.0/16");
    }

    #[test]
    fn v4_contains_boundaries() {
        let n = Ipv4Net::new(Ipv4Addr::new(192, 0, 2, 0), 24);
        assert!(n.contains(Ipv4Addr::new(192, 0, 2, 0)));
        assert!(n.contains(Ipv4Addr::new(192, 0, 2, 255)));
        assert!(!n.contains(Ipv4Addr::new(192, 0, 3, 0)));
        assert!(!n.contains(Ipv4Addr::new(192, 0, 1, 255)));
    }

    #[test]
    fn v4_host_and_subnet() {
        let n = Ipv4Net::new(Ipv4Addr::new(10, 0, 0, 0), 16);
        assert_eq!(n.host(257), Ipv4Addr::new(10, 0, 1, 1));
        let s = n.subnet(24, 5);
        assert_eq!(s.addr(), Ipv4Addr::new(10, 0, 5, 0));
        assert_eq!(s.len(), 24);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn v4_host_out_of_range_panics() {
        Ipv4Net::new(Ipv4Addr::new(10, 0, 0, 0), 30).host(4);
    }

    #[test]
    fn v6_masks_and_contains() {
        let n = Ipv6Net::new("2001:db8:1::1".parse().unwrap(), 48);
        assert_eq!(n.addr(), "2001:db8:1::".parse::<Ipv6Addr>().unwrap());
        assert!(n.contains("2001:db8:1:ffff::1".parse().unwrap()));
        assert!(!n.contains("2001:db8:2::1".parse().unwrap()));
    }

    #[test]
    fn v6_subnet_indexing() {
        let n = Ipv6Net::new("2001:db8::".parse().unwrap(), 32);
        let s = n.subnet(48, 3);
        assert_eq!(s.addr(), "2001:db8:3::".parse::<Ipv6Addr>().unwrap());
    }

    #[test]
    fn default_prefixes_contain_everything() {
        let v4 = Ipv4Net::new(Ipv4Addr::UNSPECIFIED, 0);
        assert!(v4.is_default());
        assert!(v4.contains(Ipv4Addr::new(255, 255, 255, 255)));
        let v6 = Ipv6Net::new(Ipv6Addr::UNSPECIFIED, 0);
        assert!(v6.contains("ffff::1".parse().unwrap()));
    }

    #[test]
    fn ipnet_cross_family_contains_is_false() {
        let n: IpNet = Ipv4Net::new(Ipv4Addr::new(10, 0, 0, 0), 8).into();
        assert!(!n.contains("::a00:1".parse::<Ipv6Addr>().unwrap().into()));
    }

    #[test]
    fn key_bits_align_v4_high() {
        let n: IpNet = Ipv4Net::new(Ipv4Addr::new(128, 0, 0, 0), 1).into();
        let (bits, len) = n.key_bits();
        assert_eq!(len, 1);
        assert_eq!(bits >> 127, 1);
        assert_eq!(addr_key_bits(IpAddr::V4(Ipv4Addr::new(128, 0, 0, 0))) >> 127, 1);
    }

    #[test]
    fn protocol_labels_and_other() {
        assert_eq!(Protocol::V4.label(), "IPv4");
        assert_eq!(Protocol::V6.other(), Protocol::V4);
        assert_eq!(Protocol::BOTH, [Protocol::V4, Protocol::V6]);
    }

    proptest! {
        #[test]
        fn prop_v4_network_addr_is_inside(ip: u32, len in 0u8..=32) {
            let n = Ipv4Net::new(Ipv4Addr::from(ip), len);
            prop_assert!(n.contains(n.addr()));
            // Re-masking is idempotent.
            prop_assert_eq!(Ipv4Net::new(n.addr(), len), n);
        }

        #[test]
        fn prop_v4_contains_respects_mask(ip: u32, other: u32, len in 0u8..=32) {
            let n = Ipv4Net::new(Ipv4Addr::from(ip), len);
            let inside = n.contains(Ipv4Addr::from(other));
            let mask = if len == 0 { 0 } else { u32::MAX << (32 - len) };
            prop_assert_eq!(inside, (other & mask) == (ip & mask));
        }

        #[test]
        fn prop_v6_network_addr_is_inside(ip: u128, len in 0u8..=128) {
            let n = Ipv6Net::new(Ipv6Addr::from(ip), len);
            prop_assert!(n.contains(n.addr()));
        }

        #[test]
        fn prop_v4_host_round_trips(base in 0u32..0xffff, i in 0u32..65_536) {
            let n = Ipv4Net::new(Ipv4Addr::from(base << 16), 16);
            let h = n.host(i);
            prop_assert!(n.contains(h));
        }
    }
}
