//! AS-level paths.
//!
//! An [`AsPath`] is the sequence of distinct AS hops a traceroute (or a
//! routing computation) traverses, source AS first. Hops may be unknown when
//! a traceroute hop was unresponsive or its address had no IP-to-ASN mapping;
//! those are preserved as `None` so the analysis layer can decide how to
//! impute them (paper §4.1).

use crate::ids::Asn;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A sequence of AS-level hops; `None` marks a hop whose AS is unknown.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct AsPath {
    hops: Vec<Option<Asn>>,
}

impl AsPath {
    /// An empty path.
    pub fn empty() -> Self {
        AsPath { hops: Vec::new() }
    }

    /// Builds a path from fully-known hops, collapsing consecutive
    /// duplicates (multiple router hops inside one AS count as one AS hop).
    pub fn from_asns<I: IntoIterator<Item = Asn>>(asns: I) -> Self {
        let mut p = AsPath::empty();
        for a in asns {
            p.push(Some(a));
        }
        p
    }

    /// Builds a path from possibly-unknown hops, collapsing consecutive
    /// duplicate *known* hops. Consecutive unknown hops are also collapsed:
    /// a run of unresponsive routers is one unknown AS-level hop.
    pub fn from_hops<I: IntoIterator<Item = Option<Asn>>>(hops: I) -> Self {
        let mut p = AsPath::empty();
        for h in hops {
            p.push(h);
        }
        p
    }

    /// Appends one hop, collapsing a consecutive duplicate.
    pub fn push(&mut self, hop: Option<Asn>) {
        if self.hops.last() != Some(&hop) {
            self.hops.push(hop);
        }
    }

    /// The hops, source-side first.
    pub fn hops(&self) -> &[Option<Asn>] {
        &self.hops
    }

    /// Number of AS-level hops (after duplicate collapsing).
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// True when the path has no hops.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// True when every hop is known.
    pub fn is_complete(&self) -> bool {
        self.hops.iter().all(Option::is_some)
    }

    /// Number of unknown hops.
    pub fn unknown_hops(&self) -> usize {
        self.hops.iter().filter(|h| h.is_none()).count()
    }

    /// True when a *known* ASN appears at two non-adjacent positions — the
    /// AS-path loops the paper filters out (§2.1: 2.16% of IPv4, 5.5% of
    /// IPv6 classic traceroutes).
    pub fn has_loop(&self) -> bool {
        let known: Vec<Asn> = self.hops.iter().flatten().copied().collect();
        for (i, a) in known.iter().enumerate() {
            if known[i + 1..].contains(a) {
                return true;
            }
        }
        false
    }

    /// Imputes unknown hops bracketed by the same AS on both sides (paper
    /// §4.1: "we impute the missing hop where either side of the missing hop
    /// is the same ASN"). Returns the number of hops imputed.
    ///
    /// After imputation the flanking duplicates are re-collapsed.
    pub fn impute_bracketed(&mut self) -> usize {
        let mut imputed = 0;
        for i in 1..self.hops.len().saturating_sub(1) {
            if self.hops[i].is_none() {
                if let (Some(a), Some(b)) = (self.hops[i - 1], self.hops[i + 1]) {
                    if a == b {
                        self.hops[i] = Some(a);
                        imputed += 1;
                    }
                }
            }
        }
        if imputed > 0 {
            let old = std::mem::take(&mut self.hops);
            *self = AsPath::from_hops(old);
        }
        imputed
    }

    /// The string key used for edit-distance comparison: each hop is one
    /// symbol; unknown hops all map to the same placeholder symbol.
    pub fn symbols(&self) -> Vec<u64> {
        self.hops
            .iter()
            .map(|h| match h {
                Some(a) => u64::from(a.value()) + 1,
                None => 0,
            })
            .collect()
    }

    /// First hop (the source-side AS), if known.
    pub fn first(&self) -> Option<Asn> {
        self.hops.first().copied().flatten()
    }

    /// Last hop (the destination-side AS), if known.
    pub fn last(&self) -> Option<Asn> {
        self.hops.last().copied().flatten()
    }
}

impl fmt::Debug for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .hops
            .iter()
            .map(|h| match h {
                Some(a) => a.to_string(),
                None => "?".to_string(),
            })
            .collect();
        write!(f, "[{}]", parts.join(" -> "))
    }
}

impl fmt::Display for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromIterator<Asn> for AsPath {
    fn from_iter<I: IntoIterator<Item = Asn>>(iter: I) -> Self {
        AsPath::from_asns(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn asn(n: u32) -> Asn {
        Asn::new(n)
    }

    #[test]
    fn collapses_consecutive_duplicates() {
        let p = AsPath::from_asns([asn(1), asn(1), asn(2), asn(2), asn(2), asn(3)]);
        assert_eq!(p.len(), 3);
        assert_eq!(format!("{p}"), "[AS1 -> AS2 -> AS3]");
    }

    #[test]
    fn collapses_unknown_runs() {
        let p = AsPath::from_hops([Some(asn(1)), None, None, Some(asn(2))]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.unknown_hops(), 1);
        assert!(!p.is_complete());
    }

    #[test]
    fn loop_detection() {
        assert!(!AsPath::from_asns([asn(1), asn(2), asn(3)]).has_loop());
        // 1 -> 2 -> 1 is a loop after collapsing (non-adjacent repeat).
        assert!(AsPath::from_asns([asn(1), asn(2), asn(1)]).has_loop());
        // Unknown hops never count as loops.
        assert!(!AsPath::from_hops([Some(asn(1)), None, Some(asn(2)), None]).has_loop());
    }

    #[test]
    fn imputation_fills_bracketed_unknowns() {
        // 1 -> ? -> 1 -> 2: the unknown is bracketed by AS1 on both sides.
        let mut p = AsPath::from_hops([Some(asn(1)), None, Some(asn(1)), Some(asn(2))]);
        assert_eq!(p.len(), 4);
        let n = p.impute_bracketed();
        assert_eq!(n, 1);
        // After imputation 1 -> 1 -> 1 -> 2 collapses to 1 -> 2.
        assert_eq!(p, AsPath::from_asns([asn(1), asn(2)]));
    }

    #[test]
    fn imputation_leaves_genuine_gaps() {
        let mut p = AsPath::from_hops([Some(asn(1)), None, Some(asn(2))]);
        assert_eq!(p.impute_bracketed(), 0);
        assert_eq!(p.unknown_hops(), 1);
    }

    #[test]
    fn symbols_distinguish_unknown() {
        let p = AsPath::from_hops([Some(asn(1)), None, Some(asn(2))]);
        assert_eq!(p.symbols(), vec![2, 0, 3]);
    }

    #[test]
    fn first_and_last() {
        let p = AsPath::from_hops([Some(asn(9)), Some(asn(8)), None]);
        assert_eq!(p.first(), Some(asn(9)));
        assert_eq!(p.last(), None);
        assert_eq!(AsPath::empty().first(), None);
    }

    proptest! {
        #[test]
        fn prop_no_adjacent_duplicates(hops in proptest::collection::vec(0u32..5, 0..40)) {
            let p = AsPath::from_hops(
                hops.into_iter().map(|h| (h > 0).then(|| asn(h)))
            );
            for w in p.hops().windows(2) {
                prop_assert_ne!(&w[0], &w[1]);
            }
        }

        #[test]
        fn prop_imputation_never_grows_path(hops in proptest::collection::vec(0u32..4, 0..30)) {
            let mut p = AsPath::from_hops(
                hops.into_iter().map(|h| (h > 0).then(|| asn(h)))
            );
            let before = p.len();
            p.impute_bracketed();
            prop_assert!(p.len() <= before);
        }

        #[test]
        fn prop_complete_paths_have_no_unknowns(asns in proptest::collection::vec(1u32..100, 1..20)) {
            let p = AsPath::from_asns(asns.into_iter().map(asn));
            prop_assert!(p.is_complete());
            prop_assert_eq!(p.unknown_hops(), 0);
        }
    }
}
