//! The simulation clock.
//!
//! One continuous timeline measured in whole minutes since the campaign
//! start `T0`. The paper's long-term data set samples every 3 hours
//! ([`EPOCH_MINUTES`]); short-term campaigns sample every 15 or 30 minutes.
//! All cadences share this clock so routing dynamics and congestion profiles
//! are consistent across data sets.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Minutes in one long-term measurement epoch (3 hours).
pub const EPOCH_MINUTES: u32 = 180;

/// Minutes per day.
pub const MINUTES_PER_DAY: u32 = 24 * 60;

/// An instant on the simulation timeline: whole minutes since `T0`.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SimTime(pub u32);

/// A span between two [`SimTime`]s, in whole minutes.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default, Debug,
)]
pub struct SimDuration(pub u32);

impl SimTime {
    /// The campaign start.
    pub const T0: SimTime = SimTime(0);

    /// An instant `m` minutes after `T0`.
    pub const fn from_minutes(m: u32) -> Self {
        SimTime(m)
    }

    /// An instant `h` hours after `T0`.
    pub const fn from_hours(h: u32) -> Self {
        SimTime(h * 60)
    }

    /// An instant `d` days after `T0`.
    pub const fn from_days(d: u32) -> Self {
        SimTime(d * MINUTES_PER_DAY)
    }

    /// Minutes since `T0`.
    pub const fn minutes(self) -> u32 {
        self.0
    }

    /// Whole days since `T0`.
    pub const fn day(self) -> u32 {
        self.0 / MINUTES_PER_DAY
    }

    /// Minute-of-day in UTC, `0..1440`.
    pub const fn minute_of_day(self) -> u32 {
        self.0 % MINUTES_PER_DAY
    }

    /// Hour-of-day in UTC as a fraction, `0.0..24.0`.
    pub fn hour_of_day(self) -> f64 {
        f64::from(self.minute_of_day()) / 60.0
    }

    /// Local hour-of-day at a given longitude (degrees east), `0.0..24.0`.
    ///
    /// Solar time approximation: 15 degrees of longitude per hour. Good
    /// enough to place the "busy hour" of a link in its local evening.
    pub fn local_hour_of_day(self, lon_deg: f64) -> f64 {
        let local = self.hour_of_day() + lon_deg / 15.0;
        local.rem_euclid(24.0)
    }

    /// Index of the enclosing 3-hour long-term epoch.
    pub const fn epoch(self) -> u32 {
        self.0 / EPOCH_MINUTES
    }

    /// The start of the `e`-th 3-hour long-term epoch.
    pub const fn epoch_start(e: u32) -> SimTime {
        SimTime(e * EPOCH_MINUTES)
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A span of `m` minutes.
    pub const fn from_minutes(m: u32) -> Self {
        SimDuration(m)
    }

    /// A span of `h` hours.
    pub const fn from_hours(h: u32) -> Self {
        SimDuration(h * 60)
    }

    /// A span of `d` days.
    pub const fn from_days(d: u32) -> Self {
        SimDuration(d * MINUTES_PER_DAY)
    }

    /// The span in minutes.
    pub const fn minutes(self) -> u32 {
        self.0
    }

    /// The span in fractional hours.
    pub fn hours(self) -> f64 {
        f64::from(self.0) / 60.0
    }

    /// The span in fractional days.
    pub fn days(self) -> f64 {
        f64::from(self.0) / f64::from(MINUTES_PER_DAY)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T0+{}d{:02}:{:02}", self.day(), self.minute_of_day() / 60, self.minute_of_day() % 60)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Iterator over sampling instants: `start`, `start+step`, ... while `< end`.
pub fn sample_times(
    start: SimTime,
    end: SimTime,
    step: SimDuration,
) -> impl Iterator<Item = SimTime> {
    assert!(step.0 > 0, "sampling step must be positive");
    (0..)
        .map(move |i| SimTime(start.0 + i * step.0))
        .take_while(move |t| t.0 < end.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn epoch_math() {
        assert_eq!(SimTime::from_hours(0).epoch(), 0);
        assert_eq!(SimTime::from_hours(3).epoch(), 1);
        assert_eq!(SimTime::from_minutes(179).epoch(), 0);
        assert_eq!(SimTime::epoch_start(2), SimTime::from_hours(6));
    }

    #[test]
    fn day_and_minute_of_day() {
        let t = SimTime::from_days(2) + SimDuration::from_hours(5);
        assert_eq!(t.day(), 2);
        assert_eq!(t.minute_of_day(), 300);
        assert!((t.hour_of_day() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn local_hour_wraps() {
        let t = SimTime::from_hours(23); // 23:00 UTC
        // Tokyo (+139.7E) is ~9.3h ahead: 23 + 9.31 = 32.31 -> 8.31.
        let local = t.local_hour_of_day(139.7);
        assert!((local - 8.313).abs() < 0.01, "local={local}");
        // Western longitude goes backwards.
        let la = t.local_hour_of_day(-118.2);
        assert!((la - 15.12).abs() < 0.01, "la={la}");
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_days(1);
        let b = a + SimDuration::from_hours(2);
        assert_eq!(b - a, SimDuration::from_hours(2));
        assert_eq!((b - a).hours(), 2.0);
        assert_eq!(SimDuration::from_days(1).days(), 1.0);
    }

    #[test]
    fn sampling_iterator_excludes_end() {
        let v: Vec<_> =
            sample_times(SimTime::T0, SimTime::from_hours(9), SimDuration::from_hours(3))
                .collect();
        assert_eq!(v.len(), 3);
        assert_eq!(v[2], SimTime::from_hours(6));
    }

    #[test]
    fn debug_format_is_readable() {
        let t = SimTime::from_days(3) + SimDuration::from_minutes(65);
        assert_eq!(format!("{t:?}"), "T0+3d01:05");
    }

    proptest! {
        #[test]
        fn prop_epoch_is_consistent(m in 0u32..10_000_000) {
            let t = SimTime::from_minutes(m);
            let e = t.epoch();
            prop_assert!(SimTime::epoch_start(e) <= t);
            prop_assert!(t < SimTime::epoch_start(e + 1));
        }

        #[test]
        fn prop_local_hour_in_range(m in 0u32..10_000_000, lon in -180.0f64..180.0) {
            let h = SimTime::from_minutes(m).local_hour_of_day(lon);
            prop_assert!((0.0..24.0).contains(&h));
        }

        #[test]
        fn prop_sampling_is_sorted_and_spaced(
            start in 0u32..1000, span in 1u32..5000, step in 1u32..500
        ) {
            let v: Vec<_> = sample_times(
                SimTime::from_minutes(start),
                SimTime::from_minutes(start + span),
                SimDuration::from_minutes(step),
            ).collect();
            prop_assert!(!v.is_empty());
            for w in v.windows(2) {
                prop_assert_eq!(w[1].0 - w[0].0, step);
            }
            prop_assert!(v.last().unwrap().0 < start + span);
        }
    }
}
