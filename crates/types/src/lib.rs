//! Shared vocabulary for the `s2s` workspace.
//!
//! This crate defines the small, dependency-free types every other crate in
//! the workspace speaks: autonomous-system numbers, network prefixes, the
//! simulation clock, round-trip-time values, AS-level paths, and AS
//! business relationships.
//!
//! Everything here is plain data: `Copy` where possible, `serde`-serializable,
//! and free of any simulation or analysis logic. The one exception is
//! [`mod@env`], the shared warn-and-default parser every `S2S_*` environment
//! knob in the workspace goes through — it lives here because this is the
//! crate everything else already depends on. [`mod@exit`] lives here for
//! the same reason: one typed exit-code table ([`ExitCode`]) that every
//! binary (`reproduce`, the fabric workers, the service) shares.

pub mod env;
pub mod exit;
pub mod ids;
pub mod net;
pub mod path;
pub mod quality;
pub mod rel;
pub mod rtt;
pub mod time;

pub use exit::ExitCode;
pub use ids::{Asn, ClusterId, IfaceId, IxpId, LinkId, PopId, RouterId, ServerId};
pub use net::{IpNet, Ipv4Net, Ipv6Net, Protocol};
pub use path::AsPath;
pub use quality::{AnalysisError, Coverage};
pub use rel::AsRel;
pub use rtt::RttMs;
pub use time::{SimDuration, SimTime, EPOCH_MINUTES, MINUTES_PER_DAY};
