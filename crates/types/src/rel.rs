//! AS business relationships.
//!
//! The classic Gao model: a link between two ASes is either a
//! customer-to-provider relationship (the customer pays) or a settlement-free
//! peering. Relationship data drives both the policy-routing engine (valley-
//! free route selection) and the paper's router-ownership heuristics (§5.3).

use crate::ids::Asn;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The relationship of one AS *toward* a neighbor, from the first AS's view.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum AsRel {
    /// The neighbor is my customer (I provide transit to them).
    Customer,
    /// The neighbor is a settlement-free peer.
    Peer,
    /// The neighbor is my provider (they provide transit to me).
    Provider,
}

impl AsRel {
    /// The same relationship from the neighbor's point of view.
    pub fn inverse(self) -> AsRel {
        match self {
            AsRel::Customer => AsRel::Provider,
            AsRel::Peer => AsRel::Peer,
            AsRel::Provider => AsRel::Customer,
        }
    }

    /// Gao–Rexford export rule: may I export to this neighbor a route that I
    /// learned from a neighbor with relationship `learned_from`?
    ///
    /// Routes learned from customers are exported to everyone; routes learned
    /// from peers or providers are exported only to customers.
    pub fn may_export(learned_from: AsRel, to: AsRel) -> bool {
        match learned_from {
            AsRel::Customer => true,
            AsRel::Peer | AsRel::Provider => to == AsRel::Customer,
        }
    }

    /// Route-selection preference rank, lower is better: customer routes
    /// beat peer routes beat provider routes.
    pub fn preference_rank(self) -> u8 {
        match self {
            AsRel::Customer => 0,
            AsRel::Peer => 1,
            AsRel::Provider => 2,
        }
    }
}

impl fmt::Display for AsRel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AsRel::Customer => "customer",
            AsRel::Peer => "peer",
            AsRel::Provider => "provider",
        };
        f.write_str(s)
    }
}

/// The type of an interconnection link, as the paper classifies congested
/// links (§5.3): provider-to-provider (p2p, i.e. peering) or
/// customer-to-provider (c2p, i.e. transit).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum InterconnectKind {
    /// Settlement-free peering between the two ASes (p2p).
    PeerToPeer,
    /// Transit: one side is the customer of the other (c2p).
    CustomerToProvider,
}

impl InterconnectKind {
    /// Derives the interconnect kind from one endpoint's relationship toward
    /// the other.
    pub fn from_rel(rel: AsRel) -> InterconnectKind {
        match rel {
            AsRel::Peer => InterconnectKind::PeerToPeer,
            AsRel::Customer | AsRel::Provider => InterconnectKind::CustomerToProvider,
        }
    }

    /// Short label used in report output.
    pub fn label(self) -> &'static str {
        match self {
            InterconnectKind::PeerToPeer => "p2p",
            InterconnectKind::CustomerToProvider => "c2p",
        }
    }
}

/// A directed relationship record: `from` regards `to` as `rel`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct RelRecord {
    /// The AS whose viewpoint this record takes.
    pub from: Asn,
    /// The neighbor.
    pub to: Asn,
    /// `from`'s relationship toward `to`.
    pub rel: AsRel,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_is_involution() {
        for r in [AsRel::Customer, AsRel::Peer, AsRel::Provider] {
            assert_eq!(r.inverse().inverse(), r);
        }
        assert_eq!(AsRel::Customer.inverse(), AsRel::Provider);
        assert_eq!(AsRel::Peer.inverse(), AsRel::Peer);
    }

    #[test]
    fn export_rules_are_valley_free() {
        use AsRel::*;
        // Customer routes go everywhere.
        for to in [Customer, Peer, Provider] {
            assert!(AsRel::may_export(Customer, to));
        }
        // Peer/provider routes go only to customers.
        for from in [Peer, Provider] {
            assert!(AsRel::may_export(from, Customer));
            assert!(!AsRel::may_export(from, Peer));
            assert!(!AsRel::may_export(from, Provider));
        }
    }

    #[test]
    fn preference_prefers_customers() {
        assert!(AsRel::Customer.preference_rank() < AsRel::Peer.preference_rank());
        assert!(AsRel::Peer.preference_rank() < AsRel::Provider.preference_rank());
    }

    #[test]
    fn interconnect_kind_mapping() {
        assert_eq!(InterconnectKind::from_rel(AsRel::Peer), InterconnectKind::PeerToPeer);
        assert_eq!(
            InterconnectKind::from_rel(AsRel::Customer),
            InterconnectKind::CustomerToProvider
        );
        assert_eq!(
            InterconnectKind::from_rel(AsRel::Provider),
            InterconnectKind::CustomerToProvider
        );
        assert_eq!(InterconnectKind::PeerToPeer.label(), "p2p");
        assert_eq!(InterconnectKind::CustomerToProvider.label(), "c2p");
    }

    #[test]
    fn display_labels() {
        assert_eq!(AsRel::Customer.to_string(), "customer");
        assert_eq!(AsRel::Provider.to_string(), "provider");
    }
}
