//! Round-trip-time values.
//!
//! RTTs are finite, non-negative milliseconds. The newtype keeps NaNs out of
//! the analysis pipeline by construction and provides a total order so RTT
//! collections can be sorted and percentiled without `partial_cmp` unwraps.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Sub};

/// A round-trip time in milliseconds. Always finite and non-negative.
#[derive(Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct RttMs(f64);

impl RttMs {
    /// Zero milliseconds.
    pub const ZERO: RttMs = RttMs(0.0);

    /// Wraps a millisecond value.
    ///
    /// # Panics
    /// Panics if `ms` is NaN, infinite, or negative.
    pub fn new(ms: f64) -> Self {
        assert!(ms.is_finite() && ms >= 0.0, "invalid RTT: {ms}");
        RttMs(ms)
    }

    /// Wraps a millisecond value, returning `None` when invalid instead of
    /// panicking. Use at ingestion boundaries.
    pub fn try_new(ms: f64) -> Option<Self> {
        (ms.is_finite() && ms >= 0.0).then_some(RttMs(ms))
    }

    /// The value in milliseconds.
    pub fn ms(self) -> f64 {
        self.0
    }

    /// Signed difference in milliseconds (`self - other`).
    pub fn diff_ms(self, other: RttMs) -> f64 {
        self.0 - other.0
    }

    /// The smaller of two RTTs.
    pub fn min(self, other: RttMs) -> RttMs {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// The larger of two RTTs.
    pub fn max(self, other: RttMs) -> RttMs {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Eq for RttMs {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for RttMs {
    fn cmp(&self, other: &Self) -> Ordering {
        // Values are finite by construction, so this never sees NaN.
        self.0.partial_cmp(&other.0).expect("RttMs is always finite")
    }
}

impl PartialOrd for RttMs {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for RttMs {
    type Output = RttMs;
    fn add(self, rhs: RttMs) -> RttMs {
        RttMs(self.0 + rhs.0)
    }
}

impl Sub for RttMs {
    type Output = RttMs;
    /// Saturating subtraction: RTTs never go negative.
    fn sub(self, rhs: RttMs) -> RttMs {
        RttMs((self.0 - rhs.0).max(0.0))
    }
}

impl fmt::Debug for RttMs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}ms", self.0)
    }
}

impl fmt::Display for RttMs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_validates() {
        assert_eq!(RttMs::new(12.5).ms(), 12.5);
        assert!(RttMs::try_new(f64::NAN).is_none());
        assert!(RttMs::try_new(-1.0).is_none());
        assert!(RttMs::try_new(f64::INFINITY).is_none());
        assert_eq!(RttMs::try_new(0.0), Some(RttMs::ZERO));
    }

    #[test]
    #[should_panic(expected = "invalid RTT")]
    fn nan_panics() {
        RttMs::new(f64::NAN);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = RttMs::new(10.0);
        let b = RttMs::new(20.0);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        let mut v = vec![b, a];
        v.sort();
        assert_eq!(v, vec![a, b]);
    }

    #[test]
    fn arithmetic_saturates() {
        let a = RttMs::new(10.0);
        let b = RttMs::new(25.0);
        assert_eq!((a + b).ms(), 35.0);
        assert_eq!((b - a).ms(), 15.0);
        assert_eq!((a - b).ms(), 0.0, "subtraction saturates at zero");
        assert_eq!(b.diff_ms(a), 15.0);
        assert_eq!(a.diff_ms(b), -15.0, "diff_ms is signed");
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{:?}", RttMs::new(1.234)), "1.23ms");
        assert_eq!(format!("{}", RttMs::new(1.235)), "1.24");
    }

    proptest! {
        #[test]
        fn prop_order_is_total(a in 0.0f64..1e6, b in 0.0f64..1e6) {
            let (x, y) = (RttMs::new(a), RttMs::new(b));
            let c = x.cmp(&y);
            prop_assert_eq!(c.reverse(), y.cmp(&x));
            prop_assert_eq!(x.min(y).ms(), a.min(b));
            prop_assert_eq!(x.max(y).ms(), a.max(b));
        }

        #[test]
        fn prop_sub_never_negative(a in 0.0f64..1e6, b in 0.0f64..1e6) {
            prop_assert!((RttMs::new(a) - RttMs::new(b)).ms() >= 0.0);
        }
    }
}
