//! Data-quality vocabulary for degraded measurement planes.
//!
//! A real measurement platform loses data: agents crash, probes time out,
//! archives truncate. Analyses must not pretend a gap-bearing timeline is a
//! complete one — they annotate results with how much of the offered
//! schedule actually produced usable data ([`Coverage`]) and refuse, with a
//! typed error rather than a panic, when coverage falls below the caller's
//! floor ([`AnalysisError`]).

use std::fmt;

/// How much of an offered measurement schedule produced usable data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Coverage {
    /// Usable samples (probe completed and survived filtering).
    pub usable: usize,
    /// Samples the schedule offered (usable + gaps).
    pub offered: usize,
}

impl Coverage {
    /// Builds a coverage annotation.
    pub fn new(usable: usize, offered: usize) -> Coverage {
        debug_assert!(usable <= offered, "usable {usable} exceeds offered {offered}");
        Coverage { usable, offered }
    }

    /// The usable fraction in [0, 1]. An empty schedule counts as fully
    /// covered: there was nothing to miss.
    pub fn fraction(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.usable as f64 / self.offered as f64
        }
    }

    /// Whether the usable fraction reaches `min_fraction`.
    pub fn meets(&self, min_fraction: f64) -> bool {
        self.fraction() >= min_fraction
    }

    /// Refuses with [`AnalysisError::InsufficientCoverage`] when below
    /// `min_fraction`.
    pub fn require(&self, min_fraction: f64) -> Result<(), AnalysisError> {
        if self.meets(min_fraction) {
            Ok(())
        } else {
            Err(AnalysisError::InsufficientCoverage { coverage: *self, min_fraction })
        }
    }
}

impl fmt::Display for Coverage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{} ({:.1}%)", self.usable, self.offered, 100.0 * self.fraction())
    }
}

/// Why an analysis declined to produce a result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AnalysisError {
    /// The timeline's usable fraction is below the caller's floor.
    InsufficientCoverage {
        /// What the timeline actually covered.
        coverage: Coverage,
        /// The floor the caller demanded.
        min_fraction: f64,
    },
    /// The timeline met the coverage floor but holds no usable data at all
    /// (e.g. an empty schedule, which counts as fully covered).
    NoUsableData,
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::InsufficientCoverage { coverage, min_fraction } => write!(
                f,
                "insufficient coverage: {coverage} below the {:.1}% floor",
                100.0 * min_fraction
            ),
            AnalysisError::NoUsableData => write!(f, "no usable data in timeline"),
        }
    }
}

impl std::error::Error for AnalysisError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_and_floor() {
        let c = Coverage::new(90, 100);
        assert!((c.fraction() - 0.9).abs() < 1e-12);
        assert!(c.meets(0.9));
        assert!(!c.meets(0.95));
        assert!(c.require(0.5).is_ok());
        let err = c.require(0.95).unwrap_err();
        assert!(matches!(err, AnalysisError::InsufficientCoverage { .. }));
        assert!(err.to_string().contains("95.0%"));
    }

    #[test]
    fn empty_schedule_is_fully_covered() {
        let c = Coverage::new(0, 0);
        assert_eq!(c.fraction(), 1.0);
        assert!(c.require(1.0).is_ok());
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(Coverage::new(3, 4).to_string(), "3/4 (75.0%)");
    }
}
