//! A binary trie for longest-prefix matching.
//!
//! Keys are prefixes left-aligned in a `u128` (see
//! [`s2s_types::net::IpNet::key_bits`]); one trie instance serves one
//! address family. Insertion is idempotent per prefix (later values
//! overwrite), lookup returns the value of the longest matching prefix.

/// A binary prefix trie mapping prefixes to values of type `T`.
#[derive(Clone, Debug)]
pub struct PrefixTrie<T> {
    nodes: Vec<Node<T>>,
}

#[derive(Clone, Debug)]
struct Node<T> {
    value: Option<T>,
    children: [Option<u32>; 2],
}

impl<T> Node<T> {
    fn empty() -> Self {
        Node { value: None, children: [None, None] }
    }
}

impl<T: Clone> Default for PrefixTrie<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> PrefixTrie<T> {
    /// An empty trie.
    pub fn new() -> Self {
        PrefixTrie { nodes: vec![Node::empty()] }
    }

    /// Inserts a prefix (`bits` left-aligned, `len` bits significant) with a
    /// value. Replaces the value when the prefix was already present.
    ///
    /// # Panics
    /// Panics if `len > 128`.
    pub fn insert(&mut self, bits: u128, len: u8, value: T) {
        assert!(len <= 128, "prefix length {len} > 128");
        let mut node = 0usize;
        for i in 0..len {
            let bit = ((bits >> (127 - i)) & 1) as usize;
            let next = match self.nodes[node].children[bit] {
                Some(n) => n as usize,
                None => {
                    let n = self.nodes.len();
                    self.nodes.push(Node::empty());
                    self.nodes[node].children[bit] = Some(n as u32);
                    n
                }
            };
            node = next;
        }
        self.nodes[node].value = Some(value);
    }

    /// Longest-prefix match: the value of the most specific prefix covering
    /// `addr_bits` (left-aligned), or `None`.
    pub fn longest_match(&self, addr_bits: u128) -> Option<&T> {
        let mut node = 0usize;
        let mut best = self.nodes[0].value.as_ref();
        for i in 0..128u8 {
            let bit = ((addr_bits >> (127 - i)) & 1) as usize;
            match self.nodes[node].children[bit] {
                Some(n) => {
                    node = n as usize;
                    if let Some(v) = self.nodes[node].value.as_ref() {
                        best = Some(v);
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Exact-match lookup of one prefix.
    pub fn get(&self, bits: u128, len: u8) -> Option<&T> {
        let mut node = 0usize;
        for i in 0..len {
            let bit = ((bits >> (127 - i)) & 1) as usize;
            node = self.nodes[node].children[bit]? as usize;
        }
        self.nodes[node].value.as_ref()
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.nodes.iter().filter(|n| n.value.is_some()).count()
    }

    /// True when no prefixes are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn key(octets: [u8; 4]) -> u128 {
        (u32::from_be_bytes(octets) as u128) << 96
    }

    #[test]
    fn longest_match_prefers_specific() {
        let mut t = PrefixTrie::new();
        t.insert(key([10, 0, 0, 0]), 8, "eight");
        t.insert(key([10, 1, 0, 0]), 16, "sixteen");
        assert_eq!(t.longest_match(key([10, 1, 2, 3])), Some(&"sixteen"));
        assert_eq!(t.longest_match(key([10, 2, 2, 3])), Some(&"eight"));
        assert_eq!(t.longest_match(key([11, 0, 0, 0])), None);
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = PrefixTrie::new();
        t.insert(0, 0, "default");
        assert_eq!(t.longest_match(key([1, 2, 3, 4])), Some(&"default"));
        assert_eq!(t.longest_match(u128::MAX), Some(&"default"));
    }

    #[test]
    fn insert_overwrites() {
        let mut t = PrefixTrie::new();
        t.insert(key([10, 0, 0, 0]), 8, 1);
        t.insert(key([10, 0, 0, 0]), 8, 2);
        assert_eq!(t.longest_match(key([10, 9, 9, 9])), Some(&2));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn exact_get() {
        let mut t = PrefixTrie::new();
        t.insert(key([192, 0, 2, 0]), 24, 7);
        assert_eq!(t.get(key([192, 0, 2, 0]), 24), Some(&7));
        assert_eq!(t.get(key([192, 0, 2, 0]), 23), None);
        assert_eq!(t.get(key([192, 0, 2, 0]), 25), None);
    }

    #[test]
    fn host_route_matches_only_itself() {
        let mut t = PrefixTrie::new();
        t.insert(key([192, 0, 2, 1]), 32 + 96, "host"); // full 128-bit key
        assert_eq!(t.longest_match(key([192, 0, 2, 1])), Some(&"host"));
        assert_eq!(t.longest_match(key([192, 0, 2, 2])), None);
    }

    #[test]
    fn empty_trie() {
        let t: PrefixTrie<u8> = PrefixTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.longest_match(0), None);
    }

    proptest! {
        #[test]
        fn prop_inserted_prefix_is_found(addr: u32, len in 0u8..=32) {
            let bits = (addr as u128) << 96;
            let masked = if len == 0 { 0 } else { bits >> (128 - len) << (128 - len) };
            let mut t = PrefixTrie::new();
            t.insert(masked, len, 42u8);
            // Any address under the prefix matches.
            prop_assert_eq!(t.longest_match(bits | masked), Some(&42u8));
            prop_assert_eq!(t.get(masked, len), Some(&42u8));
        }

        #[test]
        fn prop_match_respects_specificity(
            addr: u32, len1 in 1u8..=31, extra in 1u8..=8,
        ) {
            let len2 = (len1 + extra).min(32);
            let bits = (addr as u128) << 96;
            let m1 = bits >> (128 - len1) << (128 - len1);
            let m2 = bits >> (128 - len2) << (128 - len2);
            let mut t = PrefixTrie::new();
            t.insert(m1, len1, 1u8);
            t.insert(m2, len2, 2u8);
            // The address itself is covered by both; the longer wins.
            prop_assert_eq!(t.longest_match(bits), Some(&2u8));
        }
    }
}
