//! AS relationship store.
//!
//! The same shape as CAIDA's `as-rel` inference files the paper consumes
//! (§5.3): for each AS pair, whether the link is peer-to-peer or
//! customer-to-provider. Built here from topology ground truth; a consumer
//! of real data would populate it from a CAIDA snapshot instead.

use s2s_types::rel::{AsRel, RelRecord};
use s2s_types::Asn;
use std::collections::HashMap;

/// Directed relationship database: `rel(a, b)` is `a`'s relationship toward
/// `b`.
#[derive(Clone, Debug, Default)]
pub struct AsRelStore {
    rels: HashMap<(Asn, Asn), AsRel>,
}

impl AsRelStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the store from a topology's ground-truth adjacency.
    pub fn from_topology(topo: &s2s_topology::Topology) -> Self {
        let mut s = Self::new();
        for (i, adj) in topo.as_adj.iter().enumerate() {
            for &(j, rel) in adj {
                s.add(topo.asn(i), topo.asn(j), rel);
            }
        }
        s
    }

    /// Records that `a` regards `b` as `rel` (and the inverse direction).
    pub fn add(&mut self, a: Asn, b: Asn, rel: AsRel) {
        self.rels.insert((a, b), rel);
        self.rels.insert((b, a), rel.inverse());
    }

    /// `a`'s relationship toward `b`, if known.
    pub fn rel(&self, a: Asn, b: Asn) -> Option<AsRel> {
        self.rels.get(&(a, b)).copied()
    }

    /// True when `b` is a customer of `a`.
    pub fn is_customer(&self, a: Asn, b: Asn) -> bool {
        self.rel(a, b) == Some(AsRel::Customer)
    }

    /// True when `a` and `b` are settlement-free peers.
    pub fn is_peering(&self, a: Asn, b: Asn) -> bool {
        self.rel(a, b) == Some(AsRel::Peer)
    }

    /// Number of directed records (twice the number of AS pairs).
    pub fn len(&self) -> usize {
        self.rels.len()
    }

    /// True when no relationships are stored.
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }

    /// Every record, in deterministic (sorted) order — the serialization
    /// CAIDA-style dumps use.
    pub fn records(&self) -> Vec<RelRecord> {
        let mut v: Vec<RelRecord> = self
            .rels
            .iter()
            .map(|(&(from, to), &rel)| RelRecord { from, to, rel })
            .collect();
        v.sort_by_key(|r| (r.from, r.to));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asn(n: u32) -> Asn {
        Asn::new(n)
    }

    #[test]
    fn add_records_both_directions() {
        let mut s = AsRelStore::new();
        s.add(asn(1), asn(2), AsRel::Customer);
        assert_eq!(s.rel(asn(1), asn(2)), Some(AsRel::Customer));
        assert_eq!(s.rel(asn(2), asn(1)), Some(AsRel::Provider));
        assert!(s.is_customer(asn(1), asn(2)));
        assert!(!s.is_customer(asn(2), asn(1)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn peering_is_symmetric() {
        let mut s = AsRelStore::new();
        s.add(asn(10), asn(20), AsRel::Peer);
        assert!(s.is_peering(asn(10), asn(20)));
        assert!(s.is_peering(asn(20), asn(10)));
    }

    #[test]
    fn unknown_pairs_are_none() {
        let s = AsRelStore::new();
        assert!(s.is_empty());
        assert_eq!(s.rel(asn(1), asn(2)), None);
        assert!(!s.is_peering(asn(1), asn(2)));
    }

    #[test]
    fn records_are_sorted_and_complete() {
        let mut s = AsRelStore::new();
        s.add(asn(3), asn(1), AsRel::Provider);
        s.add(asn(2), asn(1), AsRel::Peer);
        let r = s.records();
        assert_eq!(r.len(), 4);
        assert!(r.windows(2).all(|w| (w[0].from, w[0].to) <= (w[1].from, w[1].to)));
    }

    #[test]
    fn from_topology_matches_ground_truth() {
        use s2s_topology::{build_topology, TopologyParams};
        let t = build_topology(&TopologyParams::tiny(11));
        let s = AsRelStore::from_topology(&t);
        for (i, adj) in t.as_adj.iter().enumerate() {
            for &(j, rel) in adj {
                assert_eq!(s.rel(t.asn(i), t.asn(j)), Some(rel));
            }
        }
        assert!(!s.is_empty());
    }
}
