//! AS relationship inference from observed AS paths.
//!
//! The paper consumes CAIDA's relationship *inferences* (Luckie et al.,
//! IMC 2013), not registry ground truth. This module implements the classic
//! Gao-style core of such algorithms so the pipeline can run end-to-end
//! from paths alone:
//!
//! 1. rank every AS by its observed degree (distinct neighbors across all
//!    paths) — bigger networks sit higher in the hierarchy,
//! 2. in each (valley-free) path, the highest-ranked AS is the *top*:
//!    edges before it go uphill (customer → provider), edges after it go
//!    downhill,
//! 3. tally the per-edge votes over the whole corpus; edges voted in both
//!    directions with no clear majority are peerings (traffic crosses the
//!    top of the hierarchy sideways).
//!
//! Tests validate the inference against the simulator's ground truth — the
//! "thoroughly validated approach" the paper asks for (§5.3).

use crate::rels::AsRelStore;
use s2s_types::rel::AsRel;
use s2s_types::Asn;
use std::collections::{HashMap, HashSet};

/// Tunables of the inference.
#[derive(Clone, Copy, Debug)]
pub struct InferParams {
    /// An edge is a peering when the minority direction still has at least
    /// this fraction of the votes (no clear uphill winner).
    pub peer_vote_fraction: f64,
    /// Edges seen fewer times than this stay unclassified.
    pub min_votes: usize,
}

impl Default for InferParams {
    fn default() -> Self {
        InferParams { peer_vote_fraction: 0.35, min_votes: 1 }
    }
}

/// The outcome of an inference run.
#[derive(Clone, Debug, Default)]
pub struct InferredRels {
    /// The inferred relationship store (queryable like the CAIDA-derived
    /// one).
    pub store: AsRelStore,
    /// Edges observed but left unclassified (too few votes).
    pub unclassified: Vec<(Asn, Asn)>,
}

/// Infers relationships from a corpus of AS paths (each a sequence of
/// ASNs, source first).
pub fn infer_relationships(paths: &[Vec<Asn>], params: &InferParams) -> InferredRels {
    // Degree ranking.
    let mut neighbors: HashMap<Asn, HashSet<Asn>> = HashMap::new();
    for path in paths {
        for w in path.windows(2) {
            if w[0] != w[1] {
                neighbors.entry(w[0]).or_default().insert(w[1]);
                neighbors.entry(w[1]).or_default().insert(w[0]);
            }
        }
    }
    let degree = |a: Asn| neighbors.get(&a).map(HashSet::len).unwrap_or(0);

    // Vote per ordered edge: (x, y) counted as "x is customer of y" when
    // the edge goes uphill (before the top), and the reverse after it.
    let mut up_votes: HashMap<(Asn, Asn), usize> = HashMap::new();
    for path in paths {
        if path.len() < 2 {
            continue;
        }
        // The top: first position with maximum degree.
        let top = (0..path.len())
            .max_by_key(|&i| (degree(path[i]), std::cmp::Reverse(i)))
            .unwrap_or(0);
        for (i, w) in path.windows(2).enumerate() {
            let (x, y) = (w[0], w[1]);
            if x == y {
                continue;
            }
            if i < top {
                *up_votes.entry((x, y)).or_default() += 1; // x -> provider y
            } else {
                *up_votes.entry((y, x)).or_default() += 1; // y -> provider x
            }
        }
    }

    // Classification.
    let mut edges: HashSet<(Asn, Asn)> = HashSet::new();
    for &(x, y) in up_votes.keys() {
        edges.insert((x.min(y), x.max(y)));
    }
    let mut out = InferredRels::default();
    let mut sorted_edges: Vec<_> = edges.into_iter().collect();
    sorted_edges.sort_unstable();
    for (a, b) in sorted_edges {
        let ab = up_votes.get(&(a, b)).copied().unwrap_or(0); // a customer of b
        let ba = up_votes.get(&(b, a)).copied().unwrap_or(0);
        let total = ab + ba;
        if total < params.min_votes {
            out.unclassified.push((a, b));
            continue;
        }
        let minority = ab.min(ba) as f64 / total as f64;
        if minority >= params.peer_vote_fraction {
            out.store.add(a, b, AsRel::Peer);
        } else if ab > ba {
            // a is the customer: a regards b as Provider.
            out.store.add(a, b, AsRel::Provider);
        } else {
            out.store.add(a, b, AsRel::Customer);
        }
    }
    out
}

/// Scores an inference against ground truth: `(correct, total_compared)`.
pub fn score_against(inferred: &AsRelStore, truth: &AsRelStore) -> (usize, usize) {
    let mut correct = 0;
    let mut total = 0;
    for rec in inferred.records() {
        if let Some(true_rel) = truth.rel(rec.from, rec.to) {
            total += 1;
            correct += (true_rel == rec.rel) as usize;
        }
    }
    (correct, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asn(n: u32) -> Asn {
        Asn::new(n)
    }

    /// A toy hierarchy: 1 and 2 are big providers peering at the top;
    /// 10/11 are customers of 1; 20/21 customers of 2.
    fn toy_paths() -> Vec<Vec<Asn>> {
        let p = |v: &[u32]| v.iter().map(|&x| asn(x)).collect::<Vec<_>>();
        vec![
            p(&[10, 1, 2, 20]),
            p(&[11, 1, 2, 21]),
            p(&[10, 1, 2, 21]),
            p(&[20, 2, 1, 10]),
            p(&[21, 2, 1, 11]),
            p(&[10, 1, 11]),
            p(&[20, 2, 21]),
        ]
    }

    #[test]
    fn infers_transit_and_peering() {
        let inf = infer_relationships(&toy_paths(), &InferParams::default());
        // Customers point up at their providers.
        assert_eq!(inf.store.rel(asn(10), asn(1)), Some(AsRel::Provider));
        assert_eq!(inf.store.rel(asn(1), asn(10)), Some(AsRel::Customer));
        assert_eq!(inf.store.rel(asn(20), asn(2)), Some(AsRel::Provider));
        // The top edge is crossed in both directions: peering.
        assert_eq!(inf.store.rel(asn(1), asn(2)), Some(AsRel::Peer));
    }

    #[test]
    fn empty_corpus_infers_nothing() {
        let inf = infer_relationships(&[], &InferParams::default());
        assert!(inf.store.is_empty());
        assert!(inf.unclassified.is_empty());
    }

    #[test]
    fn single_hop_paths_are_ignored() {
        let inf = infer_relationships(&[vec![asn(5)]], &InferParams::default());
        assert!(inf.store.is_empty());
    }

    #[test]
    fn min_votes_leaves_rare_edges_unclassified() {
        let paths = vec![vec![asn(1), asn(2)]];
        let inf = infer_relationships(
            &paths,
            &InferParams { min_votes: 5, ..Default::default() },
        );
        assert!(inf.store.is_empty());
        assert_eq!(inf.unclassified, vec![(asn(1), asn(2))]);
    }

    #[test]
    fn validates_against_simulated_ground_truth() {
        use s2s_topology::{build_topology, TopologyParams};
        // Paths from the generator's ground-truth routing (valley-free by
        // construction): walk every cluster pair's AS path via a trivial
        // BFS over provider edges is overkill — reuse the adjacency to
        // synthesize paths: customer -> provider -> (peer) -> customer.
        let topo = build_topology(&TopologyParams::tiny(19));
        let truth = crate::rels::AsRelStore::from_topology(&topo);
        // Synthesize valley-free paths: for each stub s, go up to a
        // provider p, across one peering (if any), and down to a customer.
        let mut paths: Vec<Vec<Asn>> = Vec::new();
        for (i, adj) in topo.as_adj.iter().enumerate() {
            for &(p, rel) in adj {
                if rel != s2s_types::rel::AsRel::Provider {
                    continue;
                }
                // i -> p (uphill). Extend across p's peers and down to
                // their customers.
                for &(q, rel_pq) in &topo.as_adj[p] {
                    match rel_pq {
                        s2s_types::rel::AsRel::Peer => {
                            for &(c, rel_qc) in &topo.as_adj[q] {
                                if rel_qc == s2s_types::rel::AsRel::Customer && c != i {
                                    paths.push(vec![
                                        topo.asn(i),
                                        topo.asn(p),
                                        topo.asn(q),
                                        topo.asn(c),
                                    ]);
                                }
                            }
                        }
                        s2s_types::rel::AsRel::Customer
                            if q != i => {
                                paths.push(vec![topo.asn(i), topo.asn(p), topo.asn(q)]);
                            }
                        _ => {}
                    }
                }
            }
        }
        assert!(paths.len() > 100, "too few synthetic paths: {}", paths.len());
        let inf = infer_relationships(&paths, &InferParams::default());
        let (correct, total) = score_against(&inf.store, &truth);
        assert!(total > 50, "too few comparable edges ({total})");
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.75, "inference accuracy {acc:.3} ({correct}/{total})");
    }

    #[test]
    fn score_counts_only_comparable_edges() {
        let mut inferred = AsRelStore::new();
        inferred.add(asn(1), asn(2), AsRel::Peer);
        inferred.add(asn(3), asn(4), AsRel::Customer);
        let mut truth = AsRelStore::new();
        truth.add(asn(1), asn(2), AsRel::Peer);
        // (3,4) unknown to truth: ignored.
        let (correct, total) = score_against(&inferred, &truth);
        assert_eq!((correct, total), (2, 2)); // both directions of (1,2)
    }
}
