//! IP-to-ASN mapping by longest matching prefix.
//!
//! Exactly the paper's §2.1 procedure: "mapping the IP addresses at each hop
//! to an AS number corresponding to the origin AS of the longest matching
//! prefix observed in BGP". Two tries, one per family, built from a list of
//! announcements.

use crate::trie::PrefixTrie;
use s2s_types::net::addr_key_bits;
use s2s_types::{Asn, IpNet, Protocol};
use std::net::IpAddr;

/// Longest-prefix-match IP→ASN mapper.
#[derive(Clone, Debug, Default)]
pub struct Ip2AsnMap {
    v4: PrefixTrie<Asn>,
    v6: PrefixTrie<Asn>,
    count: usize,
    /// ASNs announcing IXP switching fabrics. Addresses in fabric prefixes
    /// identify the exchange, not a transit AS — AS-path pipelines filter
    /// them with PeeringDB/PCH-style IXP prefix lists, and so do we.
    ixp_asns: std::collections::HashSet<Asn>,
}

impl Ip2AsnMap {
    /// Builds the map from `(prefix, origin ASN)` announcements.
    pub fn from_announcements<'a, I>(announcements: I) -> Self
    where
        I: IntoIterator<Item = &'a (IpNet, Asn)>,
    {
        let mut m = Ip2AsnMap::default();
        for (net, asn) in announcements {
            m.announce(*net, *asn);
        }
        m
    }

    /// Adds one announcement.
    pub fn announce(&mut self, net: IpNet, asn: Asn) {
        let (bits, len) = net.key_bits();
        match net.protocol() {
            Protocol::V4 => self.v4.insert(bits, len, asn),
            Protocol::V6 => self.v6.insert(bits, len, asn),
        }
        self.count += 1;
    }

    /// The origin ASN of the longest prefix covering `addr`, or `None` when
    /// the address is unannounced (the paper's "no known IP-to-ASN mapping").
    pub fn lookup(&self, addr: IpAddr) -> Option<Asn> {
        let bits = addr_key_bits(addr);
        match addr {
            IpAddr::V4(_) => self.v4.longest_match(bits).copied(),
            IpAddr::V6(_) => self.v6.longest_match(bits).copied(),
        }
    }

    /// Batch lookup: one [`Ip2AsnMap::lookup`] result per address, in
    /// order. The columnar analysis plane calls this over a store's intern
    /// table, so the trie is walked once per *distinct* address in a corpus
    /// instead of once per hop observation.
    pub fn lookup_batch(&self, addrs: &[IpAddr]) -> Vec<Option<Asn>> {
        addrs.iter().map(|&a| self.lookup(a)).collect()
    }

    /// [`Ip2AsnMap::lookup`] with the IXP-fabric filter applied: fabric
    /// addresses identify the exchange, not a network on the AS path, so
    /// they map to `None` here (the annotation pipeline's middle-hop rule).
    pub fn lookup_non_ixp(&self, addr: IpAddr) -> Option<Asn> {
        self.lookup(addr).filter(|a| !self.is_ixp(*a))
    }

    /// Number of announcements ingested (duplicates included).
    pub fn announcement_count(&self) -> usize {
        self.count
    }

    /// Registers an ASN as an IXP fabric origin (from an IXP prefix list).
    pub fn mark_ixp(&mut self, asn: Asn) {
        self.ixp_asns.insert(asn);
    }

    /// Whether an ASN originates only IXP fabric space.
    pub fn is_ixp(&self, asn: Asn) -> bool {
        self.ixp_asns.contains(&asn)
    }

    /// Builds the map from a topology: all announcements plus the IXP
    /// fabric ASN list (the simulated equivalent of a PeeringDB dump).
    pub fn from_topology(topo: &s2s_topology::Topology) -> Self {
        let mut m = Self::from_announcements(&topo.announcements);
        for ixp in &topo.ixps {
            m.mark_ixp(topo.asn(ixp.fabric_as));
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2s_types::{Ipv4Net, Ipv6Net};
    use std::net::{Ipv4Addr, Ipv6Addr};

    fn asn(n: u32) -> Asn {
        Asn::new(n)
    }

    #[test]
    fn maps_by_longest_prefix() {
        let anns = vec![
            (IpNet::V4(Ipv4Net::new(Ipv4Addr::new(10, 0, 0, 0), 8)), asn(100)),
            (IpNet::V4(Ipv4Net::new(Ipv4Addr::new(10, 5, 0, 0), 16)), asn(200)),
        ];
        let m = Ip2AsnMap::from_announcements(&anns);
        assert_eq!(m.lookup("10.5.1.1".parse().unwrap()), Some(asn(200)));
        assert_eq!(m.lookup("10.6.1.1".parse().unwrap()), Some(asn(100)));
        assert_eq!(m.lookup("11.0.0.1".parse().unwrap()), None);
    }

    #[test]
    fn families_are_independent() {
        let anns = vec![
            (IpNet::V4(Ipv4Net::new(Ipv4Addr::new(1, 2, 0, 0), 16)), asn(1)),
            (IpNet::V6(Ipv6Net::new("2600:1::".parse().unwrap(), 32)), asn(2)),
        ];
        let m = Ip2AsnMap::from_announcements(&anns);
        assert_eq!(m.lookup("1.2.3.4".parse().unwrap()), Some(asn(1)));
        assert_eq!(m.lookup("2600:1::1".parse().unwrap()), Some(asn(2)));
        // A v6 address that shares top bits with a v4 key must not match v4.
        assert_eq!(m.lookup("102:304::1".parse::<Ipv6Addr>().unwrap().into()), None);
        assert_eq!(m.announcement_count(), 2);
    }

    #[test]
    fn later_announcement_wins_same_prefix() {
        let mut m = Ip2AsnMap::default();
        let net = IpNet::V4(Ipv4Net::new(Ipv4Addr::new(9, 9, 0, 0), 16));
        m.announce(net, asn(1));
        m.announce(net, asn(2));
        assert_eq!(m.lookup("9.9.9.9".parse().unwrap()), Some(asn(2)));
    }

    #[test]
    fn topology_announcements_cover_ifaces() {
        use s2s_topology::{build_topology, TopologyParams};
        let t = build_topology(&TopologyParams::tiny(5));
        let m = Ip2AsnMap::from_announcements(&t.announcements);
        let mut mapped = 0;
        let mut unmapped = 0;
        for (li, l) in t.links.iter().enumerate() {
            let f = &t.ifaces[l.iface_a.index()];
            match (m.lookup(IpAddr::V4(f.v4)), l.announced_v4) {
                (Some(owner_asn), true) => {
                    let owner = l.subnet_owner.expect("announced links have owners");
                    assert_eq!(owner_asn, t.asn(owner), "link {li}");
                    mapped += 1;
                }
                (None, false) => unmapped += 1,
                (got, announced) => {
                    panic!("link {li}: lookup={got:?} but announced={announced}")
                }
            }
        }
        assert!(mapped > 0);
        // The tiny params may or may not roll an unannounced link; only the
        // consistency above is required.
        let _ = unmapped;
    }

    #[test]
    fn cluster_servers_map_to_host_as() {
        use s2s_topology::{build_topology, TopologyParams};
        let t = build_topology(&TopologyParams::tiny(6));
        let m = Ip2AsnMap::from_announcements(&t.announcements);
        for c in &t.clusters {
            assert_eq!(m.lookup(IpAddr::V4(c.v4)), Some(t.asn(c.host_as)));
            assert_eq!(m.lookup(IpAddr::V6(c.v6)), Some(t.asn(c.host_as)));
        }
    }
}
