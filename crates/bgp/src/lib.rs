//! BGP data substrate.
//!
//! The paper's pipeline maps every traceroute hop IP to "the origin AS of
//! the longest matching prefix observed in BGP" (§2.1) and consumes
//! CAIDA-style AS relationship data for the router-ownership heuristics
//! (§5.3). This crate provides both:
//!
//! * [`PrefixTrie`] / [`Ip2AsnMap`] — longest-prefix-match over the
//!   announcements the simulated BGP table contains,
//! * [`AsRelStore`] — the relationship database (derived from topology
//!   ground truth, in the same shape CAIDA's `as-rel` files provide),
//! * [`mod@infer`] — Gao-style relationship inference from observed AS
//!   paths, validated against ground truth (the paper consumes CAIDA's
//!   inferences, which work this way).

pub mod infer;
pub mod ip2asn;
pub mod rels;
pub mod trie;

pub use infer::{infer_relationships, InferParams, InferredRels};
pub use ip2asn::Ip2AsnMap;
pub use rels::AsRelStore;
pub use trie::PrefixTrie;
