//! Criterion benches of the substrate layers: topology generation, policy
//! routing, path expansion, probing, and the statistical kernels.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use s2s_bench::{Scale, Scenario};
use s2s_routing::policy::{compute_routes, AllUp};
use s2s_stats::{diurnal_psd_ratio, edit_distance, GaussianKde, HeatMap};
use s2s_topology::{build_topology, TopologyParams};
use s2s_types::{ClusterId, Protocol, SimTime};
use std::hint::black_box;

fn bench_topology(c: &mut Criterion) {
    c.bench_function("topology/build_tiny", |b| {
        b.iter(|| build_topology(black_box(&TopologyParams::tiny(1))))
    });
    c.bench_function("topology/build_default", |b| {
        b.iter(|| build_topology(black_box(&TopologyParams::default())))
    });
}

fn bench_routing(c: &mut Criterion) {
    let topo = build_topology(&TopologyParams::default());
    c.bench_function("routing/compute_routes_one_dst", |b| {
        b.iter(|| compute_routes(black_box(&topo.as_adj), black_box(3), &AllUp, 0))
    });
    let scenario = Scenario::build(Scale::smoke());
    c.bench_function("routing/router_path_expansion", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            scenario.oracle.router_path(
                ClusterId::new((i % 20) as u32),
                ClusterId::new(((i + 7) % 20) as u32),
                Protocol::V4,
                SimTime::from_hours((i % 400) as u32),
                i,
            )
        })
    });
}

fn bench_probing(c: &mut Criterion) {
    let scenario = Scenario::build(Scale::smoke());
    c.bench_function("probe/paris_traceroute", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            s2s_probe::trace(
                &scenario.net,
                ClusterId::new((i % 20) as u32),
                ClusterId::new(((i + 3) % 20) as u32),
                Protocol::V4,
                SimTime::from_hours((i % 400) as u32),
                s2s_probe::TraceOptions::default(),
            )
        })
    });
    c.bench_function("probe/ping", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            scenario.net.ping(
                ClusterId::new((i % 20) as u32),
                ClusterId::new(((i + 3) % 20) as u32),
                Protocol::V4,
                SimTime::from_hours((i % 400) as u32),
                i,
            )
        })
    });
}

fn bench_stats(c: &mut Criterion) {
    // A week of 15-minute samples with a diurnal component — the §5.1 input.
    let series: Vec<f64> = (0..672)
        .map(|i| {
            50.0 + 20.0 * (2.0 * std::f64::consts::PI * i as f64 / 96.0).sin().max(0.0)
        })
        .collect();
    c.bench_function("stats/fft_psd_672", |b| {
        b.iter(|| diurnal_psd_ratio(black_box(&series), 96))
    });
    let a: Vec<u64> = (0..8).collect();
    let bb: Vec<u64> = (2..9).collect();
    c.bench_function("stats/edit_distance_as_paths", |b| {
        b.iter(|| edit_distance(black_box(&a), black_box(&bb)))
    });
    let sample: Vec<f64> = (0..500).map(|i| 20.0 + (i % 30) as f64).collect();
    c.bench_function("stats/kde_density_grid", |b| {
        b.iter_batched(
            || GaussianKde::new(sample.clone()).unwrap(),
            |kde| kde.grid(0.0, 100.0, 128),
            BatchSize::SmallInput,
        )
    });
    let points: Vec<(f64, f64)> =
        (0..5000).map(|i| ((i % 487) as f64, ((i * 13) % 997) as f64)).collect();
    c.bench_function("stats/heatmap_5000_points", |b| {
        b.iter(|| HeatMap::from_points(black_box(&points)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_topology, bench_routing, bench_probing, bench_stats
);
criterion_main!(benches);
