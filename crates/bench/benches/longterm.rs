//! Long-term campaign bench: sequential reference runner vs the
//! epoch-memoized, dst-batched, parallel runner.
//!
//! Times both runners over the same world and pair list, asserts the two
//! datasets are byte-identical (the tentpole invariant — the fast path is
//! only admissible because it changes nothing), and writes the timings to
//! `BENCH_longterm.json` at the repo root so CI can archive the trend.
//! A third timed pass reruns the fast path with a metrics registry
//! installed, so the JSON also records the observability overhead (the
//! instrumented run must stay byte-identical and within a few percent).
//!
//! Knobs:
//! * `S2S_BENCH_QUICK=1` — a smaller world and a single timing sample, for
//!   CI smoke runs (minutes → seconds).
//! * `S2S_THREADS` — worker threads for the parallel runner (the reference
//!   runner is single-threaded by construction).

use criterion::{criterion_group, criterion_main, Criterion};
use s2s_bench::{Scale, Scenario};
use s2s_probe::dataset::traceroute_to_line;
use s2s_probe::{Campaign, CampaignConfig, TraceOptions, TracerouteRecord};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn quick() -> bool {
    s2s_types::env::var_flag("S2S_BENCH_QUICK")
}

/// The bench world: the smoke scale, shrunk further under quick mode.
fn scale() -> Scale {
    let mut s = Scale::smoke();
    if quick() {
        s.clusters = 12;
        s.days = 10;
        s.pairs = 12;
    }
    s
}

struct BenchWorld {
    scenario: Scenario,
    pairs: Vec<(s2s_types::ClusterId, s2s_types::ClusterId)>,
    cfg: CampaignConfig,
}

fn world() -> BenchWorld {
    let scenario = Scenario::build(scale());
    let pairs = scenario.sample_pair_list(scenario.scale.pairs / 2, 0xBE);
    let cfg = CampaignConfig::long_term(scenario.scale.days);
    BenchWorld { scenario, pairs, cfg }
}

fn lines_reference(w: &BenchWorld) -> Vec<Vec<String>> {
    Campaign::new(w.cfg.clone())
        .reference()
        .run_traceroute_with(
            &w.scenario.net,
            &w.pairs,
            |_, _| TraceOptions::default(),
            |_, _, _| Vec::new(),
            |acc: &mut Vec<String>, rec: TracerouteRecord| acc.push(traceroute_to_line(&rec)),
        )
        .expect("in-memory campaign cannot fail")
        .0
}

fn lines_batched(w: &BenchWorld) -> Vec<Vec<String>> {
    Campaign::new(w.cfg.clone())
        .run_traceroute_with(
            &w.scenario.net,
            &w.pairs,
            |_, _| TraceOptions::default(),
            |_, _, _| Vec::new(),
            |acc: &mut Vec<String>, rec: TracerouteRecord| acc.push(traceroute_to_line(&rec)),
        )
        .expect("in-memory campaign cannot fail")
        .0
}

/// Medians a set of timed samples of `f`, returning (median, last result).
fn time_samples<T>(n: usize, mut f: impl FnMut() -> T) -> (Duration, T) {
    let mut samples = Vec::with_capacity(n);
    let mut out = None;
    for _ in 0..n.max(1) {
        let t = Instant::now();
        out = Some(f());
        samples.push(t.elapsed());
    }
    samples.sort_unstable();
    (samples[samples.len() / 2], out.unwrap())
}

fn bench_longterm(c: &mut Criterion) {
    let w = world();
    let samples = if quick() { 1 } else { 3 };

    let (t_ref, data_ref) = time_samples(samples, || lines_reference(&w));
    let (t_new, data_new) = time_samples(samples, || lines_batched(&w));
    assert_eq!(
        data_ref, data_new,
        "epoch-batched runner must serialize to the reference's exact bytes"
    );

    // Observability overhead: the same fast path with a live global
    // registry. Must change nothing about the dataset; the JSON records the
    // slowdown so a regression past the <3% budget shows up in the trend.
    let registry = Arc::new(s2s_obs::Registry::new());
    w.scenario.net.observe(&registry);
    s2s_obs::install(Arc::clone(&registry));
    let (t_obs, data_obs) = time_samples(samples, || lines_batched(&w));
    s2s_obs::uninstall();
    assert_eq!(
        data_ref, data_obs,
        "metrics-enabled runner must serialize to the reference's exact bytes"
    );
    let obs_overhead = t_obs.as_secs_f64() / t_new.as_secs_f64().max(1e-9) - 1.0;

    let cs = w.scenario.oracle.cache_stats();
    let speedup = t_ref.as_secs_f64() / t_new.as_secs_f64().max(1e-9);
    println!(
        "longterm: reference {t_ref:?}, epoch-batched {t_new:?} ({speedup:.2}x), \
         observed {t_obs:?} ({:+.1}% overhead), \
         {} epochs, {} epoch configs, cache {}h/{}m/{}e",
        100.0 * obs_overhead,
        w.scenario.oracle.dynamics().epoch_count(),
        cs.epoch_configs,
        cs.hits,
        cs.misses,
        cs.evictions
    );

    // Hand-rolled JSON: the offline criterion shim has no machine-readable
    // output, and this file is the artifact CI uploads. The `fullscale`
    // block is the recorded single-core 120-cluster/485-day run — the
    // committed `reproduce_fullscale.txt` (seed code, FIFO config cache,
    // per-probe routing) vs `reproduce_fullscale_after.txt` (this epoch
    // memo); both runners at bench scale share the memoized oracle, so the
    // in-process speedup here stays near 1x by design.
    let json = format!(
        "{{\n  \"bench\": \"longterm_campaign\",\n  \"quick\": {},\n  \
         \"clusters\": {},\n  \"days\": {},\n  \"directed_pairs\": {},\n  \
         \"threads\": {},\n  \"samples\": {},\n  \
         \"reference_seconds\": {:.6},\n  \"epoch_batched_seconds\": {:.6},\n  \
         \"speedup\": {:.3},\n  \"dataset_identical\": true,\n  \
         \"observed_seconds\": {:.6},\n  \"observability_overhead\": {:.4},\n  \
         \"observed_dataset_identical\": true,\n  \
         \"epochs\": {},\n  \"epoch_configs\": {},\n  \
         \"cache_hits\": {},\n  \"cache_misses\": {},\n  \"cache_evictions\": {},\n  \
         \"fullscale\": {{\n    \"clusters\": 120,\n    \"days\": 485,\n    \
         \"directed_pairs\": 1200,\n    \"cores\": 1,\n    \
         \"before_seconds\": 736.527,\n    \"after_seconds\": 104.206,\n    \
         \"speedup\": 7.07,\n    \
         \"before_log\": \"reproduce_fullscale.txt\",\n    \
         \"after_log\": \"reproduce_fullscale_after.txt\"\n  }}\n}}\n",
        quick(),
        w.scenario.scale.clusters,
        w.scenario.scale.days,
        w.pairs.len(),
        w.cfg.threads,
        samples,
        t_ref.as_secs_f64(),
        t_new.as_secs_f64(),
        speedup,
        t_obs.as_secs_f64(),
        obs_overhead,
        w.scenario.oracle.dynamics().epoch_count(),
        cs.epoch_configs,
        cs.hits,
        cs.misses,
        cs.evictions
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_longterm.json");
    std::fs::write(path, json).expect("write BENCH_longterm.json");
    println!("wrote {path}");

    // Also register the batched runner with the criterion harness so the
    // standard bench report includes it alongside the other groups.
    c.bench_function("longterm/epoch_batched_campaign", |b| b.iter(|| lines_batched(&w)));
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(2);
    targets = bench_longterm
);
criterion_main!(benches);
