//! Long-term campaign bench: sequential reference runner vs the
//! epoch-memoized, dst-batched, parallel runner.
//!
//! Times both runners over the same world and pair list, asserts the two
//! datasets are byte-identical (the tentpole invariant — the fast path is
//! only admissible because it changes nothing), and writes the timings to
//! `BENCH_longterm.json` at the repo root so CI can archive the trend.
//!
//! Knobs:
//! * `S2S_BENCH_QUICK=1` — a smaller world and a single timing sample, for
//!   CI smoke runs (minutes → seconds).
//! * `S2S_THREADS` — worker threads for the parallel runner (the reference
//!   runner is single-threaded by construction).

use criterion::{criterion_group, criterion_main, Criterion};
use s2s_bench::{Scale, Scenario};
use s2s_probe::dataset::traceroute_to_line;
use s2s_probe::{
    run_traceroute_campaign_reference, run_traceroute_campaign_with, CampaignConfig,
    TraceOptions, TracerouteRecord,
};
use std::time::{Duration, Instant};

fn quick() -> bool {
    std::env::var("S2S_BENCH_QUICK").map(|v| !v.trim().is_empty() && v != "0").unwrap_or(false)
}

/// The bench world: the smoke scale, shrunk further under quick mode.
fn scale() -> Scale {
    let mut s = Scale::smoke();
    if quick() {
        s.clusters = 12;
        s.days = 10;
        s.pairs = 12;
    }
    s
}

struct Campaign {
    scenario: Scenario,
    pairs: Vec<(s2s_types::ClusterId, s2s_types::ClusterId)>,
    cfg: CampaignConfig,
}

fn campaign() -> Campaign {
    let scenario = Scenario::build(scale());
    let pairs = scenario.sample_pair_list(scenario.scale.pairs / 2, 0xBE);
    let cfg = CampaignConfig::long_term(scenario.scale.days);
    Campaign { scenario, pairs, cfg }
}

fn lines_reference(c: &Campaign) -> Vec<Vec<String>> {
    run_traceroute_campaign_reference(
        &c.scenario.net,
        &c.pairs,
        &c.cfg,
        |_, _| TraceOptions::default(),
        |_, _, _| Vec::new(),
        |acc: &mut Vec<String>, rec: TracerouteRecord| acc.push(traceroute_to_line(&rec)),
    )
}

fn lines_batched(c: &Campaign) -> Vec<Vec<String>> {
    run_traceroute_campaign_with(
        &c.scenario.net,
        &c.pairs,
        &c.cfg,
        |_, _| TraceOptions::default(),
        |_, _, _| Vec::new(),
        |acc: &mut Vec<String>, rec: TracerouteRecord| acc.push(traceroute_to_line(&rec)),
    )
}

/// Medians a set of timed samples of `f`, returning (median, last result).
fn time_samples<T>(n: usize, mut f: impl FnMut() -> T) -> (Duration, T) {
    let mut samples = Vec::with_capacity(n);
    let mut out = None;
    for _ in 0..n.max(1) {
        let t = Instant::now();
        out = Some(f());
        samples.push(t.elapsed());
    }
    samples.sort_unstable();
    (samples[samples.len() / 2], out.unwrap())
}

fn bench_longterm(c: &mut Criterion) {
    let camp = campaign();
    let samples = if quick() { 1 } else { 3 };

    let (t_ref, data_ref) = time_samples(samples, || lines_reference(&camp));
    let (t_new, data_new) = time_samples(samples, || lines_batched(&camp));
    assert_eq!(
        data_ref, data_new,
        "epoch-batched runner must serialize to the reference's exact bytes"
    );
    let cs = camp.scenario.oracle.cache_stats();
    let speedup = t_ref.as_secs_f64() / t_new.as_secs_f64().max(1e-9);
    println!(
        "longterm: reference {t_ref:?}, epoch-batched {t_new:?} ({speedup:.2}x), \
         {} epochs, {} epoch configs, cache {}h/{}m/{}e",
        camp.scenario.oracle.dynamics().epoch_count(),
        cs.epoch_configs,
        cs.hits,
        cs.misses,
        cs.evictions
    );

    // Hand-rolled JSON: the offline criterion shim has no machine-readable
    // output, and this file is the artifact CI uploads. The `fullscale`
    // block is the recorded single-core 120-cluster/485-day run — the
    // committed `reproduce_fullscale.txt` (seed code, FIFO config cache,
    // per-probe routing) vs `reproduce_fullscale_after.txt` (this epoch
    // memo); both runners at bench scale share the memoized oracle, so the
    // in-process speedup here stays near 1x by design.
    let json = format!(
        "{{\n  \"bench\": \"longterm_campaign\",\n  \"quick\": {},\n  \
         \"clusters\": {},\n  \"days\": {},\n  \"directed_pairs\": {},\n  \
         \"threads\": {},\n  \"samples\": {},\n  \
         \"reference_seconds\": {:.6},\n  \"epoch_batched_seconds\": {:.6},\n  \
         \"speedup\": {:.3},\n  \"dataset_identical\": true,\n  \
         \"epochs\": {},\n  \"epoch_configs\": {},\n  \
         \"cache_hits\": {},\n  \"cache_misses\": {},\n  \"cache_evictions\": {},\n  \
         \"fullscale\": {{\n    \"clusters\": 120,\n    \"days\": 485,\n    \
         \"directed_pairs\": 1200,\n    \"cores\": 1,\n    \
         \"before_seconds\": 736.527,\n    \"after_seconds\": 104.206,\n    \
         \"speedup\": 7.07,\n    \
         \"before_log\": \"reproduce_fullscale.txt\",\n    \
         \"after_log\": \"reproduce_fullscale_after.txt\"\n  }}\n}}\n",
        quick(),
        camp.scenario.scale.clusters,
        camp.scenario.scale.days,
        camp.pairs.len(),
        camp.cfg.threads,
        samples,
        t_ref.as_secs_f64(),
        t_new.as_secs_f64(),
        speedup,
        camp.scenario.oracle.dynamics().epoch_count(),
        cs.epoch_configs,
        cs.hits,
        cs.misses,
        cs.evictions
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_longterm.json");
    std::fs::write(path, json).expect("write BENCH_longterm.json");
    println!("wrote {path}");

    // Also register the batched runner with the criterion harness so the
    // standard bench report includes it alongside the other groups.
    c.bench_function("longterm/epoch_batched_campaign", |b| b.iter(|| lines_batched(&camp)));
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(2);
    targets = bench_longterm
);
criterion_main!(benches);
