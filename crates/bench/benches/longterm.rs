//! Long-term campaign bench: sequential reference runner vs the
//! epoch-memoized, dst-batched, parallel runner — plus the analysis plane,
//! legacy record-at-a-time vs columnar.
//!
//! Times both runners over the same world and pair list, asserts the two
//! datasets are byte-identical (the tentpole invariant — the fast path is
//! only admissible because it changes nothing), and writes the timings to
//! `BENCH_longterm.json` at the repo root so CI can archive the trend.
//! A third timed pass reruns the fast path with a metrics registry
//! installed, so the JSON also records the observability overhead (the
//! instrumented run must stay byte-identical and within a few percent).
//! The `analysis` section times the same corpus through the legacy
//! `TimelineBuilder` path and the columnar `TraceStore` path (single- and
//! multi-threaded), records arena vs serialized dataset bytes and the hop
//! dedup ratio, and times the line importer. The `persistence` section
//! writes the corpus as a binary columnar snapshot and races reopening it
//! against rebuilding the store from archived lines — digests asserted
//! identical, open-vs-import speedup asserted >= 10x, write GB/s
//! recorded. The `shortterm` section runs
//! the §5 ping mesh through a streaming `PairProfileSink` at two window
//! lengths: it records throughput, shows sink state staying flat while
//! the materialized plane doubles, and asserts streamed-vs-exact
//! congestion classification agreement (>= 99%).
//!
//! Knobs:
//! * `S2S_BENCH_QUICK=1` — a smaller world and a single timing sample, for
//!   CI smoke runs (minutes → seconds).
//! * `S2S_THREADS` — worker threads for the parallel runner and the
//!   columnar analysis shards (the reference runner and the legacy
//!   analysis path are single-threaded by construction).

use criterion::{criterion_group, criterion_main, Criterion};
use s2s_bench::{Scale, Scenario};
use s2s_core::congestion::DetectParams;
use s2s_core::Analysis;
use s2s_core::timeline::{TimelineBuilder, TraceTimeline};
use s2s_probe::dataset::{traceroute_from_line, traceroute_to_line};
use s2s_probe::{
    Campaign, CampaignConfig, PairProfile, PairProfileSink, PingTimeline, TraceOptions,
    TraceStore, TracerouteRecord,
};
use s2s_types::{Protocol, SimDuration, SimTime};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn quick() -> bool {
    s2s_types::env::var_flag("S2S_BENCH_QUICK")
}

/// The bench world: the smoke scale, shrunk further under quick mode.
fn scale() -> Scale {
    let mut s = Scale::smoke();
    if quick() {
        s.clusters = 12;
        s.days = 10;
        s.pairs = 12;
    }
    s
}

struct BenchWorld {
    scenario: Scenario,
    pairs: Vec<(s2s_types::ClusterId, s2s_types::ClusterId)>,
    cfg: CampaignConfig,
}

fn world() -> BenchWorld {
    let scenario = Scenario::build(scale());
    let pairs = scenario.sample_pair_list(scenario.scale.pairs / 2, 0xBE);
    let cfg = CampaignConfig::long_term(scenario.scale.days);
    BenchWorld { scenario, pairs, cfg }
}

fn lines_reference(w: &BenchWorld) -> Vec<Vec<String>> {
    Campaign::new(w.cfg.clone())
        .reference()
        .run_traceroute_with(
            &w.scenario.net,
            &w.pairs,
            |_, _| TraceOptions::default(),
            |_, _, _| Vec::new(),
            |acc: &mut Vec<String>, rec: TracerouteRecord| acc.push(traceroute_to_line(&rec)),
        )
        .expect("in-memory campaign cannot fail")
        .0
}

fn lines_batched(w: &BenchWorld) -> Vec<Vec<String>> {
    Campaign::new(w.cfg.clone())
        .run_traceroute_with(
            &w.scenario.net,
            &w.pairs,
            |_, _| TraceOptions::default(),
            |_, _, _| Vec::new(),
            |acc: &mut Vec<String>, rec: TracerouteRecord| acc.push(traceroute_to_line(&rec)),
        )
        .expect("in-memory campaign cannot fail")
        .0
}

/// Medians a set of timed samples of `f`, returning (median, last result).
fn time_samples<T>(n: usize, mut f: impl FnMut() -> T) -> (Duration, T) {
    let mut samples = Vec::with_capacity(n);
    let mut out = None;
    for _ in 0..n.max(1) {
        let t = Instant::now();
        out = Some(f());
        samples.push(t.elapsed());
    }
    samples.sort_unstable();
    (samples[samples.len() / 2], out.unwrap())
}

/// The corpus for the analysis bench: the campaign's records grouped per
/// (pair, protocol) accumulator, exactly what the legacy builders consume.
fn record_groups(w: &BenchWorld) -> Vec<Vec<TracerouteRecord>> {
    Campaign::new(w.cfg.clone())
        .run_traceroute_with(
            &w.scenario.net,
            &w.pairs,
            |_, _| TraceOptions::default(),
            |_, _, _| Vec::new(),
            |acc: &mut Vec<TracerouteRecord>, rec| acc.push(rec),
        )
        .expect("in-memory campaign cannot fail")
        .0
}

/// The legacy analysis path: annotate record-by-record into streaming
/// builders, one per group. Consumes its input (`push` takes records by
/// value), so callers pre-clone per timing sample to keep the clone out of
/// the measurement.
fn legacy_analyze(
    groups: Vec<Vec<TracerouteRecord>>,
    map: &s2s_bgp::Ip2AsnMap,
) -> Vec<TraceTimeline> {
    groups
        .into_iter()
        .filter(|g| !g.is_empty())
        .map(|g| {
            let mut b = TimelineBuilder::new(g[0].src, g[0].dst, g[0].proto, map);
            for r in g {
                b.push(r);
            }
            b.finish()
        })
        .collect()
}

fn bench_longterm(c: &mut Criterion) {
    let w = world();
    let samples = if quick() { 1 } else { 3 };

    let (t_ref, data_ref) = time_samples(samples, || lines_reference(&w));
    let (t_new, data_new) = time_samples(samples, || lines_batched(&w));
    assert_eq!(
        data_ref, data_new,
        "epoch-batched runner must serialize to the reference's exact bytes"
    );

    // Observability overhead: the same fast path with a live global
    // registry. Must change nothing about the dataset; the JSON records the
    // slowdown so a regression past the <3% budget shows up in the trend.
    let registry = Arc::new(s2s_obs::Registry::new());
    w.scenario.net.observe(&registry);
    s2s_obs::install(Arc::clone(&registry));
    let (t_obs, data_obs) = time_samples(samples, || lines_batched(&w));
    s2s_obs::uninstall();
    assert_eq!(
        data_ref, data_obs,
        "metrics-enabled runner must serialize to the reference's exact bytes"
    );
    // The raw ratio is a delta of two noisy single-core medians and lands
    // negative about half the time when the true overhead is below the
    // noise floor — report it as-is for the trend, plus a clamped field
    // that never claims a speedup the instrumentation cannot cause.
    let obs_overhead_raw = t_obs.as_secs_f64() / t_new.as_secs_f64().max(1e-9) - 1.0;
    let obs_overhead = obs_overhead_raw.max(0.0);

    let cs = w.scenario.oracle.cache_stats();
    let speedup = t_ref.as_secs_f64() / t_new.as_secs_f64().max(1e-9);
    println!(
        "longterm: reference {t_ref:?}, epoch-batched {t_new:?} ({speedup:.2}x), \
         observed {t_obs:?} ({:+.1}% raw overhead, {:.1}% clamped), \
         {} epochs, {} epoch configs, cache {}h/{}m/{}e",
        100.0 * obs_overhead_raw,
        100.0 * obs_overhead,
        w.scenario.oracle.dynamics().epoch_count(),
        cs.epoch_configs,
        cs.hits,
        cs.misses,
        cs.evictions
    );

    // ---- Analysis plane: legacy record-at-a-time vs columnar ----
    let groups = record_groups(&w);
    let map = &w.scenario.ip2asn;
    let analysis_samples = if quick() { 3 } else { 5 };

    // Pre-clone one input set per timing sample so the legacy side's
    // by-value `push` doesn't charge the clone to the measurement.
    let mut inputs: Vec<Vec<Vec<TracerouteRecord>>> =
        (0..analysis_samples).map(|_| groups.clone()).collect();
    let (t_legacy, legacy_tls) =
        time_samples(analysis_samples, || legacy_analyze(inputs.pop().unwrap(), map));

    let (t_build, store) = time_samples(analysis_samples, || {
        let mut st = TraceStore::new();
        for g in &groups {
            for r in g {
                st.push(r);
            }
        }
        st
    });
    let (t_columnar, columnar_tls) =
        time_samples(analysis_samples, || Analysis::new(&store).threads(1).timelines(map));
    let threads = s2s_probe::env::threads();
    let (t_mt, mt_tls) =
        time_samples(analysis_samples, || Analysis::new(&store).threads(threads).timelines(map));
    assert_eq!(
        format!("{legacy_tls:?}"),
        format!("{columnar_tls:?}"),
        "columnar analysis must reproduce the legacy timelines byte-for-byte"
    );
    assert_eq!(
        format!("{legacy_tls:?}"),
        format!("{mt_tls:?}"),
        "multi-threaded columnar analysis must be byte-identical too"
    );

    let stats = store.stats();
    let serialized_bytes: usize = groups
        .iter()
        .flatten()
        .map(|r| traceroute_to_line(r).len() + 1)
        .sum();
    let bytes_ratio = serialized_bytes as f64 / stats.arena_bytes.max(1) as f64;
    let columnar_total = t_build + t_columnar;
    let analysis_speedup =
        t_legacy.as_secs_f64() / t_columnar.as_secs_f64().max(1e-9);
    let total_speedup =
        t_legacy.as_secs_f64() / columnar_total.as_secs_f64().max(1e-9);

    // Importer micro-bench: the single-pass `|`-split parser over the full
    // serialized corpus (it used to collect a per-line field vector).
    let all_lines: Vec<String> =
        groups.iter().flatten().map(traceroute_to_line).collect();
    let (t_import, parsed) = time_samples(analysis_samples, || {
        let mut n = 0usize;
        for (i, l) in all_lines.iter().enumerate() {
            std::hint::black_box(
                traceroute_from_line(l, i + 1).expect("own output parses"),
            );
            n += 1;
        }
        n
    });
    assert_eq!(parsed, all_lines.len());
    let ns_per_line = t_import.as_nanos() as f64 / all_lines.len().max(1) as f64;

    // ---- Persistence: binary snapshot vs line re-import ----
    //
    // The durable-form race: reopening the columnar snapshot
    // (O(distinct-data) bulk loads + index rebuild) against rebuilding the
    // store from its archived lines (parse + re-intern per record). Both
    // paths must land on byte-identical stores — asserted via the dataset
    // digest and a full record comparison — and the snapshot must win by
    // at least 10x, or persistence isn't paying for its format.
    //
    // The corpus is the campaign's records replicated up to ~40k traces:
    // quick mode shrinks the world so far that fixed open costs (file
    // open, segment headers, intern-index rebuild) would mask the
    // per-trace asymptotics the format exists for. Replication adds
    // traces without adding distinct data — the regime the paper's
    // multi-billion-trace corpus lives in (and what the full-scale world
    // measures without any replication).
    let repeat = (40_000 / all_lines.len().max(1)).max(1);
    let campaign_records = store.to_records();
    let mut persist_store = TraceStore::new();
    for _ in 0..repeat {
        for r in &campaign_records {
            persist_store.push(r);
        }
    }
    let persist_lines: Vec<&String> =
        std::iter::repeat_n(&all_lines, repeat).flatten().collect();
    let persist_stats = persist_store.stats();
    let snap_path = std::env::temp_dir()
        .join(format!("s2s-bench-snapshot-{}.snap", std::process::id()));
    let (t_snap_write, snap_bytes) = time_samples(analysis_samples, || {
        s2s_probe::snapshot::write_file(&snap_path, &persist_store, &[])
            .expect("write snapshot")
    });
    let write_gbps = snap_bytes as f64 / t_snap_write.as_secs_f64().max(1e-9) / 1e9;
    let (t_snap_open, reopened) = time_samples(analysis_samples, || {
        s2s_probe::snapshot::open_file(&snap_path).expect("reopen snapshot")
    });
    let _ = std::fs::remove_file(&snap_path);
    let (t_line_import, imported_store) = time_samples(analysis_samples, || {
        let mut st = TraceStore::new();
        for (i, l) in persist_lines.iter().enumerate() {
            st.push(&traceroute_from_line(l, i + 1).expect("own output parses"));
        }
        st
    });
    let open_digest = s2s_bench::fabric::store_digest(&reopened.store);
    let import_digest = s2s_bench::fabric::store_digest(&imported_store);
    assert_eq!(
        open_digest, import_digest,
        "reopened snapshot must be byte-identical to the line re-import"
    );
    assert_eq!(
        reopened.store.to_records(),
        persist_store.to_records(),
        "snapshot round trip must reproduce the saved records exactly"
    );
    let open_vs_import =
        t_line_import.as_secs_f64() / t_snap_open.as_secs_f64().max(1e-9);
    assert!(
        open_vs_import >= 10.0,
        "snapshot open must beat the line re-import by >= 10x \
         (got {open_vs_import:.1}x: open {t_snap_open:?} vs import {t_line_import:?})"
    );
    println!(
        "persistence: {} traces ({} campaign x{repeat}), snapshot {snap_bytes} B; \
         write {t_snap_write:?} ({write_gbps:.2} GB/s), open {t_snap_open:?} vs \
         line import {t_line_import:?} ({open_vs_import:.1}x), digests identical",
        persist_stats.traces, stats.traces
    );

    // ---- Out-of-core streaming: flat residency + streamed analysis ----
    //
    // The streamed read path's claim is O(arena + one block) residency no
    // matter how many traces the snapshot holds. Measured directly: stream
    // the persistence corpus and a 2x replica at a fixed block/budget and
    // assert the reader's peak resident bytes stay within 20% of the
    // one-block floor (arena + first batch) and do not grow with the
    // corpus, while the materialized store grows linearly with it. The
    // streamed analysis front door must also produce byte-identical
    // timelines within 1.5x of the in-memory (materialize-then-analyze)
    // pipeline over the same file.
    let ooc_block = 512usize;
    let mut persist_store2 = TraceStore::new();
    for _ in 0..2 * repeat {
        for r in &campaign_records {
            persist_store2.push(r);
        }
    }
    let persist2_stats = persist_store2.stats();
    let write_ooc = |st: &TraceStore, tag: &str| {
        let path = std::env::temp_dir()
            .join(format!("s2s-bench-ooc-{tag}-{}.snap", std::process::id()));
        let mut f = std::io::BufWriter::new(
            std::fs::File::create(&path).expect("create snapshot"),
        );
        s2s_probe::snapshot::write(&mut f, st, &[], ooc_block).expect("write snapshot");
        std::io::Write::flush(&mut f).expect("flush snapshot");
        path
    };
    let small_path = write_ooc(&persist_store, "small");
    let large_path = write_ooc(&persist_store2, "large");
    let ooc_options =
        s2s_probe::Snapshot::options().stream(true).block_budget(ooc_block);
    let stream_peak = |path: &std::path::Path| {
        let mut reader = ooc_options.open(path).expect("open streamed");
        let mut floor = 0usize;
        let mut traces = 0usize;
        while let Some(batch) = reader.next_batch().expect("streamed batch") {
            traces += batch.len();
            if floor == 0 {
                floor = reader.resident_bytes();
            }
        }
        (reader.peak_resident_bytes(), floor, traces)
    };
    let (peak_small, ooc_floor, n_small) = stream_peak(&small_path);
    let (peak_large, _, n_large) = stream_peak(&large_path);
    assert_eq!(n_small, persist_stats.traces);
    assert_eq!(n_large, persist2_stats.traces);
    let peak_over_floor = peak_small as f64 / ooc_floor.max(1) as f64;
    assert!(
        peak_over_floor <= 1.2,
        "streamed peak residency must stay within 1.2x of the one-block floor \
         (got {peak_over_floor:.3}: peak {peak_small} B vs floor {ooc_floor} B)"
    );
    assert!(
        peak_large as f64 <= 1.2 * peak_small as f64,
        "streamed peak residency must not grow with the corpus \
         (2x corpus: {peak_large} B vs {peak_small} B)"
    );
    let ooc_growth =
        persist2_stats.arena_bytes as f64 / persist_stats.arena_bytes.max(1) as f64;
    assert!(
        ooc_growth >= 1.5,
        "the materialized store must grow with the corpus \
         ({} B -> {} B, {ooc_growth:.2}x)",
        persist_stats.arena_bytes,
        persist2_stats.arena_bytes
    );
    // Both contenders start from the file on disk: materialize-then-analyze
    // (full open, index rebuild, columnar pass) vs the fused streaming
    // front door (decode and analyze per batch, no index rebuild).
    let (t_ooc_inmem, ooc_inmem_tls) = time_samples(analysis_samples, || {
        let snap =
            s2s_probe::snapshot::open_file(&small_path).expect("reopen snapshot");
        Analysis::new(&snap).threads(1).timelines(map)
    });
    let (t_ooc_streamed, ooc_streamed_tls) = time_samples(analysis_samples, || {
        let reader = ooc_options.open(&small_path).expect("open streamed");
        Analysis::new(reader).timelines(map).expect("streamed analysis")
    });
    let _ = std::fs::remove_file(&small_path);
    let _ = std::fs::remove_file(&large_path);
    assert_eq!(
        format!("{ooc_inmem_tls:?}"),
        format!("{ooc_streamed_tls:?}"),
        "streamed analysis must be byte-identical to the in-memory pass"
    );
    let streamed_vs_in_memory =
        t_ooc_streamed.as_secs_f64() / t_ooc_inmem.as_secs_f64().max(1e-9);
    assert!(
        streamed_vs_in_memory <= 1.5,
        "streamed analysis must stay within 1.5x of in-memory \
         (got {streamed_vs_in_memory:.2}x: {t_ooc_streamed:?} vs {t_ooc_inmem:?})"
    );
    println!(
        "out-of-core: peak {peak_small} B vs one-block floor {ooc_floor} B \
         ({peak_over_floor:.3}x), 2x-corpus peak {peak_large} B; materialized \
         {} B -> {} B ({ooc_growth:.2}x); streamed analysis {t_ooc_streamed:?} \
         vs in-memory {t_ooc_inmem:?} ({streamed_vs_in_memory:.2}x), identical",
        persist_stats.arena_bytes, persist2_stats.arena_bytes
    );

    println!(
        "analysis: legacy {t_legacy:?}, columnar {t_columnar:?} \
         ({analysis_speedup:.2}x; {total_speedup:.2}x incl. {t_build:?} store build), \
         {threads} threads {t_mt:?}; arena {} B vs {serialized_bytes} B serialized \
         ({bytes_ratio:.2}x), dedup {:.2}x ({} addrs, {} hop seqs, {} traces); \
         importer {t_import:?} ({ns_per_line:.0} ns/line)",
        stats.arena_bytes, stats.dedup_ratio, stats.distinct_addrs,
        stats.distinct_seqs, stats.traces
    );

    // ---- Short-term plane: streaming sinks vs materialized timelines ----
    //
    // The §5 ping mesh at two window lengths over the *same* pairs: the
    // materialized representation doubles with the sample count while the
    // sink state (sketch + moments + diurnal ring + spectrum) must not —
    // that flatness is the constant-memory claim, recorded and asserted
    // here. The long window also pins streamed-vs-exact classification
    // agreement.
    let ping_pairs =
        w.scenario.sample_pair_list(if quick() { 16 } else { 60 }, 0x5EC5);
    let (short_days, long_days) = (7u32, 14u32);
    let mk_ping_cfg = |days: u32| CampaignConfig {
        start: SimTime::T0,
        end: SimTime::from_days(days),
        interval: SimDuration::from_minutes(15),
        protocols: vec![Protocol::V4],
        threads: s2s_probe::env::threads(),
    };
    let run_sink = |cfg: &CampaignConfig| {
        Campaign::new(cfg.clone())
            .sink(PairProfileSink::for_config(cfg))
            .run_ping(&w.scenario.net, &ping_pairs)
            .expect("in-memory campaign cannot fail")
    };
    let run_materialized = |cfg: &CampaignConfig| {
        Campaign::new(cfg.clone())
            .run_ping(&w.scenario.net, &ping_pairs)
            .expect("in-memory campaign cannot fail")
            .0
    };
    let (cfg_short, cfg_long) = (mk_ping_cfg(short_days), mk_ping_cfg(long_days));
    let (t_sink, (profiles_long, sink_report)) =
        time_samples(samples, || run_sink(&cfg_long));
    let (profiles_short, _) = run_sink(&cfg_short);
    let tls_long = run_materialized(&cfg_long);
    let tls_short = run_materialized(&cfg_short);

    let sink_bytes = |ps: &[PairProfile]| -> usize {
        ps.iter().map(|p| p.memory_bytes()).sum()
    };
    let materialized_bytes = |tls: &[PingTimeline]| -> usize {
        tls.iter()
            .map(|t| std::mem::size_of::<PingTimeline>() + 4 * t.rtts.len())
            .sum()
    };
    let (sink_short, sink_long) = (sink_bytes(&profiles_short), sink_bytes(&profiles_long));
    let (mat_short, mat_long) =
        (materialized_bytes(&tls_short), materialized_bytes(&tls_long));
    let sink_growth = sink_long as f64 / sink_short.max(1) as f64;
    let mat_growth = mat_long as f64 / mat_short.max(1) as f64;
    assert!(
        mat_growth > 1.5,
        "doubling the window must grow the materialized plane (got {mat_growth:.2}x)"
    );
    assert!(
        sink_growth < 1.10,
        "sink state must be independent of the sample count \
         (got {sink_growth:.2}x over a {mat_growth:.2}x materialized growth)"
    );

    let params = DetectParams::default();
    let exact = Analysis::new(tls_long.as_slice()).congestion(&params);
    let streamed = Analysis::new(profiles_long.as_slice()).congestion(&params);
    assert_eq!(exact.len(), streamed.len());
    let agreeing = exact
        .iter()
        .zip(&streamed)
        .filter(|(a, b)| match (a, b) {
            (None, None) => true,
            (Some(x), Some(y)) => x.consistent == y.consistent,
            _ => false,
        })
        .count();
    let streamed_exact_agreement = agreeing as f64 / exact.len().max(1) as f64;
    assert!(
        streamed_exact_agreement >= 0.99,
        "streamed classification must agree with the exact path on >= 99% \
         of pairs (got {streamed_exact_agreement:.4})"
    );

    let sink_throughput =
        sink_report.offered as f64 / t_sink.as_secs_f64().max(1e-9);
    println!(
        "shortterm: {} pairs, sink run {t_sink:?} ({sink_throughput:.0} samples/s); \
         sink {sink_short} -> {sink_long} B ({sink_growth:.2}x) vs \
         materialized {mat_short} -> {mat_long} B ({mat_growth:.2}x) over \
         {short_days} -> {long_days} days; streamed/exact agreement \
         {:.2}%",
        ping_pairs.len(),
        100.0 * streamed_exact_agreement
    );

    // ---- Scale-out fabric: subprocess sharding vs one process ----
    //
    // The same long-term collection through the crash-tolerant fabric
    // (2 worker subprocesses of the `reproduce` binary) against the
    // in-process path: asserts byte-identity of the merged dataset,
    // records the merge/coordination overhead, then reruns under a
    // seeded kill+crash schedule and records the recovery latency.
    let fabric_workers = 2usize;
    let worker_envs: Vec<(String, String)> = vec![
        ("S2S_SEED".into(), w.scenario.scale.seed.to_string()),
        ("S2S_CLUSTERS".into(), w.scenario.scale.clusters.to_string()),
        ("S2S_DAYS".into(), w.scenario.scale.days.to_string()),
        ("S2S_PAIRS".into(), w.scenario.scale.pairs.to_string()),
        ("S2S_PING_PAIRS".into(), w.scenario.scale.ping_pairs.to_string()),
        ("S2S_CONG_PAIRS".into(), w.scenario.scale.cong_pairs.to_string()),
        ("S2S_THREADS".into(), threads.to_string()),
    ];
    let run_fabric = |plan: &str| {
        let ckpt = std::env::temp_dir()
            .join(format!("s2s-bench-fabric-{}", std::process::id()));
        std::fs::create_dir_all(&ckpt).expect("fabric checkpoint dir");
        let mut envs = worker_envs.clone();
        if !plan.is_empty() {
            envs.push(("S2S_FABRIC_FAULT_PLAN".into(), plan.to_string()));
        }
        let launcher = s2s_bench::fabric::worker_launcher(
            std::path::PathBuf::from(env!("CARGO_BIN_EXE_reproduce")),
            vec!["worker".to_string()],
            "longterm",
            fabric_workers,
            &ckpt,
            envs,
        );
        let cfg = s2s_probe::FabricConfig {
            workers: fabric_workers,
            ..s2s_probe::FabricConfig::default()
        };
        let out = s2s_bench::fabric::collect_longterm_fabric(&w.scenario, cfg, launcher)
            .expect("fabric collection");
        let _ = std::fs::remove_dir_all(&ckpt);
        out
    };
    let t = Instant::now();
    let (_, base_digest, _) = s2s_bench::fabric::collect_longterm_digest(
        &w.scenario,
        &s2s_probe::FaultProfile::default(),
    );
    let t_one_process = t.elapsed();
    let t = Instant::now();
    let fabric_clean = run_fabric("");
    let t_fabric = t.elapsed();
    assert_eq!(
        fabric_clean.digest, base_digest,
        "fabric dataset must be byte-identical to one process"
    );
    assert_eq!(fabric_clean.outcome.stats.lost, 0);
    let fabric_recovered = run_fabric("kill@0.1=1;exit@1.1");
    assert_eq!(
        fabric_recovered.digest, base_digest,
        "crash-recovered fabric dataset must be byte-identical to one process"
    );
    assert!(fabric_recovered.outcome.stats.recoveries >= 2);
    let fabric_overhead =
        t_fabric.as_secs_f64() / t_one_process.as_secs_f64().max(1e-9) - 1.0;
    let rec_stats = &fabric_recovered.outcome.stats;
    println!(
        "fabric: one process {t_one_process:?}, {fabric_workers} workers {t_fabric:?} \
         ({:+.1}% overhead, merge {:.1} ms); kill+crash schedule: {} retries, \
         {} recoveries, recovery latency {:.1} ms, dataset identical",
        100.0 * fabric_overhead,
        fabric_clean.outcome.stats.merge_ms,
        rec_stats.retries,
        rec_stats.recoveries,
        rec_stats.recovery_ms
    );

    // ---- Always-on service: the epoch-incremental path must land on the
    // batch bytes, one `update(delta)` must cost far less than a batch
    // recompute, and per-pair queries must answer in O(pair state). ----
    let svc_map = &*w.scenario.ip2asn;
    let (svc_batch_store, svc_batch_digest, _, _) = s2s_bench::service::batch_baseline(
        &w.scenario,
        &s2s_probe::FaultProfile::default(),
        &s2s_probe::RetryPolicy::default(),
    );
    let svc_cfg = s2s_bench::service::ServiceConfig {
        cadence_ms: 0,
        snap_every: usize::MAX,
        query_budget: usize::MAX,
        snapshot_path: None,
        profile: s2s_probe::FaultProfile::default(),
        retry: s2s_probe::RetryPolicy::default(),
    };
    let t = Instant::now();
    let mut svc = s2s_bench::service::Service::new(&w.scenario, svc_cfg);
    while svc.advance() {}
    let t_service_full = t.elapsed();
    assert_eq!(
        svc.digest(),
        svc_batch_digest,
        "service epoch sweep must be byte-identical to the batch campaign"
    );
    // Batch recompute: timelines plus both §4 verdict families from
    // scratch — what the service's folded state replaces per query.
    let (t_batch_recompute, _) = time_samples(samples, || {
        let tls = Analysis::new(&svc_batch_store).threads(1).timelines(svc_map);
        let ch: Vec<_> = tls.iter().map(s2s_core::changes::detect_changes).collect();
        let ps: Vec<_> = tls
            .iter()
            .map(|tl| s2s_core::changes::path_stats(tl, SimDuration::from_hours(3)))
            .collect();
        (tls.len(), ch.len(), ps.len())
    });
    // One-epoch update cost: fold everything but the last epoch's worth of
    // records, then time absorbing that final delta into the live state.
    let svc_records = svc_batch_store.to_records();
    let svc_epochs = CampaignConfig::long_term(w.scenario.scale.days).n_samples();
    let svc_slots = svc_records.len() / svc_epochs.max(1);
    let (head, tail) = svc_records.split_at(svc_records.len() - svc_slots);
    let mut pre = Analysis::new(s2s_core::IncrementalState::new());
    pre.update(&TraceStore::from_records(head), svc_map);
    let pre_state = pre.source().clone();
    let last_delta = TraceStore::from_records(tail);
    let t_update = {
        let mut samples_v = Vec::new();
        for _ in 0..samples.max(1) {
            let mut a = Analysis::new(pre_state.clone());
            let t = Instant::now();
            a.update(&last_delta, svc_map);
            samples_v.push(t.elapsed());
        }
        samples_v.sort_unstable();
        samples_v[samples_v.len() / 2]
    };
    let batch_over_update =
        t_batch_recompute.as_secs_f64() / t_update.as_secs_f64().max(1e-12);
    assert!(
        batch_over_update >= 2.0,
        "one-epoch update ({t_update:?}) must be far cheaper than a batch \
         recompute ({t_batch_recompute:?}), got {batch_over_update:.1}x"
    );
    // Query latency over the live state: every pair, all four per-pair
    // families plus stats — each answer reads pair state, never the corpus.
    let svc_pairs = s2s_bench::fabric::longterm_pairs(&w.scenario);
    let mut svc_queries = 0u64;
    let t = Instant::now();
    for &(s, d) in &svc_pairs {
        for q in [
            format!("pair {} {} v4", s.index(), d.index()),
            format!("diurnal {} {} v4", s.index(), d.index()),
            format!("changes {} {} v6", s.index(), d.index()),
            format!("advice {} {}", s.index(), d.index()),
            "stats".to_string(),
        ] {
            let a = svc.answer(&q);
            assert!(a.starts_with("ok"), "query '{q}' failed: {a}");
            svc_queries += 1;
        }
    }
    let t_queries = t.elapsed();
    let query_seconds = t_queries.as_secs_f64() / svc_queries.max(1) as f64;
    let ns_per_query = t_queries.as_nanos() as f64 / svc_queries.max(1) as f64;
    let batch_over_query = t_batch_recompute.as_secs_f64() / query_seconds.max(1e-12);
    assert!(
        batch_over_query >= 10.0,
        "a per-pair query ({ns_per_query:.0} ns) must be orders cheaper than \
         an O(corpus) recompute ({t_batch_recompute:?}), got {batch_over_query:.1}x"
    );
    println!(
        "service: {svc_epochs} epochs × {svc_slots} slots folded in \
         {t_service_full:?}, dataset identical; one-epoch update {t_update:?} vs \
         batch recompute {t_batch_recompute:?} ({batch_over_update:.1}x); \
         {svc_queries} queries at {ns_per_query:.0} ns each ({batch_over_query:.0}x \
         cheaper than recompute)"
    );

    // Hand-rolled JSON: the offline criterion shim has no machine-readable
    // output, and this file is the artifact CI uploads. The `fullscale`
    // block is the recorded single-core 120-cluster/485-day run — the
    // committed `reproduce_fullscale.txt` (seed code, FIFO config cache,
    // per-probe routing) vs `reproduce_fullscale_after.txt` (this epoch
    // memo); both runners at bench scale share the memoized oracle, so the
    // in-process speedup here stays near 1x by design.
    let json = format!(
        "{{\n  \"bench\": \"longterm_campaign\",\n  \"quick\": {},\n  \
         \"clusters\": {},\n  \"days\": {},\n  \"directed_pairs\": {},\n  \
         \"threads\": {},\n  \"samples\": {},\n  \
         \"reference_seconds\": {:.6},\n  \"epoch_batched_seconds\": {:.6},\n  \
         \"speedup\": {:.3},\n  \"dataset_identical\": true,\n  \
         \"observed_seconds\": {:.6},\n  \
         \"observability_overhead_raw\": {:.4},\n  \
         \"observability_overhead\": {:.4},\n  \
         \"observability_overhead_note\": \"raw is a delta of two noisy \
         single-core medians and can dip below zero when the true overhead \
         is under the noise floor; the clamped field floors it at 0\",\n  \
         \"observed_dataset_identical\": true,\n  \
         \"epochs\": {},\n  \"epoch_configs\": {},\n  \
         \"cache_hits\": {},\n  \"cache_misses\": {},\n  \"cache_evictions\": {},\n  \
         \"analysis\": {{\n    \"samples\": {},\n    \
         \"legacy_seconds\": {:.6},\n    \
         \"store_build_seconds\": {:.6},\n    \
         \"columnar_seconds\": {:.6},\n    \
         \"columnar_total_seconds\": {:.6},\n    \
         \"single_thread_speedup\": {:.3},\n    \
         \"total_speedup\": {:.3},\n    \
         \"threads\": {},\n    \"mt_seconds\": {:.6},\n    \
         \"timelines\": {},\n    \"identical\": true,\n    \
         \"traces\": {},\n    \"distinct_addrs\": {},\n    \
         \"distinct_hop_sequences\": {},\n    \"hop_slots\": {},\n    \
         \"dedup_ratio\": {:.3},\n    \
         \"serialized_record_bytes\": {},\n    \"arena_bytes\": {},\n    \
         \"bytes_ratio\": {:.3},\n    \
         \"importer\": {{\n      \"lines\": {},\n      \
         \"seconds\": {:.6},\n      \"ns_per_line\": {:.1}\n    }}\n  }},\n  \
         \"persistence\": {{\n    \"traces\": {},\n    \
         \"snapshot_bytes\": {},\n    \
         \"write_seconds\": {:.6},\n    \"write_gbps\": {:.3},\n    \
         \"open_seconds\": {:.6},\n    \"import_seconds\": {:.6},\n    \
         \"open_vs_import_speedup\": {:.1},\n    \
         \"digest_identical\": true,\n    \
         \"roundtrip_identical\": true,\n    \
         \"out_of_core\": {{\n      \
         \"streamed_peak_bytes\": {},\n      \
         \"one_block_floor_bytes\": {},\n      \
         \"peak_over_floor\": {:.3},\n      \
         \"streamed_peak_bytes_2x\": {},\n      \
         \"materialized_bytes_small\": {},\n      \
         \"materialized_bytes_large\": {},\n      \
         \"materialized_growth\": {:.3},\n      \
         \"streamed_seconds\": {:.6},\n      \
         \"in_memory_seconds\": {:.6},\n      \
         \"streamed_vs_in_memory\": {:.3},\n      \
         \"flat_resident\": true,\n      \
         \"identical\": true\n    }}\n  }},\n  \
         \"shortterm\": {{\n    \"pairs\": {},\n    \
         \"short_days\": {},\n    \"long_days\": {},\n    \
         \"sink_seconds\": {:.6},\n    \
         \"sink_samples_per_second\": {:.0},\n    \
         \"materialized_bytes_short\": {},\n    \
         \"materialized_bytes_long\": {},\n    \
         \"materialized_growth\": {:.3},\n    \
         \"sink_bytes_short\": {},\n    \"sink_bytes_long\": {},\n    \
         \"sink_growth\": {:.3},\n    \
         \"memory_independent_of_samples\": true,\n    \
         \"streamed_exact_agreement\": {:.4}\n  }},\n  \
         \"fabric\": {{\n    \"workers\": {},\n    \"shards\": {},\n    \
         \"one_process_seconds\": {:.6},\n    \
         \"fabric_seconds\": {:.6},\n    \
         \"merge_overhead\": {:.4},\n    \"merge_ms\": {:.3},\n    \
         \"dataset_identical\": true,\n    \
         \"recovery\": {{\n      \"plan\": \"kill@0.1=1;exit@1.1\",\n      \
         \"retries\": {},\n      \"recoveries\": {},\n      \
         \"recovery_ms\": {:.3},\n      \
         \"dataset_identical\": true\n    }}\n  }},\n  \
         \"service\": {{\n    \"epochs\": {},\n    \"slots\": {},\n    \
         \"dataset_identical\": true,\n    \
         \"service_full_seconds\": {:.6},\n    \
         \"batch_recompute_seconds\": {:.6},\n    \
         \"update_seconds\": {:.9},\n    \
         \"batch_over_update\": {:.1},\n    \
         \"queries\": {},\n    \"ns_per_query\": {:.0},\n    \
         \"batch_over_query\": {:.1}\n  }},\n  \
         \"fullscale\": {{\n    \"clusters\": 120,\n    \"days\": 485,\n    \
         \"directed_pairs\": 1200,\n    \"cores\": 1,\n    \
         \"before_seconds\": 736.527,\n    \"after_seconds\": 104.206,\n    \
         \"speedup\": 7.07,\n    \
         \"before_log\": \"reproduce_fullscale.txt\",\n    \
         \"after_log\": \"reproduce_fullscale_after.txt\"\n  }}\n}}\n",
        quick(),
        w.scenario.scale.clusters,
        w.scenario.scale.days,
        w.pairs.len(),
        w.cfg.threads,
        samples,
        t_ref.as_secs_f64(),
        t_new.as_secs_f64(),
        speedup,
        t_obs.as_secs_f64(),
        obs_overhead_raw,
        obs_overhead,
        w.scenario.oracle.dynamics().epoch_count(),
        cs.epoch_configs,
        cs.hits,
        cs.misses,
        cs.evictions,
        analysis_samples,
        t_legacy.as_secs_f64(),
        t_build.as_secs_f64(),
        t_columnar.as_secs_f64(),
        columnar_total.as_secs_f64(),
        analysis_speedup,
        total_speedup,
        threads,
        t_mt.as_secs_f64(),
        legacy_tls.len(),
        stats.traces,
        stats.distinct_addrs,
        stats.distinct_seqs,
        stats.hop_slots,
        stats.dedup_ratio,
        serialized_bytes,
        stats.arena_bytes,
        bytes_ratio,
        all_lines.len(),
        t_import.as_secs_f64(),
        ns_per_line,
        persist_stats.traces,
        snap_bytes,
        t_snap_write.as_secs_f64(),
        write_gbps,
        t_snap_open.as_secs_f64(),
        t_line_import.as_secs_f64(),
        open_vs_import,
        peak_small,
        ooc_floor,
        peak_over_floor,
        peak_large,
        persist_stats.arena_bytes,
        persist2_stats.arena_bytes,
        ooc_growth,
        t_ooc_streamed.as_secs_f64(),
        t_ooc_inmem.as_secs_f64(),
        streamed_vs_in_memory,
        ping_pairs.len(),
        short_days,
        long_days,
        t_sink.as_secs_f64(),
        sink_throughput,
        mat_short,
        mat_long,
        mat_growth,
        sink_short,
        sink_long,
        sink_growth,
        streamed_exact_agreement,
        fabric_workers,
        fabric_clean.outcome.stats.shards,
        t_one_process.as_secs_f64(),
        t_fabric.as_secs_f64(),
        fabric_overhead,
        fabric_clean.outcome.stats.merge_ms,
        rec_stats.retries,
        rec_stats.recoveries,
        rec_stats.recovery_ms,
        svc_epochs,
        svc_slots,
        t_service_full.as_secs_f64(),
        t_batch_recompute.as_secs_f64(),
        t_update.as_secs_f64(),
        batch_over_update,
        svc_queries,
        ns_per_query,
        batch_over_query
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_longterm.json");
    std::fs::write(path, json).expect("write BENCH_longterm.json");
    println!("wrote {path}");

    // Also register the batched runner and the columnar analysis with the
    // criterion harness so the standard bench report includes them
    // alongside the other groups.
    c.bench_function("longterm/epoch_batched_campaign", |b| b.iter(|| lines_batched(&w)));
    c.bench_function("longterm/columnar_analysis", |b| {
        b.iter(|| Analysis::new(&store).threads(1).timelines(map))
    });
    c.bench_function("shortterm/sink_campaign", |b| b.iter(|| run_sink(&cfg_short)));
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(2);
    targets = bench_longterm
);
criterion_main!(benches);
