//! Criterion benches of the analysis pipeline — one per table/figure
//! family, timed over a smoke-scale world so a bench run finishes in
//! minutes. The `reproduce` binary regenerates the actual numbers; these
//! benches track the *cost* of each pipeline stage.

use criterion::{criterion_group, criterion_main, Criterion};
use s2s_bench::experiments::{dualstack, longterm, LongTermData};
use s2s_bench::{Scale, Scenario};
use s2s_core::bestpath::{best_path_analysis, suboptimal_prevalence};
use s2s_core::changes::{as_path_pairs, detect_changes, path_stats};
use s2s_core::congestion::{detect, DetectParams};
use s2s_probe::{Campaign, CampaignConfig};
use s2s_types::{Protocol, SimDuration, SimTime};
use std::hint::black_box;
use std::sync::OnceLock;

const INTERVAL: SimDuration = SimDuration(180);

/// Shared smoke-scale world + long-term data, built once per bench run.
fn data() -> &'static (Scenario, LongTermData) {
    static DATA: OnceLock<(Scenario, LongTermData)> = OnceLock::new();
    DATA.get_or_init(|| {
        let scenario = Scenario::build(Scale::smoke());
        let data = LongTermData::collect(&scenario);
        (scenario, data)
    })
}

fn bench_table1(c: &mut Criterion) {
    let (_, d) = data();
    // Table 1 folding happens during collection; here we time the final
    // aggregation over all timelines.
    c.bench_function("pipeline/table1_aggregate", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for tl in d.by_proto(Protocol::V4) {
                total += tl.counts.completed();
            }
            black_box(total)
        })
    });
}

fn bench_fig2_fig3(c: &mut Criterion) {
    let (_, d) = data();
    c.bench_function("pipeline/fig2a_unique_paths", |b| {
        b.iter(|| {
            d.by_proto(Protocol::V4)
                .iter()
                .map(|t| t.unique_paths())
                .sum::<usize>()
        })
    });
    c.bench_function("pipeline/fig2b_path_pairs", |b| {
        b.iter(|| {
            d.direction_pairs(Protocol::V4)
                .iter()
                .map(|(f, r)| as_path_pairs(f, r))
                .sum::<usize>()
        })
    });
    c.bench_function("pipeline/fig3a_prevalence", |b| {
        b.iter(|| {
            d.by_proto(Protocol::V4)
                .iter()
                .filter_map(|t| {
                    let s = path_stats(t, INTERVAL);
                    s.popular.map(|p| s.prevalence[p])
                })
                .sum::<f64>()
        })
    });
    c.bench_function("pipeline/fig3b_change_detection", |b| {
        b.iter(|| {
            d.by_proto(Protocol::V4)
                .iter()
                .map(|t| detect_changes(t).changes)
                .sum::<usize>()
        })
    });
}

fn bench_fig4_fig6(c: &mut Criterion) {
    let (_, d) = data();
    c.bench_function("pipeline/fig4_bestpath_deltas", |b| {
        b.iter(|| {
            d.by_proto(Protocol::V4)
                .iter()
                .filter_map(|t| best_path_analysis(t, INTERVAL))
                .map(|a| a.deltas.len())
                .sum::<usize>()
        })
    });
    c.bench_function("pipeline/fig6_suboptimal_prevalence", |b| {
        b.iter(|| {
            d.by_proto(Protocol::V4)
                .iter()
                .map(|t| suboptimal_prevalence(t, INTERVAL, 50.0))
                .sum::<f64>()
        })
    });
}

fn bench_sec51(c: &mut Criterion) {
    let (scenario, _) = data();
    // One pair's week of pings + detection: the §5.1 unit of work.
    let pairs = scenario.sample_pair_list(1, 0xBE);
    let cfg = CampaignConfig {
        threads: 1,
        ..CampaignConfig::ping_week(SimTime::from_days(10))
    };
    c.bench_function("pipeline/sec51_one_pair_detect", |b| {
        b.iter(|| {
            let (tls, _) = Campaign::new(cfg.clone())
                .run_ping(&scenario.net, &pairs[..1])
                .expect("in-memory campaign cannot fail");
            tls.iter()
                .filter_map(|t| detect(t, &DetectParams::default()))
                .filter(|r| r.consistent)
                .count()
        })
    });
}

fn bench_fig10(c: &mut Criterion) {
    let (scenario, d) = data();
    c.bench_function("pipeline/fig10a_dualstack_diffs", |b| {
        b.iter(|| {
            let mut diffs = s2s_core::dualstack::DualStackDiffs::default();
            for (v4, v6) in d.protocol_pairs() {
                diffs.extend(&s2s_core::dualstack::rtt_diffs(v4, v6));
            }
            diffs.all.len()
        })
    });
    c.bench_function("pipeline/fig10b_inflation", |b| {
        b.iter(|| {
            d.by_proto(Protocol::V4)
                .iter()
                .filter_map(|tl| {
                    s2s_core::inflation::inflation(
                        tl,
                        &scenario.topo.cluster_city(tl.src).point(),
                        &scenario.topo.cluster_city(tl.dst).point(),
                    )
                })
                .sum::<f64>()
        })
    });
    // Exercise the printed variants once so their code paths stay benched
    // end to end (their output goes to the bench log).
    c.bench_function("pipeline/fig45_heatmap_build", |b| {
        b.iter(|| longterm::fig45(d, Protocol::V4, false).map(|r| r.heatmap.count))
    });
    c.bench_function("pipeline/fig10a_summaries", |b| {
        b.iter(|| dualstack::fig10a(d).n)
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table1, bench_fig2_fig3, bench_fig4_fig6, bench_sec51, bench_fig10
);
criterion_main!(benches);
