//! Ablation benches for the design choices DESIGN.md calls out: each
//! compares two configurations of the same pipeline stage and reports both
//! timings; the *quality* deltas (false-loop rates, detection rates) are
//! printed once at startup so `cargo bench` output records them.

use criterion::{criterion_group, criterion_main, Criterion};
use s2s_bench::{Scale, Scenario};
use s2s_core::annotate::annotate;
use s2s_core::bestpath::best_path_analysis;
use s2s_core::congestion::{detect, DetectParams};
use s2s_core::shortterm::subsample;
use s2s_core::timeline::TimelineBuilder;
use s2s_probe::{trace, Campaign, CampaignConfig, TraceOptions, TracerouteMode};
use s2s_types::{Protocol, SimDuration, SimTime};
use std::sync::OnceLock;

fn scenario() -> &'static Scenario {
    static S: OnceLock<Scenario> = OnceLock::new();
    S.get_or_init(|| Scenario::build(Scale::smoke()))
}

/// ablate_paris: classic vs Paris traceroute — timing here, false-loop rate
/// printed once (paper §2.1: classic's per-flow artifacts caused 2.16% of
/// IPv4 traceroutes to contain AS loops).
fn ablate_paris(c: &mut Criterion) {
    let s = scenario();
    let pairs = s.sample_pair_list(30, 0xAB);
    // One-off quality report.
    let mut loops = [0usize; 2];
    let mut total = [0usize; 2];
    for &(a, b) in &pairs {
        for day in 1..20u32 {
            for (mi, mode) in [TracerouteMode::Classic, TracerouteMode::Paris]
                .into_iter()
                .enumerate()
            {
                let rec = trace(
                    &s.net,
                    a,
                    b,
                    Protocol::V4,
                    SimTime::from_days(day),
                    TraceOptions { mode, ..Default::default() },
                );
                if rec.reached {
                    total[mi] += 1;
                    loops[mi] += annotate(&rec, &s.ip2asn).has_loop as usize;
                }
            }
        }
    }
    println!(
        "[ablate_paris] AS-loop rate: classic {:.2}% vs paris {:.2}% \
         (paper: classic-era 2.16% v4)",
        100.0 * loops[0] as f64 / total[0].max(1) as f64,
        100.0 * loops[1] as f64 / total[1].max(1) as f64,
    );
    for (name, mode) in
        [("classic", TracerouteMode::Classic), ("paris", TracerouteMode::Paris)]
    {
        c.bench_function(&format!("ablate/paris_vs_classic/{name}"), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                let (a, d) = pairs[i % pairs.len()];
                trace(
                    &s.net,
                    a,
                    d,
                    Protocol::V4,
                    SimTime::from_days(3),
                    TraceOptions { mode, ..Default::default() },
                )
            })
        });
    }
}

/// ablate_fft_threshold: detection rate and cost across PSD thresholds
/// (paper footnote 2: 0.3 chosen empirically).
fn ablate_fft_threshold(c: &mut Criterion) {
    let s = scenario();
    let pairs = s.sample_pair_list(60, 0xFF7);
    let fwd: Vec<_> = pairs.chunks(2).map(|w| w[0]).collect();
    let cfg = CampaignConfig::ping_week(SimTime::from_days(10));
    let (tls, _) = Campaign::new(cfg)
        .run_ping(&s.net, &fwd)
        .expect("in-memory campaign cannot fail");
    for threshold in [0.1, 0.3, 0.5] {
        let params = DetectParams { psd_threshold: threshold, ..Default::default() };
        let hits = tls
            .iter()
            .filter_map(|t| detect(t, &params))
            .filter(|r| r.consistent)
            .count();
        println!(
            "[ablate_fft_threshold] threshold {threshold}: {hits}/{} pairs flagged",
            tls.len()
        );
        c.bench_function(&format!("ablate/fft_threshold/{threshold}"), |b| {
            b.iter(|| {
                tls.iter()
                    .filter_map(|t| detect(t, &params))
                    .filter(|r| r.consistent)
                    .count()
            })
        });
    }
}

/// ablate_cadence: the §4.3 robustness claim — best-path deltas computed
/// from 30-minute data vs its 3-hour subsample.
fn ablate_cadence(c: &mut Criterion) {
    let s = scenario();
    let pairs = s.sample_pair_list(10, 0xCAD);
    let cfg = CampaignConfig {
        start: SimTime::from_days(8),
        end: SimTime::from_days(18),
        interval: SimDuration::from_minutes(30),
        protocols: vec![Protocol::V4],
        threads: 4,
    };
    let map = &s.ip2asn;
    let tls: Vec<_> = Campaign::new(cfg)
        .run_traceroute(
            &s.net,
            &pairs,
            TraceOptions::default(),
            |a, b, p| TimelineBuilder::new(a, b, p, map),
            |b, rec| b.push(rec),
        )
        .expect("in-memory campaign cannot fail")
        .0
        .into_iter()
        .map(TimelineBuilder::finish)
        .collect();
    c.bench_function("ablate/cadence/all_30min", |b| {
        b.iter(|| {
            tls.iter()
                .filter_map(|t| best_path_analysis(t, SimDuration::from_minutes(30)))
                .count()
        })
    });
    c.bench_function("ablate/cadence/subsampled_3h", |b| {
        b.iter(|| {
            tls.iter()
                .map(|t| subsample(t, SimDuration::from_hours(3)))
                .filter_map(|t| best_path_analysis(&t, SimDuration::from_hours(3)))
                .count()
        })
    });
}

/// ablate_imputation: AS-path change counts with and without the §4.1
/// missing-hop imputation. Without imputation a rate-limited hop inside an
/// AS splits the path run and phantom changes appear.
fn ablate_imputation(c: &mut Criterion) {
    let s = scenario();
    let pairs = s.sample_pair_list(20, 0x1417);
    let recs: Vec<_> = (0..200u32)
        .flat_map(|i| {
            let (a, b) = pairs[(i as usize) % pairs.len()];
            let t = SimTime::from_days(2) + SimDuration::from_hours(3 * i);
            Some(trace(&s.net, a, b, Protocol::V4, t, TraceOptions::default()))
        })
        .collect();
    c.bench_function("ablate/imputation/with", |b| {
        b.iter(|| {
            recs.iter()
                .map(|r| annotate(r, &s.ip2asn).as_path.len())
                .sum::<usize>()
        })
    });
    c.bench_function("ablate/imputation/raw_lookup_only", |b| {
        b.iter(|| {
            recs.iter()
                .map(|r| {
                    r.hops
                        .iter()
                        .filter_map(|h| h.addr.and_then(|a| s.ip2asn.lookup(a)))
                        .count()
                })
                .sum::<usize>()
        })
    });
}

/// ablate_percentile: the §4.2 remark — best-path selection by 10th vs
/// 90th percentile vs standard deviation.
fn ablate_percentile(c: &mut Criterion) {
    let s = scenario();
    let pairs = s.sample_pair_list(12, 0xBE57);
    let data = s.long_term_timelines(&pairs);
    c.bench_function("ablate/percentile/full_analysis", |b| {
        b.iter(|| {
            data.iter()
                .filter_map(|t| best_path_analysis(t, SimDuration::from_hours(3)))
                .map(|a| {
                    // All three criteria come from one pass; consumers pick.
                    (a.best_by_p10, a.best_by_p90, a.deltas.len())
                })
                .collect::<Vec<_>>()
                .len()
        })
    });
    let disagree = data
        .iter()
        .filter_map(|t| best_path_analysis(t, SimDuration::from_hours(3)))
        .filter(|a| a.best_by_p10 != a.best_by_p90)
        .count();
    println!(
        "[ablate_percentile] timelines where p10-best != p90-best: {disagree}/{}",
        data.len()
    );
}

/// ablate_inferred_rels: the §5.3 caveat — the paper's ownership heuristics
/// lean on CAIDA's *inferred* relationships. How much accuracy do the
/// heuristics lose when fed Gao-style inferences instead of ground truth?
fn ablate_inferred_rels(c: &mut Criterion) {
    let s = scenario();
    // Sweep traceroutes, collect IP paths + their AS paths.
    let pairs = s.sample_pair_list(40, 0x4e1);
    let mut ip_paths: Vec<Vec<Option<std::net::IpAddr>>> = Vec::new();
    let mut as_paths: Vec<Vec<s2s_types::Asn>> = Vec::new();
    for &(a, b) in &pairs {
        let rec = trace(
            &s.net,
            a,
            b,
            Protocol::V4,
            SimTime::from_days(3),
            TraceOptions::default(),
        );
        if rec.reached {
            ip_paths.push(rec.hops.iter().map(|h| h.addr).collect());
            let ann = s2s_core::annotate::annotate(&rec, &s.ip2asn);
            let asns: Vec<_> = ann.as_path.hops().iter().flatten().copied().collect();
            if asns.len() >= 2 {
                as_paths.push(asns);
            }
        }
    }
    let inferred =
        s2s_bgp::infer_relationships(&as_paths, &s2s_bgp::InferParams::default());
    let (correct, total) = s2s_bgp::infer::score_against(&inferred.store, &s.rels);
    println!(
        "[ablate_inferred_rels] relationship inference accuracy: {correct}/{total}          ({:.1}%)",
        100.0 * correct as f64 / total.max(1) as f64
    );
    // Ownership accuracy with truth vs inferred relationships.
    let addr_index = s.topo.addr_index();
    let accuracy = |rels: &s2s_bgp::AsRelStore| -> (usize, usize) {
        let inf = s2s_core::ownership::infer_ownership(&ip_paths, &s.ip2asn, rels);
        let mut ok = 0;
        let mut n = 0;
        for (&addr, &owner) in &inf.owners {
            if let Some(&iface) = addr_index.get(&addr) {
                n += 1;
                ok += (owner == s.topo.asn(s.topo.iface_operator(iface))) as usize;
            }
        }
        (ok, n)
    };
    let (t_ok, t_n) = accuracy(&s.rels);
    let (i_ok, i_n) = accuracy(&inferred.store);
    println!(
        "[ablate_inferred_rels] ownership accuracy: truth rels {:.1}% vs inferred          rels {:.1}%",
        100.0 * t_ok as f64 / t_n.max(1) as f64,
        100.0 * i_ok as f64 / i_n.max(1) as f64,
    );
    c.bench_function("ablate/inferred_rels/gao_inference", |b| {
        b.iter(|| {
            s2s_bgp::infer_relationships(&as_paths, &s2s_bgp::InferParams::default())
                .store
                .len()
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ablate_paris, ablate_fft_threshold, ablate_cadence, ablate_imputation,
        ablate_percentile, ablate_inferred_rels
);
criterion_main!(benches);
