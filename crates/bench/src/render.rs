//! Text rendering of figures: ECDF curves and decile heat maps, printed in
//! the same shape the paper plots them.

use s2s_stats::{Ecdf, HeatMap};

/// Prints an ECDF as `x  F(x)` rows at `points` quantiles, with a header.
pub fn print_ecdf(title: &str, data: &[f64], points: usize) {
    println!("  ECDF: {title}  (n = {})", data.len());
    if data.is_empty() {
        println!("    (no data)");
        return;
    }
    let e = Ecdf::new(data.to_vec());
    for (x, f) in e.curve(points) {
        println!("    {x:>12.2}  {f:>6.3}");
    }
}

/// Formats one ECDF line of headline fractions, e.g. for the shaded-region
/// statements ("50% within ±10 ms").
pub fn ecdf_fraction_between(data: &[f64], lo: f64, hi: f64) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let e = Ecdf::new(data.to_vec());
    (e.fraction_at_or_below(hi) - e.fraction_at_or_below(lo)).max(0.0)
}

/// Prints a decile heat map in the paper's Fig. 4/5 layout: Y rows from
/// the largest RTT-increase decile down, X columns by lifetime decile,
/// cell = percent of all points.
pub fn print_heatmap(title: &str, hm: &HeatMap, x_label: &str, y_label: &str) {
    println!("  HEATMAP: {title}  ({} points)", hm.count);
    println!("    Y: {y_label} (top = largest), X: {x_label} (right = longest)");
    // Column header: lifetime bin upper edges.
    let cols: Vec<String> =
        hm.x_edges.windows(2).map(|w| format!("{:>7}", short(w[1]))).collect();
    println!("    {:>22} {}", "", cols.join(" "));
    for y in (0..hm.cells.len()).rev() {
        let lo = hm.y_edges[y];
        let hi = hm.y_edges[y + 1];
        let row: Vec<String> =
            hm.cells[y].iter().map(|c| format!("{c:>6.2}%")).collect();
        println!("    [{:>8}, {:>8}) {}", short(lo), short(hi), row.join(" "));
    }
}

/// Compact number formatting for heat-map edges (hours→days→months in
/// minutes-space is the caller's concern; this just trims digits).
fn short(v: f64) -> String {
    if v >= 10_000.0 {
        format!("{:.0}", v)
    } else if v >= 100.0 {
        format!("{:.1}", v)
    } else {
        format!("{:.2}", v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_between_basics() {
        let data = vec![-20.0, -5.0, 0.0, 5.0, 20.0];
        let f = ecdf_fraction_between(&data, -10.0, 10.0);
        assert!((f - 0.6).abs() < 1e-9, "f = {f}");
        assert_eq!(ecdf_fraction_between(&[], -1.0, 1.0), 0.0);
    }

    #[test]
    fn printing_does_not_panic() {
        print_ecdf("test", &[1.0, 2.0, 3.0], 5);
        print_ecdf("empty", &[], 5);
        let points: Vec<(f64, f64)> =
            (0..100).map(|i| (i as f64, (i * 3 % 71) as f64)).collect();
        let hm = HeatMap::from_points(&points).unwrap();
        print_heatmap("test", &hm, "lifetime", "delta");
    }
}
