//! Fig. 8 methodology check: router-ownership heuristics validated against
//! the simulator's ground truth.
//!
//! The paper cannot validate its ownership inference (it "stresses the need
//! for an approach that has been thoroughly validated"); the simulator can:
//! every interface's operating AS is known. This experiment sweeps
//! traceroutes, runs the six heuristics, and scores the elected owners.

use crate::scenario::Scenario;
use s2s_core::ownership::Heuristic;
use s2s_core::Analysis;
use s2s_probe::store::NO_ADDR;
use s2s_probe::{trace, TraceOptions, TraceStore};
use s2s_types::{Protocol, SimDuration, SimTime};
use std::collections::HashMap;
use std::net::IpAddr;

/// Fig. 8 validation numbers.
#[derive(Clone, Debug)]
pub struct Fig8Result {
    /// Distinct hop addresses observed.
    pub addresses: usize,
    /// Fraction with an elected owner.
    pub coverage: f64,
    /// Fraction of elected owners matching ground truth.
    pub accuracy: f64,
    /// Labels applied per heuristic.
    pub per_heuristic: HashMap<&'static str, usize>,
    /// Accuracy of the raw IP→ASN mapping as an ownership guess (the
    /// baseline the heuristics improve on).
    pub baseline_accuracy: f64,
}

/// Runs the sweep and validation.
pub fn fig8(scenario: &Scenario) -> Fig8Result {
    let pairs = scenario.sample_pair_list(scenario.scale.pairs.max(100), 0xF168);
    let mut store = TraceStore::new();
    for &(s, d) in &pairs {
        for proto in [Protocol::V4, Protocol::V6] {
            for day in [10u32, 100, 200] {
                let t = SimTime::from_days(day) + SimDuration::from_hours(2);
                let rec = trace(&scenario.net, s, d, proto, t, TraceOptions::default());
                store.push(&rec);
            }
        }
    }
    // The heuristics consume link/triple *sets*, so the store-backed
    // inference — one pass per distinct reached hop sequence — elects the
    // same owners as the per-trace sweep at a fraction of the work.
    let inf = Analysis::new(&store).ownership(&scenario.ip2asn, &scenario.rels);

    // Ground truth via the topology's address index.
    let addr_index = scenario.topo.addr_index();
    let truth = |addr: IpAddr| -> Option<s2s_types::Asn> {
        addr_index
            .get(&addr)
            .map(|&i| scenario.topo.asn(scenario.topo.iface_operator(i)))
    };

    let mut distinct: std::collections::HashSet<IpAddr> = std::collections::HashSet::new();
    for v in store.iter() {
        if v.reached() {
            distinct.extend(
                v.hop_ids()
                    .iter()
                    .filter(|&&id| id != NO_ADDR)
                    .map(|&id| store.addr(id)),
            );
        }
    }
    let addresses = distinct.len();
    let mut correct = 0usize;
    let mut owned = 0usize;
    let mut baseline_correct = 0usize;
    let mut baseline_total = 0usize;
    for &addr in &distinct {
        let Some(t) = truth(addr) else { continue };
        if let Some(asn) = scenario.ip2asn.lookup(addr) {
            baseline_total += 1;
            baseline_correct += (asn == t) as usize;
        }
        if let Some(o) = inf.owner(addr) {
            owned += 1;
            correct += (o == t) as usize;
        }
    }
    let mut per_heuristic: HashMap<&'static str, usize> = HashMap::new();
    for labels in inf.labels.values() {
        for &(_, h) in labels {
            let name = match h {
                Heuristic::First => "first",
                Heuristic::NoIp2As => "noip2as",
                Heuristic::Customer => "customer",
                Heuristic::Provider => "provider",
                Heuristic::Back => "back",
                Heuristic::Forward => "forward",
            };
            *per_heuristic.entry(name).or_default() += 1;
        }
    }
    let res = Fig8Result {
        addresses,
        coverage: owned as f64 / addresses.max(1) as f64,
        accuracy: correct as f64 / owned.max(1) as f64,
        baseline_accuracy: baseline_correct as f64 / baseline_total.max(1) as f64,
        per_heuristic,
    };
    println!("FIG 8 — router-ownership heuristics vs ground truth");
    println!(
        "  {} addresses; owner elected for {:.1}% ('most, but not all'); \
         accuracy {:.1}%",
        res.addresses,
        res.coverage * 100.0,
        res.accuracy * 100.0
    );
    println!(
        "  raw longest-prefix baseline accuracy: {:.1}% (heuristics should beat this)",
        res.baseline_accuracy * 100.0
    );
    let mut names: Vec<_> = res.per_heuristic.iter().collect();
    names.sort();
    for (name, n) in names {
        println!("    labels from {name:>8}: {n}");
    }
    res
}
