//! §5 experiments: congestion prevalence (§5.1), the congested-link census
//! (§5.3), and the overhead densities (Fig. 9).

use crate::scenario::Scenario;
use s2s_core::annotate::as_path_of_addrs;
use s2s_core::congestion::{
    detect, overhead_ms, DetectParams, LocateOutcome, LocateParams, SegmentAccumulator,
};
use s2s_core::ownership::{classify_link, infer_ownership, CongestedLinkClass};
use s2s_core::Analysis;
use s2s_netsim::Network;
use s2s_probe::{Campaign, CampaignConfig, FaultProfile, TraceOptions};
use s2s_stats::GaussianKde;
use s2s_topology::LinkKind;
use s2s_types::{ClusterId, Protocol, SimTime};
use std::collections::{HashMap, HashSet};
use std::net::IpAddr;

/// §5.1 headline numbers for one protocol.
#[derive(Clone, Copy, Debug)]
pub struct Sec51Result {
    /// Pairs with ≥600-of-672 valid samples.
    pub analyzed_pairs: usize,
    /// Fraction with >10 ms 95th−5th variation.
    pub high_variation_fraction: f64,
    /// Fraction with a strong diurnal pattern AND high variation.
    pub consistent_fraction: f64,
}

/// The §5.1 detection campaign: a week of 15-minute pings, folded through
/// the streaming sink — the campaign's memory is per-pair sketch state,
/// never the ~2 B-sample timeline the paper-scale mesh would materialize.
pub fn sec51(
    scenario: &Scenario,
    start: SimTime,
) -> (Vec<Sec51Result>, Vec<(ClusterId, ClusterId, Protocol)>) {
    // One direction per unordered pair — ping RTT is direction-agnostic.
    let all = scenario.sample_pair_list(scenario.scale.ping_pairs, 0x5EC5);
    let pairs: Vec<(ClusterId, ClusterId)> =
        all.chunks(2).map(|c| c[0]).collect();
    let cfg = CampaignConfig::ping_week(start);
    let sink = s2s_probe::PairProfileSink::for_config(&cfg);
    let (profiles, report) = Campaign::new(cfg)
        .faults(FaultProfile::from_env())
        .sink(sink)
        .run_ping(&scenario.net, &pairs)
        .expect("in-memory campaign cannot fail");
    let params = DetectParams::default();
    // The paper's ≥600-of-672 gate, as the fraction it is (~89.3%), so a
    // degraded plane is held to the same standard per offered slot.
    let min_coverage = params.min_valid_samples as f64 / 672.0;
    let verdicts =
        Analysis::new(profiles.as_slice()).checked(min_coverage).congestion_checked(&params);
    let mut results = Vec::new();
    let mut congested: Vec<(ClusterId, ClusterId, Protocol)> = Vec::new();
    println!("SEC 5.1 — is consistent congestion the norm? (week of 15-min pings)");
    println!("  probe coverage: {} delivered", report.coverage());
    for proto in [Protocol::V4, Protocol::V6] {
        let mut analyzed = 0usize;
        let mut below_floor = 0usize;
        let mut high = 0usize;
        let mut consistent = 0usize;
        for (pf, res) in
            profiles.iter().zip(&verdicts).filter(|(p, _)| p.proto == proto)
        {
            match res {
                Ok((r, _)) => {
                    analyzed += 1;
                    high += r.high_variation as usize;
                    if r.consistent {
                        consistent += 1;
                        congested.push((pf.src, pf.dst, proto));
                    }
                }
                Err(_) => below_floor += 1,
            }
        }
        let res = Sec51Result {
            analyzed_pairs: analyzed,
            high_variation_fraction: high as f64 / analyzed.max(1) as f64,
            consistent_fraction: consistent as f64 / analyzed.max(1) as f64,
        };
        println!(
            "  {proto}: {analyzed} pairs analyzed ({below_floor} below the {:.1}% \
             coverage floor); >10 ms variation: {:.2}% \
             (paper: <9.5% v4 / <4% v6); strong diurnal: {:.2}% (paper: 2% v4 / 0.6% v6)",
            100.0 * min_coverage,
            res.high_variation_fraction * 100.0,
            res.consistent_fraction * 100.0,
        );
        results.push(res);
    }
    (results, congested)
}

/// One located congested link.
#[derive(Clone, Debug)]
pub struct LocatedLink {
    /// Pair that blamed it.
    pub src: ClusterId,
    /// Destination of the blaming pair.
    pub dst: ClusterId,
    /// Protocol.
    pub proto: Protocol,
    /// Near-side hop address.
    pub near: Option<IpAddr>,
    /// Far-side hop address.
    pub far: IpAddr,
    /// Overhead estimate from the pair's e2e series, ms.
    pub overhead_ms: f64,
}

/// §5.3 census numbers.
#[derive(Clone, Debug, Default)]
pub struct Sec53Result {
    /// Distinct located IP-IP links per class.
    pub internal: usize,
    /// Peering interconnects.
    pub p2p: usize,
    /// Transit interconnects.
    pub c2p: usize,
    /// Interconnects with unknown relationship.
    pub unknown_rel: usize,
    /// Links whose ownership could not be inferred.
    pub unknown: usize,
    /// Pair-weighted counts: (internal, interconnect) — "when we weight the
    /// links by the number of server-to-server paths that cross them".
    pub weighted: (usize, usize),
    /// Ground-truth kinds of located interconnects: (private, ixp, transit).
    pub truth_kinds: (usize, usize, usize),
    /// Every located link (for Fig. 9).
    pub located: Vec<LocatedLink>,
    /// The ownership inference used by the census (reused by Fig. 9).
    pub ownership: s2s_core::ownership::OwnershipInference,
}

/// The §5.2/§5.3 pipeline: focused 30-minute traceroutes toward the
/// congested pairs, localization, ownership inference, census.
pub fn sec53(
    scenario: &Scenario,
    congested: &[(ClusterId, ClusterId, Protocol)],
    start: SimTime,
    days: u32,
) -> Sec53Result {
    // Cap the focused subset like the paper (50K of 100K detected pairs).
    let subset: Vec<&(ClusterId, ClusterId, Protocol)> =
        congested.iter().take(scenario.scale.cong_pairs).collect();
    // Campaign runs both directions of every congested pair.
    let mut directed: Vec<(ClusterId, ClusterId)> = Vec::new();
    let mut protos_of: HashMap<(ClusterId, ClusterId), HashSet<Protocol>> = HashMap::new();
    for &&(a, b, p) in &subset {
        for (s, d) in [(a, b), (b, a)] {
            if !directed.contains(&(s, d)) {
                directed.push((s, d));
            }
            protos_of.entry((s, d)).or_default().insert(p);
        }
    }
    let cfg = CampaignConfig::focused_traceroute(start, days);
    let map = &scenario.ip2asn;
    let (accs, _) = Campaign::new(cfg)
        .run_traceroute(
            &scenario.net,
            &directed,
            TraceOptions::default(),
            |_, _, _| SegmentAccumulator::default(),
            |acc, rec| acc.push(&rec),
        )
        .expect("in-memory campaign cannot fail");
    // Index accumulators: directed[i] × protocols (V4 at 2i, V6 at 2i+1).
    let acc_of = |i: usize, p: Protocol| -> &SegmentAccumulator {
        &accs[2 * i + (p == Protocol::V6) as usize]
    };

    // Ownership inference over every reference path in the campaign.
    let corpus: Vec<Vec<Option<IpAddr>>> = accs
        .iter()
        .filter_map(|a| a.reference_path().map(|p| p.to_vec()))
        .collect();
    let ownership = infer_ownership(&corpus, &scenario.ip2asn, &scenario.rels);

    let params = LocateParams::default();
    let mut result = Sec53Result::default();
    let mut located_by_link: HashMap<(Option<IpAddr>, IpAddr), usize> = HashMap::new();
    let mut still_congested = 0usize;
    let mut eligible = 0usize;

    for (i, &(s, d)) in directed.iter().enumerate() {
        let rev_idx = directed.iter().position(|&(a, b)| (a, b) == (d, s));
        for proto in [Protocol::V4, Protocol::V6] {
            if !protos_of[&(s, d)].contains(&proto) {
                continue;
            }
            let fwd = acc_of(i, proto);
            // The paper's preconditions: symmetric AS paths + static IP
            // paths in each direction.
            let Some(rev_i) = rev_idx else { continue };
            let rev = acc_of(rev_i, proto);
            let (Some(fp), Some(rp)) = (fwd.reference_path(), rev.reference_path())
            else {
                continue;
            };
            let fwd_as = as_path_of_addrs(fp, None, map);
            let mut rev_as_hops: Vec<_> =
                as_path_of_addrs(rp, None, map).hops().to_vec();
            rev_as_hops.reverse();
            let rev_as = s2s_types::AsPath::from_hops(rev_as_hops);
            if fwd_as != rev_as {
                continue;
            }
            eligible += 1;
            match fwd.locate(&params) {
                LocateOutcome::Located { near, far, .. } => {
                    still_congested += 1;
                    let overhead =
                        overhead_ms(fwd.e2e_series()).unwrap_or(0.0);
                    result.located.push(LocatedLink {
                        src: s,
                        dst: d,
                        proto,
                        near,
                        far,
                        overhead_ms: overhead,
                    });
                    *located_by_link.entry((near, far)).or_default() += 1;
                }
                LocateOutcome::Unlocated => {
                    still_congested += 1;
                }
                _ => {}
            }
        }
    }

    // Census over distinct located links.
    let mut weighted_internal = 0usize;
    let mut weighted_interconnect = 0usize;
    for (&(near, far), &weight) in &located_by_link {
        let class = classify_link(near, far, &ownership, &scenario.rels);
        match class {
            CongestedLinkClass::Internal => {
                result.internal += 1;
                weighted_internal += weight;
            }
            CongestedLinkClass::InterconnectP2p => {
                result.p2p += 1;
                weighted_interconnect += weight;
            }
            CongestedLinkClass::InterconnectC2p => {
                result.c2p += 1;
                weighted_interconnect += weight;
            }
            CongestedLinkClass::InterconnectUnknownRel => {
                result.unknown_rel += 1;
                weighted_interconnect += weight;
            }
            CongestedLinkClass::Unknown => result.unknown += 1,
        }
        // Ground truth via the simulator's address index.
        if let Some(iface) = scenario.topo.iface_by_addr(far) {
            let link = scenario.topo.ifaces[iface.index()].link;
            match scenario.topo.links[link.index()].kind {
                LinkKind::PrivatePeering => result.truth_kinds.0 += 1,
                LinkKind::IxpPeering(_) => result.truth_kinds.1 += 1,
                LinkKind::Transit => result.truth_kinds.2 += 1,
                LinkKind::Internal => {}
            }
        }
    }
    result.weighted = (weighted_internal, weighted_interconnect);

    println!("SEC 5.3 — congested-link census ({days}-day focused campaign)");
    println!(
        "  eligible symmetric/static pair-protocols: {eligible}; still showing \
         congestion: {still_congested} (paper: >30% weeks later)"
    );
    println!(
        "  distinct congested links: internal {}  p2p {}  c2p {}  unknown-rel {} \
         unknown {}   (paper: 1768 internal, 658 p2p, 463 c2p, 266 unknown)",
        result.internal, result.p2p, result.c2p, result.unknown_rel, result.unknown
    );
    println!(
        "  pair-weighted crossings: internal {}  interconnect {}  (paper: \
         interconnects more popular when weighted)",
        result.weighted.0, result.weighted.1
    );
    println!(
        "  ground-truth interconnect kinds among located: private {}  IXP {} \
         transit {}  (paper: large majority private; ~60 IXP)",
        result.truth_kinds.0, result.truth_kinds.1, result.truth_kinds.2
    );
    result.ownership = ownership;
    result
}

/// Fig. 9 headline numbers.
#[derive(Clone, Debug)]
pub struct Fig9Result {
    /// KDE mode of interconnection-link overheads, ms.
    pub interconnect_mode_ms: Option<f64>,
    /// KDE mode of internal-link overheads, ms.
    pub internal_mode_ms: Option<f64>,
    /// Probability mass in [20, 30] ms for US↔US pairs.
    pub us_mass_20_30: Option<f64>,
    /// Mean overhead of transcontinental pairs, ms.
    pub transcontinental_mean_ms: Option<f64>,
}

/// Fig. 9: overhead densities by link class and geography.
pub fn fig9(scenario: &Scenario, census: &Sec53Result) -> Fig9Result {
    let (ownership, rels) = (&census.ownership, &*scenario.rels);
    let mut internal = Vec::new();
    let mut interconnect = Vec::new();
    let mut us_us = Vec::new();
    let mut transcontinental = Vec::new();
    for l in &census.located {
        let class = classify_link(l.near, l.far, ownership, rels);
        match class {
            CongestedLinkClass::Internal => internal.push(l.overhead_ms),
            CongestedLinkClass::InterconnectP2p
            | CongestedLinkClass::InterconnectC2p
            | CongestedLinkClass::InterconnectUnknownRel => {
                interconnect.push(l.overhead_ms)
            }
            CongestedLinkClass::Unknown => {}
        }
        // Geographic splits classify the *link* (the paper's Fig. 9 looks at
        // trans-continental links, not pair endpoints); fall back to the
        // pair's endpoints when the far address is not in the simulator's
        // index (it always is, but the analysis stays total).
        let (ca, cb) = match scenario.topo.iface_by_addr(l.far) {
            Some(iface) => {
                let link = scenario.topo.ifaces[iface.index()].link;
                let lk = &scenario.topo.links[link.index()];
                (scenario.topo.router_city(lk.a), scenario.topo.router_city(lk.b))
            }
            None => (
                scenario.topo.cluster_city(l.src),
                scenario.topo.cluster_city(l.dst),
            ),
        };
        if s2s_geo::is_us_us(ca, cb) {
            us_us.push(l.overhead_ms);
        }
        if s2s_geo::is_transcontinental(ca, cb) {
            transcontinental.push(l.overhead_ms);
        }
    }
    let mode = |v: &[f64]| {
        GaussianKde::new(v.to_vec()).map(|k| k.mode(0.0, 120.0, 480))
    };
    let interconnect_mode = mode(&interconnect);
    let internal_mode = mode(&internal);
    let us_mass = GaussianKde::new(us_us.clone())
        .map(|k| k.mass_between(20.0, 30.0) / k.mass_between(0.0, 120.0).max(1e-9));
    let tc_mean = if transcontinental.is_empty() {
        None
    } else {
        Some(transcontinental.iter().sum::<f64>() / transcontinental.len() as f64)
    };
    println!("FIG 9 — congestion overhead densities");
    println!(
        "  interconnect overheads: n = {}, KDE mode = {:?} ms (paper: 20-30 ms)",
        interconnect.len(),
        interconnect_mode.map(|m| m.round())
    );
    println!(
        "  internal overheads:     n = {}, KDE mode = {:?} ms (paper: 20-30 ms)",
        internal.len(),
        internal_mode.map(|m| m.round())
    );
    println!(
        "  US<->US mass in [20,30] ms: {:?} (paper: ~90% of density 20-30 ms)",
        us_mass.map(|m| (m * 100.0).round())
    );
    println!(
        "  transcontinental mean overhead: {:?} ms (paper: ~60 ms, up to ~90 in Asia)",
        tc_mean.map(|m| m.round())
    );
    Fig9Result {
        interconnect_mode_ms: interconnect_mode,
        internal_mode_ms: internal_mode,
        us_mass_20_30: us_mass,
        transcontinental_mean_ms: tc_mean,
    }
}

/// Smoke helper for benches: one detection pass over a synthetic pair.
pub fn detect_one(net: &Network, src: ClusterId, dst: ClusterId, start: SimTime) -> bool {
    let cfg = CampaignConfig::ping_week(start);
    let (tls, _) = Campaign::new(cfg)
        .run_ping(net, &[(src, dst)])
        .expect("in-memory campaign cannot fail");
    tls.iter()
        .filter_map(|t| detect(t, &DetectParams::default()))
        .any(|r| r.consistent)
}
