//! §6 experiments: IPv4 vs IPv6 (Fig. 10a) and RTT inflation (Fig. 10b).

use super::LongTermData;
use crate::render::print_ecdf;
use crate::scenario::Scenario;
use s2s_core::dualstack::{rtt_diffs, summarize, DualStackDiffs, DualStackSummary};
use s2s_core::inflation::inflation;
use s2s_stats::quantiles;
use s2s_types::Protocol;

/// Fig. 10a headline numbers.
#[derive(Clone, Debug)]
pub struct Fig10aResult {
    /// Summary over all simultaneous measurements.
    pub all: Option<DualStackSummary>,
    /// Summary over the same-AS-path subset.
    pub same_path: Option<DualStackSummary>,
    /// Number of (all, same-path) diff samples.
    pub n: (usize, usize),
}

/// Fig. 10a: ECDF of RTTv4 − RTTv6.
pub fn fig10a(data: &LongTermData) -> Fig10aResult {
    let mut diffs = DualStackDiffs::default();
    for (v4, v6) in data.protocol_pairs() {
        diffs.extend(&rtt_diffs(v4, v6));
    }
    println!("FIG 10a — RTTv4 − RTTv6 between dual-stack servers");
    print_ecdf("RTTv4 - RTTv6, all (ms)", &diffs.all, 11);
    print_ecdf("RTTv4 - RTTv6, same AS path (ms)", &diffs.same_path, 11);
    let all = summarize(&diffs.all, 10.0, 50.0);
    let same = summarize(&diffs.same_path, 10.0, 50.0);
    if let Some(s) = all {
        println!(
            "  all: within ±10 ms {:.1}% (paper ~50%); v6 saves ≥50 ms {:.1}% \
             (paper 3.7%); v4 saves ≥50 ms {:.1}% (paper 8.5%)",
            s.frac_similar * 100.0,
            s.frac_v6_saves_big * 100.0,
            s.frac_v4_saves_big * 100.0
        );
    }
    if let Some(s) = same {
        println!(
            "  same AS path: within ±10 ms {:.1}% (paper ~70%)",
            s.frac_similar * 100.0
        );
    }
    Fig10aResult { all, same_path: same, n: (diffs.all.len(), diffs.same_path.len()) }
}

/// Fig. 10b headline numbers for one protocol.
#[derive(Clone, Copy, Debug)]
pub struct Fig10bResult {
    /// Median inflation over all pairs.
    pub median: f64,
    /// 90th-percentile inflation.
    pub p90: f64,
    /// Median inflation over US↔US pairs.
    pub us_median: Option<f64>,
    /// Median inflation over transcontinental pairs.
    pub transcontinental_median: Option<f64>,
}

/// Fig. 10b: RTT inflation over cRTT.
pub fn fig10b(scenario: &Scenario, data: &LongTermData, proto: Protocol) -> Option<Fig10bResult> {
    let topo = &scenario.topo;
    let mut all = Vec::new();
    let mut us = Vec::new();
    let mut tc = Vec::new();
    for tl in data.by_proto(proto) {
        let ca = topo.cluster_city(tl.src);
        let cb = topo.cluster_city(tl.dst);
        let Some(inf) = inflation(tl, &ca.point(), &cb.point()) else { continue };
        all.push(inf);
        if s2s_geo::is_us_us(ca, cb) {
            us.push(inf);
        }
        if s2s_geo::is_transcontinental(ca, cb) {
            tc.push(inf);
        }
    }
    if all.is_empty() {
        return None;
    }
    let q = quantiles(&all, &[50.0, 90.0]).unwrap();
    let med = |v: &[f64]| quantiles(v, &[50.0]).map(|q| q[0]);
    let res = Fig10bResult {
        median: q[0],
        p90: q[1],
        us_median: med(&us),
        transcontinental_median: med(&tc),
    };
    println!("FIG 10b — RTT inflation over cRTT ({proto})");
    print_ecdf("RTT / cRTT", &all, 11);
    println!(
        "  median {:.2} (paper: 3.01 v4 / 3.10 v6); 90th pct {:.2} (paper: 5.3 / 5.9)",
        res.median, res.p90
    );
    println!(
        "  US<->US median {:?} vs transcontinental median {:?} (paper: US higher)",
        res.us_median.map(|m| (m * 100.0).round() / 100.0),
        res.transcontinental_median.map(|m| (m * 100.0).round() / 100.0),
    );
    Some(res)
}
