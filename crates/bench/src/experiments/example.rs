//! Fig. 1: the illustrative single-pair timeline (Hong Kong → Osaka).

use crate::scenario::Scenario;
use s2s_core::changes::detect_changes;
use s2s_core::timeline::{TimelineBuilder, TraceTimeline};
use s2s_probe::{trace, TraceOptions};
use s2s_stats::quantiles;
use s2s_types::{ClusterId, Protocol, SimDuration, SimTime};

/// Fig. 1 headline numbers.
#[derive(Clone, Debug)]
pub struct Fig1Result {
    /// Monthly baseline (10th-percentile) RTT per month, IPv4.
    pub monthly_baseline_v4: Vec<f64>,
    /// Monthly baseline RTT per month, IPv6.
    pub monthly_baseline_v6: Vec<f64>,
    /// AS-path changes over the window (v4, v6).
    pub changes: (usize, usize),
    /// Days whose RTT swing exceeded 15 ms (oscillation days), IPv4.
    pub oscillation_days_v4: usize,
}

/// Finds a pair matching the paper's Hong Kong → Osaka example: an
/// intra-Asia pair in different countries *that actually exhibits level
/// shifts* — the paper cherry-picked its example, and so do we. Candidates
/// are screened cheaply with the AS-path oracle at daily granularity; the
/// pair with the most path changes in the window wins, with the exact
/// cities preferred on ties.
pub fn pick_example_pairs(scenario: &Scenario, n: usize) -> Vec<(ClusterId, ClusterId)> {
    let topo = &scenario.topo;
    let asia: Vec<ClusterId> = (0..topo.clusters.len())
        .map(ClusterId::from)
        .filter(|&c| topo.cluster_city(c).continent == s2s_geo::Continent::Asia)
        .collect();
    let mut scored: Vec<(ClusterId, ClusterId, usize)> = Vec::new();
    for &a in &asia {
        for &b in &asia {
            if topo.cluster_city(a).country == topo.cluster_city(b).country {
                continue;
            }
            // A level shift worth plotting persists for weeks: screen with
            // the spread of *monthly median* noise-free RTTs over the
            // window. Constant flapping between near-equal paths, or a
            // single brief blip, scores ~0.
            let mut monthly_medians = Vec::new();
            for month in 0..6u32 {
                let mut samples = Vec::new();
                for d in 0..15u32 {
                        // Propagation-only RTT: routing level shifts without the
                    // congestion model's diurnal contribution.
                    let t = SimTime::from_days(month * 30 + d * 2)
                        + SimDuration::from_hours(4);
                    // Use the same flow identifiers the Paris tracer will,
                    // so the screen sees the ECMP choices the campaign sees.
                    let fwd_flow = (u64::from(a.0) << 40) ^ (u64::from(b.0) << 16);
                    let rev_flow = (u64::from(b.0) << 40) ^ (u64::from(a.0) << 16);
                    let fwd = scenario.oracle.router_path(
                        a, b, s2s_types::Protocol::V4, t, fwd_flow,
                    );
                    let rev = scenario.oracle.router_path(
                        b, a, s2s_types::Protocol::V4, t, rev_flow,
                    );
                    if let (Some(f), Some(r)) = (fwd, rev) {
                        samples.push(f.one_way_delay_ms + r.one_way_delay_ms);
                    }
                }
                if let Some(q) = quantiles(&samples, &[50.0]) {
                    monthly_medians.push(q[0]);
                }
            }
            if monthly_medians.len() < 6 {
                continue;
            }
            let spread = monthly_medians.iter().cloned().fold(0.0f64, f64::max)
                - monthly_medians.iter().cloned().fold(f64::INFINITY, f64::min);
            if spread < 8.0 {
                continue;
            }
            let exact = topo.cluster_city(a).name == "Hong Kong"
                && topo.cluster_city(b).name == "Osaka";
            let score = (spread.min(120.0) as usize) * 2 + usize::from(exact);
            scored.push((a, b, score));
        }
    }
    scored.sort_by_key(|&(_, _, s)| std::cmp::Reverse(s));
    scored.truncate(n);
    let mut out: Vec<(ClusterId, ClusterId)> =
        scored.into_iter().map(|(a, b, _)| (a, b)).collect();
    // Pad with arbitrary intra-Asia cross-country pairs (tiny worlds).
    'pad: for &a in &asia {
        for &b in &asia {
            if out.len() >= n.max(1) {
                break 'pad;
            }
            if topo.cluster_city(a).country != topo.cluster_city(b).country
                && !out.contains(&(a, b))
            {
                out.push((a, b));
            }
        }
    }
    out
}

/// Runs the Fig. 1 example: six months of 3-hourly dual-protocol
/// traceroutes for one pair, summarized as monthly baselines and
/// oscillation days.
pub fn fig1(scenario: &Scenario, months: u32) -> Option<Fig1Result> {
    let days = months * 30;
    // Shortlist candidates with the cheap propagation screen, then trace
    // each for the full window and keep the one whose *measured* monthly
    // medians move the most — the paper's figure is a cherry-picked pair,
    // and the cherry must be picked on what the measurement actually shows.
    let candidates = pick_example_pairs(scenario, 8);
    let trace_pair = |src: ClusterId, dst: ClusterId| -> Vec<TraceTimeline> {
        [Protocol::V4, Protocol::V6]
            .into_iter()
            .map(|proto| {
                let mut b = TimelineBuilder::new(src, dst, proto, &scenario.ip2asn);
                let mut t = SimTime::T0;
                while t < SimTime::from_days(days) {
                    b.push(trace(
                        &scenario.net,
                        src,
                        dst,
                        proto,
                        t,
                        TraceOptions::default(),
                    ));
                    t += SimDuration::from_hours(3);
                }
                b.finish()
            })
            .collect()
    };
    // Score a candidate by the *impact* of its sub-optimal paths: the
    // paper's Fig. 1a pair spends weeks on a detour 100+ ms above the
    // baseline. delta × prevalence rewards exactly that.
    let impact = |tl: &TraceTimeline| -> f64 {
        s2s_core::bestpath::best_path_analysis(tl, SimDuration::from_hours(3))
            .map(|a| {
                a.deltas
                    .iter()
                    .map(|d| d.delta_p10_ms * d.prevalence)
                    .fold(0.0, f64::max)
            })
            .unwrap_or(0.0)
    };
    let mut best: Option<(ClusterId, ClusterId, Vec<TraceTimeline>, f64)> = None;
    for (src, dst) in candidates {
        let tls = trace_pair(src, dst);
        let score = impact(&tls[0]);
        println!(
            "  candidate {} -> {}: detour impact {score:.1} ms·prevalence",
            scenario.topo.cluster_city(src).name,
            scenario.topo.cluster_city(dst).name
        );
        if best.as_ref().map(|(_, _, _, s)| score > *s).unwrap_or(true) {
            best = Some((src, dst, tls, score));
        }
    }
    let (src, dst, tls, _) = best?;
    let topo = &scenario.topo;
    println!(
        "FIG 1 — example pair: {} ({}) -> {} ({})",
        topo.cluster_city(src).name,
        topo.cluster_city(src).country,
        topo.cluster_city(dst).name,
        topo.cluster_city(dst).country,
    );
    // Monthly p50 shows the dominant level; p90 reveals detour weeks that
    // the median hides — the textual analogue of Fig. 1a's level shifts.
    let monthly = |tl: &TraceTimeline, pct: f64| -> Vec<f64> {
        (0..months)
            .map(|m| {
                let lo = SimTime::from_days(m * 30);
                let hi = SimTime::from_days((m + 1) * 30);
                let rtts: Vec<f64> = tl
                    .samples
                    .iter()
                    .filter(|s| s.t >= lo && s.t < hi)
                    .filter_map(|s| s.rtt_ms.map(f64::from))
                    .collect();
                quantiles(&rtts, &[pct]).map(|q| q[0]).unwrap_or(f64::NAN)
            })
            .collect()
    };
    let base_v4 = monthly(&tls[0], 50.0);
    let p90_v4 = monthly(&tls[0], 90.0);
    let base_v6 = monthly(&tls[1], 50.0);
    println!("  month | v4 p50 (ms) | v4 p90 (ms) | v6 p50 (ms)");
    for m in 0..base_v4.len() {
        println!(
            "  {:>5} | {:>11.1} | {:>11.1} | {:>11.1}",
            m + 1,
            base_v4[m],
            p90_v4[m],
            base_v6[m]
        );
    }
    // Per-path baselines: the levels the timeline switches between.
    let stats = s2s_core::changes::path_stats(&tls[0], SimDuration::from_hours(3));
    for (i, rtts) in tls[0].rtts_by_path().iter().enumerate() {
        if stats.prevalence[i] < 0.02 || rtts.is_empty() {
            continue;
        }
        let q = quantiles(rtts, &[10.0]).unwrap();
        println!(
            "  v4 path {i}: baseline {:>6.1} ms, prevalence {:>4.1}%   {}",
            q[0],
            stats.prevalence[i] * 100.0,
            tls[0].paths[i]
        );
    }
    let ch4 = detect_changes(&tls[0]).changes;
    let ch6 = detect_changes(&tls[1]).changes;
    println!("  AS-path changes: v4 = {ch4}, v6 = {ch6}");

    // Daily oscillation: days where the v4 RTT swing exceeds 15 ms. With
    // only 8 samples per day, a single spike would dominate a max-min
    // metric; using the second-highest sample makes the count robust to
    // isolated spikes while still catching multi-hour busy periods.
    let mut osc_days = 0;
    for d in 0..days {
        let lo = SimTime::from_days(d);
        let hi = SimTime::from_days(d + 1);
        let mut day: Vec<f64> = tls[0]
            .samples
            .iter()
            .filter(|s| s.t >= lo && s.t < hi)
            .filter_map(|s| s.rtt_ms.map(f64::from))
            .collect();
        day.sort_by(|a, b| a.partial_cmp(b).unwrap());
        if day.len() >= 4 {
            let second_highest = day[day.len() - 2];
            if second_highest - day[0] > 15.0 {
                osc_days += 1;
            }
        }
    }
    println!(
        "  days with >15 ms daily swing (v4): {osc_days} of {days} \
         (the paper's Fig. 1b window shows ~2 such weeks in 6 months)"
    );
    Some(Fig1Result {
        monthly_baseline_v4: base_v4,
        monthly_baseline_v6: base_v6,
        changes: (ch4, ch6),
        oscillation_days_v4: osc_days,
    })
}
