//! Fig. 7: the 30-minute vs 3-hour cadence robustness check (§4.3).

use crate::render::print_ecdf;
use crate::scenario::Scenario;
use s2s_core::shortterm::CadenceComparison;
use s2s_core::timeline::TimelineBuilder;
use s2s_probe::{Campaign, CampaignConfig, TraceOptions};
use s2s_types::{SimDuration, SimTime};

/// Fig. 7 headline: max ECDF gaps between All and 3hr delta distributions.
#[derive(Clone, Copy, Debug)]
pub struct Fig7Result {
    /// Max ECDF gap for Δ10th percentiles.
    pub p10_gap: Option<f64>,
    /// Max ECDF gap for Δ90th percentiles.
    pub p90_gap: Option<f64>,
    /// Timelines analyzed.
    pub timelines: usize,
}

/// Runs the short-term campaign (30-minute cadence, paper: 22 days) over a
/// pair sample and compares best-path deltas at both cadences.
pub fn fig7(scenario: &Scenario, days: u32, start: SimTime) -> Fig7Result {
    let pairs = scenario.sample_pair_list(scenario.scale.cong_pairs.max(10), 0xF197);
    let cfg = CampaignConfig {
        start,
        end: start + SimDuration::from_days(days),
        interval: SimDuration::from_minutes(30),
        protocols: vec![s2s_types::Protocol::V4, s2s_types::Protocol::V6],
        threads: s2s_probe::env::threads(),
    };
    let map = &scenario.ip2asn;
    let (timelines, _) = Campaign::new(cfg)
        .run_traceroute(
            &scenario.net,
            &pairs,
            TraceOptions::default(),
            |s, d, p| TimelineBuilder::new(s, d, p, map),
            |b, rec| b.push(rec),
        )
        .expect("in-memory campaign cannot fail");
    let mut comp = CadenceComparison::default();
    let mut n = 0;
    for b in timelines {
        let tl = b.finish();
        if tl.usable_samples() > 0 {
            comp.add(&tl, SimDuration::from_minutes(30), SimDuration::from_hours(3));
            n += 1;
        }
    }
    println!("FIG 7 — best-path deltas at 30-minute vs 3-hour cadence ({n} timelines)");
    print_ecdf("Δ10th pct, all samples", &comp.p10_all, 9);
    print_ecdf("Δ10th pct, 3-hour subsample", &comp.p10_sub, 9);
    let p10_gap = comp.p10_ecdf_gap();
    let p90_gap = comp.p90_ecdf_gap();
    println!(
        "  max ECDF gap: Δ10th = {:?}, Δ90th = {:?}  (paper: 'very small difference')",
        p10_gap.map(|g| (g * 1000.0).round() / 1000.0),
        p90_gap.map(|g| (g * 1000.0).round() / 1000.0),
    );
    Fig7Result { p10_gap, p90_gap, timelines: n }
}
